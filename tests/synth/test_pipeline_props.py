"""Property-based tests over the whole synth→link→analyze pipeline.

Hypothesis generates random (but valid) program specs across the full
configuration space; every generated binary must uphold the pipeline
invariants: parseable ELF, fully-decodable text, ground-truth/endbr
agreement, and FunSeeker finding every endbr'd live function.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program
from repro.x86.decoder import decode
from repro.x86.sweep import linear_sweep

profiles = st.builds(
    CompilerProfile,
    compiler=st.sampled_from(["gcc", "clang"]),
    opt=st.sampled_from(["O0", "O1", "O2", "O3", "Os", "Ofast"]),
    bits=st.sampled_from([32, 64]),
    pie=st.booleans(),
)

specs = st.tuples(
    profiles,
    st.integers(min_value=5, max_value=60),   # function count
    st.integers(min_value=0, max_value=2**30),  # seed
    st.booleans(),                            # cxx
)


@given(specs)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_generated_binaries_uphold_invariants(params):
    profile, n, seed, cxx = params
    spec = generate_program("fuzz", n, profile, seed=seed, cxx=cxx)
    binary = link_program(spec, profile)

    elf = ELFFile(binary.data)
    assert elf.is64 == (profile.bits == 64)

    txt = elf.section(".text")
    insns = list(linear_sweep(txt.data, txt.sh_addr, profile.bits))
    assert sum(i.length for i in insns) == txt.sh_size, \
        "synthetic text must decode with zero gaps"

    gt = binary.ground_truth
    for entry in gt.entries:
        if not entry.is_function:
            continue
        insn = decode(txt.data, entry.address - txt.sh_addr,
                      entry.address, profile.bits)
        assert insn.is_endbr == entry.has_endbr

    result = FunSeeker(elf).identify()
    live_endbr = {e.address for e in gt.entries
                  if e.is_function and e.has_endbr}
    assert live_endbr <= result.functions, \
        "every end-branched function must be identified"
    # False positives may only be fragments.
    assert result.functions - gt.function_starts <= gt.fragment_starts
