"""Tests for function-body code generation."""

import pytest

from repro.synth.codegen import (
    fragment_symbol,
    generate_function,
    plt_symbol,
)
from repro.synth.ir import FunctionSpec
from repro.synth.profiles import CompilerProfile
from repro.x86.decoder import decode
from repro.x86.insn import InsnClass
from repro.x86.sweep import linear_sweep

P64 = CompilerProfile("gcc", "O2", 64, True)
P64_O0 = CompilerProfile("gcc", "O0", 64, True)
P32 = CompilerProfile("gcc", "O2", 32, False)


def _body(spec: FunctionSpec, profile=P64) -> bytes:
    return bytes(generate_function(spec, profile).code.buf)


class TestEndbrPlacement:
    def test_endbr_at_entry_when_enabled(self):
        code = _body(FunctionSpec(name="f", has_endbr=True, seed=1))
        assert code.startswith(b"\xf3\x0f\x1e\xfa")

    def test_no_endbr_when_disabled(self):
        code = _body(FunctionSpec(name="f", has_endbr=False, seed=1))
        assert not code.startswith(b"\xf3\x0f\x1e")

    def test_endbr32_in_32bit(self):
        code = _body(FunctionSpec(name="f", has_endbr=True, seed=1), P32)
        assert code.startswith(b"\xf3\x0f\x1e\xfb")


class TestBodyIntegrity:
    @pytest.mark.parametrize("profile", [P64, P64_O0, P32])
    def test_body_decodes_completely(self, profile):
        spec = FunctionSpec(name="f", filler=20, jump_table_cases=8,
                            landing_pads=2, seed=9,
                            plt_callees=["printf"],
                            setjmp_sites=["setjmp"])
        art = generate_function(spec, profile)
        code = bytes(art.code.buf)
        # Resolve fixups with dummy values so the stream decodes.
        patched = bytearray(code)
        for fx in art.code.fixups:
            pass  # rel32 fields are zero-filled, already decodable
        insns = list(linear_sweep(bytes(patched), 0x1000, profile.bits))
        assert sum(i.length for i in insns) == len(code)

    def test_ends_with_ret_or_jmp(self):
        spec = FunctionSpec(name="f", seed=3)
        code = _body(spec)
        insns = list(linear_sweep(code, 0, 64))
        assert insns[-1].klass == InsnClass.RET

    def test_tail_call_emits_jmp(self):
        spec = FunctionSpec(name="f", tail_call_target="g", seed=3)
        art = generate_function(spec, P64)
        assert any(fx.symbol == "g" for fx in art.code.fixups)


class TestSetjmpSites:
    def test_endbr_follows_setjmp_call(self):
        spec = FunctionSpec(name="f", setjmp_sites=["setjmp"], seed=5)
        art = generate_function(spec, P64)
        code = bytes(art.code.buf)
        insns = list(linear_sweep(code, 0, 64))
        # Find the call with a fixup to plt:setjmp; the next insn must
        # be the end-branch (Fig. 2a).
        call_offsets = {fx.offset - 1 for fx in art.code.fixups
                        if fx.symbol == plt_symbol("setjmp")}
        assert call_offsets
        for i, insn in enumerate(insns):
            if insn.addr in call_offsets:
                assert insns[i + 1].klass == InsnClass.ENDBR64

    def test_invalid_setjmp_name_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", setjmp_sites=["printf"])


class TestLandingPads:
    def test_callsites_recorded(self):
        spec = FunctionSpec(name="f", landing_pads=2,
                            plt_callees=["printf", "malloc"], seed=6)
        art = generate_function(spec, P64)
        assert len(art.eh_callsites) == 2
        code = bytes(art.code.buf)
        for _start, _length, pad in art.eh_callsites:
            insn = decode(code, pad, pad, 64)
            assert insn.klass == InsnClass.ENDBR64

    def test_pads_inside_function_bounds(self):
        spec = FunctionSpec(name="f", landing_pads=3, seed=6)
        art = generate_function(spec, P64)
        for _s, _l, pad in art.eh_callsites:
            assert 0 < pad < len(art.code.buf)


class TestJumpTables:
    def test_rodata_emitted(self):
        spec = FunctionSpec(name="f", jump_table_cases=10, seed=7)
        art = generate_function(spec, P64)
        assert len(art.rodata) == 1
        table = art.rodata[0]
        assert len(table.fixups) == 10

    def test_notrack_dispatch_present(self):
        spec = FunctionSpec(name="f", jump_table_cases=10, seed=7)
        code = bytes(generate_function(spec, P64).code.buf)
        insns = list(linear_sweep(code, 0, 64))
        assert any(i.klass == InsnClass.JMP_INDIRECT and i.notrack
                   for i in insns)

    def test_pie_uses_relative_table(self):
        spec = FunctionSpec(name="f", jump_table_cases=6, seed=7)
        art = generate_function(spec, CompilerProfile("gcc", "O2", 64, True))
        from repro.synth.encoder import FixupKind

        assert all(fx.kind == FixupKind.REL32
                   for fx in art.rodata[0].fixups)

    def test_nonpie_uses_absolute_table(self):
        spec = FunctionSpec(name="f", jump_table_cases=6, seed=7)
        art = generate_function(
            spec, CompilerProfile("gcc", "O2", 64, False))
        from repro.synth.encoder import FixupKind

        assert all(fx.kind == FixupKind.ABS64
                   for fx in art.rodata[0].fixups)


class TestFragments:
    def test_cold_fragment_generated(self):
        spec = FunctionSpec(name="f", cold_fragment=True, seed=8)
        art = generate_function(spec, P64)
        names = [n for n, _ in art.fragments]
        assert fragment_symbol("f", "cold") in names

    def test_part_fragment_generated_and_called(self):
        spec = FunctionSpec(name="f", part_fragment=True, seed=8)
        art = generate_function(spec, P64)
        names = [n for n, _ in art.fragments]
        part = fragment_symbol("f", "part")
        assert part in names
        assert any(fx.symbol == part for fx in art.code.fixups)

    def test_fragment_has_no_endbr(self):
        spec = FunctionSpec(name="f", cold_fragment=True,
                            part_fragment=True, seed=8)
        art = generate_function(spec, P64)
        for _name, code in art.fragments:
            assert not bytes(code.buf).startswith(b"\xf3\x0f\x1e")


class TestThunk:
    def test_thunk_shape(self):
        spec = FunctionSpec(name="__x86.get_pc_thunk.bx", is_thunk=True,
                            has_endbr=False, seed=1)
        art = generate_function(spec, P32)
        code = bytes(art.code.buf)
        assert code == b"\x8b\x1c\x24\xc3"  # mov ebx,[esp]; ret
