"""Tests for the synthetic toolchain's instruction encoder."""

import pytest

from repro.synth.encoder import Asm, FixupKind
from repro.x86.decoder import decode
from repro.x86.insn import InsnClass
from repro.x86.sweep import linear_sweep


def _decode_all(code: bytes, bits: int = 64):
    return list(linear_sweep(code, 0x1000, bits))


class TestBasics:
    def test_endbr_bytes(self):
        a64 = Asm(64)
        a64.endbr()
        assert bytes(a64.code.buf) == b"\xf3\x0f\x1e\xfa"
        a32 = Asm(32)
        a32.endbr()
        assert bytes(a32.code.buf) == b"\xf3\x0f\x1e\xfb"

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            Asm(16)

    def test_prologue_epilogue_decode(self):
        asm = Asm(64)
        asm.push_bp()
        asm.mov_bp_sp()
        asm.sub_sp(0x20)
        asm.leave()
        asm.ret()
        insns = _decode_all(bytes(asm.finish().buf))
        assert insns[-1].klass == InsnClass.RET
        assert sum(i.length for i in insns) == len(asm.code.buf)

    def test_large_sub_sp_uses_imm32(self):
        asm = Asm(64)
        asm.sub_sp(0x400)
        insn = decode(bytes(asm.code.buf), 0, 0, 64)
        assert insn.length == 7


class TestLabels:
    def test_local_rel32_resolution(self):
        asm = Asm(64)
        asm.jmp(".Ltarget")
        asm.raw(b"\x90" * 3)
        asm.label(".Ltarget")
        asm.ret()
        code = asm.finish()
        insn = decode(bytes(code.buf), 0, 0x1000, 64)
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.target == 0x1008

    def test_rel8_resolution(self):
        asm = Asm(64)
        asm.jcc_short("e", ".Lskip")
        asm.raw(b"\x90" * 5)
        asm.label(".Lskip")
        asm.ret()
        code = asm.finish()
        insn = decode(bytes(code.buf), 0, 0x1000, 64)
        assert insn.klass == InsnClass.JCC
        assert insn.target == 0x1007

    def test_rel8_out_of_range_raises(self):
        asm = Asm(64)
        asm.jmp_short(".Lfar")
        asm.raw(b"\x90" * 200)
        asm.label(".Lfar")
        with pytest.raises(ValueError, match="out of range"):
            asm.finish()

    def test_rel8_unresolved_raises(self):
        asm = Asm(64)
        asm.jmp_short(".Lmissing")
        with pytest.raises(ValueError, match="unresolved"):
            asm.finish()

    def test_duplicate_label_raises(self):
        asm = Asm(64)
        asm.label(".L0")
        with pytest.raises(ValueError, match="duplicate"):
            asm.label(".L0")

    def test_external_symbol_becomes_fixup(self):
        asm = Asm(64)
        asm.call("other_function")
        code = asm.finish()
        assert len(code.fixups) == 1
        fixup = code.fixups[0]
        assert fixup.kind == FixupKind.REL32
        assert fixup.symbol == "other_function"
        assert fixup.offset == 1


class TestAddressing:
    def test_lea_rip_fixup_field_position(self):
        asm = Asm(64)
        asm.lea_rip(0, "some_data")
        code = asm.finish()
        assert code.fixups[0].offset == 3
        assert len(code.buf) == 7

    def test_lea_rip_32bit_rejected(self):
        with pytest.raises(ValueError):
            Asm(32).lea_rip(0, "x")

    def test_mov_imm_sym_abs32(self):
        asm = Asm(32)
        asm.mov_imm_sym(0, "func")
        code = asm.finish()
        assert code.fixups[0].kind == FixupKind.ABS32
        assert len(code.buf) == 5

    def test_push_imm_sym(self):
        asm = Asm(32)
        asm.push_imm_sym("func")
        code = asm.finish()
        assert code.buf[0] == 0x68
        assert code.fixups[0].kind == FixupKind.ABS32


class TestNotrack:
    def test_notrack_jmp_reg(self):
        asm = Asm(64)
        asm.jmp_reg(0, notrack=True)
        insn = decode(bytes(asm.code.buf), 0, 0, 64)
        assert insn.klass == InsnClass.JMP_INDIRECT
        assert insn.notrack

    def test_notrack_jump_table_dispatch(self):
        asm = Asm(64)
        asm.notrack_jmp_table("tbl", scale8=True)
        code = asm.finish()
        insn = decode(bytes(code.buf), 0, 0, 64)
        assert insn.klass == InsnClass.JMP_INDIRECT
        assert insn.notrack
        assert code.fixups[0].kind == FixupKind.ABS32


class TestPadding:
    @pytest.mark.parametrize("count", [1, 2, 5, 9, 16, 23, 64])
    def test_nop_pad_is_all_nops(self, count):
        asm = Asm(64)
        asm.nop_pad(count)
        assert len(asm.code.buf) == count
        for insn in _decode_all(bytes(asm.code.buf)):
            assert insn.klass == InsnClass.NOP

    def test_align(self):
        asm = Asm(64)
        asm.raw(b"\xc3")
        asm.align(16)
        assert len(asm.code.buf) == 16

    def test_align_noop_when_aligned(self):
        asm = Asm(64)
        asm.raw(b"\x90" * 16)
        asm.align(16)
        assert len(asm.code.buf) == 16


class TestFiller:
    def test_filler_decodes_cleanly(self):
        import random

        asm = Asm(64)
        asm.filler(random.Random(1), 50)
        insns = _decode_all(bytes(asm.code.buf))
        assert sum(i.length for i in insns) == len(asm.code.buf)

    def test_filler_32_decodes_cleanly(self):
        import random

        asm = Asm(32)
        asm.filler(random.Random(2), 50)
        insns = _decode_all(bytes(asm.code.buf), bits=32)
        assert sum(i.length for i in insns) == len(asm.code.buf)
