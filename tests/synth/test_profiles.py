"""Tests for compiler profiles and configuration matrices."""

import pytest

from repro.synth.profiles import (
    CompilerProfile,
    default_matrix,
    sampled_matrix,
)


class TestValidation:
    def test_unknown_compiler_rejected(self):
        with pytest.raises(ValueError):
            CompilerProfile("icc", "O2", 64, True)

    def test_unknown_opt_rejected(self):
        with pytest.raises(ValueError):
            CompilerProfile("gcc", "O9", 64, True)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            CompilerProfile("gcc", "O2", 16, True)


class TestDerivedPolicies:
    def test_frame_pointer_only_at_o0(self):
        assert CompilerProfile("gcc", "O0", 64, True).uses_frame_pointer
        assert not CompilerProfile("gcc", "O2", 64, True).uses_frame_pointer

    def test_clang_x86_omits_c_fdes(self):
        assert not CompilerProfile("clang", "O2", 32, True).emits_fde_for_c
        assert CompilerProfile("clang", "O2", 64, True).emits_fde_for_c
        assert CompilerProfile("gcc", "O2", 32, True).emits_fde_for_c

    def test_fragments_gcc_optimized_only(self):
        assert CompilerProfile("gcc", "O2", 64, True).emits_cold_fragments
        assert not CompilerProfile("gcc", "O0", 64, True).emits_cold_fragments
        assert not CompilerProfile("clang", "O3", 64, True) \
            .emits_cold_fragments

    def test_get_pc_thunk_32bit_pic_only(self):
        assert CompilerProfile("gcc", "O2", 32, True).uses_get_pc_thunk
        assert not CompilerProfile("gcc", "O2", 32, False).uses_get_pc_thunk
        assert not CompilerProfile("gcc", "O2", 64, True).uses_get_pc_thunk

    def test_alignment(self):
        assert CompilerProfile("gcc", "Os", 64, True).function_alignment == 2
        assert CompilerProfile("gcc", "O2", 64, True).function_alignment == 16

    def test_config_name(self):
        profile = CompilerProfile("clang", "Os", 32, False)
        assert profile.config_name == "clang-x32-Os-nopie"


class TestMatrices:
    def test_default_matrix_is_48(self):
        """The paper's 24 configurations per compiler (§III-A)."""
        matrix = default_matrix()
        assert len(matrix) == 48
        assert len(set(p.config_name for p in matrix)) == 48

    def test_sampled_matrix_covers_all_axes(self):
        matrix = sampled_matrix()
        assert {p.compiler for p in matrix} == {"gcc", "clang"}
        assert {p.bits for p in matrix} == {32, 64}
        assert {p.pie for p in matrix} == {True, False}
        assert len({p.opt for p in matrix}) >= 3
