"""Tests for the synthetic linker: whole-binary invariants."""

import pytest

from repro.elf.ehframe import parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.elf.plt import build_plt_map
from repro.synth import (
    CompilerProfile,
    LinkError,
    generate_program,
    link_program,
)
from repro.synth.ir import FunctionSpec, ProgramSpec
from repro.x86.decoder import decode
from repro.x86.insn import InsnClass
from repro.x86.sweep import linear_sweep

ALL_PROFILES = [
    CompilerProfile(c, o, b, p)
    for c in ("gcc", "clang")
    for o in ("O0", "O2")
    for b in (64, 32)
    for p in (True, False)
]


@pytest.fixture(scope="module", params=ALL_PROFILES,
                ids=lambda p: p.config_name)
def linked(request):
    profile = request.param
    spec = generate_program("lnk", 50, profile, seed=13, cxx=True)
    return link_program(spec, profile), profile


class TestAcrossConfigurations:
    def test_parses_as_elf(self, linked):
        binary, profile = linked
        elf = ELFFile(binary.data)
        assert elf.is64 == (profile.bits == 64)
        assert elf.header.is_pie == profile.pie

    def test_ground_truth_endbr_consistency(self, linked):
        binary, profile = linked
        elf = ELFFile(binary.data)
        txt = elf.section(".text")
        for entry in binary.ground_truth.entries:
            if not entry.is_function:
                continue
            insn = decode(txt.data, entry.address - txt.sh_addr,
                          entry.address, profile.bits)
            assert insn.is_endbr == entry.has_endbr, entry.name

    def test_text_decodes_completely(self, linked):
        binary, profile = linked
        elf = ELFFile(binary.data)
        txt = elf.section(".text")
        insns = list(linear_sweep(txt.data, txt.sh_addr, profile.bits))
        assert sum(i.length for i in insns) == txt.sh_size

    def test_direct_calls_resolve_to_entries_or_plt(self, linked):
        binary, profile = linked
        elf = ELFFile(binary.data)
        txt = elf.section(".text")
        plt_map = build_plt_map(elf)
        known = binary.ground_truth.function_starts \
            | binary.ground_truth.fragment_starts
        for insn in linear_sweep(txt.data, txt.sh_addr, profile.bits):
            if insn.klass != InsnClass.CALL_DIRECT:
                continue
            assert (insn.target in known
                    or plt_map.name_at(insn.target) is not None), \
                f"dangling call target {insn.target:#x}"

    def test_entry_point_is_start(self, linked):
        binary, _profile = linked
        elf = ELFFile(binary.data)
        start = binary.ground_truth.entry_named("_start")
        assert elf.header.e_entry == start.address

    def test_landing_pads_match_codegen(self, linked):
        binary, profile = linked
        elf = ELFFile(binary.data)
        eh_sec = elf.section(".eh_frame")
        get_sec = elf.section(".gcc_except_table")
        if get_sec is None:
            return
        eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
        pads = landing_pads_from_exception_info(
            eh, get_sec.data, get_sec.sh_addr, elf.is64)
        txt = elf.section(".text")
        for pad in pads:
            insn = decode(txt.data, pad - txt.sh_addr, pad, profile.bits)
            assert insn.is_endbr


class TestFdePolicy:
    def test_clang_x86_c_has_no_fdes(self):
        profile = CompilerProfile("clang", "O2", 32, True)
        spec = generate_program("nofde", 40, profile, seed=14, cxx=False)
        binary = link_program(spec, profile)
        elf = ELFFile(binary.data)
        sec = elf.section(".eh_frame")
        eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        assert not eh.fdes

    def test_clang_x86_cxx_keeps_lsda_fdes(self):
        profile = CompilerProfile("clang", "O2", 32, True)
        spec = generate_program("cxxfde", 40, profile, seed=14, cxx=True)
        binary = link_program(spec, profile)
        elf = ELFFile(binary.data)
        sec = elf.section(".eh_frame")
        eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        assert eh.fdes
        assert all(f.lsda_address for f in eh.fdes)

    def test_gcc_fdes_cover_fragments(self):
        profile = CompilerProfile("gcc", "O2", 64, True)
        spec = generate_program("gfde", 60, profile, seed=15, cxx=False)
        binary = link_program(spec, profile)
        frags = binary.ground_truth.fragment_starts
        if not frags:
            pytest.skip("seed produced no fragments")
        elf = ELFFile(binary.data)
        sec = elf.section(".eh_frame")
        eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        starts = {f.pc_begin for f in eh.fdes}
        assert frags <= starts


class TestErrors:
    def test_unresolved_symbol_raises(self):
        profile = CompilerProfile("gcc", "O2", 64, True)
        spec = ProgramSpec(
            name="bad",
            functions=[
                FunctionSpec(name="main", seed=1),
                FunctionSpec(name="_start", seed=2),
            ],
        )
        # Inject a dangling fragment tail jump past validation.
        spec.functions[0].fragment_tail_jumps.append("ghost.part.0")
        with pytest.raises(LinkError):
            link_program(spec, profile)

    def test_validate_rejects_unknown_callee(self):
        spec = ProgramSpec(
            name="bad2",
            functions=[FunctionSpec(name="main", callees=["nope"],
                                    seed=1)],
        )
        with pytest.raises(ValueError, match="unknown"):
            spec.validate()

    def test_validate_rejects_duplicate_names(self):
        spec = ProgramSpec(
            name="bad3",
            functions=[FunctionSpec(name="main", seed=1),
                       FunctionSpec(name="main", seed=2)],
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.validate()

    def test_validate_rejects_missing_entry(self):
        spec = ProgramSpec(
            name="bad4",
            functions=[FunctionSpec(name="solo", seed=1)],
        )
        with pytest.raises(ValueError, match="entry"):
            spec.validate()
