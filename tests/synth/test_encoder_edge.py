"""Encoder edge cases: every emitted encoding must satisfy the decoder."""

import random

import pytest

from repro.synth.encoder import Asm
from repro.x86.decoder import decode
from repro.x86.insn import InsnClass


class TestConditionCodes:
    @pytest.mark.parametrize("cc", ["e", "ne", "l", "le", "g", "ge",
                                    "a", "ae", "b", "be", "s", "ns"])
    def test_jcc_long_roundtrip(self, cc):
        asm = Asm(64)
        asm.jcc(cc, ".Lt")
        asm.label(".Lt")
        code = asm.finish()
        insn = decode(bytes(code.buf), 0, 0x1000, 64)
        assert insn.klass == InsnClass.JCC
        assert insn.target == 0x1006

    @pytest.mark.parametrize("cc", ["e", "ne", "s"])
    def test_jcc_short_roundtrip(self, cc):
        asm = Asm(64)
        asm.jcc_short(cc, ".Lt")
        asm.label(".Lt")
        insn = decode(bytes(asm.finish().buf), 0, 0x1000, 64)
        assert insn.klass == InsnClass.JCC
        assert insn.length == 2

    def test_unknown_cc_rejected(self):
        with pytest.raises(KeyError):
            Asm(64).jcc("xyzzy", ".L")


class TestStackOps:
    @pytest.mark.parametrize("imm", [8, 16, 127, 128, 0x100, 0x1000])
    def test_sub_add_sp_decode(self, imm):
        for bits in (64, 32):
            asm = Asm(bits)
            asm.sub_sp(imm)
            asm.add_sp(imm)
            code = bytes(asm.finish().buf)
            first = decode(code, 0, 0, bits)
            second = decode(code, first.length, first.length, bits)
            assert first.length + second.length == len(code)

    def test_stack_effects_match_fetch_model(self):
        from repro.baselines.fetch_like import _stack_effect

        asm = Asm(64)
        asm.sub_sp(0x28)
        assert _stack_effect(bytes(asm.code.buf), 64) == -0x28


class TestMemOps:
    @pytest.mark.parametrize("bits", [64, 32])
    def test_spill_reload_roundtrip(self, bits):
        asm = Asm(bits)
        asm.mov_mem_bp_reg(-8)
        asm.mov_reg_mem_bp(0, -8)
        code = bytes(asm.finish().buf)
        first = decode(code, 0, 0, bits)
        second = decode(code, first.length, first.length, bits)
        assert first.length + second.length == len(code)

    def test_call_mem_bp(self):
        asm = Asm(64)
        asm.call_mem_bp(-16)
        insn = decode(bytes(asm.code.buf), 0, 0, 64)
        assert insn.klass == InsnClass.CALL_INDIRECT


class TestFillerDeterminism:
    def test_same_seed_same_bytes(self):
        a, b = Asm(64), Asm(64)
        a.filler(random.Random(9), 40)
        b.filler(random.Random(9), 40)
        assert bytes(a.code.buf) == bytes(b.code.buf)
