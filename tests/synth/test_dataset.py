"""Tests for dataset serialization."""

import json

import pytest

from repro.synth.dataset import (
    _profile_from_config,
    load_dataset,
    save_dataset,
)


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("dataset")
    manifest = save_dataset(root, scale="tiny", seed=7)
    return root, manifest


class TestSave:
    def test_manifest_written(self, dataset_dir):
        root, manifest = dataset_dir
        on_disk = json.loads((root / "manifest.json").read_text())
        assert on_disk == manifest
        assert len(manifest["binaries"]) == 24  # tiny scale

    def test_files_exist(self, dataset_dir):
        root, manifest = dataset_dir
        record = manifest["binaries"][0]
        directory = root / record["path"]
        assert (directory / "binary.elf").exists()
        assert (directory / "binary.stripped.elf").exists()
        assert (directory / "ground_truth.json").exists()

    def test_stripped_differs_from_original(self, dataset_dir):
        root, manifest = dataset_dir
        record = manifest["binaries"][0]
        directory = root / record["path"]
        assert (directory / "binary.elf").read_bytes() != \
            (directory / "binary.stripped.elf").read_bytes()


class TestLoad:
    def test_roundtrip_matches_generation(self, dataset_dir):
        from repro.synth.corpus import build_corpus

        root, _manifest = dataset_dir
        loaded = load_dataset(root)
        regenerated = build_corpus("tiny", seed=7)
        assert len(loaded) == len(regenerated)
        for a, b in zip(loaded, regenerated):
            assert a.label == b.label
            assert a.binary.data == b.binary.data
            assert a.stripped == b.stripped
            assert a.binary.ground_truth.function_starts == \
                b.binary.ground_truth.function_starts

    def test_loaded_entries_are_analyzable(self, dataset_dir):
        from repro.core.funseeker import FunSeeker
        from repro.eval.metrics import score

        root, _manifest = dataset_dir
        entry = load_dataset(root)[0]
        result = FunSeeker.from_bytes(entry.stripped).identify()
        conf = score(entry.binary.ground_truth.function_starts,
                     result.functions)
        assert conf.recall > 0.9

    def test_bad_format_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"format": 99}')
        with pytest.raises(ValueError):
            load_dataset(tmp_path)


class TestConfigParsing:
    @pytest.mark.parametrize("config,compiler,bits,pie", [
        ("gcc-x64-O2-pie", "gcc", 64, True),
        ("clang-x32-Os-nopie", "clang", 32, False),
        ("gcc-x32-O0-pie", "gcc", 32, True),
    ])
    def test_roundtrip(self, config, compiler, bits, pie):
        profile = _profile_from_config(config)
        assert profile.compiler == compiler
        assert profile.bits == bits
        assert profile.pie == pie
        assert profile.config_name == config
