"""Tests for the calibrated program generator."""

from repro.synth.generate import (
    DEFAULT_SUITES,
    generate_program,
    generate_suite,
)
from repro.synth.profiles import CompilerProfile

P = CompilerProfile("gcc", "O2", 64, True)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = generate_program("p", 80, P, seed=1, cxx=True)
        b = generate_program("p", 80, P, seed=1, cxx=True)
        assert [f.name for f in a.functions] == \
            [f.name for f in b.functions]
        assert [f.callees for f in a.functions] == \
            [f.callees for f in b.functions]
        assert [f.seed for f in a.functions] == \
            [f.seed for f in b.functions]

    def test_different_seed_different_program(self):
        a = generate_program("p", 80, P, seed=1)
        b = generate_program("p", 80, P, seed=2)
        assert [f.callees for f in a.functions] != \
            [f.callees for f in b.functions]

    def test_suite_determinism(self):
        s1 = generate_suite("coreutils", P, seed=3)
        s2 = generate_suite("coreutils", P, seed=3)
        assert [p.name for p in s1] == [p.name for p in s2]
        assert len(s1) == DEFAULT_SUITES["coreutils"].programs


class TestPopulationShape:
    def test_scaffolding_present(self):
        spec = generate_program("p", 50, P, seed=5)
        names = {f.name for f in spec.functions}
        assert {"_start", "_init", "_fini", "main"} <= names

    def test_spec_validates(self):
        for seed in range(5):
            spec = generate_program("p", 60, P, seed=seed, cxx=True)
            spec.validate()  # raises on inconsistency

    def test_endbr_fraction_near_paper(self):
        """Figure 3: ~89% of functions carry an entry end-branch."""
        total = endbr = 0
        for seed in range(8):
            spec = generate_program("p", 120, P, seed=seed)
            for fn in spec.functions:
                total += 1
                endbr += fn.has_endbr
        assert 0.80 < endbr / total < 0.95

    def test_live_statics_are_called(self):
        spec = generate_program("p", 100, P, seed=6)
        called = set()
        for fn in spec.functions:
            called.update(fn.callees)
            if fn.tail_call_target:
                called.add(fn.tail_call_target)
            called.update(fn.takes_address_of)
        for fn in spec.functions:
            if fn.is_static and not fn.is_dead and not fn.has_endbr \
                    and not fn.is_thunk:
                assert fn.name in called, fn.name

    def test_dead_functions_unreferenced(self):
        spec = generate_program("p", 100, P, seed=7)
        referenced = set()
        for fn in spec.functions:
            referenced.update(fn.callees)
            referenced.update(fn.takes_address_of)
            if fn.tail_call_target:
                referenced.add(fn.tail_call_target)
        for fn in spec.functions:
            if fn.is_dead:
                assert fn.name not in referenced

    def test_cxx_programs_have_landing_pads(self):
        spec = generate_program("p", 80, P, seed=8, cxx=True)
        assert any(f.landing_pads for f in spec.functions)

    def test_c_programs_have_no_landing_pads(self):
        spec = generate_program("p", 80, P, seed=8, cxx=False)
        assert not any(f.landing_pads for f in spec.functions)

    def test_get_pc_thunk_only_for_32bit_pic(self):
        spec64 = generate_program("p", 40, P, seed=9)
        assert not any(f.is_thunk for f in spec64.functions)
        p32 = CompilerProfile("gcc", "O2", 32, True)
        spec32 = generate_program("p", 40, p32, seed=9)
        assert any(f.is_thunk for f in spec32.functions)

    def test_fragments_follow_profile(self):
        o0 = CompilerProfile("gcc", "O0", 64, True)
        spec = generate_program("p", 100, o0, seed=10)
        assert not any(f.cold_fragment or f.part_fragment
                       for f in spec.functions)
        clang = CompilerProfile("clang", "O2", 64, True)
        spec_c = generate_program("p", 100, clang, seed=10)
        assert not any(f.part_fragment for f in spec_c.functions)

    def test_main_is_address_taken(self):
        spec = generate_program("p", 30, P, seed=11)
        main = spec.function("main")
        assert main.address_taken and main.has_endbr
        start = spec.function("_start")
        assert "main" in start.takes_address_of
