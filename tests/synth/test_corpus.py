"""Tests for corpus construction."""

import pytest

from repro.elf.parser import ELFFile
from repro.synth.corpus import build_corpus, iter_corpus


class TestTinyCorpus:
    def test_size_and_composition(self, tiny_corpus):
        assert len(tiny_corpus) == (3 + 1 + 2) * 4
        suites = {e.suite for e in tiny_corpus}
        assert suites == {"coreutils", "binutils", "spec"}

    def test_entries_parse(self, tiny_corpus):
        for entry in tiny_corpus[:6]:
            elf = ELFFile(entry.binary.data)
            assert elf.section(".text") is not None

    def test_stripped_variant_has_no_symbols(self, tiny_corpus):
        for entry in tiny_corpus[:6]:
            assert ELFFile(entry.stripped).is_stripped
            assert not ELFFile(entry.binary.data).is_stripped

    def test_same_program_across_configs(self, tiny_corpus):
        """Each program appears once per configuration, like the paper's
        one-source-many-configs builds."""
        by_program = {}
        for entry in tiny_corpus:
            by_program.setdefault((entry.suite, entry.program), []).append(
                entry.profile.config_name)
        for configs in by_program.values():
            assert len(configs) == 4
            assert len(set(configs)) == 4

    def test_ground_truth_nonempty(self, tiny_corpus):
        for entry in tiny_corpus:
            assert len(entry.binary.ground_truth.function_starts) > 5

    def test_labels_unique(self, tiny_corpus):
        labels = [e.label for e in tiny_corpus]
        assert len(labels) == len(set(labels))


class TestDeterminism:
    def test_rebuild_is_identical(self, tiny_corpus):
        rebuilt = build_corpus("tiny")
        assert len(rebuilt) == len(tiny_corpus)
        for a, b in zip(tiny_corpus, rebuilt):
            assert a.binary.data == b.binary.data

    def test_seed_changes_corpus(self):
        a = next(iter_corpus("tiny", seed=1))
        b = next(iter_corpus("tiny", seed=2))
        assert a.binary.data != b.binary.data


class TestScales:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            build_corpus("gigantic")

    def test_iter_is_lazy(self):
        it = iter_corpus("full")
        first = next(it)  # must not materialize the whole corpus
        assert first.suite == "coreutils"
