"""End-to-end observability smoke tests (tier-1, ``obs_smoke`` marker).

Profiles one synthetic binary through the CLI and sanity-checks the
exported trace: it must parse as ``obs-trace/v1``, the span tree must
nest sanely, and the root ``profile`` span must reconcile with the
reported wall-clock within 5% — the acceptance bar for the trace being
trustworthy as a performance artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import TRACE_SCHEMA, read_trace

pytestmark = pytest.mark.obs_smoke


@pytest.fixture(scope="module")
def binary_path(tmp_path_factory):
    from repro.synth import CompilerProfile, generate_program, link_program

    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("obs-smoke", 40, profile, seed=7, cxx=True)
    binary = link_program(spec, profile)
    path = tmp_path_factory.mktemp("obs") / "obs-smoke.bin"
    path.write_bytes(binary.data)
    return path


class TestProfileCommand:
    def _profile(self, binary_path, trace_path, capsys):
        rc = main(["profile", str(binary_path), "--json",
                   "--trace", str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        return json.loads(out)

    def test_trace_reconciles_with_wall_clock(
            self, binary_path, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        doc = self._profile(binary_path, trace_path, capsys)
        trace = read_trace(trace_path)
        assert [m["schema"] for m in trace.metas] == [TRACE_SCHEMA]

        totals = trace.span_totals()
        elapsed = doc["elapsed_seconds"]
        # The root "profile" span covers the whole measured window.
        assert totals["profile"] == pytest.approx(elapsed, rel=0.05)
        # Phases reported by the CLI match the trace's own totals.
        for name, seconds in doc["phases"].items():
            assert totals[name] == pytest.approx(seconds, abs=1e-3)

    def test_span_tree_nests_sanely(self, binary_path, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        self._profile(binary_path, trace_path, capsys)
        trace = read_trace(trace_path)
        spans = {s["id"]: s for s in trace.spans}
        roots = [s for s in trace.spans if s["parent"] == 0]
        assert [s["name"] for s in roots] == ["profile"]
        for s in trace.spans:
            if s["parent"] == 0:
                assert s["depth"] == 0
                continue
            parent = spans[s["parent"]]
            assert s["depth"] == parent["depth"] + 1
            # A child's window sits inside its parent's.
            assert s["start"] >= parent["start"] - 1e-9
            assert (s["start"] + s["dur"]
                    <= parent["start"] + parent["dur"] + 1e-9)
        names = {s["name"] for s in trace.spans}
        assert {"profile", "parse", "detect"} <= names

    def test_counters_exported(self, binary_path, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        doc = self._profile(binary_path, trace_path, capsys)
        trace = read_trace(trace_path)
        assert trace.counters == doc["counters"]
        assert trace.counters.get("parse.files") == 1
        assert trace.counters.get("sweep.insns", 0) > 0
        assert trace.counters.get("detect.runs") == 1

    def test_unknown_tool_rejected(self, binary_path, capsys):
        rc = main(["profile", str(binary_path), "--tools", "nonexistent"])
        assert rc == 2
        assert "unknown detectors" in capsys.readouterr().err


class TestEvalTrace:
    def test_eval_trace_merges_worker_parts(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        trace_path = tmp_path / "trace.jsonl"
        rc = main(["evaluate", "--scale", "tiny",
                   "--tools", "funseeker", "--workers", "1",
                   "--output", str(out), "--trace", str(trace_path)])
        assert rc == 0
        trace = read_trace(trace_path)
        assert len([s for s in trace.spans if s["name"] == "entry"]) == 24
        assert trace.counters.get("detect.runs") == 24
        # Per-record phase breakdowns ride along in the report too.
        doc = json.loads(out.read_text())
        assert "phase_seconds" in doc
        assert all("detect" in rec["phases"] for rec in doc["records"])
