"""Tests for the span/counter recorders."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import NullRecorder, TraceRecorder


@pytest.fixture()
def rec():
    return TraceRecorder()


class TestSpanTree:
    def test_nesting_records_parent_and_depth(self, rec):
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
        by_name = {s.name: s for s in rec.spans}
        assert by_name["outer"].parent == 0
        assert by_name["outer"].depth == 0
        assert by_name["inner"].parent == outer.record.id
        assert by_name["inner"].depth == 1
        # Children close before parents.
        assert rec.spans[0].name == "inner"
        assert inner.record.dur <= outer.record.dur

    def test_sibling_spans_share_parent(self, rec):
        with rec.span("outer") as outer:
            with rec.span("a"):
                pass
            with rec.span("b"):
                pass
        parents = {s.name: s.parent for s in rec.spans}
        assert parents["a"] == parents["b"] == outer.record.id

    def test_ids_are_unique_and_monotonic(self, rec):
        for _ in range(3):
            with rec.span("x"):
                pass
        ids = [s.id for s in rec.spans]
        assert ids == sorted(ids) and len(set(ids)) == 3

    def test_attrs_captured_and_settable(self, rec):
        with rec.span("parse", bytes=100) as sp:
            sp.set(sections=7)
        assert rec.spans[0].attrs == {"bytes": 100, "sections": 7}

    def test_to_doc_shape(self, rec):
        with rec.span("parse", bytes=100):
            pass
        doc = rec.spans[0].to_doc()
        assert doc["type"] == "span"
        assert {"id", "parent", "name", "depth", "start", "dur"} <= set(doc)
        assert doc["attrs"] == {"bytes": 100}
        assert "error" not in doc


class TestExceptionUnwinding:
    def test_exception_propagates_and_is_recorded(self, rec):
        with pytest.raises(ValueError):
            with rec.span("boom"):
                raise ValueError("nope")
        assert rec.spans[0].error == "ValueError"
        assert not rec._stack

    def test_unwinding_closes_nested_spans(self, rec):
        with pytest.raises(RuntimeError):
            with rec.span("outer"):
                with rec.span("inner"):
                    raise RuntimeError
        errors = {s.name: s.error for s in rec.spans}
        assert errors == {"inner": "RuntimeError", "outer": "RuntimeError"}

    def test_abandoned_child_closed_by_parent(self, rec):
        """A never-exited child span must not corrupt the stack."""
        with rec.span("outer"):
            rec.span("leaked")  # context manager discarded, never exited
        by_name = {s.name: s for s in rec.spans}
        assert by_name["leaked"].error == "AbandonedSpan"
        assert by_name["outer"].error is None
        assert not rec._stack


class TestCounters:
    def test_add_sums(self, rec):
        rec.add("sweep.insns", 10)
        rec.add("sweep.insns", 5)
        rec.add("cache.hits")
        assert rec.counters == {"sweep.insns": 15, "cache.hits": 1}


class TestAggregation:
    def test_phase_totals_sum_by_name(self, rec):
        for _ in range(2):
            with rec.span("detect"):
                pass
        with rec.span("score"):
            pass
        totals = rec.phase_totals()
        assert set(totals) == {"detect", "score"}
        assert totals["detect"] == pytest.approx(
            sum(s.dur for s in rec.spans if s.name == "detect"))

    def test_mark_windows_the_log(self, rec):
        with rec.span("before"):
            pass
        mark = rec.mark()
        with rec.span("after"):
            pass
        assert set(rec.phase_totals(mark)) == {"after"}

    def test_drain_returns_and_resets(self, rec):
        with rec.span("a"):
            pass
        rec.add("n", 2)
        payload = rec.drain()
        assert [s["name"] for s in payload["spans"]] == ["a"]
        assert payload["counters"] == {"n": 2}
        assert rec.spans == [] and rec.counters == {}
        # ids keep incrementing across drains, so batches never collide
        with rec.span("b"):
            pass
        assert rec.spans[0].id > payload["spans"][0]["id"]

    def test_drain_keeps_open_spans(self, rec):
        cm = rec.span("open")
        cm.__enter__()
        rec.drain()
        cm.__exit__(None, None, None)
        assert [s.name for s in rec.spans] == ["open"]


class TestNullRecorder:
    def test_everything_is_a_noop(self):
        null = NullRecorder()
        assert null.enabled is False
        with null.span("x", attr=1) as sp:
            sp.set(more=2)
        null.add("n", 5)
        assert null.mark() == 0
        assert null.phase_totals() == {}
        assert null.drain() == {"spans": [], "counters": {}}

    def test_span_object_is_shared(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")


class TestModuleApi:
    def test_default_is_disabled(self):
        assert obs.enabled() is False
        assert isinstance(obs.recorder(), NullRecorder)

    def test_set_and_reset(self):
        rec = obs.set_recorder(TraceRecorder())
        try:
            assert obs.enabled() is True
            with obs.span("x"):
                obs.add("n")
            assert rec.counters == {"n": 1}
            assert obs.phase_totals() == rec.phase_totals()
        finally:
            obs.set_recorder(None)
        assert obs.enabled() is False
