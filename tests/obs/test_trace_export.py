"""Tests for JSONL trace export, loading and cross-process merging."""

from __future__ import annotations

import json

from repro.obs import (
    TRACE_SCHEMA,
    TraceRecorder,
    append_payload,
    merge_traces,
    read_trace,
    write_trace,
)


def _payload(*, spans=2, counters=None):
    rec = TraceRecorder()
    for i in range(spans):
        with rec.span(f"s{i}", idx=i):
            pass
    for name, value in (counters or {}).items():
        rec.add(name, value)
    return rec.drain()


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, _payload(counters={"n": 3}), pid=11)
        trace = read_trace(path)
        assert [m["schema"] for m in trace.metas] == [TRACE_SCHEMA]
        assert [s["name"] for s in trace.spans] == ["s0", "s1"]
        assert all(s["pid"] == 11 for s in trace.spans)
        assert trace.counters == {"n": 3}

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, _payload())
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_span_totals(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = TraceRecorder()
        for _ in range(2):
            with rec.span("detect"):
                pass
        write_trace(path, rec.drain())
        totals = read_trace(path).span_totals()
        assert set(totals) == {"detect"}
        assert totals["detect"] > 0

    def test_missing_file_is_empty_trace(self, tmp_path):
        trace = read_trace(tmp_path / "absent.jsonl")
        assert trace.metas == [] and trace.spans == []


class TestAppend:
    def test_meta_written_once(self, tmp_path):
        path = tmp_path / "part.jsonl"
        append_payload(path, _payload(), pid=5)
        append_payload(path, _payload(), pid=5)
        trace = read_trace(path)
        assert len(trace.metas) == 1
        assert len(trace.spans) == 4

    def test_empty_payload_creates_nothing(self, tmp_path):
        path = tmp_path / "part.jsonl"
        append_payload(path, {"spans": [], "counters": {}})
        assert not path.exists()


class TestTornLines:
    def test_torn_final_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(path, _payload(counters={"n": 1}))
        with open(path, "a") as f:
            f.write('{"type": "span", "name": "torn", "dur"')  # killed worker
        trace = read_trace(path)
        assert "torn" not in [s["name"] for s in trace.spans]
        assert trace.counters == {"n": 1}

    def test_non_dict_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('[1, 2]\n"str"\n\n')
        trace = read_trace(path)
        assert trace.spans == [] and trace.metas == []


class TestMerge:
    def test_counters_summed_across_processes(self, tmp_path):
        a = tmp_path / "worker-1.jsonl"
        b = tmp_path / "worker-2.jsonl"
        write_trace(a, _payload(spans=1, counters={"cache.hits": 2}), pid=1)
        write_trace(b, _payload(spans=2, counters={"cache.hits": 3,
                                                   "cache.misses": 1}), pid=2)
        out = tmp_path / "merged.jsonl"
        merged = merge_traces(out, [a, b])
        assert merged.counters == {"cache.hits": 5, "cache.misses": 1}
        assert len(merged.spans) == 3
        # The merged file itself round-trips to the same aggregates.
        reread = read_trace(out)
        assert reread.counters == merged.counters
        assert len(reread.spans) == 3
        assert {s["pid"] for s in reread.spans} == {1, 2}

    def test_merged_head_records_part_count(self, tmp_path):
        a = tmp_path / "a.jsonl"
        write_trace(a, _payload(), pid=1)
        out = tmp_path / "merged.jsonl"
        merge_traces(out, [a])
        head = json.loads(out.read_text().splitlines()[0])
        assert head["schema"] == TRACE_SCHEMA
        assert head["merged_parts"] == 1

    def test_missing_part_tolerated(self, tmp_path):
        a = tmp_path / "a.jsonl"
        write_trace(a, _payload(spans=1), pid=1)
        out = tmp_path / "merged.jsonl"
        merged = merge_traces(out, [a, tmp_path / "gone.jsonl"])
        assert len(merged.spans) == 1
