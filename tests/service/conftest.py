"""Service-test harness: a real loopback HTTP server per test.

The event loop runs on a background thread; tests drive the service
through genuine TCP requests (``http.client``), so the whole stack —
request parsing, routing, manager, executor — is exercised exactly as
a client would. ``JobManager`` construction happens *on* the loop so
its ``asyncio`` primitives bind where they run.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from concurrent.futures import Executor, Future

import pytest

from repro.service import AnalysisService, JobManager


class StallExecutor(Executor):
    """An executor whose futures never complete — jobs stick forever.

    Backpressure tests use it to wedge the single worker so the queue
    actually fills; nothing submitted through it is ever executed.
    """

    def submit(self, fn, /, *args, **kwargs):
        return Future()

    def shutdown(self, wait=True, *, cancel_futures=False):
        pass


class LoopbackServer:
    """One started :class:`AnalysisService` on a thread-hosted loop."""

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="service-test-loop", daemon=True)
        self._thread.start()
        self.service: AnalysisService | None = None
        self.manager: JobManager | None = None
        self.host = ""
        self.port = 0

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self, run_dir, *, manager_kwargs=None, **service_kwargs):
        async def _go():
            manager = JobManager(run_dir, **(manager_kwargs or {}))
            service = AnalysisService(manager, **service_kwargs)
            address = await service.start()
            return manager, service, address

        self.manager, self.service, (self.host, self.port) = (
            asyncio.run_coroutine_threadsafe(_go(), self._loop)
            .result(timeout=30))
        return self

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, dict]:
        """One HTTP round trip; returns (status, headers, json doc)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=30)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                json.loads(payload.decode("utf-8")))

    def wait_result(self, job_id: str, timeout: float = 90.0) -> dict:
        """Poll ``/result`` until the job is terminal."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, _, doc = self.request(
                "GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                return doc
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} not terminal after "
                             f"{timeout:.0f}s")

    def wait_status(self, job_id: str, wanted: str,
                    timeout: float = 30.0) -> dict:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _, _, doc = self.request("GET", f"/v1/jobs/{job_id}")
            if doc["job"]["status"] == wanted:
                return doc["job"]
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never reached {wanted!r}")

    def stop(self) -> None:
        if self.service is not None:
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self._loop).result(timeout=30)
            self.service = None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)


@pytest.fixture
def loopback():
    """Factory for started loopback servers; stops them at teardown."""
    servers: list[LoopbackServer] = []

    def factory(run_dir, *, manager_kwargs=None, **service_kwargs):
        server = LoopbackServer()
        servers.append(server)
        return server.start(run_dir, manager_kwargs=manager_kwargs,
                            **service_kwargs)

    yield factory
    for server in servers:
        server.stop()


@pytest.fixture(scope="session")
def sample_image(sample_binary) -> bytes:
    """The raw bytes of the shared session sample binary."""
    return sample_binary.data
