"""SIGKILL restart-resume over a real ``funseeker serve`` subprocess.

The serve process is started with an injected ``kill@cell.execute``
fault plan, so the OS kills it dead (SIGKILL, no cleanup) while it is
parsing the submitted binary. A second server on the same run
directory must re-enqueue and complete the job.
"""

from __future__ import annotations

import signal

import pytest

from repro.service.chaos import (
    ServerCrashed,
    _await_results,
    _submit,
    normalize_results,
    start_server,
)

TOOLS = ("funseeker", "fetch")


@pytest.mark.service_smoke
def test_sigkill_mid_job_then_restart_resumes(tmp_path, sample_image):
    run_dir = tmp_path / "run"
    cache_dir = tmp_path / "cache"

    # -- killed server: accepts the job, dies parsing it ---------------------
    # Thread isolation on purpose: under the default process isolation
    # the fault would only kill a supervised worker and the server
    # would shrug it off. This test is about killing the *server*.
    handle = start_server(run_dir, cache_dir, tools=TOOLS,
                          fault_plan="kill@cell.execute#1",
                          extra_args=("--isolation", "thread"))
    try:
        job_id = _submit(handle, sample_image, TOOLS)
        exit_code = handle.proc.wait(timeout=60)
    finally:
        handle.kill()
    assert exit_code == -signal.SIGKILL

    # -- restarted server: same run dir, no fault ----------------------------
    handle = start_server(run_dir, cache_dir, tools=TOOLS)
    try:
        _, _, health = handle.request("GET", "/v1/healthz")
        assert health["resumed"] is True
        results = _await_results(handle, [job_id])
        doc = results[job_id]
        assert doc["status"] == "done"
        assert doc["receipt"]["resumed"] is True
        normalized = normalize_results(results)
        assert normalized[job_id]["status"] == "done"
        assert all(functions
                   for functions in normalized[job_id]["tools"].values())
        # The resumed job id is the content-derived identity the dead
        # server handed out — clients keep polling the same URL.
        _, _, polled = handle.request("GET", f"/v1/jobs/{job_id}")
        assert polled["job"]["resumed"] is True
    finally:
        exit_code = handle.terminate()
    assert exit_code == 0, "graceful SIGTERM shutdown exits 0"


def test_start_server_surfaces_startup_failure(tmp_path):
    # A run dir holding a corrupt manifest must fail fast, not hang.
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{broken", encoding="utf-8")
    with pytest.raises(ServerCrashed, match="exited with 3"):
        start_server(run_dir, tmp_path / "cache", tools=TOOLS)
