"""Receipt schema and fingerprint-compatibility tests."""

from __future__ import annotations

import hashlib

from repro import __version__
from repro.eval.analyze import CACHE_HIT, CACHE_MISS, ImageAnalysis, ToolReport
from repro.eval.journal import corpus_fingerprint
from repro.service.jobs import Job
from repro.service.receipts import (
    RECEIPT_SCHEMA,
    build_receipt,
    submission_fingerprint,
)


class _Entry:
    """Minimal corpus-entry stand-in for the fingerprint cross-check."""

    def __init__(self, label: str, stripped: bytes) -> None:
        self.label = label
        self.stripped = stripped


def test_submission_fingerprint_speaks_corpus_fingerprint():
    image = b"\x7fELF" + bytes(range(64))
    sha = hashlib.sha256(image).hexdigest()
    # A one-entry corpus holding the image, labeled by its hash, must
    # fingerprint identically — receipts and run manifests share one
    # language.
    entry = _Entry(label=sha, stripped=image)
    assert submission_fingerprint(sha) == corpus_fingerprint([entry])


def _job_and_analysis() -> tuple[Job, ImageAnalysis]:
    image = b"\x7fELF-image"
    sha = hashlib.sha256(image).hexdigest()
    job = Job(job_id="abc123", tenant="acme", sha256=sha,
              size_bytes=len(image), tools=("funseeker", "fetch"),
              submitted_at=100.0)
    analysis = ImageAnalysis(
        sha256=sha, size_bytes=len(image),
        tools={
            "funseeker": ToolReport(tool="funseeker",
                                    functions=(16, 32, 48),
                                    cache=CACHE_HIT),
            "fetch": ToolReport(tool="fetch", functions=None,
                                cache=CACHE_MISS, phase="detect",
                                error_type="MalformedELFError",
                                message="boom"),
        },
        diagnostics=[{"source": "elf", "message": "odd section"}],
        elapsed_seconds=0.25,
    )
    return job, analysis


def test_receipt_shape():
    job, analysis = _job_and_analysis()
    receipt = build_receipt(job, analysis, clock=lambda: 123.0)
    assert receipt["schema"] == RECEIPT_SCHEMA
    assert receipt["job_id"] == "abc123"
    assert receipt["tenant"] == "acme"
    assert receipt["image"]["sha256"] == analysis.sha256
    assert receipt["image"]["fingerprint"] == \
        submission_fingerprint(analysis.sha256)
    assert receipt["tools"]["funseeker"] == {
        "functions": 3, "cache": CACHE_HIT, "elapsed_seconds": 0.0,
        "ok": True, "error_type": None,
    }
    assert receipt["tools"]["fetch"]["ok"] is False
    assert receipt["tools"]["fetch"]["error_type"] == "MalformedELFError"
    assert receipt["cache"] == {"hits": 1, "misses": 1, "warm": False}
    assert receipt["diagnostics"]["count"] == 1
    assert receipt["versions"]["repro"] == __version__
    assert receipt["timing"]["completed_at"] == 123.0
    assert receipt["timing"]["submitted_at"] == 100.0
    assert receipt["resumed"] is False


def test_receipt_marks_resumed_work():
    job, analysis = _job_and_analysis()
    receipt = build_receipt(job, analysis, resumed=True)
    assert receipt["resumed"] is True
