"""Token-bucket unit tests with an injected fake clock."""

from __future__ import annotations

from repro.service.ratelimit import TenantRateLimiter, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
    assert bucket.acquire() == (True, 0.0)
    assert bucket.acquire() == (True, 0.0)
    assert bucket.acquire() == (True, 0.0)
    allowed, retry_after = bucket.acquire()
    assert not allowed
    assert retry_after > 0


def test_bucket_refills_continuously():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
    bucket.acquire()
    bucket.acquire()
    assert bucket.acquire()[0] is False
    clock.advance(0.5)  # refills one token at 2/s
    assert bucket.acquire() == (True, 0.0)
    assert bucket.acquire()[0] is False


def test_retry_after_predicts_the_wait():
    clock = FakeClock()
    bucket = TokenBucket(rate=0.5, burst=1.0, clock=clock)
    bucket.acquire()
    allowed, retry_after = bucket.acquire()
    assert not allowed
    clock.advance(retry_after)
    assert bucket.acquire() == (True, 0.0)


def test_refill_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.advance(3600)
    bucket.acquire()
    bucket.acquire()
    assert bucket.acquire()[0] is False


def test_oversized_cost_reports_finite_wait():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    allowed, retry_after = bucket.acquire(cost=10.0)
    assert not allowed
    # The hint is time-to-full, not time-to-impossible.
    assert retry_after <= 2.0


def test_limiter_disabled_at_zero_rate():
    limiter = TenantRateLimiter(rate=0)
    assert not limiter.enabled
    for _ in range(100):
        assert limiter.acquire("anyone") == (True, 0.0)


def test_limiter_isolates_tenants():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=0.01, burst=1.0, clock=clock)
    assert limiter.acquire("alpha")[0] is True
    assert limiter.acquire("alpha")[0] is False
    # A different tenant has its own untouched bucket.
    assert limiter.acquire("beta")[0] is True


def test_limiter_retry_after_is_whole_seconds():
    clock = FakeClock()
    limiter = TenantRateLimiter(rate=0.4, burst=1.0, clock=clock)
    limiter.acquire("tenant")
    allowed, retry_after = limiter.acquire("tenant")
    assert not allowed
    assert retry_after >= 1.0
    assert retry_after == int(retry_after)
