"""HTTP contract tests over a real loopback server.

Everything here goes through genuine TCP sockets against the running
asyncio server — no handler is called directly.
"""

from __future__ import annotations

import base64
import json

import pytest

from repro.service.ratelimit import TenantRateLimiter

from .conftest import StallExecutor

TOOLS = ["funseeker", "fetch"]


@pytest.mark.service_smoke
def test_submit_poll_result_roundtrip(tmp_path, loopback, sample_image):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": TOOLS,
                                      "cache_root": tmp_path / "cache"})
    status, _, doc = server.request(
        "POST", "/v1/jobs?tools=funseeker,fetch", body=sample_image)
    assert status in (200, 202)
    assert doc["created"] is True
    job_id = doc["job"]["job_id"]

    status, _, polled = server.request("GET", f"/v1/jobs/{job_id}")
    assert status == 200
    assert polled["job"]["job_id"] == job_id

    result = server.wait_result(job_id)
    assert result["status"] == "done"
    analysis = result["analysis"]
    assert analysis["schema"] == "image-analysis/v1"
    assert set(analysis["tools"]) == set(TOOLS)
    for report in analysis["tools"].values():
        assert report["functions"], "every tool found entry points"
    receipt = result["receipt"]
    assert receipt["schema"] == "job-receipt/v1"
    assert receipt["image"]["sha256"] == analysis["sha256"]


@pytest.mark.service_smoke
def test_duplicate_submission_returns_same_job(tmp_path, loopback,
                                               sample_image):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": TOOLS,
                                      "cache_root": tmp_path / "cache"})
    _, _, first = server.request(
        "POST", "/v1/jobs?tools=funseeker,fetch", body=sample_image)
    job_id = first["job"]["job_id"]
    server.wait_result(job_id)

    status, _, second = server.request(
        "POST", "/v1/jobs?tools=funseeker,fetch", body=sample_image)
    assert status == 200  # already done
    assert second["created"] is False
    assert second["job"]["job_id"] == job_id

    _, _, metrics = server.request("GET", "/v1/metrics")
    service = metrics["service"]
    assert service["submitted"] == 1, "exactly one analysis was performed"
    assert service["deduped"] == 1
    assert service["completed"] == 1


@pytest.mark.service_smoke
def test_rate_limit_answers_429_with_retry_after(tmp_path, loopback,
                                                 sample_image):
    server = loopback(
        tmp_path / "run",
        manager_kwargs={"tools": TOOLS},
        limiter=TenantRateLimiter(rate=0.001, burst=1.0),
    )
    status, _, _ = server.request("POST", "/v1/jobs", body=sample_image)
    assert status in (200, 202)
    status, headers, doc = server.request(
        "POST", "/v1/jobs", body=b"another-image")
    assert status == 429
    assert int(headers["retry-after"]) >= 1
    assert "rate limited" in doc["error"]
    # A different tenant is not throttled by the first one's bucket.
    status, _, _ = server.request(
        "POST", "/v1/jobs", body=b"\x7fELF-third",
        headers={"X-Tenant": "other"})
    assert status in (200, 202)


@pytest.mark.service_smoke
def test_full_queue_answers_429_backpressure(tmp_path, loopback):
    server = loopback(
        tmp_path / "run",
        manager_kwargs={"tools": ["fetch"], "queue_size": 1,
                        "executor": StallExecutor()},
    )
    _, _, first = server.request("POST", "/v1/jobs", body=b"image-one")
    server.wait_status(first["job"]["job_id"], "running")
    status, _, _ = server.request("POST", "/v1/jobs", body=b"image-two")
    assert status == 202
    status, headers, doc = server.request(
        "POST", "/v1/jobs", body=b"image-three")
    assert status == 429
    assert int(headers["retry-after"]) >= 1
    assert "queue full" in doc["error"]


def test_batch_endpoint(tmp_path, loopback, sample_image,
                        sample_c_binary):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": TOOLS,
                                      "cache_root": tmp_path / "cache"})
    body = json.dumps({
        "binaries": [
            base64.b64encode(sample_image).decode(),
            base64.b64encode(sample_c_binary.data).decode(),
        ],
        "tools": TOOLS,
    }).encode()
    status, _, doc = server.request("POST", "/v1/batch", body=body)
    assert status in (200, 202)
    batch_id = doc["batch"]["batch_id"]
    assert len(doc["jobs"]) == 2
    results = [server.wait_result(j["job_id"]) for j in doc["jobs"]]
    assert all(r["status"] == "done" for r in results)
    status, _, polled = server.request("GET", f"/v1/batch/{batch_id}")
    assert status == 200
    assert all(j["status"] == "done" for j in polled["jobs"])


def test_error_paths(tmp_path, loopback, sample_image):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": ["fetch"]},
                      max_body=1024)
    status, _, _ = server.request("GET", "/v1/jobs/nope/result")
    assert status == 404
    status, _, _ = server.request("GET", "/v1/nothing-here")
    assert status == 404
    status, headers, _ = server.request("GET", "/v1/jobs")
    assert status == 405
    assert headers["allow"] == "POST"
    status, _, doc = server.request("POST", "/v1/jobs", body=b"")
    assert status == 400
    status, _, _ = server.request("POST", "/v1/jobs", body=b"x" * 2048)
    assert status == 413
    status, _, _ = server.request(
        "POST", "/v1/jobs", body=b"x",
        headers={"X-Tenant": "bad/../tenant"})
    assert status == 400
    status, _, doc = server.request(
        "POST", "/v1/jobs?tools=not-a-tool", body=b"x")
    assert status == 400
    assert "unknown tools" in doc["error"]
    status, _, _ = server.request("POST", "/v1/batch", body=b"not json")
    assert status == 400
    status, _, _ = server.request(
        "POST", "/v1/batch",
        body=json.dumps({"binaries": ["!!! not base64 !!!"]}).encode())
    assert status == 400


def test_healthz_and_metrics_shape(tmp_path, loopback):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": ["fetch"]})
    status, _, health = server.request("GET", "/v1/healthz")
    assert status == 200
    assert health["status"] == "ok"
    assert health["resumed"] is False
    assert health["jobs"] == {"queued": 0, "running": 0, "done": 0,
                              "failed": 0}
    status, _, metrics = server.request("GET", "/v1/metrics")
    assert status == 200
    assert "counters" in metrics
    for key in ("submitted", "deduped", "warm_served", "completed",
                "failed", "rejected_queue_full", "queue_depth"):
        assert key in metrics["service"]


def test_failed_job_reports_error(tmp_path, loopback):
    server = loopback(tmp_path / "run",
                      manager_kwargs={"tools": ["fetch"]})
    status, _, doc = server.request(
        "POST", "/v1/jobs", body=b"this is not an ELF at all")
    assert status == 202
    result = server.wait_result(doc["job"]["job_id"])
    # A malformed image is still a *completed* analysis: every tool
    # reports a parse-phase failure, the job itself does not fail.
    assert result["status"] == "done"
    report = result["analysis"]["tools"]["fetch"]
    assert report["functions"] is None
    assert report["phase"] == "parse"
