"""JobManager unit tests: dedup, warm serving, crash resume, manifests."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import (
    ManifestCorruptError,
    ManifestMismatchError,
    QueueFullError,
)
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JobManager,
    job_identity,
)

from .conftest import StallExecutor

TOOLS = ["funseeker", "fetch"]


def _run(coro):
    return asyncio.run(coro)


async def _await_done(manager: JobManager, job_id: str,
                      timeout: float = 90.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        job = manager.get(job_id)
        if job.status in (JOB_DONE, JOB_FAILED):
            return job
        await asyncio.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


def test_job_identity_is_deterministic():
    a = job_identity("acme", "ab" * 32, ("funseeker", "fetch"))
    assert a == job_identity("acme", "ab" * 32, ("funseeker", "fetch"))
    assert a != job_identity("other", "ab" * 32, ("funseeker", "fetch"))
    assert a != job_identity("acme", "cd" * 32, ("funseeker", "fetch"))
    assert a != job_identity("acme", "ab" * 32, ("funseeker",))


def test_duplicate_submission_is_one_job_and_one_analysis(
        tmp_path, sample_image):
    async def main():
        manager = JobManager(tmp_path / "run", tools=TOOLS,
                             cache_root=tmp_path / "cache")
        await manager.start()
        try:
            job, created = manager.submit(sample_image)
            assert created
            dup, dup_created = manager.submit(sample_image)
            assert dup is job
            assert not dup_created
            done = await _await_done(manager, job.job_id)
            assert done.status == JOB_DONE
            # Resubmitting after completion still dedups to the done job.
            again, again_created = manager.submit(sample_image)
            assert again is job and not again_created
            assert manager.stats["submitted"] == 1
            assert manager.stats["deduped"] == 2
            assert manager.stats["completed"] == 1
        finally:
            await manager.stop()

    _run(main())


def test_warm_submission_completes_at_submit_time(tmp_path, sample_image):
    async def first():
        manager = JobManager(tmp_path / "run1", tools=TOOLS,
                             cache_root=tmp_path / "cache")
        await manager.start()
        try:
            job, _ = manager.submit(sample_image)
            done = await _await_done(manager, job.job_id)
            assert done.status == JOB_DONE
            return done.analysis
        finally:
            await manager.stop()

    async def second():
        # Fresh run dir (no dedup possible), same cache root: the
        # submission must complete synchronously from disk, no parse.
        manager = JobManager(tmp_path / "run2", tools=TOOLS,
                             cache_root=tmp_path / "cache")
        try:
            job, created = manager.submit(sample_image)
            assert created
            assert job.status == JOB_DONE  # before any worker ran
            assert job.analysis.warm
            assert all(r.cache == "hit"
                       for r in job.analysis.tools.values())
            assert manager.stats["warm_served"] == 1
            return job.analysis
        finally:
            await manager.stop()

    cold = _run(first())
    warm = _run(second())
    for name in TOOLS:
        assert warm.tools[name].functions == cold.tools[name].functions


def test_queue_full_raises_before_side_effects(tmp_path):
    async def main():
        manager = JobManager(tmp_path / "run", tools=["fetch"],
                             queue_size=1, executor=StallExecutor())
        await manager.start()
        try:
            first, _ = manager.submit(b"first-image")
            # Wait for the worker to take it off the queue.
            deadline = asyncio.get_running_loop().time() + 10
            while manager.get(first.job_id).status == JOB_QUEUED:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            manager.submit(b"second-image")  # fills the queue
            blobs_before = sorted(p.name
                                  for p in manager.blobs_dir.iterdir())
            with pytest.raises(QueueFullError) as excinfo:
                manager.submit(b"third-image")
            assert excinfo.value.retry_after >= 1.0
            assert manager.stats["rejected_queue_full"] == 1
            # The rejected submission left nothing behind: no job
            # registered, no blob written.
            assert len(manager.jobs()) == 2
            assert sorted(p.name for p in
                          manager.blobs_dir.iterdir()) == blobs_before
        finally:
            await manager.stop()

    _run(main())


def test_restart_resumes_inflight_and_restores_done(
        tmp_path, sample_image):
    run_dir = tmp_path / "run"

    async def crash():
        # Never started, never stopped: simulate the process dying with
        # the job accepted but unfinished. The journal line is already
        # fsync'd by submit().
        manager = JobManager(run_dir, tools=TOOLS,
                             cache_root=tmp_path / "cache",
                             executor=StallExecutor())
        job, _ = manager.submit(sample_image)
        assert job.status == JOB_QUEUED
        return job.job_id

    job_id = _run(crash())

    async def resume():
        manager = JobManager(run_dir, tools=TOOLS,
                             cache_root=tmp_path / "cache")
        assert manager.resumed
        job = manager.get(job_id)
        assert job is not None
        assert job.resumed
        await manager.start()
        try:
            assert manager.stats["resumed_jobs"] == 1
            done = await _await_done(manager, job_id)
            assert done.status == JOB_DONE
            assert done.receipt["resumed"] is True
            return done.receipt
        finally:
            await manager.stop()

    receipt = _run(resume())

    async def restore():
        # Third manager on the same dir: the completed job replays from
        # the journal — done immediately, original receipt, no re-run.
        manager = JobManager(run_dir, tools=TOOLS,
                             cache_root=tmp_path / "cache")
        try:
            job = manager.get(job_id)
            assert job.status == JOB_DONE
            assert manager.stats["restored"] == 1
            assert manager.stats["resumed_jobs"] == 0
            assert job.receipt == receipt
        finally:
            await manager.stop()

    _run(restore())


def test_lost_blob_fails_the_resumed_job(tmp_path, sample_image):
    run_dir = tmp_path / "run"

    async def crash():
        manager = JobManager(run_dir, tools=TOOLS,
                             executor=StallExecutor())
        job, _ = manager.submit(sample_image)
        return job.job_id

    job_id = _run(crash())
    for blob in (run_dir / "blobs").iterdir():
        blob.unlink()

    async def resume():
        manager = JobManager(run_dir, tools=TOOLS)
        try:
            job = manager.get(job_id)
            assert job.status == JOB_FAILED
            assert "blob lost" in job.error
        finally:
            await manager.stop()

    _run(resume())


def test_corrupt_manifest_is_distinguished(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{definitely not json",
                                           encoding="utf-8")
    with pytest.raises(ManifestCorruptError):
        JobManager(run_dir)

    other = tmp_path / "other"
    other.mkdir()
    (other / "manifest.json").write_text(
        json.dumps({"schema": "journal-manifest/v1"}), encoding="utf-8")
    with pytest.raises(ManifestMismatchError):
        JobManager(other)


def test_invalid_tenant_and_tools_rejected(tmp_path):
    async def main():
        manager = JobManager(tmp_path / "run", tools=TOOLS)
        try:
            with pytest.raises(ValueError):
                manager.submit(b"x", tenant="../evil")
            with pytest.raises(ValueError):
                manager.submit(b"x", tools=["no-such-detector"])
        finally:
            await manager.stop()

    _run(main())
