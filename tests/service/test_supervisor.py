"""Supervised process isolation: executor unit tests + manager flows.

The executor tests exercise the supervisor loop directly — respawn
after crash, backstop kill of a wedged worker, crash-loop backoff
accounting. The manager tests drive the full poison path (worker
losses → quarantine → durable ``job-poisoned`` record) and the
terminal-failure journaling satellite through a real ``JobManager``.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro import faults
from repro.errors import (
    ServiceUnavailableError,
    WorkerLostError,
    is_permanent_failure,
)
from repro.service.jobs import JOB_DONE, JOB_FAILED, JobManager
from repro.service.supervisor import (
    REASON_CRASH,
    REASON_DEADLINE,
    SupervisedExecutor,
)

pytestmark = pytest.mark.supervise_smoke

TOOLS = ["funseeker", "fetch"]


def _run(coro):
    return asyncio.run(coro)


async def _await_done(manager: JobManager, job_id: str,
                      timeout: float = 90.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        job = manager.get(job_id)
        if job.status in (JOB_DONE, JOB_FAILED):
            return job
        await asyncio.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


# Task bodies must be module-level: they cross the pipe by pickle.

def _echo(value):
    return value


def _pid():
    return os.getpid()


def _boom():
    raise ValueError("synthetic task failure")


def _die():
    os._exit(17)


def _hang():
    time.sleep(600)


# ---------------------------------------------------------------------------
# SupervisedExecutor
# ---------------------------------------------------------------------------


@pytest.fixture
def pool():
    executor = SupervisedExecutor(
        max_workers=1, backstop=10.0, backoff_base=0.01)
    yield executor
    executor.shutdown()


def test_roundtrip_and_worker_reuse(pool):
    assert pool.submit_task(_echo, 42).result(timeout=30) == 42
    pids = {pool.submit_task(_pid).result(timeout=30) for _ in range(3)}
    assert len(pids) == 1
    assert pids.pop() != os.getpid()
    stats = pool.stats()
    assert stats["spawns"] == 1
    assert stats["tasks_completed"] == 4
    assert stats["losses"] == 0


def test_task_exception_propagates_without_worker_loss(pool):
    with pytest.raises(ValueError, match="synthetic task failure"):
        pool.submit_task(_boom).result(timeout=30)
    assert pool.submit_task(_echo, "ok").result(timeout=30) == "ok"
    stats = pool.stats()
    assert stats["tasks_raised"] == 1
    assert stats["losses"] == 0
    assert stats["spawns"] == 1


def test_worker_crash_is_transient_worker_lost_and_respawns(pool):
    with pytest.raises(WorkerLostError) as info:
        pool.submit_task(_die).result(timeout=30)
    assert info.value.reason == REASON_CRASH
    assert info.value.exitcode == 17
    assert not is_permanent_failure(info.value)
    # The next task lands on a respawned worker.
    assert pool.submit_task(_echo, 1).result(timeout=30) == 1
    stats = pool.stats()
    assert stats["losses"] == 1
    assert stats["respawns"] == 1


def test_backstop_kills_wedged_worker():
    executor = SupervisedExecutor(
        max_workers=1, backstop=1.0, backoff_base=0.01)
    try:
        started = time.monotonic()
        with pytest.raises(WorkerLostError) as info:
            executor.submit_task(_hang, budget=0.2).result(timeout=60)
        assert info.value.reason == REASON_DEADLINE
        # budget + backstop = 1.2s; generous slack for a loaded box.
        assert time.monotonic() - started < 30.0
        assert executor.stats()["backstop_kills"] == 1
        assert executor.submit_task(_echo, "ok").result(timeout=30) == "ok"
    finally:
        executor.shutdown()


def test_crash_loop_backoff_accounting():
    executor = SupervisedExecutor(
        max_workers=1, backstop=10.0,
        backoff_base=0.01, backoff_max=0.04)
    try:
        for _ in range(3):
            with pytest.raises(WorkerLostError):
                executor.submit_task(_die).result(timeout=30)
        stats = executor.stats()
        assert stats["losses"] == 3
        # Respawns 2 and 3 backed off 0.01 and 0.02 seconds.
        assert stats["backoff_seconds"] >= 0.03
        # A successful reply resets the crash streak.
        assert executor.submit_task(_echo, 9).result(timeout=30) == 9
        assert executor._slots[0].consecutive_losses == 0
    finally:
        executor.shutdown()


def test_submit_after_shutdown_is_rejected():
    executor = SupervisedExecutor(max_workers=1)
    executor.shutdown()
    with pytest.raises(RuntimeError, match="shut-down"):
        executor.submit_task(_echo, 1)


# ---------------------------------------------------------------------------
# JobManager on the supervised executor
# ---------------------------------------------------------------------------


def test_process_isolated_job_completes(tmp_path, sample_image):
    async def main():
        manager = JobManager(
            tmp_path / "run", tools=TOOLS,
            isolation="process", executor_workers=1, backstop=60.0)
        assert manager.isolation == "process"
        await manager.start()
        try:
            job, created = manager.submit(sample_image)
            assert created
            done = await _await_done(manager, job.job_id)
            assert done.status == JOB_DONE
            assert done.analysis.ok
            supervisor = manager.supervisor_stats()
            assert supervisor["tasks_completed"] == 1
            assert supervisor["losses"] == 0
        finally:
            await manager.stop()

    _run(main())


def test_poison_job_quarantined_and_durable(tmp_path, sample_image):
    faults.install("kill@cell.execute#1")
    try:
        async def main():
            manager = JobManager(
                tmp_path / "run", tools=TOOLS,
                isolation="process", executor_workers=1,
                poison_threshold=2, backstop=60.0)
            # Shrink the crash-loop backoff for test speed.
            manager._executor.backoff_base = 0.01
            await manager.start()
            try:
                job, created = manager.submit(sample_image)
                assert created
                done = await _await_done(manager, job.job_id)
                assert done.status == JOB_FAILED
                assert done.poisoned
                assert done.crashes == 2
                assert "poisoned after 2 worker losses" in done.error
                assert done.quarantined is not None
                entries = manager.quarantine_entries()
                assert len(entries) == 1
                assert entries[0].read_input() == sample_image
                meta = entries[0].failures[0]
                assert meta["suite"] == "service"
                assert meta["program"] == job.job_id
                assert manager.stats["poisoned"] == 1
                assert manager.stats["crash_retries"] == 1
            finally:
                await manager.stop()
            return job.job_id

        job_id = _run(main())
    finally:
        faults.clear()

    # A restarted server must NOT re-enqueue the poisoned job.
    async def restart():
        manager = JobManager(tmp_path / "run", tools=TOOLS)
        await manager.start()
        try:
            job = manager.get(job_id)
            assert job is not None
            assert job.status == JOB_FAILED
            assert job.poisoned
            assert job.crashes == 2
            assert job.quarantined is not None
            assert manager.stats["resumed_jobs"] == 0
            assert manager.stats["restored"] == 1
        finally:
            await manager.stop()

    _run(restart())


# ---------------------------------------------------------------------------
# Terminal-failure journaling (thread isolation is enough)
# ---------------------------------------------------------------------------


def test_permanent_failure_is_journaled_terminal(tmp_path, sample_image):
    faults.install("permanent@blob.read#1")
    try:
        async def main():
            manager = JobManager(tmp_path / "run", tools=TOOLS)
            await manager.start()
            try:
                job, _created = manager.submit(sample_image)
                done = await _await_done(manager, job.job_id)
                assert done.status == JOB_FAILED
                assert "PermanentFaultError" in done.error
                assert done.completed_at is not None
            finally:
                await manager.stop()
            return job.job_id

        job_id = _run(main())
    finally:
        faults.clear()

    async def restart():
        manager = JobManager(tmp_path / "run", tools=TOOLS)
        await manager.start()
        try:
            job = manager.get(job_id)
            assert job.status == JOB_FAILED
            assert "PermanentFaultError" in job.error
            assert manager.stats["resumed_jobs"] == 0
            assert manager.stats["restored"] == 1
        finally:
            await manager.stop()

    _run(restart())


def test_transient_failure_not_journaled_reruns_on_resume(
        tmp_path, sample_image):
    faults.install("transient@blob.read#1")
    try:
        async def main():
            manager = JobManager(tmp_path / "run", tools=TOOLS)
            await manager.start()
            try:
                job, _created = manager.submit(sample_image)
                done = await _await_done(manager, job.job_id)
                assert done.status == JOB_FAILED
                assert "TransientFaultError" in done.error
            finally:
                await manager.stop()
            return job.job_id

        job_id = _run(main())
    finally:
        faults.clear()

    # Transient verdicts are not durable: the restart retries the job
    # and, with the fault gone, it completes.
    async def restart():
        manager = JobManager(tmp_path / "run", tools=TOOLS)
        await manager.start()
        try:
            assert manager.stats["resumed_jobs"] == 1
            done = await _await_done(manager, job_id)
            assert done.status == JOB_DONE
        finally:
            await manager.stop()

    _run(restart())


# ---------------------------------------------------------------------------
# Degraded read-only mode (ENOSPC)
# ---------------------------------------------------------------------------


def test_enospc_degrades_writes_then_probe_recovers(tmp_path, sample_image):
    now = [1000.0]
    faults.install("enospc@journal.append#1")
    try:
        async def main():
            manager = JobManager(
                tmp_path / "run", tools=TOOLS,
                probe_interval=30.0, clock=lambda: now[0])
            await manager.start()
            try:
                with pytest.raises(ServiceUnavailableError) as info:
                    manager.submit(sample_image)
                assert manager.health == "degraded"
                assert manager.health_reason is not None
                assert info.value.retry_after >= 1.0
                # The failed submission left no trace: no job, no stat.
                assert manager.jobs() == []
                assert manager.stats["submitted"] == 0

                # Inside the probe window writes stay rejected...
                with pytest.raises(ServiceUnavailableError):
                    manager.submit(sample_image)
                assert manager.stats["rejected_degraded"] == 1

                # ...after it, the next write is the probe and heals.
                now[0] += 31.0
                job, created = manager.submit(sample_image)
                assert created
                assert manager.health == "healthy"
                assert manager.health_reason is None
                done = await _await_done(manager, job.job_id)
                assert done.status == JOB_DONE
            finally:
                await manager.stop()

        _run(main())
    finally:
        faults.clear()


def test_draining_manager_rejects_writes(tmp_path, sample_image):
    async def main():
        manager = JobManager(tmp_path / "run", tools=TOOLS)
        await manager.start()
        await manager.stop()
        assert manager.health == "draining"
        with pytest.raises(ServiceUnavailableError):
            manager.submit(sample_image)

    _run(main())


# ---------------------------------------------------------------------------
# Loopback-server regressions
# ---------------------------------------------------------------------------


def test_hang_faulted_job_times_out_and_server_stays_responsive(
        tmp_path, loopback, sample_image):
    """The historical failure mode: a hang in a job body outlived any
    configured ``--timeout`` because ``SIGALRM`` cannot arm on an
    executor thread. Under process isolation the deadline is real: the
    hang-faulted job fails with a timeout record well inside the fault's
    30s self-release, the server answers throughout, and the next job
    on the same worker completes cleanly."""
    faults.install("hang@cell.execute#1")
    try:
        server = loopback(
            tmp_path / "run",
            manager_kwargs=dict(
                tools=["funseeker"], isolation="process",
                executor_workers=1, timeout=1.0, backstop=60.0))
        status, _, doc = server.request("POST", "/v1/jobs",
                                        body=sample_image)
        assert status == 202
        hang_id = doc["job"]["job_id"]
        # Responsive while the faulted job is in flight.
        status, _, health = server.request("GET", "/v1/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["isolation"] == "process"

        started = time.monotonic()
        result = server.wait_result(hang_id, timeout=25.0)
        assert time.monotonic() - started < 25.0
        report = result["analysis"]["tools"]["funseeker"]
        assert report["error_type"] == "CellTimeoutError"
        assert report["enforced"] is True

        # The worker survives (the alarm fired in-band, no kill) and
        # serves the next job cleanly.
        tweaked = sample_image + b"\x00"
        status, _, doc = server.request("POST", "/v1/jobs", body=tweaked)
        assert status in (200, 202)
        result = server.wait_result(doc["job"]["job_id"], timeout=60.0)
        assert result["analysis"]["tools"]["funseeker"]["error_type"] is None
    finally:
        faults.clear()


def test_http_degraded_returns_503_and_recovers(
        tmp_path, loopback, sample_image):
    faults.install("enospc@journal.append#1")
    try:
        server = loopback(
            tmp_path / "run",
            manager_kwargs=dict(tools=TOOLS, probe_interval=1.0))
        status, headers, doc = server.request("POST", "/v1/jobs",
                                              body=sample_image)
        assert status == 503
        assert "retry-after" in headers
        assert "read-only" in doc["error"]

        # GETs keep serving; health names the degradation.
        status, _, health = server.request("GET", "/v1/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["health"] == "degraded"
        assert health["health_reason"]

        # After the probe interval the next POST heals the service
        # (the injected fault was one-shot).
        time.sleep(1.1)
        status, _, doc = server.request("POST", "/v1/jobs",
                                        body=sample_image)
        assert status == 202
        server.wait_result(doc["job"]["job_id"], timeout=60.0)
        _, _, health = server.request("GET", "/v1/healthz")
        assert health["health"] == "healthy"
        _, _, metrics = server.request("GET", "/v1/metrics")
        assert metrics["service"]["rejected_degraded"] == 0
        assert metrics["service"]["health"] == "healthy"
    finally:
        faults.clear()
