"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def binary_path(tmp_path_factory):
    from repro.synth import CompilerProfile, generate_program, link_program

    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("cli", 40, profile, seed=91, cxx=True)
    binary = link_program(spec, profile)
    path = tmp_path_factory.mktemp("cli") / "bin"
    path.write_bytes(binary.data)
    return str(path)


class TestIdentify:
    def test_prints_addresses(self, binary_path, capsys):
        assert main(["identify", binary_path]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines
        assert all(line.startswith("0x") for line in lines)

    def test_config_flag(self, binary_path, capsys):
        main(["identify", binary_path, "--config", "3"])
        n3 = len(capsys.readouterr().out.splitlines())
        main(["identify", binary_path, "--config", "2"])
        n2 = len(capsys.readouterr().out.splitlines())
        assert n3 > n2  # config 3 over-reports


class TestCompare:
    def test_lists_all_tools(self, binary_path, capsys):
        assert main(["compare", binary_path]) == 0
        out = capsys.readouterr().out
        for tool in ("funseeker", "ida", "ghidra", "fetch"):
            assert tool in out


class TestBtiDemo:
    def test_runs(self, capsys):
        assert main(["bti-demo"]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
        assert "BTI" in out


class TestArgErrors:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
