"""Robustness fuzzing: mutated inputs must fail *predictably*.

A production analysis tool gets fed malformed binaries. Every public
entry point must either succeed or raise its documented error type —
never IndexError/struct.error/KeyError from the guts.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.funseeker import FunSeeker
from repro.elf.dwarf import DwarfError, parse_subprograms
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.ehframehdr import EhFrameHdrError, parse_eh_frame_hdr
from repro.elf.lsda import LsdaError, parse_lsda
from repro.elf.parser import ELFFile, ElfParseError
from repro.elf.plt import build_plt_map
from repro.elf.reader import ReaderError
from repro.synth import CompilerProfile, generate_program, link_program

#: Exceptions a parser is allowed to raise on malformed input.
#: ValueError covers FunSeeker's documented unsupported-architecture
#: rejection (a mutation can rewrite e_machine).
DOCUMENTED = (ElfParseError, EhFrameError, EhFrameHdrError, LsdaError,
              DwarfError, ReaderError, ValueError)


@pytest.fixture(scope="module")
def base_image() -> bytes:
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("fuzz", 25, profile, seed=1, cxx=True)
    return link_program(spec, profile).data


mutations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2**31),
              st.integers(min_value=0, max_value=255)),
    min_size=1, max_size=16,
)


def _mutate(data: bytes, muts) -> bytes:
    out = bytearray(data)
    for pos, value in muts:
        out[pos % len(out)] = value
    return bytes(out)


class TestMutationFuzz:
    @given(mutations)
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_elffile_parse_is_total(self, base_image, muts):
        data = _mutate(base_image, muts)
        try:
            elf = ELFFile(data)
            elf.symbols()
            elf.dynamic_symbols()
            elf.exec_sections()
            elf.relocations(".rela.plt")
        except DOCUMENTED:
            pass

    @given(mutations)
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_funseeker_is_total(self, base_image, muts):
        data = _mutate(base_image, muts)
        try:
            FunSeeker.from_bytes(data).identify()
        except DOCUMENTED:
            pass

    @given(mutations)
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exception_parsers_are_total(self, base_image, muts):
        data = _mutate(base_image, muts)
        try:
            elf = ELFFile(data)
        except DOCUMENTED:
            return
        eh = elf.section(".eh_frame")
        if eh is not None:
            try:
                parsed = parse_eh_frame(eh.data, eh.sh_addr, elf.is64)
                get = elf.section(".gcc_except_table")
                if get is not None:
                    for fde in parsed.fdes:
                        if fde.lsda_address is not None:
                            try:
                                parse_lsda(get.data, get.sh_addr,
                                           fde.lsda_address,
                                           fde.pc_begin, elf.is64)
                            except DOCUMENTED:
                                pass
            except DOCUMENTED:
                pass
        hdr = elf.section(".eh_frame_hdr")
        if hdr is not None:
            try:
                parse_eh_frame_hdr(hdr.data, hdr.sh_addr)
            except DOCUMENTED:
                pass

    @given(mutations)
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_dwarf_parser_is_total(self, base_image, muts):
        data = _mutate(base_image, muts)
        try:
            parse_subprograms(ELFFile(data))
        except DOCUMENTED:
            pass

    @given(mutations)
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_plt_map_is_total(self, base_image, muts):
        data = _mutate(base_image, muts)
        try:
            build_plt_map(ELFFile(data))
        except DOCUMENTED:
            pass


class TestRandomGarbage:
    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_never_crash_unexpectedly(self, data):
        try:
            FunSeeker.from_bytes(data).identify()
        except DOCUMENTED:
            pass
