"""CLI coverage for the table / dataset / analysis subcommands."""

import pytest

from repro.cli import main


class TestTableCommands:
    @pytest.mark.parametrize("command", ["table1", "figure3", "errors"])
    def test_analysis_commands_run(self, command, capsys):
        assert main([command, "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "|" in out or "paper" in out

    def test_table2_renders_configs(self, capsys):
        assert main(["table2", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "TABLE II" in out
        assert "total" in out

    def test_table3_renders_tools_and_timing(self, capsys):
        assert main(["table3", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "TABLE III" in out
        assert "mean time/binary" in out


class TestDatasetCommands:
    def test_dataset_roundtrip(self, tmp_path, capsys):
        assert main(["dataset", str(tmp_path / "ds"),
                     "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "wrote 24 binaries" in out
        from repro.synth.dataset import load_dataset

        assert len(load_dataset(tmp_path / "ds")) == 24

    def test_corpus_info(self, capsys):
        assert main(["corpus-info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "DATASET" in out
        assert "coreutils" in out
        assert "configurations: 4" in out


class TestBinaryCommands:
    @pytest.fixture(scope="class")
    def binary_path(self, tmp_path_factory):
        from repro.synth import (
            CompilerProfile,
            generate_program,
            link_program,
        )

        profile = CompilerProfile("gcc", "O2", 64, True)
        spec = generate_program("clibin", 30, profile, seed=17, cxx=True)
        path = tmp_path_factory.mktemp("cli2") / "bin"
        path.write_bytes(link_program(spec, profile).data)
        return str(path)

    def test_cfg_command(self, binary_path, capsys):
        assert main(["cfg", binary_path]) == 0
        out = capsys.readouterr().out
        assert "basic blocks" in out

    def test_disasm_command(self, binary_path, capsys):
        assert main(["disasm", binary_path, "--limit", "30"]) == 0
        out = capsys.readouterr().out
        assert "endbr64" in out
        assert "<_start>" in out

    def test_disasm_unlimited(self, binary_path, capsys):
        assert main(["disasm", binary_path, "--limit", "0"]) == 0
        out = capsys.readouterr().out
        assert "more lines" not in out

    def test_identify_robust_flag(self, binary_path, capsys):
        assert main(["identify", binary_path, "--robust"]) == 0
        out = capsys.readouterr().out
        assert out.strip()
