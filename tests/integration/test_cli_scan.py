"""CLI surface of the fleet-scan subsystem: scan, resume, ingest chaos."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.ingest.fixtures import build_fixture_tree
from repro.ingest.report import normalize_fleet_report


@pytest.fixture(scope="module")
def tree(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-fleet")
    build_fixture_tree(root)
    return root


def _scan(*argv):
    return main(["scan", *argv])


class TestScanCli:
    def test_hostile_tree_scan_exits_zero(self, tree, tmp_path, capsys):
        rc = _scan(str(tree), "--run-dir", str(tmp_path / "run"),
                   "--workers", "1")
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet scan summary" in out
        assert "cet adoption" in out

    def test_json_report_and_resume_identity(self, tree, tmp_path, capsys):
        run_dir = tmp_path / "run"
        plain = tmp_path / "plain.json"
        rc = _scan(str(tree), "--run-dir", str(run_dir), "--workers", "1",
                   "--format", "json", "--output", str(plain))
        assert rc == 0
        resumed = tmp_path / "resumed.json"
        rc = _scan("--resume", str(run_dir), "--format", "json",
                   "--output", str(resumed))
        assert rc == 0
        capsys.readouterr()
        a = normalize_fleet_report(json.loads(plain.read_text()))
        b = normalize_fleet_report(json.loads(resumed.read_text()))
        assert a == b

    def test_injected_kill_exits_zero_and_resume_converges(
            self, tree, tmp_path, capsys):
        """Acceptance: a scan with an injected worker kill (and a hang
        caught by the rung watchdog) completes with exit 0; a resume
        produces the same fleet report as an uninterrupted run."""
        baseline = tmp_path / "baseline.json"
        rc = _scan(str(tree), "--run-dir", str(tmp_path / "b"),
                   "--workers", "1", "--format", "json",
                   "--output", str(baseline))
        assert rc == 0

        run_dir = tmp_path / "run"
        rc = _scan(str(tree), "--run-dir", str(run_dir),
                   "--workers", "2", "--timeout", "1",
                   "--fault-plan", "kill@ingest.analyze#2",
                   "--format", "json",
                   "--output", str(tmp_path / "faulted.json"))
        assert rc == 0
        err = capsys.readouterr().err
        assert "--resume" in err  # the CLI points at the retry path

        final = tmp_path / "final.json"
        rc = _scan("--resume", str(run_dir), "--workers", "1",
                   "--format", "json", "--output", str(final))
        assert rc == 0
        capsys.readouterr()
        a = normalize_fleet_report(json.loads(baseline.read_text()))
        b = normalize_fleet_report(json.loads(final.read_text()))
        assert a == b
        assert b["totals"]["unresolved_failures"] == 0

    def test_resume_mismatched_roots_exit_2(self, tree, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert _scan(str(tree), "--run-dir", str(run_dir),
                     "--workers", "1", "--limit", "1",
                     "--output", str(tmp_path / "x")) == 0
        capsys.readouterr()
        rc = main(["scan", str(tmp_path), "--resume", str(run_dir)])
        assert rc == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_usage_errors_exit_2(self, tree, tmp_path, capsys):
        assert _scan() == 2  # no roots, no --resume
        assert _scan(str(tree), "--run-dir", str(tmp_path / "a"),
                     "--resume", str(tmp_path / "b")) == 2
        assert _scan(str(tree), "--tools", "nonesuch") == 2
        capsys.readouterr()

    def test_include_exclude_filters(self, tree, tmp_path, capsys):
        out = tmp_path / "r.json"
        rc = _scan(str(tree), "--run-dir", str(tmp_path / "run"),
                   "--workers", "1", "--exclude", "hostile",
                   "--include", "fleet*", "--format", "json",
                   "--output", str(out))
        assert rc == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["triage"]["reasons"].get("reject") is None
        assert doc["totals"]["analyzed"] >= 3


@pytest.mark.ingest_smoke
def test_chaos_ingest_cli(tmp_path, capsys):
    rc = main(["chaos", "--ingest", "--work-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "ingest chaos: 2 scenarios" in out
    assert "all scenarios recovered" in out
