"""CLI surface of the crash-safety subsystem: resume, quarantine, chaos."""

import json

import pytest

from repro.cli import main
from repro.faults.chaos import normalize_report_doc


def _evaluate(tmp_path, name, *extra):
    out = tmp_path / name
    rc = main(["evaluate", "--scale", "tiny", "--tools", "funseeker",
               "--workers", "1", "--output", str(out), *extra])
    return rc, out


class TestEvaluateResume:
    def test_journal_abort_then_resume_matches_plain_run(self, tmp_path,
                                                         capsys):
        rc, plain = _evaluate(tmp_path, "plain.json")
        assert rc == 0
        run_dir = tmp_path / "run"

        # Disk fills on the 3rd journal append: exit 3 with a hint.
        rc, _ = _evaluate(tmp_path, "crashed.json",
                          "--run-dir", str(run_dir),
                          "--fault-plan", "enospc@journal.append#3")
        assert rc == 3
        err = capsys.readouterr().err
        assert f"--resume {run_dir}" in err

        # Resume completes and the report equals the uninterrupted one.
        rc, resumed = _evaluate(tmp_path, "resumed.json",
                                "--resume", str(run_dir))
        assert rc == 0
        err = capsys.readouterr().err
        assert "resuming" in err
        plain_doc = normalize_report_doc(json.loads(plain.read_text()))
        resumed_doc = normalize_report_doc(json.loads(resumed.read_text()))
        assert resumed_doc == plain_doc

    def test_resume_refuses_mismatched_manifest(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        rc, _ = _evaluate(tmp_path, "a.json", "--run-dir", str(run_dir))
        assert rc == 0
        rc = main(["evaluate", "--scale", "tiny",
                   "--tools", "funseeker,fetch", "--workers", "1",
                   "--output", "-", "--resume", str(run_dir)])
        assert rc == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_run_dir_refuses_reuse(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        rc, _ = _evaluate(tmp_path, "a.json", "--run-dir", str(run_dir))
        assert rc == 0
        rc, _ = _evaluate(tmp_path, "b.json", "--run-dir", str(run_dir))
        assert rc == 2
        assert "resume" in capsys.readouterr().err

    def test_run_dir_and_resume_are_exclusive(self, tmp_path, capsys):
        rc = main(["evaluate", "--run-dir", "a", "--resume", "b"])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err


class TestQuarantineCli:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        # A sweep over one corrupted binary populates the store.
        import dataclasses

        from repro.eval.quarantine import QuarantineStore
        from repro.eval.runner import run_evaluation
        from repro.baselines import FunSeekerDetector
        from repro.synth.corpus import build_corpus

        entry = build_corpus("tiny")[0]
        bad = dataclasses.replace(
            entry, stripped=entry.stripped[:96] + b"\xff" * 32)
        store = QuarantineStore(tmp_path / "q")
        run_evaluation([bad], {"funseeker": FunSeekerDetector()},
                       quarantine=store)
        return str(tmp_path / "q")

    def test_list_renders_entries(self, store_dir, capsys):
        assert main(["quarantine", "list", "--dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "failure(s)" in out
        assert "parse" in out

    def test_replay_reproduces_and_exits_nonzero(self, store_dir, capsys):
        rc = main(["quarantine", "replay", "--dir", store_dir])
        assert rc == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "1 still failing" in out

    def test_empty_store(self, tmp_path, capsys):
        rc = main(["quarantine", "list", "--dir", str(tmp_path / "none")])
        assert rc == 0
        assert "no quarantined inputs" in capsys.readouterr().out


@pytest.mark.chaos_smoke
class TestChaosCli:
    def test_chaos_passes_on_healthy_tree(self, tmp_path, capsys):
        rc = main(["chaos", "--limit", "3", "--tools", "funseeker",
                   "--work-dir", str(tmp_path / "chaos")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all scenarios recovered" in out
        for name in ("worker-kill", "torn-journal", "corrupted-cache",
                     "journal-enospc", "cell-hang"):
            assert name in out

    def test_chaos_rejects_unknown_tool(self, capsys):
        assert main(["chaos", "--tools", "nope"]) == 2
        assert "unknown detectors" in capsys.readouterr().err
