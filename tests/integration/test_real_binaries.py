"""Integration tests against *real* CET binaries compiled on this host.

These anchor the synthetic substrate to reality: the decoder must agree
with objdump byte-for-byte, exception metadata must resolve to actual
catch blocks, and FunSeeker must identify functions of real GCC output.

Skipped automatically when gcc/objdump are unavailable.
"""

import re
import shutil
import subprocess

import pytest

from repro.analysis.groundtruth import ground_truth_from_symbols
from repro.core.funseeker import FunSeeker
from repro.elf.ehframe import parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.elf.plt import build_plt_map
from repro.eval.metrics import score
from repro.x86.sweep import linear_sweep

gcc = shutil.which("gcc")
gxx = shutil.which("g++")
objdump = shutil.which("objdump")

pytestmark = pytest.mark.skipif(
    not (gcc and objdump), reason="host toolchain unavailable"
)

C_SOURCE = r"""
#include <setjmp.h>
static jmp_buf env;
static int helper(int x) { return x * 3 + 1; }
static double fmath(double a, double b) { return a * b + a / (b + 1.0); }
int big_switch(int v) {
  switch (v) {
    case 0: return 10; case 1: return 22; case 2: return 31;
    case 3: return 44; case 4: return 59; case 5: return 66;
    case 6: return 72; case 7: return 88; case 8: return 91;
    default: return -1;
  }
}
int use_setjmp(int n) {
  if (setjmp(env)) return -1;
  if (n > 5) longjmp(env, 1);
  return helper(n);
}
int main(int argc, char **argv) {
  return (big_switch(argc) + (int)fmath(argc, 2.5) + use_setjmp(argc))
      & 0xff;
}
"""

CPP_SOURCE = r"""
#include <stdexcept>
int risky(int x) {
  if (x > 3) throw std::runtime_error("boom");
  return x * 2;
}
int main(int argc, char **) {
  try { return risky(argc); } catch (...) { return 1; }
}
"""


def _compile(tmp_path, source, name, compiler, flags):
    src = tmp_path / (name + (".cpp" if compiler == gxx else ".c"))
    src.write_text(source)
    out = tmp_path / name
    cmd = [compiler, *flags, "-fcf-protection=full", "-o", str(out),
           str(src)]
    subprocess.run(cmd, check=True, capture_output=True)
    return out


def _objdump_addrs(path):
    out = subprocess.run([objdump, "-d", "-j", ".text", str(path)],
                         capture_output=True, text=True).stdout
    return [int(m.group(1), 16) for m in
            re.finditer(r"^\s+([0-9a-f]+):\t[0-9a-f ]+\t\S", out,
                        re.MULTILINE)]


@pytest.mark.parametrize("opt", ["-O0", "-O1", "-O2", "-O3", "-Os"])
def test_decoder_matches_objdump(tmp_path, opt):
    binary = _compile(tmp_path, C_SOURCE, f"c{opt[1:]}", gcc, [opt])
    elf = ELFFile.from_path(binary)
    txt = elf.section(".text")
    mine = [i.addr for i in linear_sweep(txt.data, txt.sh_addr, 64)]
    assert mine == _objdump_addrs(binary)


def test_decoder_matches_objdump_nopie(tmp_path):
    binary = _compile(tmp_path, C_SOURCE, "nopie", gcc, ["-O2", "-no-pie"])
    elf = ELFFile.from_path(binary)
    txt = elf.section(".text")
    mine = [i.addr for i in linear_sweep(txt.data, txt.sh_addr, 64)]
    assert mine == _objdump_addrs(binary)


def test_funseeker_on_real_gcc_binary(tmp_path):
    """FunSeeker vs symbol ground truth on a real CET binary.

    Real binaries contain CRT startup code compiled *without* CET on
    this host (Debian crt1.o has no endbr in ``_start``), so a small
    number of runtime-scaffolding misses is expected; every user
    function must be found with no false positives.
    """
    binary = _compile(tmp_path, C_SOURCE, "real", gcc, ["-O2"])
    elf = ELFFile.from_path(binary)
    gt = ground_truth_from_symbols(elf)
    result = FunSeeker(elf).identify()
    conf = score(gt, result.functions)
    assert conf.precision > 0.95
    assert conf.recall > 0.7
    user_funcs = {s.name: s.value for s in elf.symbols()
                  if s.is_function and s.is_defined}
    for name in ("main", "big_switch", "use_setjmp"):
        assert user_funcs[name] in result.functions, name


@pytest.mark.skipif(not gxx, reason="g++ unavailable")
def test_landing_pads_on_real_cpp_binary(tmp_path):
    binary = _compile(tmp_path, CPP_SOURCE, "cpp", gxx, ["-O2"])
    elf = ELFFile.from_path(binary)
    eh_sec = elf.section(".eh_frame")
    get_sec = elf.section(".gcc_except_table")
    assert get_sec is not None
    eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
    pads = landing_pads_from_exception_info(
        eh, get_sec.data, get_sec.sh_addr, elf.is64)
    assert pads
    # Every pad starts with endbr64 and none is a symbol-GT function.
    txt = elf.section(".text")
    gt = ground_truth_from_symbols(elf)
    from repro.x86.decoder import decode
    from repro.x86.insn import InsnClass

    for pad in pads:
        if not txt.contains_addr(pad):
            continue
        insn = decode(txt.data, pad - txt.sh_addr, pad, 64)
        assert insn.klass == InsnClass.ENDBR64
        assert pad not in gt


def test_plt_resolution_on_real_binary(tmp_path):
    binary = _compile(tmp_path, C_SOURCE, "plt", gcc, ["-O2"])
    elf = ELFFile.from_path(binary)
    pm = build_plt_map(elf)
    names = set(pm.stub_to_name.values())
    assert any("setjmp" in n for n in names)


def test_setjmp_endbr_filtered_on_real_binary(tmp_path):
    """The Fig. 2a end-branch after `call setjmp@plt` must be dropped."""
    binary = _compile(tmp_path, C_SOURCE, "sj", gcc, ["-O2"])
    elf = ELFFile.from_path(binary)
    result = FunSeeker(elf).identify()
    removed = result.endbr_all - result.endbr_filtered
    gt = ground_truth_from_symbols(elf)
    assert removed, "expected at least the setjmp return-site endbr"
    assert not (removed & gt)


@pytest.mark.parametrize("dwarf_version", ["-gdwarf-4", "-gdwarf-5"])
def test_dwarf_parser_on_real_gcc_output(tmp_path, dwarf_version):
    """The DWARF substrate must read real GCC 4- and 5-format debug
    info (DWARF 5 exercises the strx/addrx indirection forms)."""
    from repro.elf.dwarf import parse_subprograms

    binary = _compile(tmp_path, C_SOURCE, f"dw{dwarf_version[-1]}", gcc,
                      ["-O2", "-g", dwarf_version])
    elf = ELFFile.from_path(binary)
    subs = parse_subprograms(elf)
    assert subs, "expected subprograms in the debug info"
    sym_addrs = {s.value for s in elf.symbols()
                 if s.is_function and s.is_defined}
    names = {s.name for s in subs}
    assert "main" in names
    assert "use_setjmp" in names
    for sub in subs:
        assert sub.low_pc in sym_addrs
        assert sub.high_pc > sub.low_pc


FIG1_SOURCE = r"""
/* The paper's Figure 1a, completed into a compilable unit. */
void foo(void) { __asm__ volatile("" ::: "memory"); }

int main(int argc, char **argv) {
  void (*fp)(void);
  int out = 0;
  fp = &foo;
  switch (argc) {
    case 1: out = 11; break;
    case 2: out = 22; break;
    case 3: out = 33; break;
    case 4: out = 44; break;
    case 5: out = 55; break;
    case 6: out = 66; break;
    case 7: out = 77; break;
  }
  fp();
  return out;
}
"""


def test_paper_figure1_shape(tmp_path):
    """Reproduce Fig. 1b's observations on real compiler output:
    both functions start with endbr64, the switch dispatches through a
    NOTRACK indirect jump, and the function-pointer call is indirect."""
    from repro.x86.insn import InsnClass

    binary = _compile(tmp_path, FIG1_SOURCE, "fig1", gcc, ["-O1"])
    elf = ELFFile.from_path(binary)
    txt = elf.section(".text")
    funcs = {s.name: s.value for s in elf.symbols()
             if s.is_function and s.is_defined}
    from repro.x86.decoder import decode

    for name in ("foo", "main"):
        insn = decode(txt.data, funcs[name] - txt.sh_addr,
                      funcs[name], 64)
        assert insn.klass == InsnClass.ENDBR64, name

    insns = list(linear_sweep(txt.data, txt.sh_addr, 64))
    notrack_jumps = [i for i in insns
                     if i.klass == InsnClass.JMP_INDIRECT and i.notrack]
    assert notrack_jumps, "switch must compile to a NOTRACK jump"
    indirect_calls = [i for i in insns
                      if i.klass == InsnClass.CALL_INDIRECT]
    assert indirect_calls, "fp() must compile to an indirect call"

    result = FunSeeker(elf).identify()
    assert funcs["foo"] in result.functions
    assert funcs["main"] in result.functions


@pytest.mark.parametrize("path", ["/usr/bin/dash", "/usr/bin/gzip",
                                  "/bin/cat"])
def test_decoder_matches_objdump_on_system_binaries(path):
    """Parity with objdump on preinstalled distro binaries — code this
    project never generated (bash/python/git pass too; these three keep
    the suite fast)."""
    import os

    if not os.path.exists(path):
        pytest.skip(f"{path} not present")
    elf = ELFFile.from_path(path)
    txt = elf.section(".text")
    if txt is None or elf.machine != 62:
        pytest.skip("not an x86-64 binary with .text")
    mine = [i.addr for i in linear_sweep(txt.data, txt.sh_addr, 64)]
    assert mine == _objdump_addrs(path)
