"""Differential tests: vectorized decode vs the legacy scalar sweep.

The vectorized pass (:mod:`repro.x86.vector`) exists purely as an
accelerator — its contract is *bit-identical* outputs to the scalar
superset sweep it replaced. These tests pin that contract from three
angles: property-tested random/constructed byte streams, the checked-in
fuzz-regression corpus, and whole-pipeline :class:`EvalReport` equality
for all five detectors over a real corpus.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import ALL_DETECTORS
from repro.cache.disk import reset_default_cache, set_default_cache
from repro.core.disassemble import disassemble
from repro.elf import constants as C
from repro.eval.runner import run_evaluation
from repro.x86 import superset, vector

pytestmark = pytest.mark.skipif(
    not vector.available(), reason="vectorized decode unavailable"
)

TOOLS = ("funseeker", "ida", "ghidra", "fetch", "naive-endbr")

FUZZ_DIR = Path(__file__).parent.parent / "elf" / "data" / "fuzz_regressions"

#: Valid instructions (prologues, branches, prefixes, SSE/VEX) used to
#: build realistic streams; garbage bytes cover the error paths.
KNOWN = [
    b"\xf3\x0f\x1e\xfa",              # endbr64
    b"\xf3\x0f\x1e\xfb",              # endbr32
    b"\x55",                          # push rbp
    b"\x48\x89\xe5",                  # mov rbp, rsp
    b"\x48\x83\xec\x20",              # sub rsp, 0x20
    b"\xe8\x10\x00\x00\x00",          # call +0x10
    b"\xe9\x20\x00\x00\x00",          # jmp +0x20
    b"\x74\x05",                      # je +5
    b"\x66\xe9\x10\x00",              # jmp with 16-bit operand size
    b"\xc3",                          # ret
    b"\x90",                          # nop
    b"\x0f\x1f\x44\x00\x00",          # nop5
    b"\xff\xd0",                      # call rax
    b"\x3e\xff\xe0",                  # notrack jmp rax
    b"\x48\x8d\x05\x10\x00\x00\x00",  # lea rax, [rip+0x10]
    b"\xb8\x01\x00\x00\x00",          # mov eax, 1
    b"\x68\x44\x33\x22\x11",          # push imm32
    b"\x67\x8b\x00",                  # addr-size prefixed load
    b"\xc5\xf8\x77",                  # vzeroupper (scalar-fallback class)
    b"\xf2\x0f\x58\xc1",              # addsd
]

_streams = st.one_of(
    st.binary(min_size=0, max_size=64),
    st.lists(st.sampled_from(KNOWN), min_size=1, max_size=12).map(
        b"".join),
)


def _index_pair(data: bytes, bits: int, base: int):
    """Build the same index twice: scalar-forced, then vectorized."""
    vector.set_enabled(False)
    try:
        legacy = superset.build_index(data, bits, base)
    finally:
        vector.set_enabled(None)
    vector.set_enabled(True)
    try:
        fast = superset.build_index(data, bits, base)
    finally:
        vector.set_enabled(None)
    return legacy, fast


def _assert_index_identical(data: bytes, bits: int, base: int = 0x1000):
    legacy, fast = _index_pair(data, bits, base)
    assert fast.lengths == legacy.lengths
    assert fast.klasses == legacy.klasses
    assert fast.targets == legacy.targets
    assert fast.notracks == legacy.notracks
    assert fast.viable == legacy.viable


class TestIndexIdentity:
    @given(data=_streams, bits=st.sampled_from([32, 64]))
    @settings(max_examples=300, deadline=None)
    def test_property_streams(self, data, bits):
        _assert_index_identical(data, bits)

    @given(data=st.binary(min_size=1, max_size=48))
    @settings(max_examples=150, deadline=None)
    def test_wraparound_base(self, data):
        """Branch-target arithmetic must wrap identically near 2^64."""
        _assert_index_identical(data, 64, base=0xFFFFFFFFFF000000)

    @pytest.mark.parametrize(
        "path", sorted(FUZZ_DIR.glob("*.bin")), ids=lambda p: p.name
    )
    @pytest.mark.parametrize("bits", [32, 64])
    def test_fuzz_regression_corpus(self, path, bits):
        _assert_index_identical(path.read_bytes(), bits)


class TestSweepIdentity:
    def test_sample_binary_sweep(self, sample_elf):
        """Full SweepResult equality on a real gcc/O2/PIE C++ binary."""
        txt = sample_elf.section(C.SECTION_TEXT)
        assert txt is not None and txt.data
        vector.set_enabled(False)
        try:
            legacy = disassemble(txt.data, txt.sh_addr, 64)
        finally:
            vector.set_enabled(None)
        vector.set_enabled(True)
        try:
            fast = disassemble(txt.data, txt.sh_addr, 64)
        finally:
            vector.set_enabled(None)
        assert fast == legacy

    def test_sample_binary_index(self, sample_elf, sample_c_binary):
        from repro.elf.parser import ELFFile

        txt = sample_elf.section(C.SECTION_TEXT)
        _assert_index_identical(txt.data, 64, base=txt.sh_addr)
        elf32 = ELFFile(sample_c_binary.data)
        txt32 = elf32.section(C.SECTION_TEXT)
        _assert_index_identical(txt32.data, 32, base=txt32.sh_addr)


def _canonical_report(corpus, enabled: bool):
    superset.clear_index_memo()
    vector.set_enabled(enabled)
    try:
        detectors = {name: ALL_DETECTORS[name]() for name in TOOLS}
        report = run_evaluation(corpus, detectors)
    finally:
        vector.set_enabled(None)
        superset.clear_index_memo()
    assert not report.failures
    return sorted(
        (r.suite, r.program, r.compiler, r.bits, r.pie, r.opt, r.tool,
         r.confusion.tp, r.confusion.fp, r.confusion.fn)
        for r in report.records
    )


def test_eval_reports_identical_all_tools(tiny_corpus):
    """The acceptance bar: all five tools, vector on vs off, one corpus."""
    set_default_cache(None)
    try:
        legacy = _canonical_report(tiny_corpus, enabled=False)
        fast = _canonical_report(tiny_corpus, enabled=True)
    finally:
        reset_default_cache()
    assert legacy, "empty evaluation proves nothing"
    assert fast == legacy
