"""Tests for structured operand extraction."""

import pytest

from repro.x86.operands import (
    Imm,
    Mem,
    OperandError,
    Reg,
    analyze_operands,
)


def render(raw: bytes, bits: int = 64) -> str:
    return analyze_operands(raw, bits).render()


class TestRegisterForms:
    def test_mov_reg_reg(self):
        assert render(b"\x89\xc2") == "mov    edx, eax"
        assert render(b"\x48\x89\xc2") == "mov    rdx, rax"

    def test_rm_direction(self):
        assert render(b"\x8b\xc2") == "mov    eax, edx"

    def test_rex_extended_registers(self):
        assert render(b"\x4d\x89\xc7") == "mov    r15, r8"

    def test_byte_registers(self):
        d = analyze_operands(b"\x88\xe0", 64)  # mov al, ah
        assert d.render() == "mov    al, ah"
        d = analyze_operands(b"\x40\x88\xe0", 64)  # REX: spl not ah
        assert d.render() == "mov    al, spl"

    def test_push_pop(self):
        assert render(b"\x55") == "push   rbp"
        assert render(b"\x41\x5c") == "pop    r12"
        assert render(b"\x55", bits=32) == "push   ebp"

    def test_alu(self):
        assert render(b"\x01\xd8") == "add    eax, ebx"
        assert render(b"\x29\xd8") == "sub    eax, ebx"
        assert render(b"\x31\xc0") == "xor    eax, eax"
        assert render(b"\x85\xc0") == "test   eax, eax"


class TestMemoryForms:
    def test_base_disp8(self):
        assert render(b"\x8b\x45\xf8") == "mov    eax, [rbp-0x8]"

    def test_base_disp32(self):
        assert render(b"\x8b\x80\x00\x01\x00\x00") == \
            "mov    eax, [rax+0x100]"

    def test_rip_relative(self):
        assert render(b"\x48\x8b\x05\x10\x00\x00\x00") == \
            "mov    rax, [rip+0x10]"

    def test_sib_scaled_index(self):
        assert render(b"\x8b\x04\xd8") == "mov    eax, [rax+rbx*8]"

    def test_sib_disp_only(self):
        assert render(b"\x8b\x04\xc5\x00\x10\x00\x00") == \
            "mov    eax, [rax*8+0x1000]"

    def test_sib_rsp_base(self):
        assert render(b"\x8b\x44\x24\x08") == "mov    eax, [rsp+0x8]"

    def test_lea(self):
        assert render(b"\x48\x8d\x45\xf0") == "lea    rax, [rbp-0x10]"

    def test_32bit_addressing(self):
        assert render(b"\x8b\x45\xfc", bits=32) == \
            "mov    eax, [ebp-0x4]"


class TestImmediates:
    def test_mov_imm32(self):
        d = analyze_operands(b"\xb8\x34\x12\x00\x00", 64)
        assert d.operands == (Reg(0, 32, False), Imm(0x1234, 32))

    def test_mov_imm64(self):
        d = analyze_operands(
            b"\x48\xb8" + (0xDEADBEEF).to_bytes(8, "little"), 64)
        assert d.operands[1] == Imm(0xDEADBEEF, 64)

    def test_grp1_imm8(self):
        assert render(b"\x83\xc0\x07") == "add    eax, 0x7"
        assert render(b"\x48\x83\xec\x20") == "sub    rsp, 0x20"

    def test_grp1_imm32(self):
        assert render(b"\x81\xc4\x00\x01\x00\x00") == \
            "add    esp, 0x100"

    def test_shift_forms(self):
        assert render(b"\xc1\xe0\x02") == "shl    eax, 0x2"
        assert render(b"\xd1\xe0") == "shl    eax, 0x1"
        assert render(b"\xd3\xe0") == "shl    eax, cl"

    def test_grp3_test(self):
        assert render(b"\xf7\xc1\x00\x01\x00\x00") == \
            "test   ecx, 0x100"
        assert render(b"\xf7\xd8") == "neg    eax"

    def test_imul_three_operand(self):
        assert render(b"\x6b\xc0\x07") == "imul   eax, eax, 0x7"


class TestTwoByte:
    def test_movzx(self):
        assert render(b"\x0f\xb6\xc0") == "movzx  eax, al"

    def test_cmov(self):
        assert render(b"\x0f\x44\xc2") == "cmov   eax, edx"

    def test_setcc(self):
        assert render(b"\x0f\x94\xc0") == "set    al"

    def test_imul_two_operand(self):
        assert render(b"\x48\x0f\xaf\xc3") == "imul   rax, rbx"


class TestErrors:
    def test_unmodeled_raises(self):
        with pytest.raises(OperandError):
            analyze_operands(b"\x0f\x58\xc1", 64)  # addps

    def test_truncated_raises(self):
        with pytest.raises(OperandError):
            analyze_operands(b"\x8b", 64)
        with pytest.raises(OperandError):
            analyze_operands(b"", 64)

    def test_undefined_group_raises(self):
        with pytest.raises(OperandError):
            analyze_operands(b"\xff\xff", 64)  # FF /7


class TestConsistencyWithDecoder:
    def test_operand_lengths_agree(self, sample_elf):
        """Wherever operands are modeled, their consumed bytes must be
        consistent with the length decoder (spot check on real-shaped
        code)."""
        from repro.x86.sweep import linear_sweep

        txt = sample_elf.section(".text")
        checked = 0
        for insn in linear_sweep(txt.data[:4096], txt.sh_addr, 64):
            raw = txt.data[insn.addr - txt.sh_addr:
                           insn.addr - txt.sh_addr + insn.length]
            try:
                decoded = analyze_operands(raw, 64)
            except OperandError:
                continue
            assert decoded.mnemonic
            checked += 1
        assert checked > 100


class TestOperandProperties:
    """Property-based consistency between the operand model and the
    length decoder."""

    def test_never_crashes_on_decoded_instructions(self, sample_elf):
        from repro.x86.defuse import def_use
        from repro.x86.sweep import linear_sweep

        txt = sample_elf.section(".text")
        for insn in linear_sweep(txt.data, txt.sh_addr, 64):
            raw = txt.data[insn.addr - txt.sh_addr:
                           insn.addr - txt.sh_addr + insn.length]
            try:
                decoded = analyze_operands(raw, 64)
            except OperandError:
                continue
            # Register numbers stay in architectural range.
            du = def_use(raw, 64)
            for reg in du.reads | du.writes:
                assert 0 <= reg < 16
            # Rendering never produces empty text.
            assert decoded.render().strip()

    def test_hypothesis_garbage_never_escapes(self):
        from hypothesis import given, settings, strategies as st

        @given(st.binary(min_size=0, max_size=16),
               st.sampled_from([32, 64]))
        @settings(max_examples=300)
        def run(raw, bits):
            try:
                decoded = analyze_operands(raw, bits)
            except OperandError:
                return
            assert decoded.mnemonic
            for op in decoded.operands:
                assert op.render()

        run()
