"""Tests for linear-sweep disassembly."""

from repro.x86.insn import InsnClass, TERMINATOR_CLASSES
from repro.x86.sweep import linear_sweep, sweep_section


class TestLinearSweep:
    def test_empty_buffer(self):
        assert list(linear_sweep(b"", 0x1000, 64)) == []

    def test_simple_function(self):
        code = (b"\xf3\x0f\x1e\xfa"   # endbr64
                b"\x55"               # push rbp
                b"\x48\x89\xe5"       # mov rbp, rsp
                b"\xc3")              # ret
        insns = list(linear_sweep(code, 0x1000, 64))
        assert [i.addr for i in insns] == [0x1000, 0x1004, 0x1005, 0x1008]
        assert insns[0].klass == InsnClass.ENDBR64
        assert insns[-1].klass == InsnClass.RET

    def test_error_advances_one_byte(self):
        # 0x06 is invalid in 64-bit; the next byte starts a valid ret.
        code = b"\x06\xc3"
        insns = list(linear_sweep(code, 0x2000, 64))
        assert [i.addr for i in insns] == [0x2001]

    def test_addresses_offset_by_base(self):
        insns = list(linear_sweep(b"\x90\x90", 0xDEAD0, 64))
        assert [i.addr for i in insns] == [0xDEAD0, 0xDEAD1]

    def test_sweep_section_object(self, sample_elf):
        txt = sample_elf.section(".text")
        insns = sweep_section(txt, 64)
        assert insns
        assert insns[0].addr == txt.sh_addr
        assert insns[-1].end <= txt.end_addr

    def test_full_coverage_on_synth_text(self, sample_elf):
        """Compiler-like synthetic text decodes with zero errors."""
        txt = sample_elf.section(".text")
        insns = sweep_section(txt, 64)
        assert sum(i.length for i in insns) == txt.sh_size


class TestTerminators:
    def test_terminator_set(self):
        assert InsnClass.RET in TERMINATOR_CLASSES
        assert InsnClass.JMP_DIRECT in TERMINATOR_CLASSES
        assert InsnClass.CALL_DIRECT not in TERMINATOR_CLASSES
        assert InsnClass.JCC not in TERMINATOR_CLASSES
