"""Property-based tests for the decoder and linear sweep."""

from hypothesis import given, settings, strategies as st

from repro.x86.decoder import DecodeError, decode, decode_raw
from repro.x86.insn import InsnClass
from repro.x86.sweep import linear_sweep

#: Valid single instructions used to build random streams.
KNOWN_64 = [
    b"\xf3\x0f\x1e\xfa",              # endbr64
    b"\x55",                          # push rbp
    b"\x48\x89\xe5",                  # mov rbp, rsp
    b"\x48\x83\xec\x20",              # sub rsp, 0x20
    b"\xe8\x10\x00\x00\x00",          # call +0x10
    b"\xe9\x20\x00\x00\x00",          # jmp +0x20
    b"\x74\x05",                      # je +5
    b"\xc3",                          # ret
    b"\x90",                          # nop
    b"\x0f\x1f\x44\x00\x00",          # nop5
    b"\x89\xc2",                      # mov edx, eax
    b"\x8b\x45\xf8",                  # mov eax, [rbp-8]
    b"\xf2\x0f\x58\xc1",              # addsd
    b"\xff\xd0",                      # call rax
    b"\x3e\xff\xe0",                  # notrack jmp rax
    b"\x48\x8d\x05\x10\x00\x00\x00",  # lea rax, [rip+0x10]
    b"\xb8\x01\x00\x00\x00",          # mov eax, 1
    b"\xc5\xf8\x77",                  # vzeroupper
]


class TestDecodeRobustness:
    @given(st.binary(min_size=1, max_size=20), st.sampled_from([32, 64]))
    @settings(max_examples=400)
    def test_never_crashes_on_garbage(self, data, bits):
        """Arbitrary bytes either decode or raise DecodeError — nothing
        else escapes."""
        try:
            insn = decode(data, 0, 0x1000, bits)
        except DecodeError:
            return
        assert 1 <= insn.length <= 15
        assert insn.length <= len(data)

    @given(st.binary(min_size=1, max_size=20), st.sampled_from([32, 64]))
    @settings(max_examples=200)
    def test_deterministic(self, data, bits):
        def run():
            try:
                return decode_raw(data, 0, 0x1000, bits)
            except DecodeError as exc:
                return ("error", str(exc))

        assert run() == run()

    @given(st.binary(min_size=1, max_size=20))
    @settings(max_examples=200)
    def test_raw_and_wrapped_agree(self, data):
        try:
            raw = decode_raw(data, 0, 0x1000, 64)
        except DecodeError:
            raw = None
        try:
            insn = decode(data, 0, 0x1000, 64)
        except DecodeError:
            insn = None
        if raw is None:
            assert insn is None
        else:
            assert insn is not None
            assert (insn.length, int(insn.klass), insn.target,
                    insn.notrack) == raw


class TestSweepProperties:
    @given(st.lists(st.sampled_from(KNOWN_64), min_size=1, max_size=40))
    @settings(max_examples=200)
    def test_sweep_recovers_exact_boundaries(self, chunks):
        """A stream built from valid instructions sweeps losslessly."""
        data = b"".join(chunks)
        insns = list(linear_sweep(data, 0x1000, 64))
        expected = []
        pos = 0x1000
        for chunk in chunks:
            expected.append(pos)
            pos += len(chunk)
        assert [i.addr for i in insns] == expected

    @given(st.lists(st.sampled_from(KNOWN_64), min_size=1, max_size=20),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_sweep_resyncs_after_junk_byte(self, chunks, junk):
        """One junk byte between valid runs never derails more than a
        bounded window of the stream."""
        data = b"".join(chunks) + bytes([junk]) + b"".join(chunks)
        insns = list(linear_sweep(data, 0, 64))
        covered = sum(i.length for i in insns)
        # The sweep must consume nearly the whole buffer (junk may eat
        # up to one maximal instruction window).
        assert covered >= len(data) - 16

    @given(st.lists(st.sampled_from(KNOWN_64), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_sweep_classes_preserved(self, chunks):
        data = b"".join(chunks)
        insns = list(linear_sweep(data, 0, 64))
        n_endbr = sum(1 for c in chunks if c == b"\xf3\x0f\x1e\xfa")
        assert sum(1 for i in insns
                   if i.klass == InsnClass.ENDBR64) == n_endbr
        n_ret = sum(1 for c in chunks if c == b"\xc3")
        assert sum(1 for i in insns if i.klass == InsnClass.RET) == n_ret
