"""Edge-case decoder tests: unusual prefixes, addressing modes, and
mode-dependent encodings beyond the common compiler output."""

import pytest

from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import InsnClass


def d64(raw, addr=0x1000):
    return decode(raw, 0, addr, 64)


def d32(raw, addr=0x1000):
    return decode(raw, 0, addr, 32)


class TestAddressSizeOverride:
    def test_67_prefix_in_64bit(self):
        # mov eax, [ebx] with 32-bit addressing.
        insn = d64(b"\x67\x8b\x03")
        assert insn.length == 3

    def test_16bit_addressing_in_32bit_mode(self):
        # 67 8b 46 08: mov eax, [bp+8] (16-bit ModRM form).
        insn = d32(b"\x67\x8b\x46\x08")
        assert insn.length == 4

    def test_16bit_disp16_form(self):
        # 67 8b 06 34 12: mov eax, [0x1234].
        insn = d32(b"\x67\x8b\x06\x34\x12")
        assert insn.length == 5

    def test_moffs_with_addr_override_64(self):
        # 67 a1: mov eax, moffs32 in 64-bit mode -> 4-byte offset.
        insn = d64(b"\x67\xa1\x00\x10\x00\x00")
        assert insn.length == 6

    def test_moffs_with_addr_override_32(self):
        # 67 a1: 16-bit offset in 32-bit mode.
        insn = d32(b"\x67\xa1\x00\x10")
        assert insn.length == 4


class TestOperandSizeOverride:
    def test_rel16_branch_in_32bit(self):
        # 66 e9: jmp rel16 (2-byte displacement).
        insn = d32(b"\x66\xe9\x10\x00", addr=0x1000)
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.length == 4
        assert insn.target == 0x1014

    def test_rel16_branch_in_64bit(self):
        # 66 e9 honors the operand-size prefix in 64-bit mode too:
        # jmp rel16 with RIP truncated to 16 bits.
        insn = d64(b"\x66\xe9\x10\x00")
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.length == 4
        assert insn.target == 0x1014

    def test_rel32_with_rex_w_in_64bit(self):
        # REX.W keeps the ordinary 32-bit displacement.
        insn = d64(b"\x48\xe9\x10\x00\x00\x00")
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.length == 6
        assert insn.target == 0x1016

    def test_mov_imm16(self):
        insn = d64(b"\x66\xb8\x34\x12")
        assert insn.length == 4
        # 16-bit immediate is not pointer material.
        assert insn.klass == InsnClass.OTHER

    def test_far_pointer_32bit(self):
        # 9a: call far ptr16:32 (6-byte operand).
        insn = d32(b"\x9a\x00\x00\x00\x00\x08\x00")
        assert insn.length == 7

    def test_far_pointer_16bit_operand(self):
        insn = d32(b"\x66\x9a\x00\x00\x08\x00")
        assert insn.length == 6


class TestPrefixedRelativeBranches:
    """Regression: 0x66-prefixed E8/E9/Jcc immediates must decode as
    rel16 in both modes. The old decoder sized them rel32 in 64-bit
    mode, so ``66 E9 10 00`` raised ``truncated immediate`` and
    desynchronized linear/superset sweeps at misaligned offsets."""

    @pytest.mark.parametrize("mode", [d32, d64])
    def test_call_rel16(self, mode):
        insn = mode(b"\x66\xe8\x20\x00", addr=0x1000)
        assert insn.klass == InsnClass.CALL_DIRECT
        assert insn.length == 4
        assert insn.target == 0x1024

    @pytest.mark.parametrize("mode", [d32, d64])
    def test_jmp_rel16_exact_four_bytes(self, mode):
        # Exactly the four bytes of the instruction: no trailing slack
        # for a phantom rel32 to consume.
        insn = mode(b"\x66\xe9\x10\x00", addr=0x2000)
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.length == 4
        assert insn.target == 0x2014 & 0xFFFF

    @pytest.mark.parametrize("mode", [d32, d64])
    def test_jcc_rel16(self, mode):
        # 66 0f 84: jz rel16.
        insn = mode(b"\x66\x0f\x84\x08\x00", addr=0x1000)
        assert insn.klass == InsnClass.JCC
        assert insn.length == 5
        assert insn.target == 0x100D

    @pytest.mark.parametrize("mode", [d32, d64])
    def test_negative_rel16_wraps_in_low_word(self, mode):
        # The 16-bit instruction pointer wraps within the low word.
        insn = mode(b"\x66\xe9\xf0\xff", addr=0x0002)
        assert insn.length == 4
        assert insn.target == (0x0006 - 0x10) & 0xFFFF

    def test_misaligned_chain_stays_in_sync(self):
        # A 66 E9 jump followed by a ret: the sweep must land on the
        # ret, not swallow it as immediate bytes.
        from repro.x86.decoder import decode_raw

        code = b"\x66\xe9\x10\x00\xc3"
        length, klass, _t, _n = decode_raw(code, 0, 0, 64)
        assert (length, klass) == (4, int(InsnClass.JMP_DIRECT))
        length, klass, _t, _n = decode_raw(code, 4, 4, 64)
        assert (length, klass) == (1, int(InsnClass.RET))


class TestUndefinedGroupEncodings:
    def test_ff_7_undefined(self):
        with pytest.raises(DecodeError):
            d64(b"\xff\xff")
        with pytest.raises(DecodeError):
            d32(b"\xff\xf8")

    def test_fe_above_1_undefined(self):
        with pytest.raises(DecodeError):
            d64(b"\xfe\xd0")

    def test_fe_inc_dec_valid(self):
        assert d64(b"\xfe\xc0").length == 2  # inc al
        assert d64(b"\xfe\xc8").length == 2  # dec al


class TestSibEncodings:
    def test_sib_with_base_5_mod_0(self):
        # mov eax, [rbp*? base=5 mod=0] -> disp32 follows SIB.
        insn = d64(b"\x8b\x04\x25\x00\x10\x00\x00")
        assert insn.length == 7

    def test_sib_with_index_scale(self):
        # mov eax, [rax + rbx*8].
        insn = d64(b"\x8b\x04\xd8")
        assert insn.length == 3

    def test_sib_mod1_disp8(self):
        insn = d64(b"\x8b\x44\x24\x08")  # mov eax, [rsp+8]
        assert insn.length == 4

    def test_sib_mod2_disp32(self):
        insn = d64(b"\x8b\x84\x24\x00\x01\x00\x00")
        assert insn.length == 7


class TestGroup3Immediates:
    def test_f7_test_imm32(self):
        insn = d64(b"\xf7\x05\x00\x00\x00\x00\x01\x00\x00\x00")
        assert insn.length == 10  # test dword [rip], imm32

    def test_f7_test_imm16(self):
        insn = d32(b"\x66\xf7\xc0\x01\x00")  # test ax, 1
        assert insn.length == 5

    def test_f7_not_has_no_imm(self):
        insn = d64(b"\xf7\xd0")  # not eax
        assert insn.length == 2

    def test_f6_test_imm8(self):
        insn = d64(b"\xf6\xc4\x01")  # test ah, 1
        assert insn.length == 3


class TestX87:
    @pytest.mark.parametrize("raw,length", [
        (b"\xd9\xee", 2),                      # fldz
        (b"\xdd\x45\xf8", 3),                  # fld qword [rbp-8]
        (b"\xd8\xc1", 2),                      # fadd st(1)
        (b"\xdf\xe0", 2),                      # fnstsw ax
        (b"\xd9\x05\x00\x00\x00\x00", 6),      # fld dword [rip]
    ])
    def test_x87_lengths(self, raw, length):
        assert d64(raw).length == length


class TestThreeByteMaps:
    def test_0f38_modrm(self):
        insn = d64(b"\x66\x0f\x38\x17\xc1")  # ptest xmm0, xmm1
        assert insn.length == 5

    def test_0f3a_has_imm8(self):
        insn = d64(b"\x66\x0f\x3a\x0f\xc1\x08")  # palignr
        assert insn.length == 6

    def test_crc32(self):
        insn = d64(b"\xf2\x0f\x38\xf1\xc1")
        assert insn.length == 5


class TestTruncationEverywhere:
    @pytest.mark.parametrize("raw", [
        b"\x0f\x38", b"\x0f\x3a", b"\x8b", b"\x8b\x04",
        b"\x8b\x05\x00\x00", b"\xc7\xc0\x00", b"\xf7\x05\x00",
        b"\xc4\xe2", b"\xc5", b"\x62\xf1\x7c",
    ])
    def test_truncated_raises(self, raw):
        with pytest.raises(DecodeError):
            d64(raw)
