"""Unit tests for the x86/x86-64 decoder: known encodings in, exact
lengths and classifications out."""

import pytest

from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import InsnClass


def d64(data: bytes, addr: int = 0x1000):
    return decode(data, 0, addr, 64)


def d32(data: bytes, addr: int = 0x1000):
    return decode(data, 0, addr, 32)


class TestEndbr:
    def test_endbr64(self):
        insn = d64(b"\xf3\x0f\x1e\xfa")
        assert insn.klass == InsnClass.ENDBR64
        assert insn.length == 4
        assert insn.is_endbr

    def test_endbr32(self):
        insn = d32(b"\xf3\x0f\x1e\xfb")
        assert insn.klass == InsnClass.ENDBR32
        assert insn.length == 4

    def test_0f1e_without_f3_is_not_endbr(self):
        insn = d64(b"\x0f\x1e\xfa")
        assert insn.klass != InsnClass.ENDBR64

    def test_0f1e_with_other_modrm_is_not_endbr(self):
        insn = d64(b"\xf3\x0f\x1e\xc8")
        assert not insn.is_endbr


class TestDirectBranches:
    def test_call_rel32(self):
        insn = d64(b"\xe8\x10\x00\x00\x00", addr=0x1000)
        assert insn.klass == InsnClass.CALL_DIRECT
        assert insn.length == 5
        assert insn.target == 0x1015

    def test_call_negative_rel32(self):
        insn = d64(b"\xe8\xfb\xff\xff\xff", addr=0x1000)
        assert insn.target == 0x1000  # 5 - 5

    def test_jmp_rel32(self):
        insn = d64(b"\xe9\x00\x01\x00\x00", addr=0x2000)
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.target == 0x2105

    def test_jmp_rel8(self):
        insn = d64(b"\xeb\x10", addr=0x2000)
        assert insn.klass == InsnClass.JMP_DIRECT
        assert insn.length == 2
        assert insn.target == 0x2012

    def test_jmp_rel8_backward(self):
        insn = d64(b"\xeb\xfe", addr=0x2000)
        assert insn.target == 0x2000  # self-loop

    def test_jcc_rel8(self):
        insn = d64(b"\x74\x05", addr=0x3000)
        assert insn.klass == InsnClass.JCC
        assert insn.target == 0x3007

    def test_jcc_rel32(self):
        insn = d64(b"\x0f\x84\x00\x02\x00\x00", addr=0x3000)
        assert insn.klass == InsnClass.JCC
        assert insn.length == 6
        assert insn.target == 0x3206

    def test_loop_is_conditional(self):
        insn = d64(b"\xe2\xf0", addr=0x4000)
        assert insn.klass == InsnClass.JCC

    def test_wraparound_masked_32(self):
        insn = d32(b"\xe9\x00\x00\x00\x80", addr=0x8000_0000)
        assert insn.target == (0x8000_0000 + 5 - 0x8000_0000) & 0xFFFFFFFF


class TestIndirectBranches:
    def test_call_reg(self):
        insn = d64(b"\xff\xd0")
        assert insn.klass == InsnClass.CALL_INDIRECT
        assert insn.target is None

    def test_jmp_reg(self):
        insn = d64(b"\xff\xe0")
        assert insn.klass == InsnClass.JMP_INDIRECT

    def test_notrack_jmp(self):
        insn = d64(b"\x3e\xff\xe2")
        assert insn.klass == InsnClass.JMP_INDIRECT
        assert insn.notrack

    def test_notrack_mem_indexed(self):
        # notrack jmp *table(,%rax,8): 3e ff 24 c5 imm32
        insn = d64(b"\x3e\xff\x24\xc5\x00\x20\x40\x00")
        assert insn.klass == InsnClass.JMP_INDIRECT
        assert insn.notrack
        assert insn.length == 8

    def test_jmp_mem_rip(self):
        insn = d64(b"\xff\x25\x10\x00\x00\x00")
        assert insn.klass == InsnClass.JMP_INDIRECT
        assert insn.length == 6

    def test_ff_group_non_branch(self):
        insn = d64(b"\xff\xc0")  # inc eax
        assert insn.klass == InsnClass.OTHER


class TestReturns:
    @pytest.mark.parametrize("raw,length", [
        (b"\xc3", 1), (b"\xc2\x08\x00", 3), (b"\xcb", 1),
        (b"\xca\x04\x00", 3),
    ])
    def test_ret_forms(self, raw, length):
        insn = d64(raw)
        assert insn.klass == InsnClass.RET
        assert insn.length == length
        assert insn.is_terminator


class TestAddressMaterialization:
    def test_lea_rip_relative(self):
        # lea rax, [rip + 0x100] at 0x1000, length 7.
        insn = d64(b"\x48\x8d\x05\x00\x01\x00\x00", addr=0x1000)
        assert insn.klass == InsnClass.LEA
        assert insn.target == 0x1107

    def test_lea_register_form_has_no_target(self):
        insn = d64(b"\x48\x8d\x44\x24\x08")  # lea rax, [rsp+8]
        assert insn.klass == InsnClass.LEA
        assert insn.target is None

    def test_lea_abs32_in_32bit(self):
        insn = d32(b"\x8d\x05\x00\x20\x40\x00")
        assert insn.target == 0x402000

    def test_mov_imm32(self):
        insn = d64(b"\xb8\x00\x20\x40\x00")
        assert insn.klass == InsnClass.MOV_IMM
        assert insn.target == 0x402000

    def test_mov_imm64(self):
        insn = d64(b"\x48\xb8" + (0x1234567890).to_bytes(8, "little"))
        assert insn.length == 10
        assert insn.target == 0x1234567890

    def test_push_imm32(self):
        insn = d32(b"\x68\x00\x20\x40\x00")
        assert insn.klass == InsnClass.PUSH_IMM
        assert insn.target == 0x402000


class TestLengths:
    @pytest.mark.parametrize("raw,length", [
        (b"\x55", 1),                                  # push rbp
        (b"\x48\x89\xe5", 3),                          # mov rbp, rsp
        (b"\x48\x83\xec\x10", 4),                      # sub rsp, 0x10
        (b"\x48\x81\xec\x00\x01\x00\x00", 7),          # sub rsp, 0x100
        (b"\x8b\x45\xf8", 3),                          # mov eax,[rbp-8]
        (b"\x48\x8b\x84\x24\x80\x00\x00\x00", 8),      # mov rax,[rsp+0x80]
        (b"\x66\x0f\x1f\x44\x00\x00", 6),              # nopw
        (b"\x0f\x1f\x84\x00\x00\x00\x00\x00", 8),      # nopl
        (b"\xf2\x0f\x58\xc1", 4),                      # addsd xmm0,xmm1
        (b"\x66\x0f\xef\xc0", 4),                      # pxor xmm0,xmm0
        (b"\xc5\xf8\x77", 3),                          # vzeroupper
        (b"\xc5\xf1\x58\xc2", 4),                      # vaddpd (VEX2)
        (b"\xc4\xe2\x79\x18\x05\x00\x00\x00\x00", 9),  # vbroadcastss rip
        (b"\x48\x0f\xaf\xc3", 4),                      # imul rax, rbx
        (b"\x0f\xb6\xc0", 3),                          # movzx eax, al
        (b"\xf6\xc1\x01", 3),                          # test cl, 1
        (b"\xf7\xc1\x00\x01\x00\x00", 6),              # test ecx, 0x100
        (b"\xf7\xd8", 2),                              # neg eax
        (b"\xc8\x10\x00\x00", 4),                      # enter 0x10, 0
        (b"\xa8\x01", 2),                              # test al, 1
        (b"\x6b\xc0\x07", 3),                          # imul eax, eax, 7
        (b"\x69\xc0\x00\x01\x00\x00", 6),              # imul eax,eax,0x100
    ])
    def test_known_lengths_64(self, raw, length):
        assert d64(raw).length == length

    @pytest.mark.parametrize("raw,length", [
        (b"\x55", 1),                                  # push ebp
        (b"\x89\xe5", 2),                              # mov ebp, esp
        (b"\xa1\x00\x20\x40\x00", 5),                  # mov eax, moffs32
        (b"\x40", 1),                                  # inc eax (not REX!)
        (b"\x66\xb8\x01\x00", 4),                      # mov ax, 1
        (b"\x61", 1),                                  # popa
        (b"\x8d\x83\x00\x01\x00\x00", 6),              # lea eax,[ebx+256]
    ])
    def test_known_lengths_32(self, raw, length):
        assert d32(raw).length == length

    def test_moffs_64(self):
        insn = d64(b"\xa1" + b"\x00" * 8)  # mov eax, moffs64
        assert insn.length == 9

    def test_rex_is_prefix_only_in_64(self):
        insn64 = d64(b"\x48\x01\xd8")  # add rax, rbx
        assert insn64.length == 3
        insn32 = d32(b"\x48")          # dec eax
        assert insn32.length == 1


class TestModePolicies:
    def test_invalid_in_64(self):
        with pytest.raises(DecodeError):
            d64(b"\x06")  # push es
        with pytest.raises(DecodeError):
            d64(b"\x27")  # daa
        with pytest.raises(DecodeError):
            d64(b"\xce")  # into

    def test_valid_in_32(self):
        assert d32(b"\x06").length == 1
        assert d32(b"\x27").length == 1

    def test_invalid_opcode_raises(self):
        with pytest.raises(DecodeError):
            d64(b"\x0f\x04")

    def test_truncated_raises(self):
        with pytest.raises(DecodeError):
            d64(b"\xe8\x01\x02")
        with pytest.raises(DecodeError):
            d64(b"\x0f")
        with pytest.raises(DecodeError):
            d64(b"\x48")

    def test_bad_bits_raises(self):
        with pytest.raises(ValueError):
            decode(b"\x90", 0, 0, 16)

    def test_prefix_only_raises(self):
        with pytest.raises(DecodeError):
            d64(b"\x66\x66\x66")


class TestVexEvex:
    def test_evex_length(self):
        # vmovups zmm0, [rax]: 62 f1 7c 48 10 00
        insn = d64(b"\x62\xf1\x7c\x48\x10\x00")
        assert insn.length == 6

    def test_evex_with_disp8(self):
        # vmovups zmm0, [rax+0x40] (compressed disp8):
        insn = d64(b"\x62\xf1\x7c\x48\x10\x40\x01")
        assert insn.length == 7

    def test_vex3_0f3a_has_imm8(self):
        # vpalignr xmm0, xmm1, xmm2, 4: c4 e3 71 0f c2 04
        insn = d64(b"\xc4\xe3\x71\x0f\xc2\x04")
        assert insn.length == 6

    def test_c4_in_32bit_is_les_when_memory_operand(self):
        # c4 01: modrm 0x01 has mod!=3 -> LES in 32-bit mode.
        insn = d32(b"\xc4\x01")
        assert insn.length == 2

    def test_62_in_32bit_is_bound_when_memory_operand(self):
        insn = d32(b"\x62\x03")
        assert insn.length == 2

    def test_62_in_64bit_is_evex(self):
        with pytest.raises(DecodeError):
            d64(b"\x62\x03")  # truncated EVEX payload


class TestMisc:
    def test_nop(self):
        assert d64(b"\x90").klass == InsnClass.NOP

    def test_multibyte_nop(self):
        assert d64(b"\x0f\x1f\x40\x00").klass == InsnClass.NOP

    def test_int3(self):
        assert d64(b"\xcc").klass == InsnClass.INT3

    def test_hlt_is_terminator(self):
        insn = d64(b"\xf4")
        assert insn.klass == InsnClass.HLT
        assert insn.is_terminator

    def test_ud2(self):
        insn = d64(b"\x0f\x0b")
        assert insn.klass == InsnClass.UD
        assert insn.is_terminator

    def test_insn_str_and_mnemonic(self):
        insn = d64(b"\x3e\xff\xe0")
        assert insn.mnemonic() == "notrack jmp*"
        insn2 = d64(b"\xe8\x00\x00\x00\x00")
        assert insn2.mnemonic() == "call"

    def test_insn_end(self):
        insn = d64(b"\xe8\x00\x00\x00\x00", addr=0x100)
        assert insn.end == 0x105
