"""Decode-index memo tests: digest keying and byte-bounded eviction.

The memo used to key entries by the raw ``bytes`` object, pinning up
to four whole binary images in memory for the lifetime of the process.
It now keys by content digest (so equal images share one entry however
they were materialized) and bounds itself by estimated retained bytes,
not entry count.
"""

from __future__ import annotations

import pytest

from repro.x86 import superset


@pytest.fixture(autouse=True)
def _fresh_memo():
    superset.clear_index_memo()
    yield
    superset.clear_index_memo()


def _code(tag: int, size: int = 256) -> bytes:
    return bytes((tag + i) % 251 for i in range(size))


def test_equal_content_shares_one_entry():
    data = _code(1)
    first = superset.get_index(data, 64)
    # A distinct bytes object with equal content must hit the memo.
    second = superset.get_index(bytes(data), 64)
    assert second is first
    entries, _ = superset.index_memo_stats()
    assert entries == 1


def test_key_includes_bits_and_base():
    data = _code(2)
    a = superset.get_index(data, 64)
    b = superset.get_index(data, 32)
    c = superset.get_index(data, 64, base_addr=0x1000)
    assert a is not b and a is not c and b is not c
    entries, _ = superset.index_memo_stats()
    assert entries == 3


def test_memo_keys_hold_no_image_bytes():
    data = _code(3, size=4096)
    superset.get_index(data, 64)
    for key in superset._INDEX_MEMO:
        digest, bits, base = key
        assert isinstance(digest, str) and len(digest) == 64
        assert isinstance(bits, int) and isinstance(base, int)


def test_eviction_is_bounded_by_retained_bytes(monkeypatch):
    probe = superset.get_index(_code(0, size=512), 64)
    budget = probe.retained_bytes() * 3
    superset.clear_index_memo()
    monkeypatch.setattr(superset, "_INDEX_MEMO_MAX_BYTES", budget)
    for tag in range(8):
        superset.get_index(_code(tag, size=512), 64)
    entries, retained = superset.index_memo_stats()
    assert entries < 8, "old entries were evicted"
    assert retained <= budget
    # The most recent entry survives.
    last = superset.get_index(_code(7, size=512), 64)
    assert superset.get_index(_code(7, size=512), 64) is last


def test_eviction_keeps_at_least_one_entry(monkeypatch):
    monkeypatch.setattr(superset, "_INDEX_MEMO_MAX_BYTES", 1)
    index = superset.get_index(_code(9, size=512), 64)
    entries, _ = superset.index_memo_stats()
    assert entries == 1
    assert superset.get_index(_code(9, size=512), 64) is index


def test_retained_bytes_tracks_clear():
    for tag in range(3):
        superset.get_index(_code(tag), 64)
    _, retained = superset.index_memo_stats()
    assert retained > 0
    superset.clear_index_memo()
    assert superset.index_memo_stats() == (0, 0)
