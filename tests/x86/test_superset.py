"""Tests for superset disassembly and the robust sweep."""

from repro.x86.insn import InsnClass
from repro.x86.superset import data_regions, robust_sweep, viable_offsets


def _clean_code() -> bytes:
    return (b"\xf3\x0f\x1e\xfa"      # endbr64
            b"\x55"                   # push rbp
            b"\x48\x89\xe5"           # mov rbp, rsp
            b"\xc3")                  # ret


class TestViableOffsets:
    def test_clean_code_fully_viable_at_boundaries(self):
        code = _clean_code()
        viable = viable_offsets(code, 64)
        for off in (0, 4, 5, 8):
            assert viable[off]

    def test_undefined_run_is_nonviable(self):
        code = _clean_code() + b"\xff\xff\xff\xff" + _clean_code()
        viable = viable_offsets(code, 64)
        assert not viable[9]
        assert not viable[10]
        assert viable[13]  # second function start

    def test_empty(self):
        assert viable_offsets(b"", 64) == []


class TestRobustSweep:
    def test_identical_on_clean_code(self):
        from repro.x86.sweep import linear_sweep

        code = _clean_code() * 5
        plain = [(i.addr, i.klass) for i in linear_sweep(code, 0, 64)]
        robust = [(i.addr, i.klass) for i in robust_sweep(code, 0, 64)]
        assert plain == robust

    def test_skips_phantom_endbr_in_data(self):
        # ret; [data: ff ff c3 endbr ff ff]; real endbr function.
        data_blob = b"\xff\xff\xc3\xf3\x0f\x1e\xfa\xff\xff"
        code = b"\xc3" + data_blob + _clean_code()
        robust = list(robust_sweep(code, 0, 64))
        endbrs = [i.addr for i in robust
                  if i.klass == InsnClass.ENDBR64]
        assert endbrs == [1 + len(data_blob)]

    def test_plain_sweep_is_fooled_by_the_same_blob(self):
        from repro.x86.sweep import linear_sweep

        data_blob = b"\xff\xff\xc3\xf3\x0f\x1e\xfa\xff\xff"
        code = b"\xc3" + data_blob + _clean_code()
        plain = [i.addr for i in linear_sweep(code, 0, 64)
                 if i.klass == InsnClass.ENDBR64]
        assert 4 in plain  # the phantom marker

    def test_addresses_use_base(self):
        insns = list(robust_sweep(_clean_code(), 0x4000, 64))
        assert insns[0].addr == 0x4000


class TestDataRegions:
    def test_detects_embedded_run(self):
        code = _clean_code() + b"\xff" * 16 + _clean_code()
        regions = data_regions(code, 64)
        assert len(regions) == 1
        start, length = regions[0]
        assert start >= 9
        assert length >= 8

    def test_clean_code_has_no_regions(self):
        assert data_regions(_clean_code() * 4, 64) == []

    def test_min_size_threshold(self):
        code = _clean_code() + b"\xff\xff" + _clean_code()
        assert data_regions(code, 64, min_size=8) == []
