"""Tests for the disassembly text formatter."""

from repro.x86.decoder import decode
from repro.x86.format import format_insn, format_listing


def _fmt(raw: bytes, bits: int = 64, addr: int = 0x1000, symbols=None):
    insn = decode(raw, 0, addr, bits)
    return format_insn(insn, raw, bits, symbols).text


class TestControlFlow:
    def test_endbr(self):
        assert _fmt(b"\xf3\x0f\x1e\xfa") == "endbr64"
        assert _fmt(b"\xf3\x0f\x1e\xfb", bits=32) == "endbr32"

    def test_call_with_symbol(self):
        text = _fmt(b"\xe8\x10\x00\x00\x00",
                    symbols={0x1015: "helper"})
        assert text == "call   0x1015 <helper>"

    def test_call_without_symbol(self):
        assert _fmt(b"\xe8\x10\x00\x00\x00") == "call   0x1015"

    def test_jcc(self):
        assert _fmt(b"\x74\x05").startswith("je")
        assert _fmt(b"\x0f\x8f\x00\x01\x00\x00").startswith("jg")

    def test_notrack_jmp(self):
        assert _fmt(b"\x3e\xff\xe0") == "notrack jmp    *%rax"

    def test_call_indirect_reg(self):
        assert _fmt(b"\xff\xd0") == "call   *%rax"

    def test_ret_forms(self):
        assert _fmt(b"\xc3") == "ret"
        assert _fmt(b"\xc2\x08\x00") == "ret    0x8"


class TestDataMovement:
    def test_lea_rip(self):
        text = _fmt(b"\x48\x8d\x05\x00\x01\x00\x00",
                    symbols={0x1107: "table"})
        assert text == "lea    rax, [rip+0x1107 <table>]"

    def test_mov_imm(self):
        assert _fmt(b"\xb8\x34\x12\x00\x00") == "mov    rax, 0x1234"

    def test_push_pop_reg(self):
        assert _fmt(b"\x41\x54") == "push   r12"
        assert _fmt(b"\x5b") == "pop    rbx"

    def test_alu_pair(self):
        assert _fmt(b"\x01\xd0") == "add    eax, edx"
        assert _fmt(b"\x48\x01\xd0") == "add    rax, rdx"
        assert _fmt(b"\x31\xc0") == "xor    eax, eax"

    def test_mov_reg_pair(self):
        assert _fmt(b"\x89\xc2") == "mov    edx, eax"
        assert _fmt(b"\x8b\x45\xf8") == "mov    eax, [rbp-0x8]"


class TestListing:
    def test_full_function(self):
        code = (b"\xf3\x0f\x1e\xfa"      # endbr64
                b"\x55"                   # push rbp
                b"\x48\x89\xe5"           # mov rbp, rsp
                b"\xc3")                  # ret
        lines = format_listing(code, 0x1000, 64)
        assert [line.text for line in lines] == [
            "endbr64", "push   rbp", "mov    rbp, rsp", "ret"]
        rendered = lines[0].render()
        assert rendered.startswith("    1000:")
        assert "f3 0f 1e fa" in rendered

    def test_bad_byte_rendered(self):
        lines = format_listing(b"\x06\xc3", 0x1000, 64)
        assert lines[0].text == ".byte 0x06"
        assert lines[1].text == "ret"

    def test_listing_covers_everything(self, sample_elf):
        txt = sample_elf.section(".text")
        lines = format_listing(txt.data[:512], txt.sh_addr, 64)
        covered = sum(len(line.raw) for line in lines)
        assert covered == 512
