"""Tests for register def-use extraction."""

from repro.x86.defuse import (
    SYSV_ARG_REGS,
    args_read_before_write,
    def_use,
)

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)


class TestDefUse:
    def test_mov_reg_reg(self):
        du = def_use(b"\x48\x89\xc2", 64)  # mov rdx, rax
        assert RAX in du.reads
        assert RDX in du.writes
        assert RDX not in du.reads

    def test_rmw_reads_and_writes_dest(self):
        du = def_use(b"\x48\x01\xd8", 64)  # add rax, rbx
        assert du.reads == frozenset({RAX, RBX})
        assert du.writes == frozenset({RAX})

    def test_cmp_writes_nothing(self):
        du = def_use(b"\x48\x39\xd8", 64)  # cmp rax, rbx
        assert du.writes == frozenset()
        assert du.reads == frozenset({RAX, RBX})

    def test_memory_operand_reads_address_regs(self):
        du = def_use(b"\x48\x8b\x44\x1d\x08", 64)  # mov rax,[rbp+rbx+8]
        assert {RBP, RBX} <= du.reads
        assert du.writes == frozenset({RAX})

    def test_lea_reads_address_not_memory(self):
        du = def_use(b"\x48\x8d\x04\x1f", 64)  # lea rax, [rdi+rbx]
        assert {RDI, RBX} <= du.reads
        assert RAX in du.writes

    def test_store_reads_value_and_address(self):
        du = def_use(b"\x48\x89\x45\xf8", 64)  # mov [rbp-8], rax
        assert {RAX, RBP} <= du.reads
        assert du.writes == frozenset()

    def test_push_pop_touch_rsp(self):
        du = def_use(b"\x55", 64)  # push rbp
        assert RBP in du.reads and RSP in du.writes
        du = def_use(b"\x5d", 64)  # pop rbp
        assert RBP in du.writes and RSP in du.writes

    def test_xor_self_is_read_write(self):
        du = def_use(b"\x31\xc0", 64)  # xor eax, eax
        assert du.reads == frozenset({RAX})
        assert du.writes == frozenset({RAX})

    def test_unmodeled_is_empty(self):
        du = def_use(b"\x0f\x58\xc1", 64)  # addps
        assert du.reads == frozenset() and du.writes == frozenset()

    def test_imm_contributes_nothing(self):
        du = def_use(b"\xb8\x01\x00\x00\x00", 64)  # mov eax, 1
        assert du.reads == frozenset()
        assert du.writes == frozenset({RAX})


class TestArgConsumption:
    def test_reads_args_before_write(self):
        block = [
            b"\x48\x89\xf8",   # mov rax, rdi   (reads rdi)
            b"\x48\x01\xf0",   # add rax, rsi   (reads rsi)
            b"\xc3",
        ]
        consumed = args_read_before_write(block, 64)
        assert consumed == frozenset({RDI, RSI})

    def test_write_shadows_later_read(self):
        block = [
            b"\x48\x31\xff",   # xor rdi, rdi   (writes rdi)
            b"\x48\x89\xf8",   # mov rax, rdi   (read after write)
        ]
        consumed = args_read_before_write(block, 64)
        assert RDI in consumed  # xor reads rdi first (RMW)

    def test_pure_write_then_read_not_consumed(self):
        block = [
            b"\xbf\x01\x00\x00\x00",  # mov edi, 1 (pure write)
            b"\x48\x89\xf8",          # mov rax, rdi
        ]
        consumed = args_read_before_write(block, 64)
        assert RDI not in consumed

    def test_arg_registers_are_sysv(self):
        assert SYSV_ARG_REGS == (7, 6, 2, 1, 8, 9)

    def test_empty_block(self):
        assert args_read_before_write([], 64) == frozenset()
