"""Tests for the AArch64 BTI extension (paper §VI)."""

import pytest

from repro.arm.decoder import A64Class, classify_word, sweep
from repro.arm.funseeker_bti import identify_functions_bti
from repro.arm.synth import generate_bti_program, link_bti_program
from repro.elf.parser import ELFFile
from repro.eval.metrics import score


class TestWordClassification:
    @pytest.mark.parametrize("word,klass", [
        (0xD503241F, A64Class.BTI),    # bti
        (0xD503245F, A64Class.BTI),    # bti c
        (0xD503249F, A64Class.BTI),    # bti j
        (0xD50324DF, A64Class.BTI),    # bti jc
        (0xD503201F, A64Class.NOP),
        (0xD65F03C0, A64Class.RET),
        (0xD61F0000, A64Class.BR),     # br x0
        (0xD63F0040, A64Class.BLR),    # blr x2
        (0x91000400, A64Class.OTHER),  # add
        (0x90000000, A64Class.ADRP),
    ])
    def test_fixed_encodings(self, word, klass):
        assert classify_word(word, 0x1000).klass == klass

    def test_bl_forward_target(self):
        # bl +8 at 0x1000: imm26 = 2.
        insn = classify_word(0x94000002, 0x1000)
        assert insn.klass == A64Class.BL
        assert insn.target == 0x1008

    def test_bl_backward_target(self):
        # bl -4: imm26 = -1 (0x3FFFFFF).
        insn = classify_word(0x97FFFFFF, 0x1000)
        assert insn.target == 0xFFC

    def test_b_target(self):
        insn = classify_word(0x14000004, 0x2000)
        assert insn.klass == A64Class.B
        assert insn.target == 0x2010

    def test_b_cond_target(self):
        # b.eq +16: imm19 = 4.
        insn = classify_word(0x54000080, 0x3000)
        assert insn.klass == A64Class.B_COND
        assert insn.target == 0x3010

    def test_sweep_word_granularity(self):
        import struct

        data = struct.pack("<3I", 0xD503245F, 0x91000400, 0xD65F03C0)
        insns = sweep(data, 0x1000)
        assert [i.addr for i in insns] == [0x1000, 0x1004, 0x1008]
        assert insns[0].klass == A64Class.BTI
        assert insns[-1].klass == A64Class.RET


class TestBtiPipeline:
    @pytest.fixture(scope="class")
    def binary(self):
        funcs = generate_bti_program(100, seed=3)
        return link_bti_program(funcs, seed=3)

    def test_binary_parses(self, binary):
        elf = ELFFile(binary.data)
        assert elf.machine == 183  # EM_AARCH64
        assert elf.section(".text") is not None

    def test_bti_markers_match_ground_truth(self, binary):
        elf = ELFFile(binary.data)
        result = identify_functions_bti(elf)
        gt_bti = {e.address for e in binary.ground_truth.entries
                  if e.has_endbr}
        assert gt_bti <= result.bti_addrs

    def test_high_precision_recall(self, binary):
        elf = ELFFile(binary.data)
        result = identify_functions_bti(elf)
        conf = score(binary.ground_truth.function_starts, result.functions)
        assert conf.precision > 0.97
        assert conf.recall > 0.9

    def test_rejects_x86_binary(self, sample_binary):
        with pytest.raises(ValueError):
            identify_functions_bti(ELFFile(sample_binary.data))

    def test_deterministic_generation(self):
        a = link_bti_program(generate_bti_program(40, seed=1), seed=1)
        b = link_bti_program(generate_bti_program(40, seed=1), seed=1)
        assert a.data == b.data


class TestArmLandingPads:
    """The ARM analogue of Fig. 2b: BTI-j catch blocks filtered via the
    shared LSDA machinery."""

    @pytest.fixture(scope="class")
    def cxx_binary(self):
        funcs = generate_bti_program(80, seed=7, cxx=True)
        return link_bti_program(funcs, seed=7)

    def test_exception_sections_emitted(self, cxx_binary):
        elf = ELFFile(cxx_binary.data)
        assert elf.section(".eh_frame") is not None
        assert elf.section(".gcc_except_table") is not None

    def test_pads_detected_and_filtered(self, cxx_binary):
        elf = ELFFile(cxx_binary.data)
        result = identify_functions_bti(elf)
        assert result.landing_pads
        # Pads carry BTI markers but are not reported as functions.
        assert result.landing_pads <= result.bti_addrs
        assert not (result.landing_pads & result.functions)

    def test_precision_survives_pads(self, cxx_binary):
        elf = ELFFile(cxx_binary.data)
        result = identify_functions_bti(elf)
        conf = score(cxx_binary.ground_truth.function_starts,
                     result.functions)
        assert conf.precision > 0.97
        assert conf.recall > 0.9

    def test_naive_bti_only_would_overcount(self, cxx_binary):
        elf = ELFFile(cxx_binary.data)
        result = identify_functions_bti(elf)
        gt = cxx_binary.ground_truth.function_starts
        naive_fps = result.bti_addrs - gt
        assert naive_fps >= result.landing_pads
