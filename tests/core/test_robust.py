"""Tests for the data-tolerant FunSeeker variant (§VI future work)."""

import random

import pytest

from repro.core.funseeker import FunSeeker
from repro.core.robust import RobustFunSeeker
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program


def _binary_with_inline_data(seed: int, blobs: int = 10):
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("rob", 70, profile, seed=seed, cxx=False)
    rng = random.Random(seed)
    live = [f for f in spec.functions
            if not f.is_dead and not f.is_thunk]
    for fn in rng.sample(live, min(blobs, len(live))):
        fn.inline_data = rng.randrange(24, 80)
    return link_program(spec, profile)


class TestRobustFunSeeker:
    def test_agrees_with_plain_on_clean_binaries(self, sample_binary):
        plain = FunSeeker.from_bytes(sample_binary.data).identify()
        robust = RobustFunSeeker.from_bytes(sample_binary.data).identify()
        assert robust.functions == plain.functions

    def test_plain_poisoned_by_inline_data(self):
        binary = _binary_with_inline_data(seed=3)
        gt = binary.ground_truth.function_starts
        conf = score(gt, FunSeeker.from_bytes(binary.data)
                     .identify().functions)
        assert conf.precision < 0.9, \
            "inline data must hurt plain linear sweep"

    def test_robust_recovers_precision(self):
        binary = _binary_with_inline_data(seed=3)
        gt = binary.ground_truth.function_starts
        conf = score(gt, RobustFunSeeker.from_bytes(binary.data)
                     .identify().functions)
        assert conf.precision > 0.95
        assert conf.recall > 0.95

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_robust_beats_plain_under_data(self, seed):
        binary = _binary_with_inline_data(seed=seed)
        gt = binary.ground_truth.function_starts
        plain = score(gt, FunSeeker.from_bytes(binary.data)
                      .identify().functions)
        robust = score(gt, RobustFunSeeker.from_bytes(binary.data)
                       .identify().functions)
        assert robust.precision > plain.precision
        assert robust.recall >= plain.recall - 0.03
