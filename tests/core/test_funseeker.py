"""End-to-end tests for the FunSeeker pipeline and its configurations."""

import pytest

from repro.core.funseeker import Config, FunSeeker, identify_functions
from repro.elf.parser import ELFFile, ElfParseError
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program


@pytest.fixture(scope="module")
def cxx_binary():
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("fseek", 100, profile, seed=77, cxx=True)
    return link_program(spec, profile)


class TestPipeline:
    def test_identify_returns_functions(self, cxx_binary):
        result = FunSeeker.from_bytes(cxx_binary.data).identify()
        assert result.functions
        assert result.insn_count > 0
        assert result.elapsed_seconds >= 0

    def test_high_precision_and_recall(self, cxx_binary):
        result = FunSeeker.from_bytes(cxx_binary.data).identify()
        conf = score(cxx_binary.ground_truth.function_starts,
                     result.functions)
        assert conf.precision > 0.97
        assert conf.recall > 0.97

    def test_works_on_stripped_binary(self, cxx_binary):
        from repro.elf.parser import strip_symbols

        stripped = strip_symbols(cxx_binary.data)
        full = FunSeeker.from_bytes(cxx_binary.data).identify()
        bare = FunSeeker.from_bytes(stripped).identify()
        assert full.functions == bare.functions

    def test_identify_functions_helper(self, cxx_binary):
        funcs = identify_functions(cxx_binary.data)
        assert funcs == FunSeeker.from_bytes(cxx_binary.data) \
            .identify().functions

    def test_from_path(self, cxx_binary, tmp_path):
        path = tmp_path / "bin"
        path.write_bytes(cxx_binary.data)
        result = FunSeeker.from_path(path).identify()
        assert result.functions

    def test_deterministic(self, cxx_binary):
        a = FunSeeker.from_bytes(cxx_binary.data).identify()
        b = FunSeeker.from_bytes(cxx_binary.data).identify()
        assert a.functions == b.functions

    def test_non_elf_raises(self):
        with pytest.raises(ElfParseError):
            FunSeeker.from_bytes(b"garbage data here")


class TestConfigurations:
    """Table II's structural relationships between configurations."""

    @pytest.fixture(scope="class")
    def results(self, cxx_binary):
        out = {}
        for cfg in Config:
            result = FunSeeker.from_bytes(cxx_binary.data, cfg).identify()
            out[cfg] = score(cxx_binary.ground_truth.function_starts,
                             result.functions)
        return out

    def test_filter_improves_precision_on_cxx(self, results):
        # ② >= ① precision: filtering removes landing-pad FPs.
        assert results[Config.FILTERED].precision \
            > results[Config.RAW].precision

    def test_filter_preserves_recall(self, results):
        assert results[Config.FILTERED].recall == results[Config.RAW].recall

    def test_all_jumps_has_best_recall_worst_precision(self, results):
        assert results[Config.ALL_JUMPS].recall \
            >= max(r.recall for r in results.values()) - 1e-9
        assert results[Config.ALL_JUMPS].precision \
            <= min(r.precision for r in results.values()) + 1e-9

    def test_full_recovers_precision(self, results):
        assert results[Config.FULL].precision \
            > results[Config.ALL_JUMPS].precision + 0.5

    def test_full_gains_recall_over_filtered(self, results):
        assert results[Config.FULL].recall \
            >= results[Config.FILTERED].recall


class TestDegenerateInputs:
    def test_empty_text_section(self):
        from repro.elf import constants as C
        from repro.elf.writer import ElfWriter, SectionSpec

        w = ElfWriter(is64=True, machine=C.EM_X86_64, pie=False)
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=b"x", sh_addr=w.base_addr + 0x1000,
        ))
        result = FunSeeker.from_bytes(w.build()).identify()
        assert result.functions == set()

    def test_c_binary_without_exception_sections(self, sample_c_binary):
        result = FunSeeker.from_bytes(sample_c_binary.data).identify()
        assert result.landing_pads == set()
        conf = score(sample_c_binary.ground_truth.function_starts,
                     result.functions)
        assert conf.recall > 0.95


class TestArchitectureGuard:
    def test_aarch64_binary_rejected(self):
        from repro.arm import generate_bti_program, link_bti_program

        binary = link_bti_program(generate_bti_program(10, seed=1), seed=1)
        with pytest.raises(ValueError, match="identify_functions_bti"):
            FunSeeker.from_bytes(binary.data)

    def test_x86_variants_accepted(self, sample_c_binary, cxx_binary):
        FunSeeker.from_bytes(sample_c_binary.data)  # x86, no raise
        FunSeeker.from_bytes(cxx_binary.data)       # x86-64, no raise
