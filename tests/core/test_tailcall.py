"""Tests for SELECTTAILCALL's two conditions (paper §IV-D)."""

from repro.core.disassemble import BranchSite
from repro.core.tailcall import select_tail_calls


def _jmp(addr, target):
    return BranchSite(addr, target, is_call=False)


def _call(addr, target):
    return BranchSite(addr, target, is_call=True)


TEXT = (0x1000, 0x5000)


class TestConditionOne:
    def test_intra_function_jump_rejected(self):
        # Function at 0x1000, next at 0x2000; jump inside own body.
        entries = {0x1000, 0x2000}
        sites = [_jmp(0x1100, 0x1200)]
        assert select_tail_calls(sites, [], entries, *TEXT) == set()

    def test_escaping_jump_needs_condition_two(self):
        entries = {0x1000, 0x2000}
        sites = [_jmp(0x1100, 0x3000)]
        # Only one referencing function -> rejected by condition 2.
        assert select_tail_calls(sites, [], entries, *TEXT) == set()

    def test_backward_escape_also_counts(self):
        entries = {0x2000, 0x3000}
        sites = [_jmp(0x2100, 0x1800), _jmp(0x3100, 0x1800)]
        assert select_tail_calls(sites, [], entries, *TEXT) == {0x1800}


class TestConditionTwo:
    def test_two_referencing_functions_accepted(self):
        entries = {0x1000, 0x2000}
        sites = [_jmp(0x1100, 0x4000), _jmp(0x2100, 0x4000)]
        assert select_tail_calls(sites, [], entries, *TEXT) == {0x4000}

    def test_two_sites_same_function_rejected(self):
        entries = {0x1000, 0x2000}
        sites = [_jmp(0x1100, 0x4000), _jmp(0x1200, 0x4000)]
        assert select_tail_calls(sites, [], entries, *TEXT) == set()

    def test_call_reference_counts_toward_multiplicity(self):
        entries = {0x1000, 0x2000}
        jumps = [_jmp(0x1100, 0x4000)]
        calls = [_call(0x2100, 0x4000)]
        assert select_tail_calls(jumps, calls, entries, *TEXT) == {0x4000}

    def test_known_entry_not_reselected(self):
        entries = {0x1000, 0x2000, 0x4000}
        sites = [_jmp(0x1100, 0x4000), _jmp(0x2100, 0x4000)]
        # Already identified: nothing new to add.
        assert select_tail_calls(sites, [], entries, *TEXT) == set()


class TestEdgeCases:
    def test_no_entries(self):
        sites = [_jmp(0x1100, 0x4000)]
        assert select_tail_calls(sites, [], set(), *TEXT) == set()

    def test_no_jumps(self):
        assert select_tail_calls([], [], {0x1000}, *TEXT) == set()

    def test_jump_before_first_entry(self):
        # Site sits before any known function: owner falls back to the
        # text start; escape semantics still apply.
        entries = {0x3000}
        sites = [_jmp(0x1100, 0x4000), _jmp(0x3100, 0x4000)]
        assert select_tail_calls(sites, [], entries, *TEXT) == {0x4000}

    def test_paper_fp_case_part_fragment(self, sample_binary):
        """Tail-jumped .part fragments are (correctly per the algorithm,
        incorrectly per the ground truth) selected — the paper's §V-C
        false-positive class."""
        from repro.core.funseeker import Config, FunSeeker

        result = FunSeeker.from_bytes(sample_binary.data).identify()
        gt = sample_binary.ground_truth
        fps = result.functions - gt.function_starts
        assert fps <= gt.fragment_starts
