"""Tests for the DISASSEMBLE collection pass (E, C, J extraction)."""

from repro.core.disassemble import disassemble
from repro.x86.insn import InsnClass


def _code(*chunks: bytes) -> bytes:
    return b"".join(chunks)


class TestCollection:
    def test_endbr_collection(self):
        code = _code(b"\xf3\x0f\x1e\xfa", b"\xc3",
                     b"\xf3\x0f\x1e\xfa", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert sweep.endbr_addrs == {0x1000, 0x1005}

    def test_call_targets_inside_text(self):
        # call +0 at 0x1000 targets 0x1005 (inside); ret at 0x1005.
        code = _code(b"\xe8\x00\x00\x00\x00", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert sweep.call_targets == {0x1005}
        assert len(sweep.call_sites) == 1
        assert sweep.call_sites[0].addr == 0x1000
        assert sweep.call_sites[0].is_call

    def test_external_call_separated(self):
        # call far beyond the buffer -> external (PLT candidate).
        code = _code(b"\xe8\x00\x10\x00\x00", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert sweep.call_targets == set()
        assert len(sweep.external_call_sites) == 1

    def test_jump_targets(self):
        code = _code(b"\xe9\x01\x00\x00\x00", b"\x90", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert sweep.jump_targets == {0x1006}

    def test_conditional_jumps_not_in_j(self):
        code = _code(b"\x74\x01", b"\x90", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert sweep.jump_targets == set()

    def test_endbr_predecessor_recorded(self):
        code = _code(b"\xe8\x00\x00\x00\x00",  # call (external-ish? no: +0)
                     b"\xf3\x0f\x1e\xfa",       # endbr after the call
                     b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        pred = sweep.endbr_predecessor[0x1005]
        assert pred[0] == InsnClass.CALL_DIRECT
        assert pred[1] == 0x1005

    def test_endbr_at_start_has_no_predecessor(self):
        sweep = disassemble(b"\xf3\x0f\x1e\xfa\xc3", 0x1000, 64)
        assert 0x1000 not in sweep.endbr_predecessor

    def test_predecessor_cleared_by_decode_error(self):
        # call, invalid byte, endbr: the junk byte resets adjacency.
        code = _code(b"\xe8\x00\x00\x00\x00", b"\x06",
                     b"\xf3\x0f\x1e\xfa", b"\xc3")
        sweep = disassemble(code, 0x1000, 64)
        assert 0x1006 not in sweep.endbr_predecessor

    def test_insn_count(self):
        sweep = disassemble(b"\x90" * 7, 0, 64)
        assert sweep.insn_count == 7

    def test_bounds(self):
        sweep = disassemble(b"\x90" * 16, 0x4000, 64)
        assert sweep.text_start == 0x4000
        assert sweep.text_end == 0x4010

    def test_32_bit_mode(self):
        code = _code(b"\xf3\x0f\x1e\xfb", b"\xe8\x00\x00\x00\x00", b"\xc3")
        sweep = disassemble(code, 0x1000, 32)
        assert 0x1000 in sweep.endbr_addrs
        assert sweep.call_targets == {0x1009}
