"""Tests for FILTERENDBR (paper §IV-C)."""

from repro.core.disassemble import disassemble
from repro.core.filter_endbr import filter_endbr
from repro.core.indirect_return import (
    INDIRECT_RETURN_FUNCTIONS,
    is_indirect_return_name,
)
from repro.elf.plt import PLTMap


def _plt(stubs: dict[int, str]) -> PLTMap:
    ranges = [(min(stubs), max(stubs) + 16)] if stubs else []
    return PLTMap(stub_to_name=dict(stubs), plt_ranges=ranges)


class TestIndirectReturnNames:
    def test_the_five_gcc_names(self):
        assert INDIRECT_RETURN_FUNCTIONS == {
            "setjmp", "sigsetjmp", "savectx", "vfork", "getcontext",
        }

    def test_underscore_aliases_match(self):
        assert is_indirect_return_name("_setjmp")
        assert is_indirect_return_name("__sigsetjmp")
        assert is_indirect_return_name("vfork")

    def test_other_names_do_not_match(self):
        assert not is_indirect_return_name("printf")
        assert not is_indirect_return_name("setjmperr")
        assert not is_indirect_return_name("")


class TestFiltering:
    def _sweep_with_setjmp_call(self, plt_addr: int):
        # call plt_addr; endbr64; ret — the Fig. 2a shape.
        rel = plt_addr - 0x1005
        code = (b"\xe8" + rel.to_bytes(4, "little", signed=True)
                + b"\xf3\x0f\x1e\xfa" + b"\xc3")
        return disassemble(code, 0x1000, 64)

    def test_endbr_after_setjmp_call_removed(self):
        sweep = self._sweep_with_setjmp_call(0x500)
        plt = _plt({0x500: "setjmp"})
        kept = filter_endbr(sweep, plt, landing_pads=set())
        assert kept == set()

    def test_endbr_after_ordinary_call_kept(self):
        sweep = self._sweep_with_setjmp_call(0x500)
        plt = _plt({0x500: "printf"})
        kept = filter_endbr(sweep, plt, landing_pads=set())
        assert kept == {0x1005}

    def test_endbr_after_call_to_non_plt_kept(self):
        sweep = self._sweep_with_setjmp_call(0x500)
        kept = filter_endbr(sweep, _plt({}), landing_pads=set())
        assert kept == {0x1005}

    def test_landing_pads_removed(self):
        code = b"\xf3\x0f\x1e\xfa\xc3" + b"\xf3\x0f\x1e\xfa\xc3"
        sweep = disassemble(code, 0x1000, 64)
        kept = filter_endbr(sweep, _plt({}), landing_pads={0x1005})
        assert kept == {0x1000}

    def test_vfork_site_removed(self):
        sweep = self._sweep_with_setjmp_call(0x510)
        plt = _plt({0x510: "vfork"})
        assert filter_endbr(sweep, plt, landing_pads=set()) == set()

    def test_function_entry_endbrs_survive(self, sample_binary):
        """On the synthetic C++ binary, filtering keeps exactly the
        ground-truth entry end-branches."""
        from repro.core.funseeker import FunSeeker

        result = FunSeeker.from_bytes(sample_binary.data).identify()
        gt = sample_binary.ground_truth
        endbr_entries = {e.address for e in gt.entries
                         if e.is_function and e.has_endbr}
        assert endbr_entries <= result.endbr_filtered
        # Everything filtered out was a pad or an indirect-return site.
        removed = result.endbr_all - result.endbr_filtered
        assert removed
        assert not (removed & gt.function_starts)
