"""Cache-test fixtures: disk-cache isolation.

Every test in this package runs with the process-default disk cache
reset afterwards, so a test that installs one can never leak it into
the rest of the suite (which expects the always-on in-memory layer
only).
"""

from __future__ import annotations

import pytest

from repro.cache import DiskCache, reset_default_cache, set_default_cache


@pytest.fixture(autouse=True)
def _isolated_default_cache():
    yield
    reset_default_cache()


@pytest.fixture
def disk_cache(tmp_path) -> DiskCache:
    """A fresh disk cache rooted in a temp directory (not installed)."""
    return DiskCache(tmp_path / "cache")


@pytest.fixture
def installed_cache(disk_cache) -> DiskCache:
    """A fresh disk cache installed as the process default."""
    set_default_cache(disk_cache)
    return disk_cache
