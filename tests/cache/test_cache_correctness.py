"""Cache-correctness property: cached and uncached runs are identical.

For every detector and every input image — clean samples, the
checked-in fuzz regression corpus, and a fresh seeded mutator batch —
three evaluations must agree *exactly*:

- **disabled**: no disk cache (the always-on in-memory layer only);
- **cold**: empty disk cache, populated as a side effect;
- **warm**: the same disk cache, now serving hits.

"Agree" covers the whole observable outcome: the entry set, a raised
exception's type, and the diagnostics recorded on the file — the last
being exactly what the no-new-diagnostics store guard exists to
protect.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.baselines import ALL_DETECTORS
from repro.cache import DiskCache, set_default_cache
from repro.elf.parser import ELFFile
from repro.fuzz.mutators import MUTATOR_FAMILIES, mutate

REGRESSION_DIR = (Path(__file__).resolve().parent.parent
                  / "elf" / "data" / "fuzz_regressions")

#: Seeded mutants per family layered on the clean sample binary.
MUTANTS_PER_FAMILY = 3


def _corpus(sample_binary) -> list[tuple[str, bytes]]:
    images = [("clean-sample", sample_binary.data)]
    for path in sorted(REGRESSION_DIR.glob("*.bin")):
        images.append((f"regression:{path.name}", path.read_bytes()))
    rng = random.Random(2022)
    for family in MUTATOR_FAMILIES:
        for i in range(MUTANTS_PER_FAMILY):
            mutant = mutate(family, sample_binary.data, rng)
            images.append((f"mutant:{family}-{i}", mutant.data))
    return images


def _evaluate_all(data: bytes) -> dict:
    """One full multi-detector evaluation of one image.

    Mirrors the production runners: parse once (degraded — the corpus
    contains corrupt images), hand the same ``ELFFile`` to every tool.
    Each tool's outcome is its sorted entry list or the type of the
    exception it raised.
    """
    elf = ELFFile.degraded(data)
    outcome: dict = {"parse_diagnostics": elf.diagnostics.to_dicts()}
    for name, cls in sorted(ALL_DETECTORS.items()):
        try:
            outcome[name] = sorted(cls().detect(elf).functions)
        except Exception as exc:  # noqa: BLE001 - outcome equality
            outcome[name] = f"raised:{type(exc).__name__}"
    outcome["final_diagnostics"] = elf.diagnostics.to_dicts()
    return outcome


@pytest.fixture(scope="module")
def corpus(sample_binary):
    return _corpus(sample_binary)


def test_every_detector_identical_with_and_without_cache(
    corpus, tmp_path_factory
):
    cache = DiskCache(tmp_path_factory.mktemp("cc") / "cache")
    mismatches = []
    for label, data in corpus:
        set_default_cache(None)
        disabled = _evaluate_all(data)
        set_default_cache(cache)
        cold = _evaluate_all(data)
        warm = _evaluate_all(data)
        for phase, got in (("cold", cold), ("warm", warm)):
            if got != disabled:
                keys = [k for k in disabled if got.get(k) != disabled[k]]
                mismatches.append(f"{label}/{phase}: diverges on {keys}")
    set_default_cache(None)
    assert not mismatches, "\n".join(mismatches)


def test_byteweight_identical_and_never_disk_cached(
    sample_binary, tmp_path
):
    """ByteWeight opts out of result caching (its output depends on the
    trained tree, which the content hash cannot see) — but enabling the
    cache must still leave its results untouched."""
    from repro.baselines import ByteWeightLikeDetector, train_prefix_tree
    from repro.cache import SCHEMA_TAG, get_context

    elf = ELFFile(sample_binary.data)
    txt = elf.section(".text")
    tree = train_prefix_tree(
        [(txt.data, txt.sh_addr, sample_binary.ground_truth.function_starts)]
    )
    detector = ByteWeightLikeDetector(tree)
    set_default_cache(None)
    uncached = detector.detect(elf).functions
    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    cached = detector.detect(ELFFile(sample_binary.data)).functions
    assert cached == uncached
    entry = (cache.root / SCHEMA_TAG /
             f"{get_context(elf).content_hash}.tool.byteweight.json")
    assert not entry.exists()


def test_warm_runs_actually_hit_the_disk(corpus, tmp_path):
    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    _, data = corpus[0]  # the clean sample: fully cacheable
    _evaluate_all(data)
    assert cache.stats.stores > 0
    _evaluate_all(data)
    # The warm run short-circuits at the whole-detector layer, so it
    # hits one entry per tool (never descending to the artifacts).
    assert cache.stats.hits >= len(ALL_DETECTORS)
