"""Round-trip tests for the cache document codecs."""

from __future__ import annotations

import json

import pytest

from repro.cache import serialize as S
from repro.cache.context import get_context
from repro.elf.gnuproperty import CetFeatures
from repro.elf.plt import PLTMap, build_plt_map


def _json_round(doc: dict) -> dict:
    """Simulate the disk hop: documents must survive JSON itself."""
    return json.loads(json.dumps(doc))


class TestSweepRoundTrip:
    def test_real_sweep_survives(self, sample_elf):
        sweep = get_context(sample_elf).sweep()
        back = S.sweep_from_doc(_json_round(S.sweep_to_doc(sweep)))
        assert back.endbr_addrs == sweep.endbr_addrs
        assert back.call_targets == sweep.call_targets
        assert back.jump_targets == sweep.jump_targets
        assert back.call_sites == sweep.call_sites
        assert back.jump_sites == sweep.jump_sites
        assert back.external_call_sites == sweep.external_call_sites
        assert back.endbr_predecessor == sweep.endbr_predecessor
        assert back.text_start == sweep.text_start
        assert back.text_end == sweep.text_end
        assert back.insn_count == sweep.insn_count

    def test_bad_document_raises(self):
        with pytest.raises(S.SerializationError):
            S.sweep_from_doc({"endbr_addrs": []})  # missing fields


class TestSmallCodecs:
    def test_fde(self):
        starts = {0x1000, 0x2000}
        ranges = [(0x1000, 0x1100), (0x2000, 0x2040)]
        doc = _json_round(S.fde_to_doc(starts, ranges))
        back_starts, back_ranges = S.fde_from_doc(doc)
        assert back_starts == starts
        assert back_ranges == sorted(ranges)

    def test_addrs(self):
        addrs = {5, 1, 9}
        assert S.addrs_from_doc(_json_round(S.addrs_to_doc(addrs))) == addrs

    def test_addrs_bad_doc(self):
        with pytest.raises(S.SerializationError):
            S.addrs_from_doc({"wrong": []})

    def test_plt_real(self, sample_elf):
        plt = build_plt_map(sample_elf)
        back = S.plt_from_doc(_json_round(S.plt_to_doc(plt)))
        assert back.stub_to_name == plt.stub_to_name
        assert sorted(back.plt_ranges) == sorted(plt.plt_ranges)

    def test_plt_synthetic(self):
        plt = PLTMap(stub_to_name={0x1010: "setjmp"},
                     plt_ranges=[(0x1000, 0x1100)])
        back = S.plt_from_doc(_json_round(S.plt_to_doc(plt)))
        assert back.stub_to_name == {0x1010: "setjmp"}
        assert back.plt_ranges == [(0x1000, 0x1100)]

    def test_cet(self):
        for ibt in (False, True):
            for shstk in (False, True):
                features = CetFeatures(ibt=ibt, shstk=shstk)
                back = S.cet_from_doc(_json_round(S.cet_to_doc(features)))
                assert back == features
