"""Tests for the content-addressed on-disk cache."""

from __future__ import annotations

import json
import os
import time

from repro.cache import DiskCache, SCHEMA_TAG, default_cache
from repro.cache.disk import (
    ENV_CACHE_DIR,
    TMP_GRACE_SECONDS,
    reset_default_cache,
    set_default_cache,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


class TestRoundTrip:
    def test_put_get(self, disk_cache):
        doc = {"addrs": [1, 2, 3]}
        assert disk_cache.put(HASH_A, "tool.x", doc)
        assert disk_cache.get(HASH_A, "tool.x") == doc

    def test_absent_is_miss(self, disk_cache):
        assert disk_cache.get(HASH_A, "sweep") is None
        assert disk_cache.stats.misses == 1

    def test_distinct_artifacts_distinct_entries(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        disk_cache.put(HASH_A, "fde", {"v": 2})
        assert disk_cache.get(HASH_A, "sweep") == {"v": 1}
        assert disk_cache.get(HASH_A, "fde") == {"v": 2}

    def test_distinct_hashes_distinct_entries(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        assert disk_cache.get(HASH_B, "sweep") is None


class TestSchemaVersioning:
    def test_entries_live_under_schema_dir(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        entry = disk_cache.root / SCHEMA_TAG / f"{HASH_A}.sweep.json"
        assert entry.is_file()

    def test_other_schema_dir_is_invisible_to_get(self, disk_cache):
        old = disk_cache.root / "v0"
        old.mkdir(parents=True)
        (old / f"{HASH_A}.sweep.json").write_text('{"v": 0}')
        assert disk_cache.get(HASH_A, "sweep") is None

    def test_clear_reclaims_all_schemas(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        old = disk_cache.root / "v0"
        old.mkdir(parents=True)
        (old / f"{HASH_A}.sweep.json").write_text('{"v": 0}')
        assert disk_cache.clear() == 2
        assert disk_cache.census()["entries"] == 0


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        path = disk_cache.root / SCHEMA_TAG / f"{HASH_A}.sweep.json"
        path.write_text("{not json")
        assert disk_cache.get(HASH_A, "sweep") is None

    def test_non_dict_entry_is_a_miss(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        path = disk_cache.root / SCHEMA_TAG / f"{HASH_A}.sweep.json"
        path.write_text("[1, 2]")
        assert disk_cache.get(HASH_A, "sweep") is None

    def test_unwritable_root_degrades_silently(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = DiskCache(blocked)
        assert not cache.put(HASH_A, "sweep", {"v": 1})
        assert cache.get(HASH_A, "sweep") is None

    def test_no_tmp_litter_after_puts(self, disk_cache):
        for i in range(5):
            disk_cache.put(HASH_A, f"a{i}", {"v": i})
        leftovers = [p for p in (disk_cache.root / SCHEMA_TAG).iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestEviction:
    def test_oldest_entries_evicted(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_entries=3)
        for i in range(5):
            cache.put(HASH_A, f"art{i}", {"v": i})
            # Distinct mtimes so eviction order is deterministic.
            path = cache.root / SCHEMA_TAG / f"{HASH_A}.art{i}.json"
            os.utime(path, (1000 + i, 1000 + i))
            cache._evict()
        census = cache.census()
        assert census["entries"] == 3
        assert cache.get(HASH_A, "art4") == {"v": 4}

    def test_eviction_counted(self, tmp_path):
        cache = DiskCache(tmp_path / "c", max_entries=1)
        cache.put(HASH_A, "a", {"v": 1})
        cache.put(HASH_A, "b", {"v": 2})
        assert cache.stats.evictions >= 1


def _orphan_tmp(cache: DiskCache, *, age: float, name: str = ".tmp-dead.json"):
    """Plant a write temp file as a killed ``put`` would leave it."""
    schema_dir = cache.root / SCHEMA_TAG
    schema_dir.mkdir(parents=True, exist_ok=True)
    path = schema_dir / name
    path.write_text('{"half": ')
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))
    return path


class TestTmpFileHygiene:
    """Orphaned ``.tmp-*`` files (worker killed mid-put) are reclaimed."""

    def test_orphan_invisible_to_lookups_and_census_entries(
            self, disk_cache):
        _orphan_tmp(disk_cache, age=2 * TMP_GRACE_SECONDS)
        assert disk_cache.census()["entries"] == 0
        assert disk_cache.census()["stale_tmp_files"] == 1

    def test_clear_reclaims_stale_orphan(self, disk_cache):
        path = _orphan_tmp(disk_cache, age=2 * TMP_GRACE_SECONDS)
        assert disk_cache.clear() == 1
        assert not path.exists()
        assert disk_cache.census()["stale_tmp_files"] == 0

    def test_evict_sweeps_stale_orphan_on_put(self, disk_cache):
        path = _orphan_tmp(disk_cache, age=2 * TMP_GRACE_SECONDS)
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        assert not path.exists()
        assert disk_cache.get(HASH_A, "sweep") == {"v": 1}

    def test_fresh_tmp_survives_grace_period(self, disk_cache):
        """A young temp file may belong to a live writer: keep it."""
        path = _orphan_tmp(disk_cache, age=1.0)
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        disk_cache.clear()
        assert path.exists()


class TestSchemaDirPruning:
    def test_clear_prunes_emptied_stale_schema_dir(self, disk_cache):
        old = disk_cache.root / "v0"
        old.mkdir(parents=True)
        (old / f"{HASH_A}.sweep.json").write_text('{"v": 0}')
        disk_cache.clear()
        assert not old.exists()

    def test_clear_keeps_current_schema_dir(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        disk_cache.clear()
        assert (disk_cache.root / SCHEMA_TAG).is_dir()

    def test_nonempty_stale_schema_dir_survives(self, disk_cache):
        """A stale dir holding an unremovable file must not vanish."""
        old = disk_cache.root / "v0"
        old.mkdir(parents=True)
        # Fresh tmp file: within grace, so clear() leaves it — and
        # therefore must leave the directory too.
        path = old / ".tmp-live.json"
        path.write_text("{}")
        disk_cache.clear()
        assert old.is_dir() and path.exists()


class TestStats:
    def test_census_shape(self, disk_cache):
        disk_cache.put(HASH_A, "sweep", {"v": 1})
        disk_cache.get(HASH_A, "sweep")
        disk_cache.get(HASH_A, "missing")
        census = disk_cache.census()
        assert census["schema"] == SCHEMA_TAG
        assert census["entries"] == 1
        assert census["total_bytes"] > 0
        assert census["hits"] == 1
        assert census["misses"] == 1
        assert census["stores"] == 1

    def test_documents_are_deterministic(self, disk_cache):
        disk_cache.put(HASH_A, "a", {"b": 2, "a": 1})
        disk_cache.put(HASH_B, "a", {"a": 1, "b": 2})
        a = (disk_cache.root / SCHEMA_TAG / f"{HASH_A}.a.json").read_bytes()
        b = (disk_cache.root / SCHEMA_TAG / f"{HASH_B}.a.json").read_bytes()
        assert a == b
        assert json.loads(a) == {"a": 1, "b": 2}


class TestDefaultResolution:
    def test_env_opt_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "envcache"))
        reset_default_cache()
        cache = default_cache()
        assert cache is not None
        assert str(cache.root) == str(tmp_path / "envcache")

    def test_unset_env_means_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        reset_default_cache()
        assert default_cache() is None

    def test_explicit_install_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "ignored"))
        installed = DiskCache(tmp_path / "explicit")
        set_default_cache(installed)
        assert default_cache() is installed
