"""Tests for the in-memory per-binary analysis context."""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.baselines import FetchLikeDetector, FunSeekerDetector
from repro.baselines.base import fde_starts
from repro.cache import SCHEMA_TAG, get_context
from repro.core.funseeker import FunSeeker
from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.parser import ELFFile
from repro.fuzz.mutators import mutate


class TestIdentityAndMemoization:
    def test_context_is_singleton_per_elf(self, sample_elf):
        assert get_context(sample_elf) is get_context(sample_elf)

    def test_distinct_elfs_distinct_contexts(self, sample_binary):
        a = ELFFile(sample_binary.data)
        b = ELFFile(sample_binary.data)
        assert get_context(a) is not get_context(b)

    def test_content_hash(self, sample_elf):
        expected = hashlib.sha256(sample_elf.data).hexdigest()
        assert get_context(sample_elf).content_hash == expected

    def test_sweep_memoized(self, sample_binary):
        ctx = get_context(ELFFile(sample_binary.data))
        assert ctx.sweep() is ctx.sweep()

    def test_artifacts_memoized(self, sample_binary):
        ctx = get_context(ELFFile(sample_binary.data))
        assert ctx.fde_starts() is ctx.fde_starts()
        assert ctx.landing_pads() is ctx.landing_pads()
        assert ctx.plt_map() is ctx.plt_map()
        assert ctx.cet_features() is ctx.cet_features()

    def test_no_text_section(self):
        # Minimal degraded image: no sections at all.
        elf = ELFFile.degraded(b"\x7fELF" + b"\x00" * 60)
        ctx = get_context(elf)
        assert ctx.sweep() is None
        assert ctx.robust_sweep_result() is None


class TestSharedAcrossConsumers:
    def test_funseeker_uses_context_sweep(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        ctx = get_context(elf)
        result = FunSeeker(elf).identify()
        # The detector's view and the context's are the same object's
        # products: endbr addresses agree exactly.
        assert result.endbr_all == ctx.sweep().endbr_addrs

    def test_fde_helper_is_context_backed(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        starts, ranges = fde_starts(elf)
        assert (starts, ranges) == get_context(elf).fde_starts()
        assert fde_starts(elf)[0] is starts

    def test_detector_results_not_memoized_in_memory(self, sample_binary):
        # Each detect() must really run (Table III timing depends on
        # it) — but outputs stay equal run over run.
        elf = ELFFile(sample_binary.data)
        det = FetchLikeDetector()
        first = det.detect(elf).functions
        second = det.detect(elf).functions
        assert first == second
        assert first is not second


class TestStrictFdeSemantics:
    """The baselines' contract: a malformed .eh_frame yields empty FDE
    results (no partial degraded parse, no diagnostics)."""

    @staticmethod
    def _reference(elf: ELFFile):
        sec = elf.section(C.SECTION_EH_FRAME)
        if sec is None or not sec.data:
            return set(), []
        try:
            eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        except EhFrameError:
            return set(), []
        return ({f.pc_begin for f in eh.fdes},
                [(f.pc_begin, f.pc_end) for f in eh.fdes])

    def test_matches_reference_on_clean_input(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        assert get_context(elf).fde_starts() == self._reference(elf)

    def test_matches_reference_on_scrambled_ehframe(self, sample_binary):
        rng = random.Random(7)
        for _ in range(10):
            mutant = mutate("ehframe", sample_binary.data, rng)
            elf = ELFFile.degraded(mutant.data)
            before = len(elf.diagnostics)
            got = get_context(elf).fde_starts()
            assert got == self._reference(elf)
            # Strict semantics: the FDE path records nothing.
            assert len(elf.diagnostics) == before


class TestDiagnosticsDiscipline:
    def test_landing_pads_record_once(self, sample_binary):
        rng = random.Random(11)
        for _ in range(10):
            mutant = mutate("lsda", sample_binary.data, rng)
            elf = ELFFile.degraded(mutant.data)
            ctx = get_context(elf)
            first = ctx.landing_pads()
            count = len(elf.diagnostics)
            # Memoized: a second consumer adds no duplicate records.
            assert ctx.landing_pads() == first
            assert len(elf.diagnostics) == count

    def test_identify_twice_no_duplicate_diagnostics(self, sample_binary):
        rng = random.Random(13)
        mutant = mutate("lsda", sample_binary.data, rng)
        elf = ELFFile.degraded(mutant.data)
        first = FunSeeker(elf, strict=False).identify()
        count = len(elf.diagnostics)
        second = FunSeeker(elf, strict=False).identify()
        assert second.functions == first.functions
        assert len(elf.diagnostics) == count


class TestDiskGuard:
    """Only diagnostic-free computations may be stored on disk."""

    def test_clean_artifacts_stored(self, sample_binary, installed_cache):
        elf = ELFFile(sample_binary.data)
        get_context(elf).sweep()
        assert installed_cache.stats.stores >= 1
        entry = (installed_cache.root / SCHEMA_TAG /
                 f"{get_context(elf).content_hash}.sweep.json")
        assert entry.is_file()

    def test_diagnosed_artifacts_not_stored(self, sample_binary,
                                            installed_cache):
        rng = random.Random(17)
        stored_with_diags = []
        for _ in range(20):
            mutant = mutate("lsda", sample_binary.data, rng)
            elf = ELFFile.degraded(mutant.data)
            ctx = get_context(elf)
            before = len(elf.diagnostics)
            ctx.landing_pads()
            if len(elf.diagnostics) > before:
                entry = (installed_cache.root / SCHEMA_TAG /
                         f"{ctx.content_hash}.landing_pads.json")
                stored_with_diags.append(entry.exists())
        # At least some mutants must have produced diagnostics for the
        # guard to be exercised at all.
        assert stored_with_diags, "no mutant produced LSDA diagnostics"
        assert not any(stored_with_diags)

    def test_disk_hit_round_trips_sweep(self, sample_binary,
                                        installed_cache):
        cold = ELFFile(sample_binary.data)
        cold_sweep = get_context(cold).sweep()
        warm = ELFFile(sample_binary.data)
        warm_sweep = get_context(warm).sweep()
        assert installed_cache.stats.hits >= 1
        assert warm_sweep.endbr_addrs == cold_sweep.endbr_addrs
        assert warm_sweep.call_targets == cold_sweep.call_targets
        assert warm_sweep.endbr_predecessor == cold_sweep.endbr_predecessor
        assert warm_sweep.insn_count == cold_sweep.insn_count

    def test_corrupt_disk_entry_recomputes(self, sample_binary,
                                           installed_cache):
        elf = ELFFile(sample_binary.data)
        ctx = get_context(elf)
        expected = FunSeekerDetector().detect(elf).functions
        entry = (installed_cache.root / SCHEMA_TAG /
                 f"{ctx.content_hash}.tool.funseeker.json")
        assert entry.is_file()
        entry.write_text('{"addrs": "not-a-list"}')
        again = FunSeekerDetector().detect(ELFFile(sample_binary.data))
        assert again.functions == expected
