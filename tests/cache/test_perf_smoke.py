"""Tier-1 perf smoke: the cold→warm disk-cache round trip works.

Mirrors the ``fuzz_smoke`` pattern: a fast slice of the performance
machinery runs in every tier-1 sweep, failing on cache-vs-nocache
output divergence, a cache that never actually serves hits, a
vectorized sweep that drifts from the legacy decoder, or an eviction
path that re-walks the cache root per store. Timing itself is *not*
asserted here (tier-1 must stay deterministic); the benchmarks suite
measures and publishes the speedups — the assertions below pin the
*mechanisms* the benchmark numbers depend on.
"""

from __future__ import annotations

import pytest

from repro.baselines import ALL_DETECTORS
from repro.cache import DiskCache, set_default_cache
from repro.elf.parser import ELFFile
from repro.x86 import superset, vector

pytestmark = pytest.mark.perf_smoke

TOOLS = ("funseeker", "ida", "ghidra", "fetch", "naive-endbr")


def _run_all(data: bytes) -> dict[str, list[int]]:
    elf = ELFFile(data)
    return {
        name: sorted(ALL_DETECTORS[name]().detect(elf).functions)
        for name in TOOLS
    }


def test_cold_warm_round_trip(sample_binary, tmp_path):
    set_default_cache(None)
    baseline = _run_all(sample_binary.data)
    assert any(baseline.values())

    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    cold = _run_all(sample_binary.data)
    assert cold == baseline, "cold cache run diverged from uncached"
    assert cache.stats.stores > 0, "cold run populated nothing"

    # The deterministic half of the cold <= 1.3x uncached wall-clock
    # guard (the benchmark asserts the wall clock itself): eviction may
    # walk the cache root once to seed its entry-count estimate, never
    # per store — the per-store walk is what made cold runs O(N^2).
    assert cache.stats.evict_scans <= 1, (
        "eviction re-walked the cache root during a cold run"
    )

    warm = _run_all(sample_binary.data)
    assert warm == baseline, "warm cache run diverged from uncached"
    assert cache.stats.hits > 0, "warm run never hit the cache"

    # Every tool's whole-run result must have landed on disk — except
    # detectors cheaper than a cache round trip, which bypass the disk
    # layer (the naive-endbr warm "speedup" of 0.48x) and are tallied.
    census = cache.census()
    assert census["entries"] >= len(TOOLS)
    assert cache.stats.bypasses > 0, "cheap detector never bypassed"
    schema_dir = next((tmp_path / "cache").iterdir())
    assert not list(schema_dir.glob("*.tool.naive-endbr.json")), (
        "bypassed detector still stored a disk entry"
    )


def test_batched_stores_served_and_flushed(sample_binary, tmp_path):
    """A per-binary store batch defers writes but never loses them."""
    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    try:
        with cache.batch():
            batched = _run_all(sample_binary.data)
            assert cache.census()["entries"] == 0, (
                "stores escaped the batch before flush"
            )
        assert cache.census()["entries"] >= len(TOOLS) - 1
        assert batched == _run_all(sample_binary.data)
    finally:
        set_default_cache(None)


@pytest.mark.skipif(not vector.available(),
                    reason="vectorized decode unavailable")
def test_vectorized_matches_legacy(sample_binary):
    """Scaled-down identity check: the five tools agree with the
    vectorized sweep disabled and enabled (the full differential lives
    in tests/x86/test_vector_differential.py)."""
    set_default_cache(None)
    superset.clear_index_memo()
    vector.set_enabled(False)
    try:
        legacy = _run_all(sample_binary.data)
    finally:
        vector.set_enabled(None)
        superset.clear_index_memo()
    assert _run_all(sample_binary.data) == legacy
