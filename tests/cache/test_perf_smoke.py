"""Tier-1 perf smoke: the cold→warm disk-cache round trip works.

Mirrors the ``fuzz_smoke`` pattern: a fast slice of the performance
machinery runs in every tier-1 sweep, failing on cache-vs-nocache
output divergence or a cache that never actually serves hits. Timing
itself is *not* asserted here (tier-1 must stay deterministic); the
benchmarks suite measures and publishes the speedup.
"""

from __future__ import annotations

import pytest

from repro.baselines import ALL_DETECTORS
from repro.cache import DiskCache, set_default_cache
from repro.elf.parser import ELFFile

pytestmark = pytest.mark.perf_smoke

TOOLS = ("funseeker", "ida", "ghidra", "fetch", "naive-endbr")


def _run_all(data: bytes) -> dict[str, list[int]]:
    elf = ELFFile(data)
    return {
        name: sorted(ALL_DETECTORS[name]().detect(elf).functions)
        for name in TOOLS
    }


def test_cold_warm_round_trip(sample_binary, tmp_path):
    set_default_cache(None)
    baseline = _run_all(sample_binary.data)
    assert any(baseline.values())

    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    cold = _run_all(sample_binary.data)
    assert cold == baseline, "cold cache run diverged from uncached"
    assert cache.stats.stores > 0, "cold run populated nothing"

    warm = _run_all(sample_binary.data)
    assert warm == baseline, "warm cache run diverged from uncached"
    assert cache.stats.hits > 0, "warm run never hit the cache"

    # Every tool's whole-run result must have landed on disk.
    census = cache.census()
    assert census["entries"] >= len(TOOLS)
