"""Degradation ladder: hostile inputs downgrade, never sink the scan."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ingest.ladder import (
    LadderReadError,
    analyze_binary,
    pairwise_agreement,
)

CORPUS = Path(__file__).parent / "corpus"
TOOLS = ["funseeker", "naive-endbr"]


def test_healthy_binary_is_ok_high_confidence():
    outcome = analyze_binary(CORPUS / "healthy.elf", TOOLS)
    assert outcome.status == "ok"
    assert outcome.confidence == "high"
    assert outcome.cet.get("ibt") is True
    assert set(outcome.tools) == set(TOOLS)
    assert all(t.ok for t in outcome.tools.values())
    assert outcome.tools["funseeker"].functions > 0
    assert len(outcome.sha256) == 64
    pair = "funseeker|naive-endbr"
    assert 0.0 <= outcome.agreement[pair] <= 1.0


def test_truncated_binary_degrades_with_diagnostics():
    outcome = analyze_binary(CORPUS / "truncated.elf", TOOLS)
    assert outcome.status_class in ("degraded", "quarantined")
    assert outcome.confidence in ("medium", "low")


def test_oversized_shdr_degrades_not_memoryerror():
    outcome = analyze_binary(CORPUS / "oversized-shdr.elf", TOOLS)
    assert outcome.status_class == "degraded"
    assert outcome.diagnostics > 0
    assert outcome.worst_severity == "error"


def test_garbage_never_raises():
    outcome = analyze_binary(CORPUS / "garbage.bin", TOOLS)
    assert outcome.status_class in ("degraded", "quarantined")


def test_missing_file_raises_ladder_read_error(tmp_path):
    with pytest.raises(LadderReadError):
        analyze_binary(tmp_path / "gone", TOOLS)


def test_outcome_doc_round_trips():
    outcome = analyze_binary(CORPUS / "healthy.elf", TOOLS)
    doc = outcome.to_dict()
    assert doc["status"] == "ok"
    assert doc["tools"]["funseeker"]["functions"] == \
        outcome.tools["funseeker"].functions
    assert doc["cet"] == outcome.cet


def test_analysis_is_deterministic():
    a = analyze_binary(CORPUS / "healthy.elf", TOOLS).to_dict()
    b = analyze_binary(CORPUS / "healthy.elf", TOOLS).to_dict()
    for doc in (a, b):
        doc.pop("elapsed_seconds")
        for tool in doc["tools"].values():
            tool.pop("elapsed_seconds")
    assert a == b


def test_injected_read_fault_raises_ladder_read_error():
    from repro import faults

    faults.install(f"io@{faults.SITE_INGEST_ANALYZE}#1")
    try:
        with pytest.raises(LadderReadError):
            analyze_binary(CORPUS / "healthy.elf", TOOLS)
    finally:
        faults.clear()


def test_pairwise_agreement_jaccard():
    sets = {
        "a": frozenset({1, 2, 3}),
        "b": frozenset({2, 3, 4}),
        "c": frozenset(),
    }
    agreement = pairwise_agreement(sets)
    assert agreement["a|b"] == pytest.approx(2 / 4)
    assert agreement["a|c"] == 0.0
    assert set(agreement) == {"a|b", "a|c", "b|c"}


def test_pairwise_agreement_empty_sets_agree():
    agreement = pairwise_agreement({"a": frozenset(), "b": frozenset()})
    assert agreement["a|b"] == 1.0
