"""Admission triage: total, reasoned, and right about the corpus."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ingest.admit import (
    ALL_DECISIONS,
    AdmissionPolicy,
    triage,
)

CORPUS = Path(__file__).parent / "corpus"


@dataclass
class FakeCandidate:
    path: Path
    size: int


def _triage_file(path: Path, policy=None):
    return triage(FakeCandidate(path=path, size=path.stat().st_size),
                  policy)


def test_corpus_exists():
    assert (CORPUS / "healthy.elf").is_file()


@pytest.mark.parametrize("name,decision,reason", [
    ("healthy.elf", "analyze", "ok"),
    ("truncated.elf", "analyze", "ok"),       # header is fine; ladder's job
    ("oversized-shdr.elf", "analyze", "ok"),  # ditto
    ("foreign-arch.elf", "reject", "wrong-arch"),
    ("big-endian.elf", "reject", "big-endian"),
    ("relocatable.elf", "reject", "not-executable"),
    ("garbage.bin", "reject", "not-elf"),
    ("empty.bin", "reject", "too-small"),
    ("tiny.bin", "reject", "too-small"),
])
def test_corpus_decisions(name, decision, reason):
    admission = _triage_file(CORPUS / name)
    assert admission.decision == decision
    assert admission.reason == reason
    assert not admission.transient


def test_policy_size_ceiling_skips(tmp_path):
    path = tmp_path / "big"
    path.write_bytes((CORPUS / "healthy.elf").read_bytes())
    admission = _triage_file(path, AdmissionPolicy(max_size=1000))
    assert admission.decision == "skip"
    assert admission.reason == "too-large"


def test_missing_file_is_transient_skip(tmp_path):
    admission = triage(FakeCandidate(path=tmp_path / "gone", size=4096))
    assert admission.decision == "skip"
    assert admission.reason == "io-error"
    assert admission.transient


def test_injected_io_fault_is_transient(tmp_path):
    from repro import faults

    path = tmp_path / "f"
    path.write_bytes((CORPUS / "healthy.elf").read_bytes())
    faults.install(f"io@{faults.SITE_INGEST_ADMIT}#1")
    try:
        admission = _triage_file(path)
    finally:
        faults.clear()
    assert admission.transient
    assert _triage_file(path).decision == "analyze"  # single-shot fault


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(head=st.binary(max_size=96), claimed_size=st.integers(0, 1 << 40))
def test_triage_is_total_on_arbitrary_bytes(tmp_path, head, claimed_size):
    """The core property: triage never raises, whatever the bytes are,
    even when the stat'd size disagrees with what is readable."""
    path = tmp_path / "fuzz.bin"
    path.write_bytes(head)
    admission = triage(FakeCandidate(path=path, size=claimed_size))
    assert admission.decision in ALL_DECISIONS
    assert admission.reason


@settings(max_examples=40, deadline=None)
@given(data=st.binary(min_size=52, max_size=96))
def test_elf_magic_required_for_analyze(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("admit") / "x.bin"
    path.write_bytes(data)
    admission = _triage_file(path)
    if admission.decision == "analyze":
        assert data[:4] == b"\x7fELF"
