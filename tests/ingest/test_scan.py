"""Scan pipeline: exactly-once journaling and resume convergence.

The ``ingest_smoke`` tier-1 slice scans a hostile fixture tree with an
injected ``ingest.analyze`` fault and asserts a resume converges to the
fault-free fleet report — the acceptance property of the subsystem.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faults
from repro.errors import JournalWriteError, ManifestMismatchError
from repro.eval.breaker import CircuitBreaker
from repro.eval.journal import read_journal_lines
from repro.faults.chaos import CHAOS_BACKSTOP_GRACE
from repro.ingest.fixtures import build_fixture_tree
from repro.ingest.journal import read_scan_journal
from repro.ingest.pipeline import run_scan
from repro.ingest.report import build_fleet_report, normalize_fleet_report

TOOLS = ["funseeker", "naive-endbr"]


@pytest.fixture(scope="module")
def tree(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    build_fixture_tree(root)
    return root


@pytest.fixture(scope="module")
def baseline_doc(tree, tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("baseline") / "run"
    result = run_scan(run_dir, roots=[str(tree)], tools=TOOLS, workers=1)
    assert not result.state.failures
    return normalize_fleet_report(build_fleet_report(result.state))


def _scan(run_dir, tree=None, **kw):
    kw.setdefault("tools", TOOLS)
    roots = [str(tree)] if tree is not None else None
    return run_scan(run_dir, roots=roots, **kw)


def test_every_candidate_journaled_exactly_once(tree, tmp_path):
    result = _scan(tmp_path / "run", tree, workers=1)
    payloads, corrupt, torn = read_journal_lines(
        tmp_path / "run" / "journal.jsonl")
    assert corrupt == 0 and not torn
    paths = [doc["path"] for doc in payloads]
    assert len(paths) == len(set(paths)), "a path was decided twice"
    assert len(paths) == result.stats.walked


def test_parallel_scan_matches_serial(tree, tmp_path, baseline_doc):
    result = _scan(tmp_path / "run", tree, workers=2, timeout=30.0)
    assert not result.state.failures
    doc = normalize_fleet_report(build_fleet_report(result.state))
    assert doc == baseline_doc


def test_resume_noop_after_complete_scan(tree, tmp_path, baseline_doc):
    run_dir = tmp_path / "run"
    _scan(run_dir, tree, workers=1)
    resumed = run_scan(run_dir, resume=True, workers=1)
    assert resumed.stats.dispatched == 0
    assert resumed.stats.resumed == resumed.stats.walked
    doc = normalize_fleet_report(build_fleet_report(resumed.state))
    assert doc == baseline_doc


def test_resume_refuses_different_roots(tree, tmp_path):
    run_dir = tmp_path / "run"
    _scan(run_dir, tree, workers=1, limit=1)
    with pytest.raises(ManifestMismatchError):
        run_scan(run_dir, roots=[str(tmp_path / "other")], resume=True)


def test_limit_bounds_admitted_binaries(tree, tmp_path):
    result = _scan(tmp_path / "run", tree, workers=1, limit=2)
    assert len(result.state.analyses) == 2


def test_transient_triage_fault_heals_on_resume(tree, tmp_path,
                                                baseline_doc):
    run_dir = tmp_path / "run"
    faults.install(f"io@{faults.SITE_INGEST_ADMIT}#2")
    try:
        faulted = _scan(run_dir, tree, workers=1)
    finally:
        faults.clear()
    assert faulted.state.failures, "fault did not surface as retryable"
    resumed = run_scan(run_dir, resume=True, workers=1)
    assert not resumed.state.failures
    doc = normalize_fleet_report(build_fleet_report(resumed.state))
    assert doc == baseline_doc


def test_directory_breaker_skips_are_retryable(tree, tmp_path,
                                               baseline_doc):
    run_dir = tmp_path / "run"
    # Every analyze read fails -> consecutive losses open the circuit
    # for the binaries' directory; the skipped candidates must land as
    # retryable failures, not vanish.
    faults.install(f"io@{faults.SITE_INGEST_ANALYZE}#*")
    try:
        faulted = _scan(run_dir, tree, workers=1,
                        breaker=CircuitBreaker(threshold=2, cooldown=100))
    finally:
        faults.clear()
    assert len(faulted.state.failures) == faulted.stats.dispatched \
        + faulted.stats.breaker_skips
    assert faulted.stats.breaker_skips > 0
    resumed = run_scan(run_dir, resume=True, workers=1)
    assert not resumed.state.failures
    doc = normalize_fleet_report(build_fleet_report(resumed.state))
    assert doc == baseline_doc


def test_journal_write_failure_aborts_resumably(tree, tmp_path):
    run_dir = tmp_path / "run"
    faults.install(f"enospc@{faults.SITE_JOURNAL_APPEND}#3")
    try:
        with pytest.raises(JournalWriteError):
            _scan(run_dir, tree, workers=1)
    finally:
        faults.clear()
    state = read_scan_journal(run_dir)
    assert state.decided >= 1  # the pre-fault appends survived


@pytest.mark.ingest_smoke
def test_injected_worker_kill_resumes_to_baseline(tree, tmp_path,
                                                  baseline_doc):
    """Tier-1 acceptance: kill a pool worker mid-ladder, then converge."""
    run_dir = tmp_path / "run"
    faults.install(f"kill@{faults.SITE_INGEST_ANALYZE}#2")
    try:
        faulted = _scan(run_dir, tree, workers=2, timeout=1.0,
                        backstop_grace=CHAOS_BACKSTOP_GRACE)
    finally:
        faults.clear()
    assert faulted.stats.lost_workers >= 1
    assert faulted.state.failures, "lost worker left no retryable record"

    resumed = run_scan(run_dir, resume=True, workers=1)
    assert not resumed.state.failures
    doc = normalize_fleet_report(build_fleet_report(resumed.state))
    assert doc == baseline_doc


@pytest.mark.ingest_smoke
def test_sigkill_mid_scan_resumes_to_baseline(tree, tmp_path,
                                              baseline_doc):
    """Kill the whole scan process mid-run; resume must converge.

    The SIGKILL lands at an arbitrary point (including possibly after
    completion — timing is best-effort), so the assertion is purely
    about the recovered report, which must be baseline-identical no
    matter where the scan died.
    """
    run_dir = tmp_path / "run"
    code = (
        "import sys; sys.path.insert(0, %r); "
        "from repro.ingest.pipeline import run_scan; "
        "run_scan(%r, roots=[%r], tools=%r, workers=1)"
        % (str(Path(__file__).resolve().parents[2] / "src"),
           str(run_dir), str(tree), TOOLS)
    )
    proc = subprocess.Popen([sys.executable, "-c", code])
    # Let it journal a few decisions, then kill it outright.
    deadline = time.monotonic() + 30.0
    journal = run_dir / "journal.jsonl"
    while time.monotonic() < deadline and proc.poll() is None:
        if journal.exists() and journal.stat().st_size > 0:
            break
        time.sleep(0.02)
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait()

    resumed = run_scan(run_dir, resume=True, workers=1)
    assert not resumed.state.failures
    doc = normalize_fleet_report(build_fleet_report(resumed.state))
    assert doc == baseline_doc


def test_fleet_report_sections(tree, tmp_path):
    result = _scan(tmp_path / "run", tree, workers=1)
    report = build_fleet_report(result.state, result.manifest)
    assert report["schema"] == "fleet-report/v1"
    assert report["totals"]["analyzed"] == len(result.state.analyses)
    assert report["cet"]["probed"] >= report["cet"]["any"]
    assert report["triage"]["reasons"]["reject"]["wrong-arch"] == 1
    assert "funseeker|naive-endbr" in report["agreement"]
    assert report["scan"]["tools"] == TOOLS
    # The renderer must mention the load-bearing numbers.
    from repro.ingest.report import render_fleet_table

    table = render_fleet_table(report)
    assert "cet adoption" in table and "triage reasons" in table


def test_report_is_json_serializable(tree, tmp_path):
    result = _scan(tmp_path / "run2", tree, workers=1)
    report = build_fleet_report(result.state)
    json.dumps(report)
