"""Discoverer: hostile filesystems cost entries, never the walk."""

from __future__ import annotations

import os

import pytest

from repro.ingest.discover import Candidate, WalkSkip, discover


def _events(root, **kw):
    return list(discover([root], **kw))


def _candidates(events):
    return [e for e in events if isinstance(e, Candidate)]


def _skips(events, reason=None):
    skips = [e for e in events if isinstance(e, WalkSkip)]
    if reason is None:
        return skips
    return [s for s in skips if s.reason == reason]


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "a" / "one.bin").write_bytes(b"x" * 100)
    (tmp_path / "b").mkdir()
    (tmp_path / "b" / "two.bin").write_bytes(b"y" * 200)
    (tmp_path / "b" / "three.txt").write_bytes(b"z" * 50)
    return tmp_path


def test_walk_yields_all_regular_files(tree):
    events = _events(tree)
    names = sorted(c.path.name for c in _candidates(events))
    assert names == ["one.bin", "three.txt", "two.bin"]
    sizes = {c.path.name: c.size for c in _candidates(events)}
    assert sizes["two.bin"] == 200


def test_walk_order_is_deterministic(tree):
    first = [str(e.path) for e in _events(tree)]
    second = [str(e.path) for e in _events(tree)]
    assert first == second


def test_symlink_loop_is_skipped_not_recursed(tree):
    (tree / "a" / "back").symlink_to(tree)
    events = _events(tree)
    assert len(_skips(events, "symlink-loop")) == 1
    # Every real file still discovered exactly once.
    assert len(_candidates(events)) == 3


def test_hard_link_alias_deduplicated_by_inode(tree):
    os.link(tree / "a" / "one.bin", tree / "b" / "alias.bin")
    events = _events(tree)
    dups = _skips(events, "duplicate-inode")
    assert len(dups) == 1
    assert len(_candidates(events)) == 3
    # The skip names the first sighting of the inode.
    assert "one.bin" in dups[0].detail or "alias.bin" in dups[0].detail


def test_broken_symlink_is_a_skip(tree):
    (tree / "dangling").symlink_to(tree / "missing")
    events = _events(tree)
    assert len(_skips(events, "broken-symlink")) == 1
    assert len(_candidates(events)) == 3


def test_fifo_skipped_from_stat_never_opened(tree):
    if not hasattr(os, "mkfifo"):
        pytest.skip("no mkfifo on this platform")
    os.mkfifo(tree / "pipe")
    # Opening the FIFO would block forever; finishing at all proves the
    # walk decided from stat alone.
    events = _events(tree)
    assert len(_skips(events, "not-regular-file")) == 1


def test_exclude_prunes_whole_subtree(tree):
    events = _events(tree, exclude=("b",))
    assert [c.path.name for c in _candidates(events)] == ["one.bin"]
    assert len(_skips(events, "excluded")) == 1


def test_include_filters_files_only(tree):
    events = _events(tree, include=("*.bin",))
    names = sorted(c.path.name for c in _candidates(events))
    assert names == ["one.bin", "two.bin"]
    assert len(_skips(events, "not-included")) == 1


def test_file_root_bypasses_filters(tree):
    events = _events(tree / "b" / "three.txt", include=("*.bin",))
    assert [c.path.name for c in _candidates(events)] == ["three.txt"]


def test_missing_root_is_a_skip(tmp_path):
    events = _events(tmp_path / "nope")
    assert len(_skips(events, "unreadable-root")) == 1
    assert not _candidates(events)


def test_no_follow_symlinks_reports_links(tree):
    (tree / "link.bin").symlink_to(tree / "a" / "one.bin")
    events = _events(tree, follow_symlinks=False)
    assert len(_skips(events, "symlink-not-followed")) == 1
    assert len(_candidates(events)) == 3


def test_walk_fault_costs_one_directory(tree):
    from repro import faults

    faults.install(f"io@{faults.SITE_INGEST_WALK}#2")
    try:
        events = _events(tree)
    finally:
        faults.clear()
    unreadable = _skips(events, "unreadable-dir")
    assert len(unreadable) == 1
    # The other directory's files still surfaced.
    assert len(_candidates(events)) >= 1


def test_memory_stays_bounded_on_wide_directory(tree):
    # The generator must not materialize the listing before yielding:
    # consuming one event from a 500-file directory must not require
    # walking the rest.
    wide = tree / "wide"
    wide.mkdir()
    for i in range(500):
        (wide / f"f{i:03d}").write_bytes(b"w")
    it = discover([wide])
    first = next(e for e in it if isinstance(e, Candidate))
    assert first.path.name == "f000"
    it.close()
