"""Fault-path tests for the parallel runner: lost workers, retries,
and pool shutdown discipline.

The detectors injected here are registered into ``ALL_DETECTORS``
before the pool spawns, so forked workers inherit them; they opt out of
the disk cache because their behavior is driven by side effects, not
the binary image.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.baselines import ALL_DETECTORS
from repro.baselines.base import FunctionDetector
from repro.elf.parser import ELFFile
from repro.eval import parallel as par
from repro.eval.isolation import PHASE_DETECT, PHASE_WORKER
from repro.eval.parallel import run_evaluation_parallel

#: Trailing bytes appended to a corpus entry's image to mark it for the
#: fault detectors. Appended junk is invisible to the section-table
#: driven ELF parse, so the binary still analyzes normally.
_WEDGE_MARKER = b"\xdeWEDGE\xad"

_FLAKY_DIR_ENV = "REPRO_TEST_FLAKY_DIR"


class _VanishingDetector(FunctionDetector):
    """Kills its whole worker process on marked binaries."""

    name = "vanisher"
    cacheable = False

    def _detect(self, elf: ELFFile) -> set[int]:
        if _WEDGE_MARKER in elf.data:
            os._exit(13)  # simulate a hard native crash: no cleanup
        return set()


class _FlakyDetector(FunctionDetector):
    """Raises on the first attempt per binary, succeeds afterwards."""

    name = "flaky"
    cacheable = False

    def _detect(self, elf: ELFFile) -> set[int]:
        root = Path(os.environ[_FLAKY_DIR_ENV])
        marker = root / hashlib.sha256(elf.data).hexdigest()[:16]
        if not marker.exists():
            marker.write_text("")
            raise RuntimeError("transient flake")
        return set()


def _mark_for_wedge(entry):
    return dataclasses.replace(
        entry, stripped=entry.stripped + _WEDGE_MARKER)


@pytest.fixture()
def register_detectors(monkeypatch):
    monkeypatch.setitem(ALL_DETECTORS, "vanisher", _VanishingDetector)
    monkeypatch.setitem(ALL_DETECTORS, "flaky", _FlakyDetector)


@pytest.fixture()
def pool_spy(monkeypatch):
    """Record close/terminate/join calls on the runner's pool."""
    calls: list[str] = []
    real_pool = multiprocessing.Pool

    class SpyPool:
        def __init__(self, *args, **kwargs):
            self._pool = real_pool(*args, **kwargs)

        def apply_async(self, *args, **kwargs):
            return self._pool.apply_async(*args, **kwargs)

        def close(self):
            calls.append("close")
            self._pool.close()

        def terminate(self):
            calls.append("terminate")
            self._pool.terminate()

        def join(self):
            calls.append("join")
            self._pool.join()

    monkeypatch.setattr(multiprocessing, "Pool", SpyPool)
    return calls


class TestLostWorker:
    def test_one_backstop_not_one_per_job(
            self, tiny_corpus, register_detectors, monkeypatch, pool_spy):
        """A wedged worker costs ~one backstop, and only its own job.

        Five jobs, one marked: the marked job's worker dies without
        reporting back, every other job completes normally, and the
        sweep finishes roughly one backstop after the last useful work
        — not ``jobs × backstop`` as head-of-line blocking would.
        """
        monkeypatch.setattr(par, "_BACKSTOP_GRACE", 2.0)
        subset = list(tiny_corpus[:5])
        subset[2] = _mark_for_wedge(subset[2])
        tools = ["funseeker", "vanisher"]
        # backstop = timeout * (retries+1) * (tools+1) + grace = 3.5s
        started = time.monotonic()
        report = run_evaluation_parallel(
            subset, tools, workers=2, timeout=0.5)
        wall = time.monotonic() - started
        backstop = 0.5 * 1 * (len(tools) + 1) + 2.0
        assert wall < 3 * backstop  # vs ~5 backstops under head-of-line

        # Only the marked job is lost — both of its cells, as worker
        # failures — and every other (binary, tool) cell has a record.
        assert len(report.failures) == len(tools)
        for failure in report.failures:
            assert failure.phase == PHASE_WORKER
            assert failure.error_type == "WorkerLost"
            assert failure.program == subset[2].program
        assert len(report.records) == (len(subset) - 1) * len(tools)

        # A lost worker forces terminate(): join() would block forever
        # on the wedged process.
        assert "terminate" in pool_spy
        assert "close" not in pool_spy

    def test_lost_worker_does_not_block_other_results(
            self, tiny_corpus, register_detectors, monkeypatch):
        """Results finishing after the wedge are still absorbed."""
        monkeypatch.setattr(par, "_BACKSTOP_GRACE", 2.0)
        subset = list(tiny_corpus[:4])
        subset[0] = _mark_for_wedge(subset[0])  # first job wedges
        report = run_evaluation_parallel(
            subset, ["vanisher"], workers=2, timeout=0.5)
        assert len(report.records) == 3
        assert [f.program for f in report.failures] == [subset[0].program]


class TestRetries:
    def test_flaky_cell_recovers_with_retry(
            self, tiny_corpus, register_detectors, monkeypatch, tmp_path):
        monkeypatch.setenv(_FLAKY_DIR_ENV, str(tmp_path))
        report = run_evaluation_parallel(
            tiny_corpus[:3], ["flaky"], workers=2, retries=1)
        assert report.failures == []
        assert len(report.records) == 3

    def test_flaky_cell_fails_without_retry(
            self, tiny_corpus, register_detectors, monkeypatch, tmp_path):
        monkeypatch.setenv(_FLAKY_DIR_ENV, str(tmp_path))
        report = run_evaluation_parallel(
            tiny_corpus[:3], ["flaky"], workers=2, retries=0)
        assert report.records == []
        assert len(report.failures) == 3
        for failure in report.failures:
            assert failure.phase == PHASE_DETECT
            assert failure.error_type == "RuntimeError"
            assert failure.attempts == 1


class TestWorkerTraces:
    def test_counters_aggregate_across_worker_processes(
            self, tiny_corpus, tmp_path):
        from repro import obs

        trace_dir = tmp_path / "parts"
        trace_dir.mkdir()
        report = run_evaluation_parallel(
            tiny_corpus[:4], ["funseeker"], workers=2,
            trace_dir=trace_dir)
        assert len(report.records) == 4

        parts = sorted(trace_dir.glob("worker-*.jsonl"))
        assert parts
        merged = obs.merge_traces(tmp_path / "merged.jsonl", parts)
        # Counter sums span the worker processes that shared the jobs.
        assert merged.counters.get("detect.runs") == 4
        assert len([s for s in merged.spans if s["name"] == "entry"]) == 4
        # The parent process's recorder stays the no-op default.
        assert not obs.enabled()


class TestPoolShutdown:
    def test_clean_run_closes_instead_of_terminating(
            self, tiny_corpus, pool_spy):
        run_evaluation_parallel(tiny_corpus[:3], ["funseeker"], workers=2)
        assert pool_spy == ["close", "join"]

    def test_abort_terminates(self, tiny_corpus, register_detectors,
                              monkeypatch, tmp_path, pool_spy):
        from repro.errors import EvaluationAborted

        monkeypatch.setenv(_FLAKY_DIR_ENV, str(tmp_path))
        with pytest.raises(EvaluationAborted):
            run_evaluation_parallel(
                tiny_corpus[:3], ["flaky"], workers=2, keep_going=False)
        assert pool_spy[0] == "terminate"
