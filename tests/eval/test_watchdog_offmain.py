"""Off-main-thread deadline degradation is recorded, never silent.

``SIGALRM`` only arms on the main thread; historically a ``deadline``
requested anywhere else silently became a no-op. These tests pin the
contract that replaced the silence: the cell still runs (availability
over enforcement), but the degradation is counted
(``isolation.watchdog_unarmed``), warned once, and recorded as
``enforced=False`` on every report the unenforced run produces.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.eval.analyze import analyze_image
from repro.eval.isolation import deadline, watchdog_armable
from repro.obs.log import reset_warn_once
from repro.obs.recorder import CounterRecorder


def _in_thread(fn):
    out = {}

    def _run():
        out["result"] = fn()

    thread = threading.Thread(target=_run)
    thread.start()
    thread.join(timeout=120)
    assert "result" in out, "thread body never finished"
    return out["result"]


def test_watchdog_armable_only_on_main_thread():
    assert watchdog_armable() is True
    assert _in_thread(watchdog_armable) is False


def test_deadline_off_main_thread_runs_unenforced_but_counted(capsys):
    recorder = obs.set_recorder(CounterRecorder())
    reset_warn_once()
    try:
        def body():
            with deadline(0.05):
                end = time.perf_counter() + 0.2
                while time.perf_counter() < end:
                    pass
            return "survived"

        assert _in_thread(body) == "survived"
        assert _in_thread(body) == "survived"
        assert recorder.counters.get("isolation.watchdog_unarmed", 0) == 2
        # warn-once: the counter counts every call, stderr fires once.
        err = capsys.readouterr().err
        assert err.count("NOT enforced") == 1
    finally:
        obs.set_recorder(None)
        reset_warn_once()


def test_analyze_off_main_thread_reports_unenforced(sample_binary):
    result = _in_thread(lambda: analyze_image(
        sample_binary.data, ["funseeker"], timeout=30.0,
        use_default_cache=False))
    report = result.tools["funseeker"]
    assert report.ok
    assert report.enforced is False
    doc = report.to_doc()
    assert doc["enforced"] is False

    on_main = analyze_image(sample_binary.data, ["funseeker"],
                            timeout=30.0, use_default_cache=False)
    assert on_main.tools["funseeker"].enforced is True


def test_analyze_without_timeout_is_enforced_anywhere(sample_binary):
    # No deadline requested → nothing to enforce → enforced stays True
    # even off the main thread.
    result = _in_thread(lambda: analyze_image(
        sample_binary.data, ["funseeker"], timeout=None,
        use_default_cache=False))
    assert result.tools["funseeker"].enforced is True
