"""Fault-isolated evaluation: failed cells become data, not crashes."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.baselines import FunSeekerDetector
from repro.baselines.base import FunctionDetector
from repro.errors import CellTimeoutError, EvaluationAborted
from repro.eval import failure_summary, run_evaluation
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    run_cell,
)
from repro.eval.parallel import run_evaluation_parallel


class ExplodingDetector(FunctionDetector):
    name = "exploder"

    def _detect(self, elf):
        raise RuntimeError("synthetic detector crash")


class SleepyDetector(FunctionDetector):
    name = "sleeper"

    def _detect(self, elf):
        # A pure-Python spin, the realistic hang mode SIGALRM can
        # interrupt (time.sleep would also be interrupted, but a busy
        # loop is the harder case).
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            pass
        return set()


def _corrupt(entry):
    return dataclasses.replace(
        entry, stripped=entry.stripped[:96] + b"\xff" * 32)


# ---------------------------------------------------------------------------
# run_cell
# ---------------------------------------------------------------------------


def test_run_cell_success():
    result, error, attempts, elapsed = run_cell(lambda: 41 + 1)
    assert (result, error, attempts) == (42, None, 1)
    assert elapsed >= 0


def test_run_cell_bounded_retry():
    calls = []

    def body():
        calls.append(1)
        raise ValueError("nope")

    result, error, attempts, _ = run_cell(body, retries=2)
    assert result is None
    assert isinstance(error, ValueError)
    assert attempts == 3
    assert len(calls) == 3


def test_run_cell_timeout_not_retried():
    calls = []

    def body():
        calls.append(1)
        end = time.perf_counter() + 5.0
        while time.perf_counter() < end:
            pass

    result, error, attempts, elapsed = run_cell(
        body, timeout=0.1, retries=3)
    assert result is None
    assert isinstance(error, CellTimeoutError)
    assert attempts == 1          # deterministic: would time out again
    assert len(calls) == 1
    assert elapsed < 2.0


# ---------------------------------------------------------------------------
# serial sweep isolation
# ---------------------------------------------------------------------------


def test_corrupted_binary_isolated_from_sweep(tiny_corpus):
    entries = list(tiny_corpus)[:3]
    detectors = {"funseeker": FunSeekerDetector()}
    clean = run_evaluation(entries, detectors)

    mixed = run_evaluation(
        [entries[0], _corrupt(entries[1]), entries[2]], detectors)

    assert len(mixed.failures) == 1
    failure = mixed.failures[0]
    assert failure.phase == PHASE_PARSE
    assert failure.program == entries[1].program
    assert failure.tool == "funseeker"
    # The surviving cells are bit-identical to the clean sweep (the
    # corpus is one record per entry, in order; entry 1 dropped out).
    def _key(r):
        return (r.program, r.compiler, r.bits, r.opt,
                r.confusion.tp, r.confusion.fp, r.confusion.fn)

    assert [_key(r) for r in mixed.records] == [
        _key(clean.records[0]), _key(clean.records[2])]
    assert 0 < mixed.success_rate() < 1


def test_detector_crash_recorded_with_attempts(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation(
        [entry],
        {"exploder": ExplodingDetector(), "funseeker": FunSeekerDetector()},
        retries=2,
    )
    assert len(report.records) == 1      # funseeker still ran
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.phase == PHASE_DETECT
    assert failure.error_type == "RuntimeError"
    assert failure.attempts == 3


def test_hanging_detector_times_out(tiny_corpus):
    entry = next(iter(tiny_corpus))
    started = time.perf_counter()
    report = run_evaluation(
        [entry], {"sleeper": SleepyDetector()}, timeout=0.2)
    assert time.perf_counter() - started < 10.0
    assert len(report.failures) == 1
    assert report.failures[0].is_timeout
    assert report.failures[0].attempts == 1


def test_fail_fast_aborts(tiny_corpus):
    entries = list(tiny_corpus)[:2]
    with pytest.raises(EvaluationAborted, match="RuntimeError"):
        run_evaluation(entries, {"exploder": ExplodingDetector()},
                       keep_going=False)


def test_failure_summary_rendering(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation([entry], {"exploder": ExplodingDetector()})
    text = failure_summary(report)
    assert "FAILED CELLS: 1" in text
    assert "RuntimeError" in text
    assert failure_summary(run_evaluation([], {})) == ""


def test_filtered_carries_failures(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation(
        [entry],
        {"exploder": ExplodingDetector(), "funseeker": FunSeekerDetector()},
    )
    sub = report.filtered(tool="exploder")
    assert not sub.records
    assert len(sub.failures) == 1
    assert report.tools() == ["exploder", "funseeker"]


# ---------------------------------------------------------------------------
# parallel sweep isolation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_survives_corrupted_binary(tiny_corpus, workers):
    entries = list(tiny_corpus)[:3]
    mixed = [entries[0], _corrupt(entries[1]), entries[2]]
    report = run_evaluation_parallel(
        mixed, ["funseeker"], workers=workers, timeout=30.0)
    assert len(report.records) == 2
    assert len(report.failures) == 1
    assert report.failures[0].phase == PHASE_PARSE


def test_parallel_fail_fast(tiny_corpus):
    entries = [_corrupt(next(iter(tiny_corpus)))]
    with pytest.raises(EvaluationAborted):
        run_evaluation_parallel(entries, ["funseeker"], workers=1,
                                keep_going=False)
