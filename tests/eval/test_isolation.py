"""Fault-isolated evaluation: failed cells become data, not crashes."""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.baselines import FunSeekerDetector
from repro.baselines.base import FunctionDetector
from repro.errors import (
    CellTimeoutError,
    EvaluationAborted,
    MalformedELFError,
    PermanentFaultError,
    TransientFaultError,
)
from repro.eval import failure_summary, run_evaluation
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    deadline,
    run_cell,
)
from repro.eval.parallel import run_evaluation_parallel


class ExplodingDetector(FunctionDetector):
    name = "exploder"

    def _detect(self, elf):
        raise RuntimeError("synthetic detector crash")


class SleepyDetector(FunctionDetector):
    name = "sleeper"

    def _detect(self, elf):
        # A pure-Python spin, the realistic hang mode SIGALRM can
        # interrupt (time.sleep would also be interrupted, but a busy
        # loop is the harder case).
        deadline = time.perf_counter() + 30.0
        while time.perf_counter() < deadline:
            pass
        return set()


def _corrupt(entry):
    return dataclasses.replace(
        entry, stripped=entry.stripped[:96] + b"\xff" * 32)


# ---------------------------------------------------------------------------
# run_cell
# ---------------------------------------------------------------------------


def test_run_cell_success():
    result, error, attempts, elapsed = run_cell(lambda: 41 + 1)
    assert (result, error, attempts) == (42, None, 1)
    assert elapsed >= 0


def test_run_cell_bounded_retry():
    calls = []

    def body():
        calls.append(1)
        raise ValueError("nope")

    result, error, attempts, _ = run_cell(body, retries=2)
    assert result is None
    assert isinstance(error, ValueError)
    assert attempts == 3
    assert len(calls) == 3


def test_run_cell_permanent_failure_not_retried():
    # A parse rejection is structural: re-reading the same bytes cannot
    # succeed, so the retry budget must not be burned on it.
    calls = []

    def body():
        calls.append(1)
        raise MalformedELFError("structurally bad input")

    result, error, attempts, _ = run_cell(body, retries=5)
    assert result is None
    assert isinstance(error, MalformedELFError)
    assert attempts == 1
    assert len(calls) == 1


def test_run_cell_memory_error_not_retried():
    def body():
        raise MemoryError("rss ceiling")

    _result, error, attempts, _ = run_cell(body, retries=3)
    assert isinstance(error, MemoryError)
    assert attempts == 1


def test_run_cell_injected_fault_taxonomy():
    transient = run_cell(lambda: (_ for _ in ()).throw(
        TransientFaultError("flaky")), retries=2)
    assert transient[2] == 3              # retried to exhaustion
    permanent = run_cell(lambda: (_ for _ in ()).throw(
        PermanentFaultError("broken")), retries=2)
    assert permanent[2] == 1              # failed fast


def test_run_cell_backoff_sleeps_between_retries():
    calls = []

    def body():
        calls.append(time.perf_counter())
        raise OSError("transient")

    started = time.perf_counter()
    run_cell(body, retries=2, backoff=0.05)
    elapsed = time.perf_counter() - started
    assert len(calls) == 3
    # Two sleeps: >= 0.05 + 0.10 (jitter only adds time).
    assert elapsed >= 0.15


def test_run_cell_timeout_not_retried():
    calls = []

    def body():
        calls.append(1)
        end = time.perf_counter() + 5.0
        while time.perf_counter() < end:
            pass

    result, error, attempts, elapsed = run_cell(
        body, timeout=0.1, retries=3)
    assert result is None
    assert isinstance(error, CellTimeoutError)
    assert attempts == 1          # deterministic: would time out again
    assert len(calls) == 1
    assert elapsed < 2.0


# ---------------------------------------------------------------------------
# deadline composition
# ---------------------------------------------------------------------------


def _spin(seconds: float) -> None:
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def test_nested_deadline_inner_budget_enforced():
    with deadline(10.0):
        with pytest.raises(CellTimeoutError):
            with deadline(0.1):
                _spin(5.0)


def test_nested_deadline_rearms_outer_remainder():
    # The outer budget must keep ticking across an inner scope: after a
    # fast inner cell, the outer watchdog still fires on time.
    started = time.perf_counter()
    with pytest.raises(CellTimeoutError):
        with deadline(0.4):
            with deadline(5.0):
                _spin(0.05)           # inner finishes well under budget
            _spin(5.0)                # outer must interrupt this
    assert time.perf_counter() - started < 3.0


def test_nested_deadline_outer_blown_inside_inner_fires_on_exit():
    # The inner scope outlives the outer budget; the outer alarm fires
    # as soon as its handler is re-armed rather than being lost.
    with pytest.raises(CellTimeoutError):
        with deadline(0.1):
            with deadline(10.0):
                _spin(0.3)
            _spin(10.0)               # unreachable without the re-arm


def test_nested_deadline_success_leaves_no_pending_alarm():
    with deadline(0.5):
        with deadline(0.5):
            pass
    _spin(0.6)                        # no stale alarm may fire here


# ---------------------------------------------------------------------------
# serial sweep isolation
# ---------------------------------------------------------------------------


def test_corrupted_binary_isolated_from_sweep(tiny_corpus):
    entries = list(tiny_corpus)[:3]
    detectors = {"funseeker": FunSeekerDetector()}
    clean = run_evaluation(entries, detectors)

    mixed = run_evaluation(
        [entries[0], _corrupt(entries[1]), entries[2]], detectors)

    assert len(mixed.failures) == 1
    failure = mixed.failures[0]
    assert failure.phase == PHASE_PARSE
    assert failure.program == entries[1].program
    assert failure.tool == "funseeker"
    # The surviving cells are bit-identical to the clean sweep (the
    # corpus is one record per entry, in order; entry 1 dropped out).
    def _key(r):
        return (r.program, r.compiler, r.bits, r.opt,
                r.confusion.tp, r.confusion.fp, r.confusion.fn)

    assert [_key(r) for r in mixed.records] == [
        _key(clean.records[0]), _key(clean.records[2])]
    assert 0 < mixed.success_rate() < 1


def test_detector_crash_recorded_with_attempts(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation(
        [entry],
        {"exploder": ExplodingDetector(), "funseeker": FunSeekerDetector()},
        retries=2,
    )
    assert len(report.records) == 1      # funseeker still ran
    assert len(report.failures) == 1
    failure = report.failures[0]
    assert failure.phase == PHASE_DETECT
    assert failure.error_type == "RuntimeError"
    assert failure.attempts == 3


def test_hanging_detector_times_out(tiny_corpus):
    entry = next(iter(tiny_corpus))
    started = time.perf_counter()
    report = run_evaluation(
        [entry], {"sleeper": SleepyDetector()}, timeout=0.2)
    assert time.perf_counter() - started < 10.0
    assert len(report.failures) == 1
    assert report.failures[0].is_timeout
    assert report.failures[0].attempts == 1


def test_fail_fast_aborts(tiny_corpus):
    entries = list(tiny_corpus)[:2]
    with pytest.raises(EvaluationAborted, match="RuntimeError"):
        run_evaluation(entries, {"exploder": ExplodingDetector()},
                       keep_going=False)


def test_failure_summary_rendering(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation([entry], {"exploder": ExplodingDetector()})
    text = failure_summary(report)
    assert "FAILED CELLS: 1" in text
    assert "RuntimeError" in text
    assert failure_summary(run_evaluation([], {})) == ""


def test_filtered_carries_failures(tiny_corpus):
    entry = next(iter(tiny_corpus))
    report = run_evaluation(
        [entry],
        {"exploder": ExplodingDetector(), "funseeker": FunSeekerDetector()},
    )
    sub = report.filtered(tool="exploder")
    assert not sub.records
    assert len(sub.failures) == 1
    assert report.tools() == ["exploder", "funseeker"]


# ---------------------------------------------------------------------------
# parallel sweep isolation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_survives_corrupted_binary(tiny_corpus, workers):
    entries = list(tiny_corpus)[:3]
    mixed = [entries[0], _corrupt(entries[1]), entries[2]]
    report = run_evaluation_parallel(
        mixed, ["funseeker"], workers=workers, timeout=30.0)
    assert len(report.records) == 2
    assert len(report.failures) == 1
    assert report.failures[0].phase == PHASE_PARSE


def test_parallel_fail_fast(tiny_corpus):
    entries = [_corrupt(next(iter(tiny_corpus)))]
    with pytest.raises(EvaluationAborted):
        run_evaluation_parallel(entries, ["funseeker"], workers=1,
                                keep_going=False)
