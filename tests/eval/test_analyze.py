"""Tests for the library-clean single-image analysis callable."""

from __future__ import annotations

import pytest

from repro.baselines import ALL_DETECTORS
from repro.cache import DiskCache
from repro.elf.parser import ELFFile
from repro.eval.analyze import (
    CACHE_DISABLED,
    CACHE_HIT,
    CACHE_MISS,
    analyze_image,
    content_digest,
    warm_lookup,
    analyze_image as _analyze,  # noqa: F401 — re-export sanity
)
from repro.eval.isolation import PHASE_PARSE

TOOLS = ["funseeker", "fetch"]


def test_analysis_matches_direct_detection(sample_binary):
    analysis = analyze_image(sample_binary.data, TOOLS,
                             use_default_cache=False)
    assert analysis.ok
    assert analysis.sha256 == content_digest(sample_binary.data)
    assert not analysis.warm
    elf = ELFFile(sample_binary.data)
    for name in TOOLS:
        expected = tuple(sorted(
            ALL_DETECTORS[name]().detect(elf).functions))
        assert analysis.tools[name].functions == expected
        assert analysis.tools[name].cache == CACHE_DISABLED


def test_cold_then_warm_cache_attribution(tmp_path, sample_binary):
    cache = DiskCache(tmp_path)
    cold = analyze_image(sample_binary.data, TOOLS, cache=cache)
    assert all(r.cache == CACHE_MISS for r in cold.tools.values())
    warm = analyze_image(sample_binary.data, TOOLS, cache=cache)
    assert warm.warm, "second analysis is served entirely from disk"
    assert all(r.cache == CACHE_HIT for r in warm.tools.values())
    for name in TOOLS:
        assert warm.tools[name].functions == cold.tools[name].functions


def test_warm_lookup_requires_every_artifact(tmp_path, sample_binary):
    cache = DiskCache(tmp_path)
    sha = content_digest(sample_binary.data)
    assert warm_lookup(sha, len(sample_binary.data), TOOLS, cache) is None
    analyze_image(sample_binary.data, ["funseeker"], cache=cache)
    # One tool cached, the other not: still no warm answer.
    assert warm_lookup(sha, len(sample_binary.data), TOOLS, cache) is None
    analyze_image(sample_binary.data, TOOLS, cache=cache)
    served = warm_lookup(sha, len(sample_binary.data), TOOLS, cache)
    assert served is not None and served.warm


def test_uncacheable_tool_blocks_warm_path(tmp_path, sample_binary,
                                           monkeypatch):
    monkeypatch.setattr(ALL_DETECTORS["fetch"], "cacheable", False)
    cache = DiskCache(tmp_path)
    first = analyze_image(sample_binary.data, TOOLS, cache=cache)
    assert first.tools["fetch"].cache == "uncacheable"
    second = analyze_image(sample_binary.data, TOOLS, cache=cache)
    assert not second.warm
    assert second.tools["funseeker"].cache == CACHE_HIT
    assert second.tools["fetch"].cache == "uncacheable"


def test_parse_failure_lands_on_every_report():
    analysis = analyze_image(b"certainly not an ELF image", TOOLS,
                             use_default_cache=False)
    assert not analysis.ok
    for name in TOOLS:
        report = analysis.tools[name]
        assert report.functions is None
        assert report.phase == PHASE_PARSE
        assert report.error_type


def test_unknown_tool_is_a_value_error():
    with pytest.raises(ValueError, match="unknown tools"):
        analyze_image(b"x", ["nonexistent"], use_default_cache=False)


def test_doc_roundtrip(sample_binary):
    analysis = analyze_image(sample_binary.data, TOOLS,
                             use_default_cache=False)
    from repro.eval.analyze import ImageAnalysis

    restored = ImageAnalysis.from_doc(analysis.to_doc())
    assert restored.sha256 == analysis.sha256
    for name in TOOLS:
        assert restored.tools[name].functions == \
            analysis.tools[name].functions
