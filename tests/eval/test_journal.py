"""Run-journal format: checksums, torn tails, manifests, resume merge."""

import json

import pytest

from repro import faults
from repro.errors import (
    JournalError,
    JournalWriteError,
    ManifestMismatchError,
)
from repro.eval.isolation import PHASE_DETECT, FailureRecord
from repro.eval.journal import (
    JOURNAL_NAME,
    RunJournal,
    build_manifest,
    cell_key,
    check_manifest,
    corpus_fingerprint,
    entry_cell_key,
    merge_resumed_report,
    read_journal,
)
from repro.eval.metrics import Confusion
from repro.eval.runner import EvalReport, RunRecord


def _record(program="p0", tool="funseeker", tp=5) -> RunRecord:
    return RunRecord(
        suite="synthetic", program=program, compiler="gcc", bits=64,
        pie=True, opt="O2", tool=tool,
        confusion=Confusion(tp=tp, fp=1, fn=2),
        elapsed_seconds=0.25,
        phase_seconds={"sweep": 0.1},
    )


def _failure(program="p0", tool="funseeker") -> FailureRecord:
    return FailureRecord(
        suite="synthetic", program=program, compiler="gcc", bits=64,
        pie=True, opt="O2", tool=tool, phase=PHASE_DETECT,
        error_type="RuntimeError", message="boom", attempts=2,
        elapsed_seconds=0.5,
    )


def _manifest() -> dict:
    return build_manifest([], ["funseeker"], scale="tiny", seed=1)


def test_append_and_read_roundtrip(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    record = _record()
    failure = _failure(program="p1")
    journal.append_record(record)
    journal.append_failure(failure)
    journal.close()

    state = read_journal(tmp_path / "run")
    assert state.records == [record]
    assert state.failures == [failure]
    assert not state.torn_tail
    assert state.corrupt_lines == 0
    assert state.completed == {cell_key(record)}


def test_failures_never_count_as_completed(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_failure(_failure())
    journal.close()
    assert read_journal(tmp_path / "run").completed == set()


def test_success_supersedes_journaled_failure(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_failure(_failure())
    journal.append_record(_record())      # the resume healed it
    journal.close()
    state = read_journal(tmp_path / "run")
    assert state.failures == []
    assert len(state.records) == 1


def test_later_record_wins(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_record(_record(tp=1))
    journal.append_record(_record(tp=9))
    journal.close()
    state = read_journal(tmp_path / "run")
    assert len(state.records) == 1
    assert state.records[0].confusion.tp == 9


def test_torn_tail_is_dropped_not_fatal(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_record(_record(program="p0"))
    journal.append_record(_record(program="p1"))
    journal.close()
    path = tmp_path / "run" / JOURNAL_NAME
    data = path.read_bytes()
    path.write_bytes(data[:-20])          # tear the last line mid-record

    state = read_journal(tmp_path / "run")
    assert state.torn_tail
    assert [r.program for r in state.records] == ["p0"]


def test_corrupt_interior_line_is_skipped_and_counted(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_record(_record(program="p0"))
    journal.append_record(_record(program="p1"))
    journal.close()
    path = tmp_path / "run" / JOURNAL_NAME
    lines = path.read_text().splitlines()
    lines[0] = lines[0][:-10] + "X" * 10  # flip bytes inside line 1
    path.write_text("\n".join(lines) + "\n")

    state = read_journal(tmp_path / "run")
    assert state.corrupt_lines == 1
    assert not state.torn_tail
    assert [r.program for r in state.records] == ["p1"]


def test_crc_rejects_payload_tampering(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_record(_record(tp=5))
    journal.close()
    path = tmp_path / "run" / JOURNAL_NAME
    doc = json.loads(path.read_text())
    doc["data"]["tp"] = 999               # tamper without fixing the crc
    path.write_text(json.dumps(doc) + "\n")
    assert read_journal(tmp_path / "run").records == []


def test_missing_journal_reads_empty(tmp_path):
    state = read_journal(tmp_path / "nowhere")
    assert state.records == [] and state.failures == []


def test_create_refuses_existing_run_dir(tmp_path):
    RunJournal.create(tmp_path / "run", _manifest()).close()
    with pytest.raises(JournalError):
        RunJournal.create(tmp_path / "run", _manifest())


def test_resume_requires_a_manifest(tmp_path):
    with pytest.raises(JournalError):
        RunJournal.resume(tmp_path / "empty")
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.close()
    resumed = RunJournal.resume(tmp_path / "run")
    assert resumed.manifest()["schema"] == "run-manifest/v1"


def test_append_fault_raises_journal_write_error(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    faults.install("enospc@journal.append#1", env=False)
    try:
        with pytest.raises(JournalWriteError):
            journal.append_record(_record())
    finally:
        faults.clear()
        journal.close()


def test_truncate_fault_leaves_a_real_torn_line(tmp_path):
    journal = RunJournal.create(tmp_path / "run", _manifest())
    journal.append_record(_record(program="p0"))
    # Hit counting starts at plan install, so the next append is hit 1.
    faults.install("truncate@journal.append#1", env=False)
    try:
        with pytest.raises(JournalWriteError):
            journal.append_record(_record(program="p1"))
    finally:
        faults.clear()
        journal.close()
    state = read_journal(tmp_path / "run")
    assert state.torn_tail
    assert [r.program for r in state.records] == ["p0"]


def test_manifest_checks_fingerprint_and_tools(tiny_corpus):
    corpus = tiny_corpus[:3]
    manifest = build_manifest(corpus, ["funseeker"], scale="tiny", seed=1)
    check_manifest(manifest, corpus, ["funseeker"])
    with pytest.raises(ManifestMismatchError):
        check_manifest(manifest, corpus, ["funseeker", "ida"])
    with pytest.raises(ManifestMismatchError):
        check_manifest(manifest, corpus[:2], ["funseeker"])
    with pytest.raises(ManifestMismatchError):
        check_manifest({"schema": "bogus/v0"}, corpus, ["funseeker"])


def test_corpus_fingerprint_tracks_content(tiny_corpus):
    a = corpus_fingerprint(tiny_corpus[:2])
    assert a == corpus_fingerprint(tiny_corpus[:2])
    assert a != corpus_fingerprint(tiny_corpus[:3])
    assert a != corpus_fingerprint(list(reversed(tiny_corpus[:2])))


def test_merge_resumed_report_is_canonically_ordered(tiny_corpus):
    corpus = tiny_corpus[:2]
    tools = ["funseeker", "fetch"]

    def rec(entry, tool):
        p = entry.profile
        return RunRecord(
            suite=entry.suite, program=entry.program, compiler=p.compiler,
            bits=p.bits, pie=p.pie, opt=p.opt, tool=tool,
            confusion=Confusion(tp=1), elapsed_seconds=0.0)

    # Prior journal holds the *second* entry's cells; the resume run
    # produced the first entry's — merged output must be corpus order.
    from repro.eval.journal import JournalState
    prior = JournalState(records=[rec(corpus[1], t) for t in tools])
    fresh = EvalReport(records=[rec(corpus[0], t) for t in tools])
    merged = merge_resumed_report(corpus, tools, prior, fresh)
    assert [(r.program, r.tool) for r in merged.records] == [
        (entry.program, tool) for entry in corpus for tool in tools]
    assert merged.failures == []


def test_merge_fresh_outcome_supersedes_journal(tiny_corpus):
    corpus = tiny_corpus[:1]
    entry = corpus[0]
    p = entry.profile
    tools = ["funseeker"]
    from repro.eval.journal import JournalState
    journaled_failure = FailureRecord(
        suite=entry.suite, program=entry.program, compiler=p.compiler,
        bits=p.bits, pie=p.pie, opt=p.opt, tool="funseeker",
        phase=PHASE_DETECT, error_type="WorkerLost", message="gone")
    fresh_record = RunRecord(
        suite=entry.suite, program=entry.program, compiler=p.compiler,
        bits=p.bits, pie=p.pie, opt=p.opt, tool="funseeker",
        confusion=Confusion(tp=3), elapsed_seconds=0.0)
    merged = merge_resumed_report(
        corpus, tools,
        JournalState(failures=[journaled_failure]),
        EvalReport(records=[fresh_record]))
    assert merged.failures == []
    assert merged.records == [fresh_record]
    assert entry_cell_key(entry, "funseeker") == cell_key(fresh_record)
