"""Tests for the evaluation runner and error analysis."""

import pytest

from repro.baselines import FunSeekerDetector, NaiveEndbrDetector
from repro.eval.runner import analyze_errors, run_evaluation


@pytest.fixture(scope="module")
def report(tiny_corpus):
    return run_evaluation(
        tiny_corpus[:8],
        {"funseeker": FunSeekerDetector(), "naive": NaiveEndbrDetector()},
    )


class TestRunEvaluation:
    def test_record_count(self, report, tiny_corpus):
        assert len(report.records) == 8 * 2

    def test_records_carry_provenance(self, report):
        rec = report.records[0]
        assert rec.suite in ("coreutils", "binutils", "spec")
        assert rec.compiler in ("gcc", "clang")
        assert rec.bits in (32, 64)
        assert rec.opt
        assert rec.elapsed_seconds >= 0

    def test_filtered(self, report):
        fs = report.filtered(tool="funseeker")
        assert len(fs.records) == 8
        assert all(r.tool == "funseeker" for r in fs.records)
        both = report.filtered(tool="funseeker", bits=64)
        assert all(r.bits == 64 for r in both.records)

    def test_pooled_counts(self, report):
        fs = report.filtered(tool="funseeker")
        pooled = fs.pooled()
        assert pooled.tp == sum(r.confusion.tp for r in fs.records)

    def test_funseeker_beats_naive(self, report):
        fs = report.filtered(tool="funseeker").pooled()
        naive = report.filtered(tool="naive").pooled()
        assert fs.f1 > naive.f1

    def test_mean_time(self, report):
        assert report.filtered(tool="funseeker").mean_time() > 0
        from repro.eval.runner import EvalReport

        assert EvalReport().mean_time() == 0.0

    def test_tools_and_suites(self, report):
        assert report.tools() == ["funseeker", "naive"]
        assert set(report.suites()) <= {"coreutils", "binutils", "spec"}


class TestFilteredMissingAttributes:
    """Regression: a ``None``-valued criterion must not match records
    or failures that *lack* the attribute — ``getattr(f, k, None)``
    made ``filtered(confusion=None)`` keep every failure it documents
    as excluded."""

    @staticmethod
    def _synthetic_report():
        from repro.eval.isolation import PHASE_DETECT, FailureRecord
        from repro.eval.metrics import Confusion
        from repro.eval.runner import EvalReport, RunRecord

        prov = dict(suite="coreutils", program="p", compiler="gcc",
                    bits=64, pie=True, opt="O2")
        report = EvalReport()
        report.records.append(RunRecord(
            **prov, tool="funseeker",
            confusion=Confusion(tp=1, fp=0, fn=0), elapsed_seconds=0.1,
        ))
        # A record whose criterion attribute genuinely IS None.
        report.records.append(RunRecord(
            **prov, tool="weird", confusion=None, elapsed_seconds=0.1,
        ))
        report.failures.append(FailureRecord(
            **prov, tool="fetch", phase=PHASE_DETECT,
            error_type="ValueError", message="boom",
        ))
        return report

    def test_none_criterion_excludes_failures(self):
        report = self._synthetic_report()
        out = report.filtered(confusion=None)
        # Failures have no ``confusion`` attribute at all: excluded.
        assert out.failures == []
        # The record that really carries confusion=None still matches.
        assert [r.tool for r in out.records] == ["weird"]

    def test_none_criterion_against_failure_only_field(self):
        report = self._synthetic_report()
        # ``phase`` exists only on failures; a None criterion matches
        # neither the records (missing) nor the failures (non-None).
        out = report.filtered(phase=None)
        assert out.records == []
        assert out.failures == []

    def test_real_values_still_match_failures(self):
        report = self._synthetic_report()
        out = report.filtered(tool="fetch")
        assert out.records == []
        assert [f.tool for f in out.failures] == ["fetch"]


class TestErrorAnalysis:
    def test_perfect_detection_no_errors(self, tiny_corpus):
        entry = tiny_corpus[0]
        gt = entry.binary.ground_truth.function_starts
        breakdown = analyze_errors(entry, set(gt))
        assert breakdown.fn_total == 0
        assert breakdown.fp_total == 0

    def test_dead_function_miss_classified(self, tiny_corpus):
        entry = next(
            e for e in tiny_corpus
            if any(g.is_dead and g.is_function
                   for g in e.binary.ground_truth.entries)
        )
        gt = entry.binary.ground_truth
        dead = next(g.address for g in gt.entries
                    if g.is_dead and g.is_function)
        breakdown = analyze_errors(entry, gt.function_starts - {dead})
        assert breakdown.fn_dead == 1
        assert breakdown.fn_tail_target == 0

    def test_fragment_fp_classified(self, tiny_corpus):
        entry = next(e for e in tiny_corpus
                     if e.binary.ground_truth.fragment_starts)
        gt = entry.binary.ground_truth
        frag = next(iter(gt.fragment_starts))
        breakdown = analyze_errors(entry, gt.function_starts | {frag})
        assert breakdown.fp_fragment == 1
        assert breakdown.fp_other == 0

    def test_other_fp_classified(self, tiny_corpus):
        entry = tiny_corpus[0]
        gt = entry.binary.ground_truth
        breakdown = analyze_errors(entry, gt.function_starts | {0x1})
        assert breakdown.fp_other == 1

    def test_merge(self):
        from repro.eval.runner import ErrorBreakdown

        a = ErrorBreakdown(fn_dead=1, fp_fragment=2)
        b = ErrorBreakdown(fn_tail_target=3, fp_other=1)
        a.merge(b)
        assert a.fn_total == 4
        assert a.fp_total == 3
