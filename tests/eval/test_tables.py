"""Tests for the table/figure renderers (smoke + shape checks)."""

import pytest

from repro.analysis.function_props import ENDBR
from repro.eval.tables import (
    error_breakdown,
    figure3,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def corpus(tiny_corpus):
    return tiny_corpus


class TestTable1:
    def test_renders_and_returns_results(self, corpus):
        text, results = table1(corpus)
        assert "TABLE I" in text
        assert results
        for (compiler, suite), (entry_f, indir_f, exc_f) in results.items():
            assert compiler in ("gcc", "clang")
            assert abs(entry_f + indir_f + exc_f - 1.0) < 1e-9

    def test_spec_has_exception_share(self, corpus):
        _text, results = table1(corpus)
        for compiler in ("gcc", "clang"):
            if (compiler, "spec") in results:
                assert results[(compiler, "spec")][2] > 0.03
            if (compiler, "coreutils") in results:
                assert results[(compiler, "coreutils")][2] == 0.0


class TestFigure3:
    def test_venn_shape(self, corpus):
        text, venn = figure3(corpus)
        assert "FIGURE 3" in text
        assert venn.total > 0
        frac = venn.with_property(ENDBR) / venn.total
        assert 0.8 < frac < 0.95


class TestTable2:
    def test_config_orderings(self, corpus):
        text, report = table2(corpus)
        assert "TABLE II" in text
        p = {i: report.filtered(tool=f"cfg{i}").pooled()
             for i in (1, 2, 3, 4)}
        # The paper's structural relations.
        assert p[2].precision >= p[1].precision
        assert p[3].precision < p[2].precision - 0.3
        assert p[4].precision > p[3].precision + 0.3
        assert p[3].recall >= p[2].recall
        assert p[4].recall >= p[2].recall


class TestTable3:
    def test_tool_orderings(self, corpus):
        text, report = table3(corpus)
        assert "TABLE III" in text
        pooled = {t: report.filtered(tool=t).pooled()
                  for t in ("funseeker", "ida", "ghidra", "fetch")}
        fs = pooled["funseeker"]
        assert fs.precision > 0.97 and fs.recall > 0.97
        assert pooled["ida"].recall < fs.recall
        assert pooled["fetch"].recall < fs.recall  # x86 clang collapse
        assert "mean time/binary" in text


class TestErrorBreakdown:
    def test_paper_categories(self, corpus):
        text, total = error_breakdown(corpus)
        assert "error analysis" in text
        if total.fn_total:
            assert total.fn_dead / total.fn_total > 0.5
        if total.fp_total:
            assert total.fp_fragment / total.fp_total == 1.0
