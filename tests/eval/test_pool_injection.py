"""Executor injection for the parallel runner (``pool_factory``)."""

from __future__ import annotations

from multiprocessing import dummy

from repro.baselines import ALL_DETECTORS
from repro.eval.parallel import run_evaluation_parallel
from repro.eval.runner import run_evaluation


def test_injected_pool_runs_the_sweep(tiny_corpus):
    corpus = tiny_corpus[:2]
    calls: list[int | None] = []

    def factory(processes=None, initializer=None, initargs=()):
        calls.append(processes)
        return dummy.Pool(processes or 1, initializer, initargs)

    parallel = run_evaluation_parallel(
        corpus, ["fetch"], workers=2, pool_factory=factory)
    assert calls == [2], "the injected factory built the pool"
    serial = run_evaluation(corpus, {"fetch": ALL_DETECTORS["fetch"]()})

    def key(record):
        return (record.suite, record.program, record.compiler,
                record.bits, record.pie, record.opt, record.tool)

    parallel_map = {key(r): r.confusion for r in parallel.records}
    serial_map = {key(r): r.confusion for r in serial.records}
    assert parallel_map == serial_map
    assert not parallel.failures
