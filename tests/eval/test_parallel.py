"""Tests for the parallel evaluation runner."""

import pytest

from repro.baselines import FunSeekerDetector, NaiveEndbrDetector
from repro.eval.parallel import run_evaluation_parallel
from repro.eval.runner import run_evaluation


class TestParallelRunner:
    def test_matches_serial_results(self, tiny_corpus):
        subset = tiny_corpus[:6]
        serial = run_evaluation(subset, {
            "funseeker": FunSeekerDetector(),
            "naive-endbr": NaiveEndbrDetector(),
        })
        parallel = run_evaluation_parallel(
            subset, ["funseeker", "naive-endbr"], workers=2)

        def key(rec):
            return (rec.suite, rec.program, rec.tool, rec.opt,
                    rec.bits, rec.pie)

        s = {key(r): (r.confusion.tp, r.confusion.fp, r.confusion.fn)
             for r in serial.records}
        p = {key(r): (r.confusion.tp, r.confusion.fp, r.confusion.fn)
             for r in parallel.records}
        assert s == p

    def test_single_worker_inprocess(self, tiny_corpus):
        report = run_evaluation_parallel(
            tiny_corpus[:2], ["funseeker"], workers=1)
        assert len(report.records) == 2
        assert report.pooled().recall > 0.9

    def test_unknown_detector_rejected(self, tiny_corpus):
        with pytest.raises(ValueError, match="unknown"):
            run_evaluation_parallel(tiny_corpus[:1], ["nonexistent"])

    def test_empty_corpus(self):
        report = run_evaluation_parallel([], ["funseeker"], workers=1)
        assert report.records == []


class TestExport:
    @pytest.fixture(scope="class")
    def report(self, tiny_corpus):
        return run_evaluation(tiny_corpus[:4], {
            "funseeker": FunSeekerDetector(),
        })

    def test_json_roundtrips(self, report):
        import json

        from repro.eval.export import report_to_json

        doc = json.loads(report_to_json(report))
        assert doc["summary"]["funseeker"]["binaries"] == 4
        assert len(doc["records"]) == 4
        rec = doc["records"][0]
        assert {"suite", "tool", "tp", "precision"} <= set(rec)
        assert doc["summary"]["funseeker"]["recall"] > 0.9

    def test_csv_shape(self, report):
        from repro.eval.export import report_to_csv

        lines = report_to_csv(report).strip().splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert lines[0].startswith("suite,program,compiler")

    def test_cli_evaluate(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.json"
        assert main(["evaluate", "--scale", "tiny",
                     "--tools", "funseeker", "--workers", "1",
                     "--output", str(out)]) == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["summary"]["funseeker"]["binaries"] == 24
