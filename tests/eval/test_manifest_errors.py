"""Resume-refusal diagnostics: divergence naming vs corrupt manifests."""

from __future__ import annotations

import dataclasses

import pytest

from repro import cli, obs
from repro.errors import ManifestCorruptError, ManifestMismatchError
from repro.eval.journal import (
    RunJournal,
    build_manifest,
    check_manifest,
)

TOOLS = ["funseeker", "fetch"]


def _perturb(entry, extra: bytes = b"\x00"):
    return dataclasses.replace(entry, stripped=entry.stripped + extra)


def test_check_manifest_accepts_identical_corpus(tiny_corpus):
    manifest = build_manifest(tiny_corpus, TOOLS)
    check_manifest(manifest, tiny_corpus, TOOLS)


def test_mismatch_names_first_divergent_hash(tiny_corpus):
    manifest = build_manifest(tiny_corpus, TOOLS)
    modified = list(tiny_corpus)
    modified[1] = _perturb(modified[1])
    with pytest.raises(ManifestMismatchError) as excinfo:
        check_manifest(manifest, modified, TOOLS)
    message = str(excinfo.value)
    assert f"first divergent entry is #1 {modified[1].label}" in message
    assert "hash changed" in message


def test_mismatch_names_first_divergent_label(tiny_corpus):
    manifest = build_manifest(tiny_corpus, TOOLS)
    swapped = list(tiny_corpus)
    swapped[0], swapped[1] = swapped[1], swapped[0]
    with pytest.raises(ManifestMismatchError) as excinfo:
        check_manifest(manifest, swapped, TOOLS)
    message = str(excinfo.value)
    assert "first divergent entry is #0" in message
    assert tiny_corpus[0].label in message
    assert swapped[0].label in message


def test_mismatch_names_missing_and_extra_entries(tiny_corpus):
    manifest = build_manifest(tiny_corpus, TOOLS)
    truncated = list(tiny_corpus)[:-1]
    with pytest.raises(ManifestMismatchError) as excinfo:
        check_manifest(manifest, truncated, TOOLS)
    assert (f"first missing entry is #{len(truncated)} "
            f"{tiny_corpus[-1].label}") in str(excinfo.value)

    short_manifest = build_manifest(truncated, TOOLS)
    with pytest.raises(ManifestMismatchError) as excinfo:
        check_manifest(short_manifest, tiny_corpus, TOOLS)
    assert (f"first extra entry is #{len(truncated)} "
            f"{tiny_corpus[-1].label}") in str(excinfo.value)


def test_old_manifest_without_entries_still_refuses(tiny_corpus):
    manifest = build_manifest(tiny_corpus, TOOLS)
    del manifest["corpus"]["entries"]
    modified = list(tiny_corpus)
    modified[0] = _perturb(modified[0])
    with pytest.raises(ManifestMismatchError) as excinfo:
        check_manifest(manifest, modified, TOOLS)
    message = str(excinfo.value)
    assert "corpus changed" in message
    assert "divergent" not in message  # no per-entry data to name


def test_corrupt_manifest_raises_distinct_error(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{torn mid-writ",
                                           encoding="utf-8")
    journal = RunJournal(run_dir)
    try:
        with pytest.raises(ManifestCorruptError):
            journal.manifest()
    finally:
        journal.close()

    other = tmp_path / "other"
    other.mkdir()
    (other / "manifest.json").write_text('"a bare string"',
                                         encoding="utf-8")
    journal = RunJournal(other)
    try:
        with pytest.raises(ManifestCorruptError):
            journal.manifest()
    finally:
        journal.close()


def test_serve_cli_distinguishes_corrupt_from_mismatch(tmp_path):
    recorder = obs.recorder()
    try:
        corrupt = tmp_path / "corrupt"
        corrupt.mkdir()
        (corrupt / "manifest.json").write_text("{broken",
                                               encoding="utf-8")
        assert cli.main(["serve", "--run-dir", str(corrupt)]) == 3

        mismatched = tmp_path / "mismatched"
        mismatched.mkdir()
        (mismatched / "manifest.json").write_text(
            '{"schema": "journal-manifest/v1"}', encoding="utf-8")
        assert cli.main(["serve", "--run-dir", str(mismatched)]) == 2

        assert cli.main(["serve", "--run-dir", str(tmp_path / "new"),
                         "--tools", "no-such-tool"]) == 2
    finally:
        obs.set_recorder(recorder)


def test_evaluate_cli_resume_exit_codes(tmp_path, tiny_corpus, capsys):
    # Exit 3: the run directory itself is damaged.
    corrupt = tmp_path / "corrupt"
    corrupt.mkdir()
    (corrupt / "manifest.json").write_text("{broken", encoding="utf-8")
    (corrupt / "journal.jsonl").write_text("", encoding="utf-8")
    code = cli.main(["evaluate", "--resume", str(corrupt)])
    assert code == 3
    err = capsys.readouterr().err
    assert "damaged" in err

    # Exit 2: a valid manifest for a *different* run, named precisely.
    modified = list(tiny_corpus)
    modified[0] = _perturb(modified[0])
    divergent = tmp_path / "divergent"
    RunJournal.create(
        divergent,
        build_manifest(modified, ["funseeker", "ida", "ghidra", "fetch"],
                       scale="tiny", seed=2022),
    ).close()
    code = cli.main(["evaluate", "--resume", str(divergent)])
    assert code == 2
    err = capsys.readouterr().err
    assert "refusing to resume" in err
    assert "first divergent entry is #0" in err
