"""Shared-memory arena lifecycle: idempotent destroy + atexit sweep."""

from __future__ import annotations

import os

import pytest

from repro.eval import shm

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="POSIX shared memory unavailable")


def test_roundtrip_and_idempotent_destroy():
    arena, refs = shm.share_images([b"alpha", b"longer-image-bytes"])
    try:
        assert refs[0].fetch() == b"alpha"
        assert refs[1].fetch() == b"longer-image-bytes"
        assert arena.name in shm._LIVE_ARENAS
    finally:
        arena.destroy()
    assert arena.name not in shm._LIVE_ARENAS
    # Crash-recovery paths may race to destroy; every later call is a
    # no-op instead of an OSError.
    arena.destroy()
    arena.destroy()


def test_destroyed_segment_is_unlinked():
    arena, _ = shm.share_images([b"payload"])
    name = arena.name
    arena.destroy()
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_atexit_sweep_reaps_creator_arenas():
    arena, _ = shm.share_images([b"stranded"])
    assert arena.name in shm._LIVE_ARENAS
    shm._reap_live_arenas()
    assert arena.name not in shm._LIVE_ARENAS
    assert arena._destroyed


def test_sweep_skips_inherited_arenas():
    # A forked worker inherits the registry; it must never unlink the
    # parent's segments on its own exit. Simulate by faking the pid.
    arena, _ = shm.share_images([b"parent-owned"])
    arena._creator_pid = os.getpid() + 1
    try:
        shm._reap_live_arenas()
        assert arena.name in shm._LIVE_ARENAS
        assert not arena._destroyed
    finally:
        arena._creator_pid = os.getpid()
        arena.destroy()
    assert arena.name not in shm._LIVE_ARENAS
