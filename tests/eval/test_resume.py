"""Crash-recovery acceptance: faulted runs resume to the fault-free report.

Every test here follows the same shape as the ``funseeker chaos``
command: run a sweep with a deterministic fault plan journaling into a
run directory, crash (or finish degraded), then resume with the plan
cleared and assert the recovered report is identical to an
uninterrupted run once timing fields are normalized away.
"""

import json

import pytest

from repro import faults
from repro.cache import DiskCache, set_default_cache
from repro.errors import JournalWriteError
from repro.eval.export import report_to_json
from repro.eval.journal import (
    JOURNAL_NAME,
    RunJournal,
    build_manifest,
    read_journal,
    merge_resumed_report,
)
from repro.eval.parallel import run_evaluation_parallel
from repro.faults.chaos import (
    ChaosScenario,
    normalize_report_doc,
    run_chaos,
)

TOOLS = ["funseeker"]


def _normalized(report) -> dict:
    return normalize_report_doc(json.loads(report_to_json(report)))


@pytest.fixture()
def corpus(tiny_corpus):
    return tiny_corpus[:3]


@pytest.fixture()
def baseline(corpus):
    faults.clear()
    return _normalized(run_evaluation_parallel(corpus, TOOLS, workers=1))


def _faulted_then_resumed(tmp_path, corpus, plan, *, workers=1,
                          timeout=5.0, tear_tail_bytes=0):
    """Run the faulted sweep, then a clean resume; return the pieces."""
    run_dir = tmp_path / "run"
    journal = RunJournal.create(
        run_dir, build_manifest(corpus, TOOLS, timeout=timeout))
    crash = None
    faults.install(plan)
    try:
        run_evaluation_parallel(
            corpus, TOOLS, workers=workers, timeout=timeout,
            journal=journal, backstop_grace=2.0)
    except JournalWriteError as exc:
        crash = exc
    finally:
        faults.clear()
        journal.close()

    if tear_tail_bytes:
        path = run_dir / JOURNAL_NAME
        path.write_bytes(path.read_bytes()[:-tear_tail_bytes])

    state = read_journal(run_dir)
    resume_journal = RunJournal.resume(run_dir)
    try:
        fresh = run_evaluation_parallel(
            corpus, TOOLS, workers=1, timeout=timeout,
            journal=resume_journal, completed=state.completed)
    finally:
        resume_journal.close()
    return crash, state, merge_resumed_report(corpus, TOOLS, state, fresh)


@pytest.mark.chaos_smoke
def test_worker_kill_resumes_to_identical_report(tmp_path, corpus,
                                                 baseline):
    # One pool worker is SIGKILLed mid-sweep (its 3rd cell = second
    # job's parse); the parent backstop declares the job lost, the
    # journal keeps the rest, and the resume heals the lost cells.
    crash, state, final = _faulted_then_resumed(
        tmp_path, corpus, "kill@cell.execute#3", workers=2)
    assert crash is None                       # sweep itself survived
    assert final.failures == []
    assert _normalized(final) == baseline


@pytest.mark.chaos_smoke
def test_torn_journal_tail_resumes_to_identical_report(tmp_path, corpus,
                                                       baseline):
    # The torn line is written for real (half the bytes reach disk)
    # before the injected crash aborts the sweep.
    crash, state, final = _faulted_then_resumed(
        tmp_path, corpus, "truncate@journal.append#2")
    assert isinstance(crash, JournalWriteError)
    assert state.torn_tail
    assert len(state.records) == 1
    assert final.failures == []
    assert _normalized(final) == baseline


@pytest.mark.chaos_smoke
def test_raw_tail_truncation_resumes_to_identical_report(tmp_path, corpus,
                                                         baseline):
    # A crash can also tear the file at an arbitrary byte boundary
    # (simulated by chopping the completed journal's tail).
    crash, state, final = _faulted_then_resumed(
        tmp_path, corpus, "", tear_tail_bytes=25)
    assert crash is None
    assert state.torn_tail
    assert final.failures == []
    assert _normalized(final) == baseline


@pytest.mark.chaos_smoke
def test_journal_enospc_aborts_then_resumes(tmp_path, corpus, baseline):
    crash, state, final = _faulted_then_resumed(
        tmp_path, corpus, "enospc@journal.append#2")
    assert isinstance(crash, JournalWriteError)
    assert "injected disk-full" in str(crash)
    assert len(state.records) == 1             # appends before the fault
    assert final.failures == []
    assert _normalized(final) == baseline


@pytest.mark.chaos_smoke
def test_injected_hang_times_out_then_resumes(tmp_path, corpus, baseline):
    crash, state, final = _faulted_then_resumed(
        tmp_path, corpus, "hang@cell.execute#2", timeout=1.0)
    assert crash is None
    # The hung cell was journaled as a timeout failure, then healed.
    assert any(f.is_timeout for f in state.failures)
    assert final.failures == []
    assert _normalized(final) == baseline


@pytest.mark.chaos_smoke
def test_corrupted_cache_entries_recover_in_run(tmp_path, corpus,
                                                baseline):
    # Warm a disk cache, corrupt every subsequent read, and assert the
    # malformed-entry path (treat as miss, recompute) keeps the report
    # identical — no resume needed for this one.
    previous = None
    set_default_cache(DiskCache(tmp_path / "cache"))
    try:
        run_evaluation_parallel(corpus, TOOLS, workers=1)   # warm
        faults.install("corrupt@cache.get#*", env=False)
        try:
            report = run_evaluation_parallel(corpus, TOOLS, workers=1)
        finally:
            faults.clear()
    finally:
        set_default_cache(previous)
    assert report.failures == []
    assert _normalized(report) == baseline


@pytest.mark.chaos_smoke
def test_chaos_harness_end_to_end(tmp_path, corpus):
    # The harness the CLI runs, on a reduced scenario set for speed.
    scenarios = [
        ChaosScenario(name="torn-journal",
                      plan="truncate@journal.append#2"),
        ChaosScenario(name="cell-hang", plan="hang@cell.execute#2",
                      timeout=1.0),
    ]
    report = run_chaos(corpus, TOOLS, tmp_path / "chaos",
                       scenarios=scenarios)
    assert report.ok, report.render()
    assert report.baseline_cells == len(corpus) * len(TOOLS)
    rendered = report.render()
    assert "torn-journal" in rendered and "cell-hang" in rendered


def test_resume_skips_completed_cells(tmp_path, corpus):
    run_dir = tmp_path / "run"
    journal = RunJournal.create(run_dir,
                                build_manifest(corpus, TOOLS))
    try:
        run_evaluation_parallel(corpus, TOOLS, workers=1,
                                journal=journal)
    finally:
        journal.close()
    state = read_journal(run_dir)
    assert len(state.completed) == len(corpus)
    fresh = run_evaluation_parallel(corpus, TOOLS, workers=1,
                                    completed=state.completed)
    assert fresh.records == [] and fresh.failures == []
    merged = merge_resumed_report(corpus, TOOLS, state, fresh)
    assert len(merged.records) == len(corpus)
