"""Circuit-breaker state machine and its integration with the runners."""

from repro.baselines import ALL_DETECTORS
from repro.eval.breaker import (
    CIRCUIT_OPEN,
    PHASE_BREAKER,
    BreakerState,
    CircuitBreaker,
)
from repro.eval.parallel import run_evaluation_parallel
from repro.eval.runner import run_evaluation


def test_opens_after_threshold_consecutive_failures():
    breaker = CircuitBreaker(threshold=3, cooldown=2)
    for _ in range(2):
        breaker.record_failure("ida")
    assert breaker.state("ida") is BreakerState.CLOSED
    breaker.record_failure("ida")
    assert breaker.state("ida") is BreakerState.OPEN
    assert breaker.open_tools() == ["ida"]


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(threshold=2)
    breaker.record_failure("ida")
    breaker.record_success("ida")
    breaker.record_failure("ida")
    assert breaker.state("ida") is BreakerState.CLOSED


def test_open_circuit_skips_then_half_opens_one_probe():
    breaker = CircuitBreaker(threshold=1, cooldown=2)
    breaker.record_failure("ida")
    assert not breaker.allow("ida")       # skip 1 (cooldown)
    assert breaker.allow("ida")           # skip 2 -> half-open probe
    assert breaker.state("ida") is BreakerState.HALF_OPEN
    assert not breaker.allow("ida")       # probe already in flight


def test_probe_success_closes_probe_failure_reopens():
    breaker = CircuitBreaker(threshold=1, cooldown=1)
    breaker.record_failure("ida")
    assert breaker.allow("ida")           # probe
    breaker.record_success("ida")
    assert breaker.state("ida") is BreakerState.CLOSED

    breaker.record_failure("ida")
    assert breaker.allow("ida")           # probe again
    breaker.record_failure("ida")
    assert breaker.state("ida") is BreakerState.OPEN


def test_circuits_are_per_tool():
    breaker = CircuitBreaker(threshold=1)
    breaker.record_failure("ida")
    assert breaker.state("ida") is BreakerState.OPEN
    assert breaker.state("funseeker") is BreakerState.CLOSED
    assert breaker.allow("funseeker")


class _AlwaysCrash:
    def detect(self, elf):
        raise RuntimeError("detector is sick")


def _with_crashing_detector():
    detectors = dict(ALL_DETECTORS)
    detectors["crash"] = _AlwaysCrash
    return detectors


def test_serial_runner_records_circuit_open_failures(tiny_corpus,
                                                     monkeypatch):
    corpus = tiny_corpus[:4]
    breaker = CircuitBreaker(threshold=2, cooldown=100)
    detectors = {"funseeker": ALL_DETECTORS["funseeker"](),
                 "crash": _AlwaysCrash()}
    report = run_evaluation(corpus, detectors, breaker=breaker)
    crash_fails = [f for f in report.failures if f.tool == "crash"]
    # 2 real failures trip the breaker; the rest are skipped cells.
    assert [f.phase for f in crash_fails[:2]] == ["detect", "detect"]
    assert all(f.phase == PHASE_BREAKER and f.error_type == CIRCUIT_OPEN
               for f in crash_fails[2:])
    assert len(crash_fails) == len(corpus)
    # The healthy tool is untouched.
    assert len(report.filtered(tool="funseeker").records) == len(corpus)


def test_parallel_runner_skips_open_tools_at_dispatch(tiny_corpus,
                                                      monkeypatch):
    monkeypatch.setitem(ALL_DETECTORS, "crash", _AlwaysCrash)
    corpus = tiny_corpus[:4]
    breaker = CircuitBreaker(threshold=2, cooldown=100)
    report = run_evaluation_parallel(
        corpus, ["funseeker", "crash"], workers=1, breaker=breaker)
    crash_fails = [f for f in report.failures if f.tool == "crash"]
    assert len(crash_fails) == len(corpus)
    assert sum(f.error_type == CIRCUIT_OPEN for f in crash_fails) == (
        len(corpus) - 2)
    assert breaker.state("crash") is BreakerState.OPEN
    assert len(report.filtered(tool="funseeker").records) == len(corpus)
