"""Quarantine capture and offline replay."""

from repro.eval.isolation import PHASE_DETECT, PHASE_PARSE, FailureRecord
from repro.eval.quarantine import QuarantineStore, replay_entry
from repro.eval.runner import run_evaluation


def _failure(tool="funseeker", phase=PHASE_DETECT,
             error_type="RuntimeError") -> FailureRecord:
    return FailureRecord(
        suite="synthetic", program="p0", compiler="gcc", bits=64,
        pie=True, opt="O2", tool=tool, phase=phase,
        error_type=error_type, message="boom")


def test_capture_stores_input_and_metadata(tmp_path):
    store = QuarantineStore(tmp_path / "q")
    entry_dir = store.capture(b"\x7fELF-not-really", _failure())
    assert entry_dir is not None
    entries = store.entries()
    assert len(entries) == 1
    entry = entries[0]
    assert entry.read_input() == b"\x7fELF-not-really"
    assert entry.size == len(b"\x7fELF-not-really")
    assert entry.failures[0]["error_type"] == "RuntimeError"


def test_same_input_is_stored_once_with_merged_failures(tmp_path):
    store = QuarantineStore(tmp_path / "q")
    data = b"same bytes"
    store.capture(data, _failure(tool="funseeker"))
    store.capture(data, _failure(tool="ida"))
    store.capture(data, _failure(tool="ida"))     # duplicate: no-op
    entries = store.entries()
    assert len(entries) == 1
    assert sorted(m["tool"] for m in entries[0].failures) == [
        "funseeker", "ida"]


def test_empty_store_lists_nothing(tmp_path):
    assert QuarantineStore(tmp_path / "missing").entries() == []


def test_replay_reproduces_a_parse_rejection(tmp_path):
    store = QuarantineStore(tmp_path / "q")
    store.capture(b"not an elf at all", _failure(phase=PHASE_PARSE,
                                                 error_type="ElfParseError"))
    [entry] = store.entries()
    [outcome] = replay_entry(entry, timeout=5.0)
    assert outcome.reproduced
    assert outcome.error_type == "ElfParseError"
    assert outcome.original_error == "ElfParseError"


def test_replay_reports_healed_inputs(tmp_path, sample_binary):
    # A valid binary captured against a since-fixed failure replays ok.
    store = QuarantineStore(tmp_path / "q")
    store.capture(sample_binary.data, _failure())
    [entry] = store.entries()
    [outcome] = replay_entry(entry, timeout=30.0)
    assert not outcome.reproduced
    assert outcome.message == "ok"


def test_serial_runner_captures_failing_inputs(tmp_path, tiny_corpus):
    class _Crash:
        def detect(self, elf):
            raise RuntimeError("sick")

    corpus = tiny_corpus[:2]
    store = QuarantineStore(tmp_path / "q")
    run_evaluation(corpus, {"crash": _Crash()}, quarantine=store)
    entries = store.entries()
    assert len(entries) == len(corpus)    # distinct inputs, one each
    assert all(m["tool"] == "crash"
               for e in entries for m in e.failures)
