"""Tests for precision/recall metrics."""

from hypothesis import given, strategies as st

from repro.eval.metrics import (
    Confusion,
    false_negatives,
    false_positives,
    score,
)


class TestScore:
    def test_perfect(self):
        conf = score({1, 2, 3}, {1, 2, 3})
        assert conf.precision == 1.0
        assert conf.recall == 1.0
        assert conf.f1 == 1.0

    def test_counts(self):
        conf = score({1, 2, 3, 4}, {3, 4, 5})
        assert conf.tp == 2
        assert conf.fp == 1
        assert conf.fn == 2
        assert conf.precision == 2 / 3
        assert conf.recall == 0.5

    def test_empty_detection(self):
        conf = score({1, 2}, set())
        assert conf.precision == 0.0
        assert conf.recall == 0.0
        assert conf.f1 == 0.0

    def test_empty_ground_truth(self):
        conf = score(set(), {1})
        assert conf.recall == 0.0
        assert conf.precision == 0.0

    def test_both_empty(self):
        conf = score(set(), set())
        assert conf.precision == 0.0 and conf.recall == 0.0

    def test_fp_fn_helpers(self):
        assert false_positives({1}, {1, 2}) == {2}
        assert false_negatives({1, 3}, {1, 2}) == {3}


class TestConfusionPooling:
    def test_add(self):
        a = Confusion(tp=5, fp=1, fn=2)
        b = Confusion(tp=3, fp=0, fn=1)
        a.add(b)
        assert (a.tp, a.fp, a.fn) == (8, 1, 3)

    @given(
        st.sets(st.integers(0, 200)),
        st.sets(st.integers(0, 200)),
    )
    def test_invariants(self, gt, detected):
        conf = score(gt, detected)
        assert conf.tp + conf.fn == len(gt)
        assert conf.tp + conf.fp == len(detected)
        assert 0.0 <= conf.precision <= 1.0
        assert 0.0 <= conf.recall <= 1.0
        assert 0.0 <= conf.f1 <= 1.0


class TestBoundaryScoring:
    def test_exact_match(self):
        from repro.eval.metrics import score_boundaries

        truth = {0x1000: 0x1040, 0x1040: 0x1080}
        conf = score_boundaries(truth, dict(truth))
        assert conf.precision == 1.0 and conf.recall == 1.0

    def test_tolerance_window(self):
        from repro.eval.metrics import score_boundaries

        truth = {0x1000: 0x1040}
        detected = {0x1000: 0x104C}
        assert score_boundaries(truth, detected).tp == 0
        assert score_boundaries(truth, detected, tolerance=16).tp == 1

    def test_wrong_entry_is_fp_and_fn(self):
        from repro.eval.metrics import score_boundaries

        conf = score_boundaries({0x1000: 0x1040}, {0x2000: 0x2040})
        assert conf.tp == 0
        assert conf.fp == 1
        assert conf.fn == 1

    def test_missing_detection(self):
        from repro.eval.metrics import score_boundaries

        conf = score_boundaries({0x1000: 0x1040, 0x2000: 0x2040},
                                {0x1000: 0x1040})
        assert conf.tp == 1
        assert conf.fn == 1
