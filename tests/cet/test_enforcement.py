"""Tests for the CET enforcement simulator."""

import pytest

from repro.cet import FaultKind, simulate_enforcement
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program

PROFILE = CompilerProfile("gcc", "O2", 64, True)


def _binary(seed=61, violations=0, cxx=False):
    spec = generate_program("cet", 50, PROFILE, seed=seed, cxx=cxx,
                            ibt_violations=violations)
    return link_program(spec, PROFILE)


class TestCompliantTrace:
    def test_clean_binary_traces_without_faults(self):
        report = simulate_enforcement(ELFFile(_binary().data))
        assert report.clean
        assert report.calls_simulated >= 5
        assert report.indirect_dispatches > 0
        assert report.max_shadow_depth >= 1

    def test_cxx_binary_also_clean(self):
        report = simulate_enforcement(ELFFile(_binary(cxx=True).data))
        assert report.clean

    def test_every_call_edge_visited_once(self):
        from repro.cet.enforcement import CetMachine

        elf = ELFFile(_binary().data)
        machine = CetMachine(elf)
        report = machine.run()
        assert report.calls_simulated == len(machine._seen_calls)


class TestViolations:
    def test_stripped_markers_fault_at_dispatch(self):
        binary = _binary(violations=2)
        report = simulate_enforcement(ELFFile(binary.data))
        assert not report.clean
        ibt_faults = [f for f in report.faults
                      if f.kind == FaultKind.IBT]
        assert ibt_faults
        broken = {e.address for e in binary.ground_truth.entries
                  if e.is_function and not e.has_endbr}
        for fault in ibt_faults:
            assert fault.target in broken

    def test_fault_count_scales_with_violations(self):
        few = simulate_enforcement(
            ELFFile(_binary(seed=62, violations=1).data))
        many = simulate_enforcement(
            ELFFile(_binary(seed=62, violations=4).data))
        assert len(many.faults) > len(few.faults)


class TestGuards:
    def test_no_text_rejected(self):
        from repro.cet.enforcement import CetMachine
        from repro.elf import constants as C
        from repro.elf.writer import ElfWriter, SectionSpec

        w = ElfWriter(is64=True, machine=C.EM_X86_64, pie=False)
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=b"x", sh_addr=w.base_addr + 0x1000))
        with pytest.raises(ValueError):
            CetMachine(ELFFile(w.build()))
