"""Tests for the ByteWeight-style learned baseline."""

import pytest

from repro.baselines.byteweight_like import (
    ByteWeightLikeDetector,
    PrefixTree,
    train_prefix_tree,
)
from repro.elf.parser import ELFFile, strip_symbols
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program

PROFILE = CompilerProfile("gcc", "O2", 64, True)


def _binary(seed, profile=PROFILE, **kw):
    spec = generate_program("bw", 60, profile, seed=seed, **kw)
    return link_program(spec, profile)


@pytest.fixture(scope="module")
def tree():
    training = []
    for seed in range(4):
        binary = _binary(seed)
        elf = ELFFile(binary.data)
        txt = elf.section(".text")
        training.append((txt.data, txt.sh_addr,
                         binary.ground_truth.function_starts))
    return train_prefix_tree(training)


class TestPrefixTree:
    def test_weights_reflect_labels(self):
        t = PrefixTree(depth=4)
        t.add(b"\xf3\x0f\x1e\xfa", True)
        t.add(b"\xf3\x0f\x1e\xfa", True)
        t.add(b"\x89\xc2\x01\xd0", False)
        assert t.score(b"\xf3\x0f\x1e\xfa") == 1.0
        assert t.score(b"\x89\xc2\x01\xd0") == 0.0

    def test_unseen_prefix_falls_back_to_shallower_node(self):
        t = PrefixTree(depth=4)
        t.add(b"\xf3\x0f\x1e\xfa", True)
        # Shares 3 bytes; the depth-3 node is all-positive.
        assert t.score(b"\xf3\x0f\x1e\xfb") == 1.0
        # Shares nothing: root weight (1 positive / 1 total = 1.0 if
        # only positives were added; add a negative to ground it).
        t.add(b"\x90\x90\x90\x90", False)
        assert t.score(b"\x55\x48\x89\xe5") == 0.5  # root fallback

    def test_node_count_grows(self, tree):
        assert tree.node_count > 1000


class TestDetection:
    def test_in_distribution_accuracy(self, tree):
        binary = _binary(seed=77)
        conf = score(
            binary.ground_truth.function_starts,
            ByteWeightLikeDetector(tree)
            .detect(ELFFile(strip_symbols(binary.data))).functions,
        )
        assert conf.precision > 0.85
        assert conf.recall > 0.8

    def test_unseen_patterns_degrade_recall(self, tree):
        """Koo et al.'s observation (§VII): learned models depend on
        the training distribution. manual-endbr binaries shift it."""
        binary = _binary(seed=78, manual_endbr=True)
        conf = score(
            binary.ground_truth.function_starts,
            ByteWeightLikeDetector(tree)
            .detect(ELFFile(strip_symbols(binary.data))).functions,
        )
        assert conf.recall < 0.8

    def test_funseeker_unaffected_by_the_same_shift(self):
        from repro.core.funseeker import FunSeeker

        binary = _binary(seed=78, manual_endbr=True)
        conf = score(
            binary.ground_truth.function_starts,
            FunSeeker.from_bytes(strip_symbols(binary.data))
            .identify().functions,
        )
        assert conf.recall > 0.95

    def test_threshold_controls_tradeoff(self, tree):
        binary = _binary(seed=79)
        elf = ELFFile(strip_symbols(binary.data))
        loose = ByteWeightLikeDetector(tree, threshold=0.1) \
            .detect(elf).functions
        strict = ByteWeightLikeDetector(tree, threshold=0.9) \
            .detect(elf).functions
        assert strict <= loose
