"""Tests for the IDA-like, Ghidra-like, and naive detectors, plus the
cross-tool orderings Table III reports."""

import pytest

from repro.baselines import (
    ALL_DETECTORS,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
    NaiveEndbrDetector,
)
from repro.baselines.base import prologue_scan, recursive_traversal
from repro.elf.parser import ELFFile
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program


@pytest.fixture(scope="module")
def gcc_binary():
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("bx", 120, profile, seed=51, cxx=True)
    return link_program(spec, profile)


@pytest.fixture(scope="module")
def clang32_binary():
    profile = CompilerProfile("clang", "O2", 32, True)
    spec = generate_program("bx32", 120, profile, seed=52, cxx=False)
    return link_program(spec, profile)


def _conf(binary, detector):
    result = detector.detect(ELFFile(binary.data))
    return score(binary.ground_truth.function_starts, result.functions)


class TestTraversalHelpers:
    def test_recursive_traversal_follows_calls(self):
        # f0 at 0: call f1(+0x10); ret. f1 at 0x10: ret.
        code = bytearray(32)
        code[0:5] = b"\xe8\x0b\x00\x00\x00"  # call 0x10
        code[5] = 0xC3
        code[0x10] = 0xC3
        found = recursive_traversal(bytes(code), 0, 64, {0})
        assert found == {0, 0x10}

    def test_traversal_stops_at_terminator(self):
        code = b"\xc3" + b"\xe8\x00\x00\x00\x00"  # ret; call (unreached)
        found = recursive_traversal(code, 0, 64, {0})
        assert found == {0}

    def test_prologue_scan_finds_frame_setups(self):
        code = bytearray(48)
        code[0:4] = b"\x55\x48\x89\xe5"         # push rbp; mov rbp,rsp
        code[16:24] = b"\xf3\x0f\x1e\xfa\x55\x48\x89\xe5"  # endbr + push
        found = prologue_scan(bytes(code), 0x1000, 64)
        assert 0x1000 in found
        assert 0x1010 in found

    def test_prologue_scan_respects_skip(self):
        code = b"\x55\x48\x89\xe5" + b"\x90" * 12
        found = prologue_scan(code, 0x1000, 64, skip={0x1000})
        assert 0x1000 not in found


class TestIdaLike:
    def test_lowest_recall(self, gcc_binary):
        """IDA-style traversal misses indirectly-reached functions."""
        ida = _conf(gcc_binary, IdaLikeDetector())
        fs = _conf(gcc_binary, FunSeekerDetector())
        assert ida.recall < fs.recall - 0.1
        assert ida.precision > 0.9

    def test_entry_point_always_found(self, gcc_binary):
        result = IdaLikeDetector().detect(ELFFile(gcc_binary.data))
        start = gcc_binary.ground_truth.entry_named("_start")
        assert start.address in result.functions


class TestGhidraLike:
    def test_good_recall_with_fdes(self, gcc_binary):
        conf = _conf(gcc_binary, GhidraLikeDetector())
        assert conf.recall > 0.95

    def test_recall_drops_without_fdes(self, clang32_binary):
        conf = _conf(clang32_binary, GhidraLikeDetector())
        assert conf.recall < 0.9  # the paper's x86 Clang weakness


class TestNaive:
    def test_matches_endbr_count(self, gcc_binary):
        result = NaiveEndbrDetector().detect(ELFFile(gcc_binary.data))
        from repro.core.funseeker import FunSeeker

        fs = FunSeeker.from_bytes(gcc_binary.data).identify()
        assert result.functions == fs.endbr_all

    def test_misses_endbrless_statics(self, gcc_binary):
        conf = _conf(gcc_binary, NaiveEndbrDetector())
        assert conf.recall < 0.95  # ~11% of functions lack endbr


class TestCrossToolOrderings:
    """The qualitative claims of Table III."""

    def test_funseeker_wins_overall(self, gcc_binary):
        confs = {name: _conf(gcc_binary, cls())
                 for name, cls in ALL_DETECTORS.items()}
        fs = confs["funseeker"]
        for name, conf in confs.items():
            if name == "funseeker":
                continue
            assert fs.f1 >= conf.f1 - 1e-9, name

    def test_registry_names_match(self):
        for name, cls in ALL_DETECTORS.items():
            assert cls().name == name

    def test_detect_bytes_equivalent(self, gcc_binary):
        det = FunSeekerDetector()
        a = det.detect_bytes(gcc_binary.data).functions
        b = det.detect(ELFFile(gcc_binary.data)).functions
        assert a == b
