"""Tests for the FETCH-like detector."""

import pytest

from repro.baselines.fetch_like import FetchLikeDetector, _stack_effect
from repro.elf.parser import ELFFile
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program


def _detect(profile, seed=31, cxx=False, n=60):
    spec = generate_program("fx", n, profile, seed=seed, cxx=cxx)
    binary = link_program(spec, profile)
    result = FetchLikeDetector().detect(ELFFile(binary.data))
    return binary, result


class TestStackEffect:
    @pytest.mark.parametrize("raw,effect", [
        (b"\x55", -8),                        # push rbp
        (b"\x5d", 8),                         # pop rbp
        (b"\x41\x54", -8),                    # push r12
        (b"\x41\x5c", 8),                     # pop r12
        (b"\xc9", 8),                         # leave
        (b"\x48\x83\xec\x20", -0x20),         # sub rsp, 0x20
        (b"\x48\x83\xc4\x20", 0x20),          # add rsp, 0x20
        (b"\x48\x81\xec\x00\x01\x00\x00", -0x100),
        (b"\x68\x00\x00\x00\x00", -8),        # push imm32
        (b"\x90", 0),                         # nop
        (b"\x89\xc2", 0),                     # mov
        (b"\x48\x83\xc0\x08", 0),             # add rax, 8 (not rsp)
    ])
    def test_effects_64(self, raw, effect):
        assert _stack_effect(raw, 64) == effect

    @pytest.mark.parametrize("raw,effect", [
        (b"\x55", -4),                        # push ebp
        (b"\x83\xec\x10", -0x10),             # sub esp, 0x10
        (b"\x83\xc4\x10", 0x10),              # add esp, 0x10
    ])
    def test_effects_32(self, raw, effect):
        assert _stack_effect(raw, 32) == effect


class TestDetection:
    def test_high_accuracy_with_fdes(self):
        binary, result = _detect(CompilerProfile("gcc", "O2", 64, True))
        conf = score(binary.ground_truth.function_starts, result.functions)
        assert conf.recall > 0.99
        assert conf.precision > 0.90

    def test_collapse_without_fdes(self):
        """Clang x86 C binaries: the paper's FETCH failure mode."""
        binary, result = _detect(CompilerProfile("clang", "O2", 32, True))
        conf = score(binary.ground_truth.function_starts, result.functions)
        assert conf.recall < 0.2

    def test_cxx_partially_recovers_on_clang_x86(self):
        binary, result = _detect(CompilerProfile("clang", "O2", 32, True),
                                 cxx=True)
        conf = score(binary.ground_truth.function_starts, result.functions)
        assert conf.recall > 0.2

    def test_fragment_fdes_are_false_positives(self):
        profile = CompilerProfile("gcc", "O2", 64, True)
        binary, result = _detect(profile, seed=33, n=120)
        gt = binary.ground_truth
        fps = result.functions - gt.function_starts
        if gt.fragment_starts:
            assert fps <= gt.fragment_starts
            assert fps, "fragments with FDEs should surface as FPs"

    def test_slower_than_funseeker(self):
        """Table III's timing ordering (FunSeeker several times faster)."""
        from repro.baselines import FunSeekerDetector

        profile = CompilerProfile("gcc", "O2", 64, True)
        spec = generate_program("t", 200, profile, seed=35, cxx=True)
        binary = link_program(spec, profile)
        elf = ELFFile(binary.data)
        fs = min(FunSeekerDetector().detect(elf).elapsed_seconds
                 for _ in range(3))
        fetch = min(FetchLikeDetector().detect(elf).elapsed_seconds
                    for _ in range(3))
        assert fetch > fs * 1.5
