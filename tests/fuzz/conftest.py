"""Shared fuzz-harness fixtures."""

from __future__ import annotations

import pytest

from repro.fuzz.harness import default_base_images


@pytest.fixture(scope="session")
def fuzz_bases() -> dict[str, bytes]:
    return default_base_images()


@pytest.fixture(scope="session")
def fuzz_base(fuzz_bases) -> bytes:
    """The 64-bit PIE base image."""
    return fuzz_bases["gcc-x64-pie"]
