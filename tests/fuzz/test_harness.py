"""Fault-injection harness tests (including the tier-1 smoke run)."""

from __future__ import annotations

import pytest

from repro.errors import FuzzInvariantError
from repro.fuzz import run_fuzz
from repro.fuzz.harness import FuzzCaseFailure, FuzzReport


@pytest.mark.fuzz_smoke
def test_smoke_invariant_holds(fuzz_bases):
    """No uncaught exception, no hang, diagnostics populated.

    A slice of the full ``python -m repro fuzz`` run, sized to stay
    well under ten seconds while touching every mutator family on both
    base images.
    """
    report = run_fuzz(150, seed=2022, base_images=fuzz_bases)
    assert report.ok, report.render()
    assert report.total == 150
    assert all(count > 0 for count in report.per_family.values())
    # The families are aggressive enough that some mutants must be
    # rejected by the strict pipeline and diagnosed by the degraded one.
    assert report.strict_rejected > 0
    assert report.diagnosed >= report.strict_rejected
    report.raise_on_failure()  # no-op on a clean report


def test_run_is_deterministic(fuzz_base):
    bases = {"base": fuzz_base}
    a = run_fuzz(36, seed=7, base_images=bases)
    b = run_fuzz(36, seed=7, base_images=bases)
    assert a.per_family == b.per_family
    assert a.strict_rejected == b.strict_rejected
    assert a.diagnosed == b.diagnosed
    assert a.failures == b.failures


def test_family_subset(fuzz_base):
    report = run_fuzz(10, seed=3, families=["truncate", "ehframe"],
                      base_images={"base": fuzz_base})
    assert set(report.per_family) == {"truncate", "ehframe"}
    assert report.total == 10


def test_unknown_family_rejected(fuzz_base):
    with pytest.raises(ValueError, match="unknown mutator"):
        run_fuzz(1, families=["nosuch"],
                 base_images={"base": fuzz_base})


def test_report_failure_accounting():
    report = FuzzReport(budget=1, seed=0, per_family={"bitflip": 1})
    assert report.ok
    report.failures.append(FuzzCaseFailure(
        family="bitflip", label="flip 0x10.3", base="base", index=0,
        kind="uncaught", stage="strict", error_type="KeyError",
        message="boom",
    ))
    assert not report.ok
    rendered = report.render()
    assert "INVARIANT VIOLATIONS" in rendered
    assert "KeyError" in rendered
    with pytest.raises(FuzzInvariantError, match="uncaught"):
        report.raise_on_failure()
