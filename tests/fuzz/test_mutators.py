"""Mutator family unit tests: determinism and targeting."""

from __future__ import annotations

import random

import pytest

from repro.fuzz.mutators import (
    MUTATOR_FAMILIES,
    _boundaries,
    _section_ranges,
    mutate,
)


def _rng(tag: str) -> random.Random:
    return random.Random(f"test:{tag}")


def test_registry_has_required_families():
    # The acceptance bar is >= 4 families; the named ones must exist.
    assert len(MUTATOR_FAMILIES) >= 4
    for name in ("bitflip", "truncate", "header", "shdr", "ehframe",
                 "lsda"):
        assert name in MUTATOR_FAMILIES


@pytest.mark.parametrize("family", sorted(MUTATOR_FAMILIES))
def test_mutators_are_deterministic(family, fuzz_base):
    a = mutate(family, fuzz_base, _rng(family))
    b = mutate(family, fuzz_base, _rng(family))
    assert a == b
    c = mutate(family, fuzz_base, _rng(family + "-other"))
    # A different seed must explore a different mutation (label or data).
    assert (c.label, c.data) != (a.label, a.data)


@pytest.mark.parametrize("family", sorted(MUTATOR_FAMILIES))
def test_mutants_differ_from_base(family, fuzz_base):
    m = mutate(family, fuzz_base, _rng("differ"))
    assert m.data != fuzz_base
    assert m.family == family
    assert m.label


def test_bitflip_preserves_length(fuzz_base):
    m = mutate("bitflip", fuzz_base, _rng("len"))
    assert len(m.data) == len(fuzz_base)


def test_truncate_shortens(fuzz_base):
    for i in range(16):
        m = mutate("truncate", fuzz_base, _rng(f"cut{i}"))
        assert len(m.data) < len(fuzz_base)


def test_header_mutates_header_only(fuzz_base):
    ehsize = 64  # 64-bit base image
    for i in range(16):
        m = mutate("header", fuzz_base, _rng(f"hdr{i}"))
        diff = [j for j, (a, b) in enumerate(zip(m.data, fuzz_base))
                if a != b]
        assert diff, m.label
        assert all(j < ehsize for j in diff), m.label


def test_section_ranges_cover_fault_targets(fuzz_bases):
    for name, data in fuzz_bases.items():
        ranges = _section_ranges(data)
        assert ".eh_frame" in ranges, name
        assert ".gcc_except_table" in ranges, name
        assert ".text" in ranges, name
        for offset, size in ranges.values():
            assert 0 <= offset <= len(data)


@pytest.mark.parametrize("family,section",
                         [("ehframe", ".eh_frame"),
                          ("lsda", ".gcc_except_table")])
def test_scramblers_stay_inside_their_section(family, section, fuzz_base):
    offset, size = _section_ranges(fuzz_base)[section]
    for i in range(16):
        m = mutate(family, fuzz_base, _rng(f"{family}{i}"))
        diff = [j for j, (a, b) in enumerate(zip(m.data, fuzz_base))
                if a != b]
        assert diff, m.label
        assert all(offset <= j < offset + size for j in diff), m.label


def test_boundaries_are_sorted_and_in_range(fuzz_base):
    edges = _boundaries(fuzz_base)
    assert edges == sorted(edges)
    assert edges[0] >= 0
    assert edges[-1] <= len(fuzz_base)
    # Header end and section edges give a non-trivial set.
    assert len(edges) > 10
