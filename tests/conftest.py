"""Shared fixtures: synthetic sample binaries and a tiny corpus.

Everything is session-scoped — corpus generation is deterministic, so
building it once per test session is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.elf.parser import ELFFile
from repro.synth import (
    CompilerProfile,
    generate_program,
    link_program,
)
from repro.synth.corpus import build_corpus


@pytest.fixture(scope="session")
def gcc_o2_profile() -> CompilerProfile:
    return CompilerProfile("gcc", "O2", 64, True)


@pytest.fixture(scope="session")
def sample_binary(gcc_o2_profile):
    """A mid-sized C++ gcc/x86-64/PIE binary with every phenomenon."""
    spec = generate_program("sample", 80, gcc_o2_profile, seed=42, cxx=True)
    return link_program(spec, gcc_o2_profile)


@pytest.fixture(scope="session")
def sample_elf(sample_binary) -> ELFFile:
    return ELFFile(sample_binary.data)


@pytest.fixture(scope="session")
def sample_c_binary():
    """A plain-C clang/x86/non-PIE binary (the FETCH failure case)."""
    profile = CompilerProfile("clang", "O2", 32, False)
    spec = generate_program("sample32", 60, profile, seed=43, cxx=False)
    return link_program(spec, profile)


@pytest.fixture(scope="session")
def tiny_corpus():
    return build_corpus("tiny")
