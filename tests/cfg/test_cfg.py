"""Tests for CFG and call-graph recovery."""

import pytest

from repro.cfg import build_function_cfg, recover_program_cfg
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.x86.insn import InsnClass


def _code(*chunks: bytes) -> bytes:
    return b"".join(chunks)


class TestSingleBlock:
    def test_straight_line_function(self):
        code = _code(b"\xf3\x0f\x1e\xfa", b"\x55", b"\xc3")
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000)
        assert cfg.block_count == 1
        block = cfg.blocks[0x1000]
        assert len(block.insns) == 3
        assert block.terminator.klass == InsnClass.RET
        assert block.is_exit
        assert cfg.high_addr == 0x1006

    def test_call_targets_collected(self):
        # entry: call +0x0b (lands at 0x100b = helper); ret. helper: ret.
        code = _code(b"\xe8\x06\x00\x00\x00", b"\xc3",
                     b"\x90" * 5, b"\xc3")
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000, limit=0x100B)
        assert cfg.call_targets == {0x100B}


class TestDiamond:
    def test_if_else_merge(self):
        # 0x1000: je +3 (-> 0x1005); 0x1002: jmp +2 (-> 0x1006 wrong...)
        # Build: cmp; je L1; mov; jmp L2; L1: mov; L2: ret
        code = _code(
            b"\x83\xf8\x05",              # cmp eax, 5       0x1000
            b"\x74\x07",                  # je 0x100c        0x1003
            b"\xb8\x01\x00\x00\x00",      # mov eax, 1       0x1005
            b"\xeb\x05",                  # jmp 0x1011       0x100a
            b"\xb8\x02\x00\x00\x00",      # mov eax, 2       0x100c
            b"\xc3",                      # ret              0x1011
        )
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000)
        assert cfg.block_count == 4
        entry = cfg.blocks[0x1000]
        assert sorted(entry.successors) == [0x1005, 0x100C]
        then_block = cfg.blocks[0x1005]
        assert then_block.successors == [0x1011]
        else_block = cfg.blocks[0x100C]
        assert else_block.successors == [0x1011]
        merge = cfg.blocks[0x1011]
        assert merge.is_exit
        assert len(cfg.edges()) == 4

    def test_loop_back_edge(self):
        code = _code(
            b"\x31\xc0",                  # xor eax, eax     0x1000
            b"\x83\xc0\x07",              # add eax, 7       0x1002 (head)
            b"\x83\xf8\x40",              # cmp eax, 64      0x1005
            b"\x7c\xf8",                  # jl 0x1002        0x1008
            b"\xc3",                      # ret              0x100a
        )
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000)
        assert 0x1002 in cfg.blocks
        edges = cfg.edges()
        assert (0x1002, 0x1002) in edges or \
            any(dst == 0x1002 for _src, dst in edges)

    def test_tail_jump_out_has_no_successor(self):
        code = _code(b"\xe9\x20\x00\x00\x00")  # jmp far outside limit
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000, limit=0x1005)
        block = cfg.blocks[0x1000]
        assert block.is_exit


class TestLimits:
    def test_limit_stops_exploration(self):
        code = _code(b"\x90" * 8, b"\xc3", b"\x90" * 7)
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000, limit=0x1009)
        assert cfg.high_addr <= 0x1009

    def test_decode_error_terminates_block(self):
        code = _code(b"\x90", b"\x06")  # nop, invalid-in-64
        cfg = build_function_cfg(code, 0x1000, 64, 0x1000)
        assert cfg.blocks[0x1000].insns[-1].klass == InsnClass.NOP


class TestProgramCFG:
    @pytest.fixture(scope="class")
    def program(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        functions = FunSeeker(elf).identify().functions
        return recover_program_cfg(elf, functions), sample_binary

    def test_every_function_has_a_cfg(self, program):
        cfg, binary = program
        assert len(cfg.functions) > 0
        assert cfg.total_blocks >= len(cfg.functions)
        assert cfg.total_insns > cfg.total_blocks

    def test_boundaries_within_neighbors(self, program):
        cfg, _binary = program
        entries = sorted(cfg.functions)
        bounds = cfg.boundaries()
        for a, b in zip(entries, entries[1:]):
            assert bounds[a] <= b

    def test_call_graph_edges_land_on_entries(self, program):
        cfg, _binary = program
        for src, dst in cfg.call_graph.edges:
            assert dst in cfg.functions

    def test_main_reaches_functions(self, program):
        cfg, binary = program
        main = binary.ground_truth.entry_named("main").address
        reachable = cfg.reachable_from(main)
        assert len(reachable) > 3

    def test_dead_functions_unreachable(self, program):
        cfg, binary = program
        start = binary.ground_truth.entry_named("_start").address
        main = binary.ground_truth.entry_named("main").address
        dead = {e.address for e in binary.ground_truth.entries
                if e.is_function and e.is_dead}
        unreachable = cfg.unreachable_functions({start, main})
        assert dead & set(cfg.functions) <= unreachable

    def test_boundary_estimates_match_ground_truth_sizes(self, program):
        """Recovered boundaries approximate true sizes for most
        functions (pads/fragments blur the tail)."""
        cfg, binary = program
        close = 0
        total = 0
        for entry_rec in binary.ground_truth.entries:
            if not entry_rec.is_function:
                continue
            fn_cfg = cfg.functions.get(entry_rec.address)
            if fn_cfg is None:
                continue
            total += 1
            true_end = entry_rec.address + entry_rec.size
            if abs(fn_cfg.high_addr - true_end) <= 16:
                close += 1
        assert total and close / total > 0.6
