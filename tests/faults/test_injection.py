"""Registry behavior: counters, env inheritance, and kind execution."""

import errno
import os

import pytest

from repro import faults
from repro.cache.disk import DiskCache
from repro.elf.parser import ElfParseError, ELFFile
from repro.errors import PermanentFaultError, TransientFaultError
from repro.eval.isolation import run_cell


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.clear()
    yield
    faults.clear()


def test_no_plan_is_a_noop():
    assert faults.hit(faults.SITE_CACHE_GET) is None


def test_install_parses_text_and_exports_env():
    faults.install("io@cache.get#2")
    assert os.environ[faults.ENV_FAULT_PLAN] == "io@cache.get#2"
    assert faults.hit(faults.SITE_CACHE_GET) is None      # hit 1
    with pytest.raises(OSError) as excinfo:
        faults.hit(faults.SITE_CACHE_GET)                 # hit 2
    assert excinfo.value.errno == errno.EIO
    assert faults.hit(faults.SITE_CACHE_GET) is None      # hit 3
    faults.clear()
    assert faults.ENV_FAULT_PLAN not in os.environ


def test_counters_are_per_site():
    faults.install("transient@cell.execute#1")
    # Hits on other sites must not advance cell.execute's counter.
    faults.hit(faults.SITE_CACHE_GET)
    faults.hit(faults.SITE_WORKER_DISPATCH)
    with pytest.raises(TransientFaultError):
        faults.hit(faults.SITE_CELL_EXECUTE)


def test_reset_counts_restarts_ordinals():
    faults.install("permanent@cell.execute#1", env=False)
    with pytest.raises(PermanentFaultError):
        faults.hit(faults.SITE_CELL_EXECUTE)
    assert faults.hit(faults.SITE_CELL_EXECUTE) is None
    faults.reset_counts()
    with pytest.raises(PermanentFaultError):
        faults.hit(faults.SITE_CELL_EXECUTE)


def test_data_kinds_are_returned_not_raised():
    faults.install("truncate@elf.read#1,corrupt@cache.get#*", env=False)
    assert faults.hit(faults.SITE_ELF_READ) == faults.KIND_TRUNCATE
    assert faults.hit(faults.SITE_CACHE_GET) == faults.KIND_CORRUPT
    assert faults.hit(faults.SITE_CACHE_GET) == faults.KIND_CORRUPT


def test_enospc_kind_carries_errno():
    faults.install("enospc@journal.append#1", env=False)
    with pytest.raises(OSError) as excinfo:
        faults.hit(faults.SITE_JOURNAL_APPEND)
    assert excinfo.value.errno == errno.ENOSPC


def test_guarded_wraps_a_callable():
    faults.install("transient@cell.execute#2", env=False)
    body = faults.guarded(faults.SITE_CELL_EXECUTE, lambda: "ok")
    assert body() == "ok"
    with pytest.raises(TransientFaultError):
        body()


def test_hang_is_interruptible_by_the_watchdog():
    faults.install("hang@cell.execute#1", env=False)
    body = faults.guarded(faults.SITE_CELL_EXECUTE, lambda: "ok")
    _result, error, attempts, elapsed = run_cell(body, timeout=0.2)
    assert error is not None and error.__class__.__name__ == (
        "CellTimeoutError")
    assert elapsed < faults.HANG_SECONDS / 2


def test_elf_read_truncation_surfaces_as_parse_rejection(tmp_path,
                                                         sample_binary):
    path = tmp_path / "sample.bin"
    path.write_bytes(sample_binary.data)
    assert ELFFile.from_path(path) is not None
    faults.install("truncate@elf.read#1", env=False)
    with pytest.raises(ElfParseError):
        ELFFile.from_path(path)


def test_cache_get_corruption_degrades_to_miss(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    assert cache.put("a" * 64, "sweep", {"x": 1})
    assert cache.get("a" * 64, "sweep") == {"x": 1}
    faults.install("corrupt@cache.get#1", env=False)
    assert cache.get("a" * 64, "sweep") is None   # corrupted -> miss
    faults.clear()
    assert cache.get("a" * 64, "sweep") is None   # damage was real


def test_cache_put_enospc_degrades_to_not_stored(tmp_path):
    cache = DiskCache(tmp_path / "cache")
    faults.install("enospc@cache.put#1", env=False)
    assert cache.put("b" * 64, "sweep", {"x": 1}) is False
    assert cache.put("b" * 64, "sweep", {"x": 1}) is True
