"""Fault-plan parsing, canonical text form, and matching."""

import pytest

from repro.faults import (
    ALL_KINDS,
    ALL_SITES,
    EVERY,
    KIND_IO,
    KIND_KILL,
    SITE_CACHE_GET,
    SITE_CELL_EXECUTE,
    SITE_JOURNAL_APPEND,
    FaultPlan,
    FaultSpec,
)


def test_parse_roundtrip():
    text = "io@cache.get#3,kill@cell.execute#5,corrupt@cache.get#*"
    plan = FaultPlan.parse(text)
    assert len(plan.specs) == 3
    assert plan.specs[0] == FaultSpec(KIND_IO, SITE_CACHE_GET, 3)
    assert plan.specs[1] == FaultSpec(KIND_KILL, SITE_CELL_EXECUTE, 5)
    assert plan.specs[2].ordinal == EVERY
    assert str(plan) == text
    assert FaultPlan.parse(str(plan)) == plan


def test_parse_tolerates_whitespace_and_empties():
    plan = FaultPlan.parse(" io@cache.get#1 , , enospc@journal.append#2 ")
    assert [s.site for s in plan.specs] == [SITE_CACHE_GET,
                                           SITE_JOURNAL_APPEND]


@pytest.mark.parametrize("text", [
    "io@cache.get",          # no ordinal
    "iocache.get#1",         # no @
    "io@cache.get#x",        # non-numeric ordinal
    "bogus@cache.get#1",     # unknown kind
    "io@bogus.site#1",       # unknown site
])
def test_parse_rejects_malformed(text):
    with pytest.raises(ValueError):
        FaultPlan.parse(text)


def test_spec_validates_fields():
    with pytest.raises(ValueError):
        FaultSpec("nope", SITE_CACHE_GET, 1)
    with pytest.raises(ValueError):
        FaultSpec(KIND_IO, "nope", 1)
    with pytest.raises(ValueError):
        FaultSpec(KIND_IO, SITE_CACHE_GET, -1)


def test_matching_is_ordinal_exact_or_every():
    spec = FaultSpec(KIND_IO, SITE_CACHE_GET, 3)
    assert not spec.matches(SITE_CACHE_GET, 2)
    assert spec.matches(SITE_CACHE_GET, 3)
    assert not spec.matches(SITE_CACHE_GET, 4)
    assert not spec.matches(SITE_CELL_EXECUTE, 3)
    star = FaultSpec(KIND_IO, SITE_CACHE_GET, EVERY)
    assert all(star.matches(SITE_CACHE_GET, n) for n in (1, 2, 99))


def test_first_match_respects_order():
    plan = FaultPlan.parse("io@cache.get#*,kill@cache.get#2")
    assert plan.first_match(SITE_CACHE_GET, 2).kind == KIND_IO
    assert plan.first_match(SITE_CELL_EXECUTE, 1) is None


def test_seeded_plans_are_reproducible():
    a = FaultPlan.seeded(7, n=5)
    b = FaultPlan.seeded(7, n=5)
    c = FaultPlan.seeded(8, n=5)
    assert a == b
    assert a != c
    for spec in a.specs:
        assert spec.site in ALL_SITES
        assert spec.kind in ALL_KINDS
        assert spec.ordinal >= 1


def test_empty_plan_is_falsy():
    assert not FaultPlan.parse("")
    assert FaultPlan.parse("io@cache.get#1")
