"""Tests for the DWARF writer/parser and ground-truth integration."""

import pytest

from repro.analysis.groundtruth import (
    extract_ground_truth,
    ground_truth_from_dwarf,
)
from repro.elf.dwarf import (
    DwarfError,
    FunctionDebugInfo,
    Subprogram,
    build_debug_info,
    parse_abbrev_table,
    parse_subprograms,
)
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


def _image_with_debug(functions, is64=True):
    """A minimal ELF carrying only the debug sections."""
    from repro.elf import constants as C
    from repro.elf.writer import ElfWriter, SectionSpec

    info, abbrev, strtab = build_debug_info(
        "unit", functions, addr_size=8 if is64 else 4)
    writer = ElfWriter(is64=is64,
                       machine=C.EM_X86_64 if is64 else C.EM_386,
                       pie=False)
    for name, data in ((".debug_info", info), (".debug_abbrev", abbrev),
                       (".debug_str", strtab)):
        writer.add_section(SectionSpec(
            name=name, sh_type=C.SHT_PROGBITS, sh_flags=0, data=data))
    return ELFFile(writer.build())


class TestRoundTrip:
    def test_single_subprogram(self):
        elf = _image_with_debug(
            [FunctionDebugInfo(name="main", low_pc=0x1000, size=0x40)])
        subs = parse_subprograms(elf)
        assert subs == [Subprogram(name="main", low_pc=0x1000,
                                   high_pc=0x1040)]

    def test_many_subprograms(self):
        funcs = [FunctionDebugInfo(name=f"fn{i}", low_pc=0x1000 + i * 64,
                                   size=48, external=i % 2 == 0)
                 for i in range(50)]
        subs = parse_subprograms(_image_with_debug(funcs))
        assert len(subs) == 50
        assert [s.name for s in subs] == [f.name for f in funcs]
        assert all(s.size == 48 for s in subs)

    def test_32bit_addresses(self):
        elf = _image_with_debug(
            [FunctionDebugInfo(name="f", low_pc=0x8049000, size=16)],
            is64=False)
        subs = parse_subprograms(elf)
        assert subs[0].low_pc == 0x8049000

    def test_no_debug_info_is_empty(self, sample_c_binary):
        from repro.elf.parser import strip_symbols

        elf = ELFFile(strip_symbols(sample_c_binary.data))
        assert parse_subprograms(elf) == []

    def test_abbrev_table_parse(self):
        from repro.elf.dwarf.writer import build_abbrev

        table = parse_abbrev_table(build_abbrev(), 0)
        assert set(table) == {1, 2}
        assert table[1].has_children
        assert not table[2].has_children
        assert len(table[2].attributes) == 4


class TestMalformed:
    def test_unknown_abbrev_code_raises(self):
        elf = _image_with_debug(
            [FunctionDebugInfo(name="f", low_pc=0x1000, size=1)])
        info = bytearray(elf.section(".debug_info").data)
        info[11] = 99  # first abbrev code after the 11-byte CU header
        from repro.elf.dwarf.parser import _Sections, _parse_unit
        from repro.elf.reader import ByteReader

        secs = _Sections(info=bytes(info),
                         abbrev=elf.section(".debug_abbrev").data,
                         strtab=elf.section(".debug_str").data)
        with pytest.raises(DwarfError):
            _parse_unit(ByteReader(bytes(info)), secs)

    def test_truncated_abbrev_raises(self):
        with pytest.raises(DwarfError):
            parse_abbrev_table(b"\x01\x2e", 0)


class TestGroundTruthIntegration:
    @pytest.mark.parametrize("bits,pie", [(64, True), (64, False),
                                          (32, True), (32, False)])
    def test_dwarf_ground_truth_matches_linker(self, bits, pie):
        profile = CompilerProfile("gcc", "O2", bits, pie)
        spec = generate_program("dwgt", 50, profile, seed=19, cxx=True)
        binary = link_program(spec, profile)
        elf = ELFFile(binary.data)
        assert extract_ground_truth(elf) == \
            binary.ground_truth.function_starts

    def test_fragments_excluded_from_dwarf_gt(self):
        profile = CompilerProfile("gcc", "O2", 64, True)
        for seed in range(6):
            spec = generate_program("dwfr", 80, profile, seed=seed)
            binary = link_program(spec, profile)
            if binary.ground_truth.fragment_starts:
                gt = ground_truth_from_dwarf(ELFFile(binary.data))
                assert not (gt & binary.ground_truth.fragment_starts)
                return
        pytest.fail("no fragments generated")

    def test_stripped_binary_yields_empty(self, sample_binary):
        from repro.elf.parser import strip_symbols

        elf = ELFFile(strip_symbols(sample_binary.data))
        assert ground_truth_from_dwarf(elf) == set()
        assert extract_ground_truth(elf) == set()
