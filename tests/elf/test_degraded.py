"""Degraded-mode parsing: strict rejects, degraded diagnoses.

Covers the robustness contracts added with the fault-injection
harness:

- out-of-range ``e_shstrndx`` / section-name offsets (strict:
  ``ElfParseError``; degraded: empty names + diagnostic);
- malformed ``.note.gnu.property`` recorded instead of swallowed;
- totality: no prefix-truncation of a CET binary makes the degraded
  pipeline raise;
- checked-in fuzz regression samples stay handled.
"""

from __future__ import annotations

import struct
from pathlib import Path

import pytest

from repro.core.funseeker import FunSeeker
from repro.elf.gnuproperty import SECTION_NAME, parse_cet_features
from repro.elf.parser import ELFFile, ElfParseError
from repro.errors import Diagnostics, Severity
from repro.fuzz.mutators import _boundaries, _section_ranges

E_SHSTRNDX_OFF64 = 62


def _with_shstrndx(data: bytes, value: int) -> bytes:
    out = bytearray(data)
    struct.pack_into("<H", out, E_SHSTRNDX_OFF64, value)
    return bytes(out)


# ---------------------------------------------------------------------------
# e_shstrndx / section-name corruption (satellite: parser hardening)
# ---------------------------------------------------------------------------


def test_out_of_range_shstrndx_strict_raises(sample_binary):
    bad = _with_shstrndx(sample_binary.data, 0xFFF0)
    with pytest.raises(ElfParseError, match="e_shstrndx"):
        ELFFile(bad)


def test_out_of_range_shstrndx_degraded_parses_nameless(sample_binary):
    bad = _with_shstrndx(sample_binary.data, 0xFFF0)
    elf = ELFFile(bad, strict=False)
    # Sections survive, just without names.
    assert elf.sections
    assert all(s.name == "" for s in elf.sections)
    records = elf.diagnostics.by_source("elf")
    assert any("e_shstrndx" in d.message for d in records)
    assert all(d.severity is Severity.WARNING for d in records)


def test_string_table_offset_outside_file(sample_binary):
    data = sample_binary.data
    hdr = ELFFile(data).header
    # Point the string table's sh_offset past EOF.
    shoff = hdr.e_shoff + hdr.e_shstrndx * hdr.e_shentsize
    out = bytearray(data)
    struct.pack_into("<Q", out, shoff + 24, len(data) + 0x1000)
    with pytest.raises(ElfParseError):
        ELFFile(bytes(out))
    elf = ELFFile(bytes(out), strict=False)
    assert elf.sections
    assert elf.diagnostics.by_source("elf")


# ---------------------------------------------------------------------------
# .note.gnu.property (satellite: no silently swallowed ReaderError)
# ---------------------------------------------------------------------------


def _corrupt_note(data: bytes) -> bytes:
    offset, size = _section_ranges(data)[SECTION_NAME]
    out = bytearray(data)
    # A namesz that runs past the section: the note walk must fail.
    struct.pack_into("<I", out, offset, 0xFFFF)
    return bytes(out)


def test_malformed_gnu_property_is_recorded(sample_binary):
    elf = ELFFile(_corrupt_note(sample_binary.data))
    diags = Diagnostics()
    features = parse_cet_features(elf, diagnostics=diags)
    assert not features.any  # nothing decoded before the bad header
    records = diags.by_source("gnu_property")
    assert len(records) == 1
    assert "malformed" in records[0].message


def test_malformed_gnu_property_falls_back_to_elf_collector(sample_binary):
    elf = ELFFile(_corrupt_note(sample_binary.data))
    parse_cet_features(elf)
    assert elf.diagnostics.by_source("gnu_property")


# ---------------------------------------------------------------------------
# totality under prefix truncation (satellite: property-style test)
# ---------------------------------------------------------------------------


def _truncation_lengths(data: bytes) -> list[int]:
    """Every structure boundary plus a coarse sweep of all lengths."""
    step = max(1, len(data) // 128)
    lengths = set(range(0, len(data) + 1, step))
    for edge in _boundaries(data):
        lengths.update((edge - 1, edge, edge + 1))
    return sorted(n for n in lengths if 0 <= n <= len(data))


def test_degraded_pipeline_total_under_prefix_truncation(sample_binary):
    data = sample_binary.data
    for n in _truncation_lengths(data):
        prefix = data[:n]
        elf = ELFFile(prefix, strict=False)       # must not raise
        result = FunSeeker(elf, strict=False).identify()  # must not raise
        if n < len(data):
            # Anything short of the full image loses structure; the
            # pipeline has to say so, not silently return less.
            assert len(elf.diagnostics) > 0, f"silent at length {n}"
            assert result.diagnostics is elf.diagnostics


def test_strict_pipeline_raises_only_documented_on_truncation(
        sample_binary):
    from repro.errors import ReproError

    data = sample_binary.data
    for n in _truncation_lengths(data):
        try:
            FunSeeker(ELFFile(data[:n])).identify()
        except (ReproError, ValueError):
            pass


# ---------------------------------------------------------------------------
# sh_size / sh_offset overflowing the file (satellite: section hardening)
# ---------------------------------------------------------------------------


def _with_oversized_section(data: bytes, sh_size: int) -> bytes:
    out = bytearray(data)
    e_shoff = struct.unpack_from("<Q", out, 0x28)[0]
    e_shentsize = struct.unpack_from("<H", out, 0x3A)[0]
    e_shnum = struct.unpack_from("<H", out, 0x3C)[0]
    assert e_shoff and e_shnum > 1
    entry = e_shoff + (e_shnum - 1) * e_shentsize
    struct.pack_into("<Q", out, entry + 0x20, sh_size)
    return bytes(out)


@pytest.mark.parametrize("sh_size", [1 << 62, (1 << 64) - 1, 1 << 33])
def test_strict_rejects_sh_size_overflowing_file(sample_binary, sh_size):
    from repro.errors import MalformedELFError

    data = _with_oversized_section(sample_binary.data, sh_size)
    with pytest.raises(MalformedELFError) as exc_info:
        ELFFile(data)
    # The diagnostic must name the overflow, not just fail generically.
    assert "sh_size" in str(exc_info.value)


def test_degraded_records_sh_size_overflow_and_truncates(sample_binary):
    data = _with_oversized_section(sample_binary.data, 1 << 62)
    elf = ELFFile(data, strict=False)  # must not raise or balloon
    assert any("overflows the file" in d.message
               for d in elf.diagnostics)
    # Every surviving section's data fits in the actual image.
    for section in elf.sections:
        assert len(section.data) <= len(data)


def test_sh_size_overflow_never_allocates_claimed_size(sample_binary):
    # A 2**62-byte claim must not translate into a 2**62-byte slice
    # (historically: MemoryError, or worse, a silent huge allocation).
    # Peak RSS is hard to assert portably; total bytes held by parsed
    # sections is the observable proxy.
    data = _with_oversized_section(sample_binary.data, 1 << 62)
    elf = ELFFile(data, strict=False)
    assert sum(len(s.data) for s in elf.sections) <= 2 * len(data)


# ---------------------------------------------------------------------------
# checked-in fuzz regression samples
# ---------------------------------------------------------------------------

REGRESSION_DIR = Path(__file__).parent / "data" / "fuzz_regressions"
SAMPLES = sorted(REGRESSION_DIR.glob("*.bin"))


def test_regression_samples_exist():
    assert len(SAMPLES) >= 4


@pytest.mark.parametrize("path", SAMPLES, ids=lambda p: p.stem)
def test_regression_sample_degraded_total(path):
    data = path.read_bytes()
    elf = ELFFile(data, strict=False)
    FunSeeker(elf, strict=False).identify()
    assert len(elf.diagnostics) > 0
