"""Tests for the ELF image builder."""

import pytest

from repro.elf import constants as C
from repro.elf.parser import ELFFile
from repro.elf.writer import ElfWriter, SectionSpec, SymbolSpec


def _writer(is64=True, pie=True) -> ElfWriter:
    return ElfWriter(is64=is64,
                     machine=C.EM_X86_64 if is64 else C.EM_386, pie=pie)


def _text(addr: int, size: int = 16) -> SectionSpec:
    return SectionSpec(
        name=".text", sh_type=C.SHT_PROGBITS,
        sh_flags=C.SHF_ALLOC | C.SHF_EXECINSTR, data=b"\x90" * size,
        sh_addr=addr,
    )


class TestBaseAddress:
    def test_pie_defaults_to_zero_base(self):
        assert _writer(pie=True).base_addr == 0

    def test_nonpie_64_base(self):
        assert _writer(pie=False).base_addr == 0x400000

    def test_nonpie_32_base(self):
        assert ElfWriter(is64=False, machine=C.EM_386,
                         pie=False).base_addr == 0x8048000


class TestLayoutInvariants:
    def test_overlapping_sections_rejected(self):
        w = _writer(pie=False)
        w.add_section(_text(w.base_addr + 0x1000, 32))
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=b"x" * 8, sh_addr=w.base_addr + 0x1010,
        ))
        with pytest.raises(ValueError, match="overlap"):
            w.build()

    def test_file_offset_congruent_to_vaddr(self):
        w = _writer(pie=False)
        w.add_section(_text(w.base_addr + 0x1234))
        data = w.build()
        elf = ELFFile(data)
        txt = elf.section(".text")
        assert txt.sh_offset % 0x1000 == txt.sh_addr % 0x1000

    def test_section_overlapping_header_rejected(self):
        w = _writer(pie=False)
        w.add_section(_text(w.base_addr + 8))
        with pytest.raises(ValueError, match="header"):
            w.build()


class TestRoundTrip:
    def test_section_contents_roundtrip(self):
        w = _writer(pie=False)
        payload = bytes(range(256)) * 3
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=payload, sh_addr=w.base_addr + 0x1000,
        ))
        elf = ELFFile(w.build())
        assert elf.section(".rodata").data == payload

    def test_multiple_permission_runs_make_multiple_loads(self):
        w = _writer(pie=False)
        base = w.base_addr
        w.add_section(_text(base + 0x1000))
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=b"ro", sh_addr=base + 0x2000,
        ))
        w.add_section(SectionSpec(
            name=".data", sh_type=C.SHT_PROGBITS,
            sh_flags=C.SHF_ALLOC | C.SHF_WRITE, data=b"rw",
            sh_addr=base + 0x3000,
        ))
        elf = ELFFile(w.build())
        loads = [s for s in elf.segments if s.p_type == C.PT_LOAD]
        flags = {s.p_flags for s in loads}
        assert C.PF_R | C.PF_X in flags
        assert C.PF_R in flags
        assert C.PF_R | C.PF_W in flags

    def test_symbol_binding_order_locals_first(self):
        w = _writer(pie=False)
        w.add_section(_text(w.base_addr + 0x1000))
        w.add_symbol(SymbolSpec(name="glob", value=1, size=0,
                                bind=C.STB_GLOBAL, typ=C.STT_FUNC,
                                section=".text"))
        w.add_symbol(SymbolSpec(name="loc", value=2, size=0,
                                bind=C.STB_LOCAL, typ=C.STT_FUNC,
                                section=".text"))
        elf = ELFFile(w.build())
        syms = [s for s in elf.symbols() if s.name]
        assert [s.name for s in syms] == ["loc", "glob"]

    def test_symbol_shndx_resolution(self):
        w = _writer(pie=False)
        w.add_section(_text(w.base_addr + 0x1000))
        w.add_symbol(SymbolSpec(name="f", value=5, size=1,
                                bind=C.STB_GLOBAL, typ=C.STT_FUNC,
                                section=".text"))
        w.add_symbol(SymbolSpec(name="undef", value=0, size=0,
                                bind=C.STB_GLOBAL, typ=C.STT_FUNC))
        elf = ELFFile(w.build())
        syms = {s.name: s for s in elf.symbols()}
        assert syms["f"].is_defined
        assert not syms["undef"].is_defined

    def test_32_bit_roundtrip(self):
        w = _writer(is64=False, pie=False)
        w.add_section(_text(w.base_addr + 0x1000))
        w.add_symbol(SymbolSpec(name="m", value=w.base_addr + 0x1000,
                                size=4, bind=C.STB_GLOBAL, typ=C.STT_FUNC,
                                section=".text"))
        elf = ELFFile(w.build())
        assert not elf.is64
        assert elf.symbols()[-1].name == "m"

    def test_empty_writer_builds(self):
        data = _writer().build()
        elf = ELFFile(data)
        names = {s.name for s in elf.sections}
        assert ".shstrtab" in names
        assert ".symtab" in names
