"""Tests for the .eh_frame_hdr search-table index."""

import pytest

from repro.elf.ehframehdr import (
    EhFrameHdrError,
    build_eh_frame_hdr,
    parse_eh_frame_hdr,
)
from repro.elf.parser import ELFFile


class TestRoundTrip:
    def test_basic(self):
        entries = [(0x1000, 0x5020), (0x1100, 0x5038), (0x1200, 0x5050)]
        data = build_eh_frame_hdr(0x4000, 0x5000, entries)
        hdr = parse_eh_frame_hdr(data, 0x4000)
        assert hdr.eh_frame_addr == 0x5000
        assert hdr.fde_count == 3
        assert hdr.table == sorted(entries)
        assert hdr.function_starts() == {0x1000, 0x1100, 0x1200}

    def test_entries_get_sorted(self):
        entries = [(0x3000, 3), (0x1000, 1), (0x2000, 2)]
        data = build_eh_frame_hdr(0x4000, 0x5000, entries)
        hdr = parse_eh_frame_hdr(data, 0x4000)
        assert [loc for loc, _ in hdr.table] == [0x1000, 0x2000, 0x3000]

    def test_empty_table(self):
        data = build_eh_frame_hdr(0x4000, 0x5000, [])
        hdr = parse_eh_frame_hdr(data, 0x4000)
        assert hdr.fde_count == 0

    def test_lookup_binary_search(self):
        entries = [(0x1000, 11), (0x1100, 22), (0x1200, 33)]
        data = build_eh_frame_hdr(0x4000, 0x5000, entries)
        hdr = parse_eh_frame_hdr(data, 0x4000)
        assert hdr.lookup(0x1000) == 11
        assert hdr.lookup(0x10FF) == 11
        assert hdr.lookup(0x1150) == 22
        assert hdr.lookup(0x9999) == 33
        assert hdr.lookup(0x0FFF) is None

    def test_bad_version_raises(self):
        data = bytearray(build_eh_frame_hdr(0x4000, 0x5000, []))
        data[0] = 9
        with pytest.raises(EhFrameHdrError):
            parse_eh_frame_hdr(bytes(data), 0x4000)

    def test_truncated_raises(self):
        data = build_eh_frame_hdr(0x4000, 0x5000, [(0x1000, 1)])
        with pytest.raises(EhFrameHdrError):
            parse_eh_frame_hdr(data[:8], 0x4000)


class TestOnSynthBinary:
    def test_hdr_matches_eh_frame(self, sample_binary):
        from repro.elf.ehframe import parse_eh_frame

        elf = ELFFile(sample_binary.data)
        hdr_sec = elf.section(".eh_frame_hdr")
        eh_sec = elf.section(".eh_frame")
        assert hdr_sec is not None
        hdr = parse_eh_frame_hdr(hdr_sec.data, hdr_sec.sh_addr)
        assert hdr.eh_frame_addr == eh_sec.sh_addr
        eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
        assert hdr.fde_count == len(eh.fdes)
        assert hdr.function_starts() == {f.pc_begin for f in eh.fdes}
        # Each table entry's FDE address points at the matching record.
        by_start = {f.pc_begin: f for f in eh.fdes}
        for loc, fde_addr in hdr.table:
            fde = by_start[loc]
            assert fde_addr == eh_sec.sh_addr + fde.offset

    def test_hdr_on_real_binary(self, tmp_path):
        """GNU ld's real .eh_frame_hdr parses identically."""
        import shutil
        import subprocess

        gcc = shutil.which("gcc")
        if not gcc:
            pytest.skip("gcc unavailable")
        src = tmp_path / "t.c"
        src.write_text("int main(void) { return 0; }\n")
        out = tmp_path / "t"
        subprocess.run(
            [gcc, "-O2", "-fcf-protection=full", "-o", str(out),
             str(src)],
            check=True, capture_output=True,
        )
        elf = ELFFile.from_path(out)
        hdr_sec = elf.section(".eh_frame_hdr")
        hdr = parse_eh_frame_hdr(hdr_sec.data, hdr_sec.sh_addr)
        assert hdr.fde_count > 0
        assert hdr.eh_frame_addr == elf.section(".eh_frame").sh_addr
