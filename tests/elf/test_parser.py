"""Tests for the ELF container parser against writer-produced images."""

import pytest

from repro.elf import constants as C
from repro.elf.parser import ELFFile, ElfParseError, strip_symbols
from repro.elf.writer import ElfWriter, SectionSpec, SymbolSpec


def _minimal_image(is64=True, pie=False) -> bytes:
    writer = ElfWriter(is64=is64, machine=C.EM_X86_64 if is64 else C.EM_386,
                       pie=pie)
    base = writer.base_addr
    writer.add_section(SectionSpec(
        name=".text", sh_type=C.SHT_PROGBITS,
        sh_flags=C.SHF_ALLOC | C.SHF_EXECINSTR,
        data=b"\xf3\x0f\x1e\xfa\xc3" + b"\x90" * 11,
        sh_addr=base + 0x1000, sh_addralign=16,
    ))
    writer.add_section(SectionSpec(
        name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
        data=b"hello\x00", sh_addr=base + 0x2000,
    ))
    writer.add_symbol(SymbolSpec(
        name="main", value=base + 0x1000, size=5, bind=C.STB_GLOBAL,
        typ=C.STT_FUNC, section=".text",
    ))
    writer.entry = base + 0x1000
    return writer.build()


class TestHeaderParsing:
    def test_not_elf_raises(self):
        with pytest.raises(ElfParseError):
            ELFFile(b"not an elf file at all")

    def test_empty_raises(self):
        with pytest.raises(ElfParseError):
            ELFFile(b"")

    def test_64_bit_header(self):
        elf = ELFFile(_minimal_image(is64=True))
        assert elf.is64
        assert elf.machine == C.EM_X86_64
        assert not elf.header.is_pie

    def test_32_bit_header(self):
        elf = ELFFile(_minimal_image(is64=False))
        assert not elf.is64
        assert elf.machine == C.EM_386

    def test_pie_flag(self):
        assert ELFFile(_minimal_image(pie=True)).header.is_pie

    def test_entry_point(self):
        elf = ELFFile(_minimal_image())
        assert elf.header.e_entry == elf.section(".text").sh_addr

    def test_bad_class_raises(self):
        data = bytearray(_minimal_image())
        data[C.EI_CLASS] = 9
        with pytest.raises(ElfParseError):
            ELFFile(bytes(data))

    def test_big_endian_rejected(self):
        data = bytearray(_minimal_image())
        data[C.EI_DATA] = C.ELFDATA2MSB
        with pytest.raises(ElfParseError):
            ELFFile(bytes(data))


class TestSections:
    def test_section_lookup(self):
        elf = ELFFile(_minimal_image())
        txt = elf.section(".text")
        assert txt is not None
        assert txt.is_exec and txt.is_alloc
        assert txt.data.startswith(b"\xf3\x0f\x1e\xfa")

    def test_missing_section_is_none(self):
        assert ELFFile(_minimal_image()).section(".nosuch") is None

    def test_section_at_addr(self):
        elf = ELFFile(_minimal_image())
        txt = elf.section(".text")
        assert elf.section_at_addr(txt.sh_addr) is txt
        assert elf.section_at_addr(txt.sh_addr + 3) is txt
        assert elf.section_at_addr(0x1) is None

    def test_exec_sections_sorted(self):
        elf = ELFFile(_minimal_image())
        execs = elf.exec_sections()
        assert [s.name for s in execs] == [".text"]

    def test_read_at_addr(self):
        elf = ELFFile(_minimal_image())
        ro = elf.section(".rodata")
        assert elf.read_at_addr(ro.sh_addr, 5) == b"hello"
        assert elf.read_at_addr(ro.sh_addr, 10_000) is None

    def test_contains_addr_bounds(self):
        elf = ELFFile(_minimal_image())
        txt = elf.section(".text")
        assert txt.contains_addr(txt.sh_addr)
        assert txt.contains_addr(txt.end_addr - 1)
        assert not txt.contains_addr(txt.end_addr)


class TestSymbols:
    def test_symbols_resolved(self):
        elf = ELFFile(_minimal_image())
        syms = {s.name: s for s in elf.symbols()}
        assert "main" in syms
        main = syms["main"]
        assert main.is_function
        assert main.is_defined
        assert not main.is_local
        assert main.value == elf.section(".text").sh_addr

    def test_is_stripped_false_when_symtab_present(self):
        assert not ELFFile(_minimal_image()).is_stripped


class TestStripSymbols:
    def test_strip_removes_symbols(self):
        stripped = strip_symbols(_minimal_image())
        elf = ELFFile(stripped)
        assert elf.is_stripped
        assert elf.symbols() == []

    def test_strip_preserves_sections(self):
        original = ELFFile(_minimal_image())
        stripped = ELFFile(strip_symbols(_minimal_image()))
        assert stripped.section(".text").data == \
            original.section(".text").data
        assert stripped.section(".rodata").data == \
            original.section(".rodata").data

    def test_strip_is_idempotent(self):
        once = strip_symbols(_minimal_image())
        assert strip_symbols(once) == once


class TestSegments:
    def test_load_segments_cover_alloc_sections(self):
        elf = ELFFile(_minimal_image())
        loads = [s for s in elf.segments if s.p_type == C.PT_LOAD]
        assert loads
        txt = elf.section(".text")
        assert any(s.p_vaddr <= txt.sh_addr
                   and txt.end_addr <= s.p_vaddr + s.p_memsz
                   for s in loads)

    def test_gnu_stack_present(self):
        elf = ELFFile(_minimal_image())
        assert any(s.p_type == C.PT_GNU_STACK for s in elf.segments)


class TestOnSynthBinary:
    def test_sample_parses(self, sample_elf):
        assert sample_elf.is64
        assert sample_elf.section(".text") is not None
        assert sample_elf.section(".plt") is not None
        assert sample_elf.section(".eh_frame") is not None

    def test_sample_symbols_match_ground_truth(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        sym_addrs = {s.value for s in elf.symbols()
                     if s.is_function and s.is_defined}
        gt = sample_binary.ground_truth
        # Every non-omitted ground-truth function has a symbol; fragments
        # also carry symbols (they are excluded from GT, not symtab).
        for entry in gt.entries:
            assert entry.address in sym_addrs
