"""Tests for .eh_frame parsing against the synthetic writer and
hand-crafted records."""

import struct

import pytest

from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.synth.ehwriter import FdeRequest, build_eh_frame, patch_eh_frame


def _build(fdes, func_addrs, eh_addr=0x5000, lsda_addr=0x6000,
           personality=0):
    blob = build_eh_frame(fdes, personality_addr=personality)
    return patch_eh_frame(blob, eh_addr, lsda_addr, func_addrs)


class TestWriterParserRoundTrip:
    def test_single_plain_fde(self):
        data = _build([FdeRequest(0, 0x40)], [0x1000])
        eh = parse_eh_frame(data, 0x5000, is64=True)
        assert len(eh.cies) == 2  # zR and zPLR
        assert len(eh.fdes) == 1
        fde = eh.fdes[0]
        assert fde.pc_begin == 0x1000
        assert fde.pc_range == 0x40
        assert fde.lsda_address is None

    def test_fde_with_lsda(self):
        data = _build([FdeRequest(0, 0x80, lsda_offset=0x10)], [0x2000])
        eh = parse_eh_frame(data, 0x5000, is64=True)
        assert eh.fdes[0].lsda_address == 0x6010

    def test_many_fdes_in_order(self):
        addrs = [0x1000 + i * 0x100 for i in range(20)]
        fdes = [FdeRequest(i, 0x80) for i in range(20)]
        eh = parse_eh_frame(_build(fdes, addrs), 0x5000, is64=True)
        assert [f.pc_begin for f in eh.fdes] == addrs

    def test_fde_covering(self):
        data = _build([FdeRequest(0, 0x40), FdeRequest(1, 0x40)],
                      [0x1000, 0x1040])
        eh = parse_eh_frame(data, 0x5000, is64=True)
        assert eh.fde_covering(0x1000).pc_begin == 0x1000
        assert eh.fde_covering(0x103F).pc_begin == 0x1000
        assert eh.fde_covering(0x1040).pc_begin == 0x1040
        assert eh.fde_covering(0x2000) is None

    def test_cie_fields(self):
        data = _build([FdeRequest(0, 0x40)], [0x1000])
        eh = parse_eh_frame(data, 0x5000, is64=True)
        plain = [c for c in eh.cies.values() if c.augmentation == "zR"]
        lsda = [c for c in eh.cies.values() if c.augmentation == "zPLR"]
        assert len(plain) == 1 and len(lsda) == 1
        assert plain[0].fde_encoding == 0x1B  # pcrel | sdata4
        assert lsda[0].lsda_encoding == 0x1B
        assert lsda[0].personality is not None

    def test_personality_value(self):
        data = _build([FdeRequest(0, 4, lsda_offset=0)], [0x1000],
                      personality=0xDEAD)
        eh = parse_eh_frame(data, 0x5000, is64=True)
        lsda_cie = next(c for c in eh.cies.values()
                        if c.augmentation == "zPLR")
        assert lsda_cie.personality == 0xDEAD

    def test_32_bit_parse(self):
        data = _build([FdeRequest(0, 0x40)], [0x8049000])
        eh = parse_eh_frame(data, 0x5000, is64=False)
        assert eh.fdes[0].pc_begin == 0x8049000


class TestMalformedInput:
    def test_empty_section(self):
        eh = parse_eh_frame(b"", 0x5000, is64=True)
        assert not eh.fdes and not eh.cies

    def test_terminator_only(self):
        eh = parse_eh_frame(struct.pack("<I", 0), 0x5000, is64=True)
        assert not eh.fdes

    def test_fde_without_cie_raises(self):
        # length=8, cie_ptr pointing nowhere meaningful.
        data = struct.pack("<II", 8, 0x1234) + b"\x00" * 4
        with pytest.raises(EhFrameError):
            parse_eh_frame(data, 0x5000, is64=True)

    def test_truncated_record_raises(self):
        data = struct.pack("<I", 100) + b"\x00" * 8
        with pytest.raises(EhFrameError):
            parse_eh_frame(data, 0x5000, is64=True)

    def test_unsupported_cie_version_raises(self):
        body = struct.pack("<I", 0) + bytes([99]) + b"zR\x00"
        body += b"\x01\x78\x10\x01\x1b"
        data = struct.pack("<I", len(body)) + body
        with pytest.raises(EhFrameError):
            parse_eh_frame(data, 0x5000, is64=True)


class TestOnSynthBinary:
    def test_every_function_has_fde_under_gcc(self, sample_binary):
        """GCC profiles emit FDEs for all functions and fragments."""
        from repro.elf.parser import ELFFile

        elf = ELFFile(sample_binary.data)
        sec = elf.section(".eh_frame")
        eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        starts = {f.pc_begin for f in eh.fdes}
        gt = sample_binary.ground_truth
        for entry in gt.entries:
            assert entry.address in starts

    def test_no_c_fdes_for_clang_x86(self, sample_c_binary):
        """Clang x86 C binaries carry no FDEs (the FETCH failure)."""
        from repro.elf.parser import ELFFile

        elf = ELFFile(sample_c_binary.data)
        sec = elf.section(".eh_frame")
        eh = parse_eh_frame(sec.data, sec.sh_addr, elf.is64)
        assert not eh.fdes
