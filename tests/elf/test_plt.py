"""Tests for PLT stub-to-import-name resolution."""

from repro.elf.parser import ELFFile
from repro.elf.plt import build_plt_map
from repro.synth import CompilerProfile, generate_program, link_program


def _plt_map_for(profile: CompilerProfile, seed=21):
    spec = generate_program("plt_demo", 30, profile, seed=seed)
    binary = link_program(spec, profile)
    elf = ELFFile(binary.data)
    return build_plt_map(elf), elf, spec


class TestPltResolution:
    def test_x64_stub_names(self):
        pm, elf, spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        names = set(pm.stub_to_name.values())
        assert "__libc_start_main" in names

    def test_every_import_has_a_stub(self):
        # Declared imports plus linker-collected ones (e.g. abort from
        # cold fragments) must all resolve; declared ones are a subset.
        pm, elf, spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        assert set(pm.stub_to_name.values()) >= set(spec.imports)

    def test_x86_nonpic_stubs(self):
        pm, elf, spec = _plt_map_for(
            CompilerProfile("gcc", "O2", 32, False))
        assert set(pm.stub_to_name.values()) >= set(spec.imports)

    def test_x86_pic_stubs(self):
        pm, elf, spec = _plt_map_for(CompilerProfile("gcc", "O2", 32, True))
        assert set(pm.stub_to_name.values()) >= set(spec.imports)

    def test_stub_addresses_inside_plt(self):
        pm, elf, _spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        plt = elf.section(".plt")
        for addr in pm.stub_to_name:
            assert plt.contains_addr(addr)
            assert pm.in_plt(addr)

    def test_name_at_miss_is_none(self):
        pm, elf, _spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        assert pm.name_at(0xDEADBEEF) is None

    def test_in_plt_bounds(self):
        pm, elf, _spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        plt = elf.section(".plt")
        assert pm.in_plt(plt.sh_addr)
        assert not pm.in_plt(plt.end_addr)

    def test_plt0_header_has_no_name(self):
        """The resolver stub (PLT0) must not be attributed to an import."""
        pm, elf, _spec = _plt_map_for(CompilerProfile("gcc", "O2", 64, True))
        plt = elf.section(".plt")
        assert plt.sh_addr not in pm.stub_to_name

    def test_empty_binary_yields_empty_map(self):
        from repro.elf import constants as C
        from repro.elf.writer import ElfWriter, SectionSpec

        w = ElfWriter(is64=True, machine=C.EM_X86_64, pie=False)
        w.add_section(SectionSpec(
            name=".text", sh_type=C.SHT_PROGBITS,
            sh_flags=C.SHF_ALLOC | C.SHF_EXECINSTR, data=b"\xc3",
            sh_addr=w.base_addr + 0x1000,
        ))
        pm = build_plt_map(ELFFile(w.build()))
        assert pm.stub_to_name == {}
        assert not pm.in_plt(0x1000)
