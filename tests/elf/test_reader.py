"""Unit tests for the little-endian byte reader and DW_EH_PE decoding."""

import pytest
from hypothesis import given, strategies as st

from repro.elf import constants as C
from repro.elf.reader import ByteReader, ReaderError, eh_pointer_size


class TestFixedWidthReads:
    def test_u8_u16_u32_u64(self):
        r = ByteReader(bytes([0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                              0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E,
                              0x0F]))
        assert r.u8() == 0x01
        assert r.u16() == 0x0302
        assert r.u32() == 0x07060504
        assert r.u64() == 0x0F0E0D0C0B0A0908

    def test_signed_reads(self):
        r = ByteReader(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"
                       b"\xff\xff\xff")
        assert r.s8() == -1
        assert r.s16() == -1
        assert r.s32() == -1
        assert r.s64() == -1

    def test_uword_width(self):
        r = ByteReader(b"\x01\x00\x00\x00\x02\x00\x00\x00\x00\x00\x00\x00")
        assert r.uword(is64=False) == 1
        assert r.uword(is64=True) == 2

    def test_read_past_end_raises(self):
        r = ByteReader(b"\x01")
        r.u8()
        with pytest.raises(ReaderError):
            r.u8()

    def test_seek_and_skip(self):
        r = ByteReader(b"abcdef")
        r.skip(2)
        assert r.bytes(1) == b"c"
        r.seek(0)
        assert r.bytes(1) == b"a"
        with pytest.raises(ReaderError):
            r.seek(100)
        with pytest.raises(ReaderError):
            r.seek(-1)

    def test_remaining_and_eof(self):
        r = ByteReader(b"ab")
        assert r.remaining() == 2
        assert not r.eof()
        r.bytes(2)
        assert r.eof()


class TestCString:
    def test_reads_until_nul(self):
        r = ByteReader(b"hello\x00world\x00")
        assert r.cstring() == b"hello"
        assert r.cstring() == b"world"

    def test_unterminated_raises(self):
        r = ByteReader(b"hello")
        with pytest.raises(ReaderError):
            r.cstring()

    def test_empty_string(self):
        r = ByteReader(b"\x00")
        assert r.cstring() == b""


class TestLeb128:
    def test_uleb_small(self):
        assert ByteReader(b"\x05").uleb128() == 5

    def test_uleb_multibyte(self):
        # 624485 is the classic DWARF spec example: 0xE5 0x8E 0x26.
        assert ByteReader(b"\xe5\x8e\x26").uleb128() == 624485

    def test_sleb_negative(self):
        # -123456 encodes as 0xC0 0xBB 0x78.
        assert ByteReader(b"\xc0\xbb\x78").sleb128() == -123456

    def test_sleb_positive(self):
        assert ByteReader(b"\x3f").sleb128() == 63
        assert ByteReader(b"\x40").sleb128() == -64

    def test_uleb_overlong_raises(self):
        with pytest.raises(ReaderError):
            ByteReader(b"\x80" * 11 + b"\x01").uleb128()

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_uleb_roundtrip(self, value):
        encoded = _encode_uleb(value)
        assert ByteReader(encoded).uleb128() == value

    @given(st.integers(min_value=-(2**62), max_value=2**62 - 1))
    def test_sleb_roundtrip(self, value):
        encoded = _encode_sleb(value)
        assert ByteReader(encoded).sleb128() == value


def _encode_uleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _encode_sleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        done = (value == 0 and not byte & 0x40) or \
               (value == -1 and byte & 0x40)
        if done:
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


class TestEhPointer:
    def test_omit_returns_none(self):
        r = ByteReader(b"")
        assert r.eh_pointer(C.DW_EH_PE_omit) is None

    def test_absptr_64(self):
        r = ByteReader(b"\x10\x00\x00\x00\x00\x00\x00\x00")
        assert r.eh_pointer(C.DW_EH_PE_absptr, is64=True) == 0x10

    def test_absptr_32(self):
        r = ByteReader(b"\x10\x00\x00\x00")
        assert r.eh_pointer(C.DW_EH_PE_absptr, is64=False) == 0x10

    def test_pcrel_sdata4(self):
        r = ByteReader(b"\xfc\xff\xff\xff")  # -4
        enc = C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4
        assert r.eh_pointer(enc, pc=0x1000) == 0xFFC

    def test_datarel(self):
        r = ByteReader(b"\x08\x00\x00\x00")
        enc = C.DW_EH_PE_datarel | C.DW_EH_PE_udata4
        assert r.eh_pointer(enc, data_base=0x2000) == 0x2008

    def test_funcrel(self):
        r = ByteReader(b"\x04\x00")
        enc = C.DW_EH_PE_funcrel | C.DW_EH_PE_udata2
        assert r.eh_pointer(enc, func_base=0x3000) == 0x3004

    def test_uleb_format(self):
        r = ByteReader(b"\x85\x02")
        assert r.eh_pointer(C.DW_EH_PE_uleb128) == 261

    def test_sdata8_negative_wraps(self):
        r = ByteReader(b"\xff" * 8)
        value = r.eh_pointer(C.DW_EH_PE_sdata8, is64=True)
        assert value == (1 << 64) - 1

    def test_bad_format_raises(self):
        r = ByteReader(b"\x00" * 8)
        with pytest.raises(ReaderError):
            r.eh_pointer(0x0D)  # undefined value format


class TestEhPointerSize:
    def test_fixed_sizes(self):
        assert eh_pointer_size(C.DW_EH_PE_omit, True) == 0
        assert eh_pointer_size(C.DW_EH_PE_absptr, True) == 8
        assert eh_pointer_size(C.DW_EH_PE_absptr, False) == 4
        assert eh_pointer_size(C.DW_EH_PE_udata2, True) == 2
        assert eh_pointer_size(C.DW_EH_PE_sdata4, True) == 4
        assert eh_pointer_size(C.DW_EH_PE_udata8, False) == 8

    def test_variable_size_returns_none(self):
        assert eh_pointer_size(C.DW_EH_PE_uleb128, True) is None
        assert eh_pointer_size(C.DW_EH_PE_sleb128, False) is None
