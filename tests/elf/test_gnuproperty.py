"""Tests for .note.gnu.property CET feature detection."""

import shutil
import subprocess

import pytest

from repro.elf.gnuproperty import (
    CetFeatures,
    build_cet_note,
    parse_cet_features,
)
from repro.elf.parser import ELFFile


class TestNoteRoundTrip:
    def test_full_cet(self):
        from repro.elf.gnuproperty import _parse_note

        note = build_cet_note(ibt=True, shstk=True)
        features, error = _parse_note(note, is64=True)
        assert error is None
        assert features.ibt and features.shstk
        assert features.full

    def test_ibt_only(self):
        from repro.elf.gnuproperty import _parse_note

        features, _ = _parse_note(build_cet_note(ibt=True, shstk=False),
                                  is64=True)
        assert features.ibt and not features.shstk
        assert not features.full
        assert features.any

    def test_neither(self):
        from repro.elf.gnuproperty import _parse_note

        features, _ = _parse_note(build_cet_note(ibt=False, shstk=False),
                                  is64=True)
        assert not features.any

    def test_32bit_alignment(self):
        from repro.elf.gnuproperty import _parse_note

        features, _ = _parse_note(build_cet_note(is64=False), is64=False)
        assert features.full


class TestOnBinaries:
    def test_synth_binaries_advertise_full_cet(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        features = parse_cet_features(elf)
        assert features.full

    def test_funseeker_reports_cet_enabled(self, sample_binary):
        from repro.core.funseeker import FunSeeker

        result = FunSeeker.from_bytes(sample_binary.data).identify()
        assert result.cet_enabled

    def test_binary_without_note_is_not_cet(self):
        from repro.elf import constants as C
        from repro.elf.writer import ElfWriter, SectionSpec

        w = ElfWriter(is64=True, machine=C.EM_X86_64, pie=False)
        w.add_section(SectionSpec(
            name=".text", sh_type=C.SHT_PROGBITS,
            sh_flags=C.SHF_ALLOC | C.SHF_EXECINSTR, data=b"\xc3",
            sh_addr=w.base_addr + 0x1000))
        assert not parse_cet_features(ELFFile(w.build())).any

    def test_garbage_note_is_harmless(self, sample_binary):
        """The public API must absorb malformed notes silently."""
        data = bytearray(sample_binary.data)
        elf = ELFFile(bytes(data))
        sec = elf.section(".note.gnu.property")
        for i in range(sec.sh_offset, sec.sh_offset + sec.sh_size):
            data[i] = 0xFF
        features = parse_cet_features(ELFFile(bytes(data)))
        assert features == CetFeatures()

    @pytest.mark.skipif(not shutil.which("gcc"), reason="gcc unavailable")
    def test_real_gcc_object_advertises_cet(self, tmp_path):
        """A -fcf-protection=full *object* carries the feature bits.

        (Final Debian executables lose them: the linker ANDs the
        feature sets and the distro CRT objects are built without CET —
        which is precisely why production tools check this note.)
        """
        src = tmp_path / "t.c"
        src.write_text("int main(void){return 0;}\n")
        out = tmp_path / "t.o"
        subprocess.run(
            ["gcc", "-O2", "-fcf-protection=full", "-c", "-o", str(out),
             str(src)],
            check=True, capture_output=True)
        features = parse_cet_features(ELFFile.from_path(out))
        assert features.ibt and features.shstk

    @pytest.mark.skipif(not shutil.which("gcc"), reason="gcc unavailable")
    def test_non_cet_build_detected(self, tmp_path):
        src = tmp_path / "t.c"
        src.write_text("int main(void){return 0;}\n")
        out = tmp_path / "t"
        subprocess.run(
            ["gcc", "-O2", "-fcf-protection=none", "-o", str(out),
             str(src)],
            check=True, capture_output=True)
        assert not parse_cet_features(ELFFile.from_path(out)).ibt
