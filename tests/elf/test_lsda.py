"""Tests for LSDA parsing against the synthetic writer."""

import pytest

from repro.elf.ehframe import parse_eh_frame
from repro.elf.lsda import (
    LsdaError,
    landing_pads_from_exception_info,
    parse_lsda,
)
from repro.synth.ehwriter import (
    FdeRequest,
    build_eh_frame,
    build_gcc_except_table,
    patch_eh_frame,
)


class TestRoundTrip:
    def test_single_lsda(self):
        table, offsets = build_gcc_except_table(
            [[(0x10, 0x5, 0x80), (0x20, 0x8, 0x90)]]
        )
        lsda = parse_lsda(table, 0x6000, 0x6000 + offsets[0],
                          function_start=0x1000, is64=True)
        assert lsda.lp_start == 0x1000
        assert len(lsda.call_sites) == 2
        assert lsda.call_sites[0].start == 0x1010
        assert lsda.call_sites[0].length == 0x5
        assert lsda.call_sites[0].landing_pad == 0x1080
        assert lsda.landing_pads == {0x1080, 0x1090}

    def test_zero_landing_pad_means_none(self):
        table, offsets = build_gcc_except_table([[(0x10, 0x5, 0)]])
        lsda = parse_lsda(table, 0x6000, 0x6000 + offsets[0],
                          function_start=0x1000, is64=True)
        assert lsda.call_sites[0].landing_pad == 0
        assert lsda.landing_pads == set()

    def test_multiple_lsdas_aligned(self):
        table, offsets = build_gcc_except_table(
            [[(0x1, 0x1, 0x10)], [(0x2, 0x2, 0x20)], [(0x3, 0x3, 0x30)]]
        )
        assert all(off % 4 == 0 for off in offsets)
        for i, off in enumerate(offsets):
            lsda = parse_lsda(table, 0x6000, 0x6000 + off,
                              function_start=0x1000 * (i + 1), is64=True)
            assert len(lsda.call_sites) == 1

    def test_out_of_section_address_raises(self):
        table, _ = build_gcc_except_table([[(1, 1, 1)]])
        with pytest.raises(LsdaError):
            parse_lsda(table, 0x6000, 0x9999, 0x1000, is64=True)

    def test_truncated_lsda_raises(self):
        table, offsets = build_gcc_except_table([[(0x10, 0x5, 0x80)]])
        with pytest.raises(LsdaError):
            parse_lsda(table[:4], 0x6000, 0x6000 + offsets[0], 0x1000,
                       is64=True)


class TestLandingPadCollection:
    def test_pads_via_fde_lsda_pointers(self):
        table, offsets = build_gcc_except_table(
            [[(0x10, 0x4, 0x50)], [(0x8, 0x4, 0x40)]]
        )
        fdes = [
            FdeRequest(0, 0x100, lsda_offset=offsets[0]),
            FdeRequest(1, 0x100, lsda_offset=offsets[1]),
            FdeRequest(2, 0x100),  # no LSDA
        ]
        blob = build_eh_frame(fdes, personality_addr=0)
        eh_data = patch_eh_frame(blob, 0x5000, 0x6000,
                                 [0x1000, 0x2000, 0x3000])
        eh = parse_eh_frame(eh_data, 0x5000, is64=True)
        pads = landing_pads_from_exception_info(eh, table, 0x6000,
                                                is64=True)
        assert pads == {0x1050, 0x2040}

    def test_malformed_lsda_skipped_not_fatal(self):
        fdes = [FdeRequest(0, 0x100, lsda_offset=0x0)]
        blob = build_eh_frame(fdes, personality_addr=0)
        eh_data = patch_eh_frame(blob, 0x5000, 0x6000, [0x1000])
        eh = parse_eh_frame(eh_data, 0x5000, is64=True)
        # A garbage one-byte "table" cannot parse; collection proceeds.
        pads = landing_pads_from_exception_info(eh, b"\xff", 0x6000,
                                                is64=True)
        assert pads == set()

    def test_sample_binary_pads_are_endbr_sites(self, sample_binary):
        """Every landing pad in the synthetic C++ binary carries endbr."""
        from repro.elf.parser import ELFFile
        from repro.x86.decoder import decode
        from repro.x86.insn import InsnClass

        elf = ELFFile(sample_binary.data)
        eh_sec = elf.section(".eh_frame")
        get_sec = elf.section(".gcc_except_table")
        eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
        pads = landing_pads_from_exception_info(
            eh, get_sec.data, get_sec.sh_addr, elf.is64
        )
        assert pads, "C++ sample must have landing pads"
        txt = elf.section(".text")
        for pad in pads:
            insn = decode(txt.data, pad - txt.sh_addr, pad, 64)
            assert insn.klass == InsnClass.ENDBR64
