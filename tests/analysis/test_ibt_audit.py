"""Tests for the IBT compliance auditor."""

import pytest

from repro.analysis.ibt_audit import TargetSource, audit_ibt
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program

PROFILE = CompilerProfile("gcc", "O2", 64, True)


def _binary(seed=41, violations=0, cxx=False):
    spec = generate_program("ibt", 50, PROFILE, seed=seed, cxx=cxx,
                            ibt_violations=violations)
    return link_program(spec, PROFILE)


class TestCompliantBinaries:
    def test_clean_binary_is_compliant(self):
        binary = _binary()
        report = audit_ibt(ELFFile(binary.data))
        assert report.compliant
        assert report.candidate_count > 0

    def test_cxx_binary_pads_are_candidates_and_compliant(self):
        binary = _binary(cxx=True)
        report = audit_ibt(ELFFile(binary.data))
        assert report.compliant
        assert any(src == TargetSource.LANDING_PAD
                   for src in report.candidates.values())

    def test_data_pointers_are_candidates(self):
        binary = _binary()
        report = audit_ibt(ELFFile(binary.data))
        assert any(src == TargetSource.DATA_POINTER
                   for src in report.candidates.values())

    def test_code_xrefs_are_candidates(self):
        binary = _binary()
        report = audit_ibt(ELFFile(binary.data))
        assert any(src == TargetSource.CODE_XREF
                   for src in report.candidates.values())


class TestViolations:
    def test_stripped_marker_is_flagged(self):
        binary = _binary(violations=2)
        report = audit_ibt(ELFFile(binary.data))
        assert not report.compliant
        assert len(report.violations) >= 2

    def test_violation_targets_are_the_broken_functions(self):
        binary = _binary(violations=2)
        broken = {e.address for e in binary.ground_truth.entries
                  if e.is_function and not e.has_endbr and not e.is_dead}
        report = audit_ibt(ELFFile(binary.data))
        flagged = {v.target for v in report.violations}
        # Every flagged target is genuinely endbr-less; the injected
        # address-taken ones are among them.
        assert flagged <= broken | {
            e.address for e in binary.ground_truth.entries
            if not e.has_endbr
        }
        assert flagged & broken

    def test_empty_binary(self):
        from repro.elf import constants as C
        from repro.elf.writer import ElfWriter, SectionSpec

        w = ElfWriter(is64=True, machine=C.EM_X86_64, pie=False)
        w.add_section(SectionSpec(
            name=".rodata", sh_type=C.SHT_PROGBITS, sh_flags=C.SHF_ALLOC,
            data=b"x", sh_addr=w.base_addr + 0x1000))
        report = audit_ibt(ELFFile(w.build()))
        assert report.compliant
        assert report.candidate_count == 0
