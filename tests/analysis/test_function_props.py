"""Tests for the Figure-3 function-property analysis."""

from repro.analysis.function_props import (
    ALL_REGIONS,
    CALL,
    ENDBR,
    JMP,
    PropertyVenn,
    analyze_function_properties,
)
from repro.elf.parser import ELFFile


class TestVennAccounting:
    def test_total_equals_function_count(self, sample_binary):
        venn = analyze_function_properties(
            ELFFile(sample_binary.data),
            sample_binary.ground_truth.function_starts,
        )
        assert venn.total == \
            len(sample_binary.ground_truth.function_starts)

    def test_endbr_property_matches_ground_truth(self, sample_binary):
        venn = analyze_function_properties(
            ELFFile(sample_binary.data),
            sample_binary.ground_truth.function_starts,
        )
        gt_endbr = sum(1 for e in sample_binary.ground_truth.entries
                       if e.is_function and e.has_endbr)
        assert venn.with_property(ENDBR) == gt_endbr

    def test_dead_statics_have_no_properties(self, sample_binary):
        gt = sample_binary.ground_truth
        dead_no_endbr = [e for e in gt.entries
                         if e.is_function and e.is_dead and not e.has_endbr]
        venn = analyze_function_properties(
            ELFFile(sample_binary.data), gt.function_starts)
        assert venn.counts[frozenset()] >= len(dead_no_endbr)

    def test_all_regions_enumerated(self):
        assert len(ALL_REGIONS) == 8
        assert frozenset({ENDBR, CALL, JMP}) in ALL_REGIONS

    def test_merge_and_fractions(self):
        a = PropertyVenn()
        a.counts[frozenset({ENDBR})] = 8
        a.counts[frozenset()] = 2
        b = PropertyVenn()
        b.counts[frozenset({ENDBR})] = 10
        a.merge(b)
        assert a.total == 20
        assert a.fraction(frozenset({ENDBR})) == 0.9
        assert a.any_property() == 18

    def test_empty_venn(self):
        venn = PropertyVenn()
        assert venn.total == 0
        assert venn.fraction(frozenset()) == 0.0


class TestPaperShape:
    def test_majority_endbr(self, tiny_corpus):
        venn = PropertyVenn()
        for entry in tiny_corpus:
            venn.merge(analyze_function_properties(
                ELFFile(entry.binary.data),
                entry.binary.ground_truth.function_starts,
            ))
        frac_endbr = venn.with_property(ENDBR) / venn.total
        assert 0.8 < frac_endbr < 0.95  # paper: 89.3%
        # Nearly every function holds at least one property.
        assert venn.any_property() / venn.total > 0.97
