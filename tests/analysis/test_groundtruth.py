"""Tests for ground-truth extraction and the fragment-name policy."""

import pytest

from repro.analysis.groundtruth import (
    ground_truth_from_symbols,
    is_fragment_name,
)
from repro.elf.parser import ELFFile


class TestFragmentNames:
    @pytest.mark.parametrize("name", [
        "sort_files.part.0", "quick_sort.cold", "foo.part.12",
        "bar.constprop.0.cold",
    ])
    def test_fragment_names(self, name):
        assert is_fragment_name(name)

    @pytest.mark.parametrize("name", [
        "main", "foo", "partial", "coldstart", "foo.constprop.0",
        "a.part", "x.cold.y",
    ])
    def test_non_fragment_names(self, name):
        assert not is_fragment_name(name)


class TestSymbolGroundTruth:
    def test_matches_linker_ground_truth(self, sample_binary):
        """Symbol-derived GT equals linker GT when no symbols are
        omitted (the 64-bit case has no get_pc_thunk)."""
        elf = ELFFile(sample_binary.data)
        from_syms = ground_truth_from_symbols(elf)
        assert from_syms == sample_binary.ground_truth.function_starts

    def test_fragments_excluded(self, sample_binary):
        elf = ELFFile(sample_binary.data)
        from_syms = ground_truth_from_symbols(elf)
        assert not (from_syms & sample_binary.ground_truth.fragment_starts)

    def test_omitted_thunk_symbol_missing_from_symbol_gt(self):
        """32-bit PIC binaries may omit the get_pc_thunk symbol — the
        §V-A1 correction only linker ground truth captures."""
        from repro.synth import (
            CompilerProfile,
            generate_program,
            link_program,
        )

        profile = CompilerProfile("gcc", "O2", 32, True)
        for seed in range(10):
            spec = generate_program("gt", 30, profile, seed=seed)
            thunks = [f for f in spec.functions
                      if f.is_thunk and f.omit_symbol]
            if thunks:
                binary = link_program(spec, profile)
                from_syms = ground_truth_from_symbols(ELFFile(binary.data))
                linker_gt = binary.ground_truth.function_starts
                assert from_syms < linker_gt
                return
        pytest.fail("no seed produced an omitted thunk symbol")

    def test_stripped_binary_has_empty_symbol_gt(self, sample_binary):
        from repro.elf.parser import strip_symbols

        elf = ELFFile(strip_symbols(sample_binary.data))
        assert ground_truth_from_symbols(elf) == set()
