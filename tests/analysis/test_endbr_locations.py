"""Tests for the Table-I end-branch location study."""

from repro.analysis.endbr_locations import (
    EndbrDistribution,
    EndbrLocation,
    classify_endbr_locations,
)
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


def _classify(profile, seed=61, cxx=False, n=60):
    spec = generate_program("loc", n, profile, seed=seed, cxx=cxx)
    binary = link_program(spec, profile)
    return classify_endbr_locations(
        ELFFile(binary.data), binary.ground_truth.function_starts
    ), binary, spec


class TestClassification:
    def test_no_unattributed_endbrs(self):
        """Every endbr must fall in one of the paper's three classes."""
        for cxx in (False, True):
            dist, _b, _s = _classify(
                CompilerProfile("gcc", "O2", 64, True), cxx=cxx)
            assert dist.counts[EndbrLocation.OTHER] == 0

    def test_c_binaries_have_no_exception_endbrs(self):
        dist, _b, _s = _classify(CompilerProfile("gcc", "O2", 64, True),
                                 cxx=False)
        assert dist.counts[EndbrLocation.EXCEPTION] == 0
        assert dist.fraction(EndbrLocation.FUNCTION_ENTRY) > 0.95

    def test_cxx_binaries_have_exception_endbrs(self):
        dist, _b, _s = _classify(CompilerProfile("gcc", "O2", 64, True),
                                 cxx=True, n=100)
        assert dist.counts[EndbrLocation.EXCEPTION] > 0
        frac = dist.fraction(EndbrLocation.EXCEPTION)
        assert 0.05 < frac < 0.45  # paper: 20-28% for SPEC

    def test_setjmp_sites_counted(self):
        found = False
        for seed in range(12):
            _dist, binary, spec = _classify(
                CompilerProfile("gcc", "O2", 64, True), seed=seed)
            if any(f.setjmp_sites for f in spec.functions):
                dist = classify_endbr_locations(
                    ELFFile(binary.data),
                    binary.ground_truth.function_starts)
                assert dist.counts[EndbrLocation.INDIRECT_RETURN] >= 1
                found = True
        assert found, "no seed produced a setjmp site"

    def test_entry_count_matches_endbr_functions(self):
        dist, binary, _s = _classify(
            CompilerProfile("clang", "O2", 64, True))
        n_endbr_funcs = sum(1 for e in binary.ground_truth.entries
                            if e.is_function and e.has_endbr)
        assert dist.counts[EndbrLocation.FUNCTION_ENTRY] == n_endbr_funcs


class TestDistribution:
    def test_merge(self):
        a = EndbrDistribution()
        a.counts[EndbrLocation.FUNCTION_ENTRY] = 3
        b = EndbrDistribution()
        b.counts[EndbrLocation.FUNCTION_ENTRY] = 2
        b.counts[EndbrLocation.EXCEPTION] = 1
        a.merge(b)
        assert a.counts[EndbrLocation.FUNCTION_ENTRY] == 5
        assert a.total == 6

    def test_fraction_of_empty_distribution(self):
        dist = EndbrDistribution()
        assert dist.fraction(EndbrLocation.FUNCTION_ENTRY) == 0.0


class TestDatasetStats:
    """§III-A dataset account."""

    def test_account_matches_corpus(self, tiny_corpus):
        from repro.analysis.dataset_stats import dataset_stats

        stats = dataset_stats(tiny_corpus)
        assert stats.total_binaries == len(tiny_corpus)
        assert stats.total_functions == sum(
            len(e.binary.ground_truth.function_starts)
            for e in tiny_corpus)
        assert set(stats.suites) == {"coreutils", "binutils", "spec"}
        assert len(stats.configurations) == 4

    def test_render_contains_rows(self, tiny_corpus):
        from repro.analysis.dataset_stats import dataset_stats

        text = dataset_stats(tiny_corpus).render()
        assert "DATASET" in text
        assert "coreutils" in text
        assert "total" in text

    def test_cxx_binaries_counted_in_spec_only(self, tiny_corpus):
        from repro.analysis.dataset_stats import dataset_stats

        stats = dataset_stats(tiny_corpus)
        assert stats.suites["coreutils"].cxx_binaries == 0
        assert stats.suites["binutils"].cxx_binaries == 0
