#!/usr/bin/env python3
"""Downstream use: CFG + call-graph recovery on FunSeeker's output.

The paper positions function identification as "the cornerstone of
binary analysis" because CFG recovery assumes known entries (§VII-B).
This example closes the loop: identify functions with FunSeeker, then
recover every function's basic blocks and the whole-program call graph,
and use it to find dead code — the very functions FunSeeker cannot see
syntactically.
"""

from repro.cfg import recover_program_cfg
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


def main() -> None:
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("cfgdemo", 60, profile, seed=3, cxx=True)
    binary = link_program(spec, profile)
    elf = ELFFile(binary.data)

    functions = FunSeeker(elf).identify().functions
    program = recover_program_cfg(elf, functions)

    print(f"recovered {len(program.functions)} function CFGs: "
          f"{program.total_blocks} basic blocks, "
          f"{program.total_insns} instructions")

    # The shape of a few functions.
    names = {e.address: e.name
             for e in binary.ground_truth.entries}
    interesting = sorted(program.functions.items(),
                         key=lambda kv: -kv[1].block_count)[:5]
    print("\nlargest CFGs:")
    for entry, cfg in interesting:
        print(f"  {names.get(entry, hex(entry)):20s} "
              f"{cfg.block_count:3d} blocks, "
              f"{len(cfg.edges()):3d} edges, "
              f"{len(cfg.exit_blocks()):2d} exits")

    # Call-graph analytics.
    start = binary.ground_truth.entry_named("_start").address
    main_fn = binary.ground_truth.entry_named("main").address
    reachable = program.reachable_from(main_fn)
    unreachable = program.unreachable_functions({start, main_fn})
    print(f"\nfrom main: {len(reachable)} functions reachable")
    print(f"unreachable (dead-code candidates): "
          f"{sorted(names.get(a, hex(a)) for a in unreachable)}")

    truly_dead = {e.address for e in binary.ground_truth.entries
                  if e.is_function and e.is_dead}
    confirmed = truly_dead & unreachable
    print(f"ground truth confirms {len(confirmed)}/{len(truly_dead)} "
          f"dead functions among them")


if __name__ == "__main__":
    main()
