#!/usr/bin/env python3
"""Head-to-head tool comparison on a mini corpus (Table III in small).

Generates a handful of binaries across the failure-mode axes —
architecture and compiler — and scores all four detectors against exact
ground truth, printing the same precision/recall/time columns as the
paper's Table III.
"""

from repro.baselines import (
    FetchLikeDetector,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
)
from repro.elf.parser import ELFFile, strip_symbols
from repro.eval.metrics import score
from repro.synth import CompilerProfile, generate_program, link_program

TOOLS = {
    "funseeker": FunSeekerDetector(),
    "ida": IdaLikeDetector(),
    "ghidra": GhidraLikeDetector(),
    "fetch": FetchLikeDetector(),
}

CONFIGS = [
    ("gcc", 64, "plain C, full FDEs"),
    ("clang", 64, "plain C, full FDEs"),
    ("gcc", 32, "x86, FDEs present"),
    ("clang", 32, "x86, NO FDEs - FETCH/Ghidra collapse"),
]


def main() -> None:
    for compiler, bits, note in CONFIGS:
        profile = CompilerProfile(compiler, "O2", bits, True)
        spec = generate_program("cmp", 120, profile, seed=11, cxx=False)
        binary = link_program(spec, profile)
        elf = ELFFile(strip_symbols(binary.data))
        gt = binary.ground_truth.function_starts

        print(f"\n{profile.config_name}  ({note})")
        print(f"  {'tool':12s} {'prec':>7s} {'rec':>7s} {'time':>9s}")
        for name, tool in TOOLS.items():
            result = tool.detect(elf)
            conf = score(gt, result.functions)
            print(f"  {name:12s} {conf.precision:7.3f} "
                  f"{conf.recall:7.3f} "
                  f"{result.elapsed_seconds * 1000:7.1f}ms")

    print(
        "\nobservations (cf. Table III):\n"
        "  - FunSeeker leads on precision+recall everywhere;\n"
        "  - IDA-style traversal misses indirectly-reached functions;\n"
        "  - FETCH/Ghidra depend on .eh_frame and collapse on x86 Clang;\n"
        "  - FETCH's calling-convention analysis costs it several times\n"
        "    FunSeeker's runtime."
    )


if __name__ == "__main__":
    main()
