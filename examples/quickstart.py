#!/usr/bin/env python3
"""Quickstart: identify functions in a CET-enabled binary.

Synthesizes a CET-enabled ELF executable (the library ships a full
toolchain for that — no compiler needed), then runs FunSeeker on it and
prints what each pipeline stage contributed. Pass a path to analyze
your own binary instead:

    python examples/quickstart.py [/path/to/cet-binary]
"""

import sys

from repro.core.funseeker import Config, FunSeeker
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


def make_demo_binary() -> bytes:
    """Build a small CET-enabled C++-style binary with ground truth."""
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("quickstart", 25, profile, seed=7, cxx=True)
    binary = link_program(spec, profile)
    print(f"synthesized {spec.name!r}: "
          f"{len(binary.ground_truth.function_starts)} functions, "
          f"{len(binary.data)} bytes, profile {profile.config_name}")
    return binary.data


def main() -> None:
    if len(sys.argv) > 1:
        data = open(sys.argv[1], "rb").read()
        print(f"analyzing {sys.argv[1]}")
    else:
        data = make_demo_binary()

    elf = ELFFile(data)
    result = FunSeeker(elf).identify()

    print(f"\nFunSeeker found {len(result.functions)} functions "
          f"in {result.elapsed_seconds * 1000:.1f} ms "
          f"({result.insn_count} instructions swept)")
    print(f"  end-branches seen (E):        {len(result.endbr_all)}")
    filtered_out = len(result.endbr_all) - len(result.endbr_filtered)
    print(f"  filtered non-entries:         {filtered_out} "
          f"(landing pads: {len(result.landing_pads)})")
    print(f"  direct-call targets (C):      {len(result.call_targets)}")
    print(f"  tail-call targets (J'):       "
          f"{len(result.tail_call_targets)}")

    print("\nfirst ten entries:")
    for addr in sorted(result.functions)[:10]:
        print(f"  {addr:#x}")

    # The four Table-II configurations, side by side.
    print("\nconfiguration comparison (Table II):")
    for cfg in Config:
        n = len(FunSeeker(elf, cfg).identify().functions)
        print(f"  config {cfg.value} ({cfg.name:9s}): {n:5d} functions")


if __name__ == "__main__":
    main()
