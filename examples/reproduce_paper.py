#!/usr/bin/env python3
"""One-command paper tour: regenerate every table and figure.

Runs the §III study (Table I, Figure 3), the Table II configuration
sweep, the Table III tool comparison, and the §V-C error analysis on a
freshly generated corpus, printing measured values next to the paper's.

    python examples/reproduce_paper.py [tiny|small|full]

`tiny` (default) takes seconds; `small` is the scale behind
EXPERIMENTS.md; `full` is the paper's complete 48-configuration matrix.
"""

import sys
import time

from repro.eval.tables import (
    error_breakdown,
    figure3,
    table1,
    table2,
    table3,
)
from repro.synth.corpus import build_corpus


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    print(f"building corpus (scale={scale!r}) ...")
    started = time.time()
    corpus = build_corpus(scale)
    print(f"{len(corpus)} binaries in {time.time() - started:.1f}s\n")

    for title, renderer in (
        ("§III-B study", table1),
        ("§III-C study", figure3),
        ("§V-B evaluation", table2),
        ("§V-C/§V-D evaluation", table3),
        ("§V-C error analysis", error_breakdown),
    ):
        started = time.time()
        text, _results = renderer(corpus)
        print(text)
        print(f"[{title}: {time.time() - started:.1f}s]\n")

    print("Shape checks live in benchmarks/ — run:")
    print(f"  REPRO_BENCH_SCALE={scale} pytest benchmarks/ "
          "--benchmark-only")


if __name__ == "__main__":
    main()
