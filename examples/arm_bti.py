#!/usr/bin/env python3
"""ARM BTI extension demo (paper §VI future work).

Synthesizes a BTI-enabled AArch64 binary and runs the transferred
FunSeeker pipeline: BTI markers play the role of end-branch
instructions, ``bl``/``b`` targets the role of direct call/jump targets.
"""

from repro.arm import (
    generate_bti_program,
    identify_functions_bti,
    link_bti_program,
)
from repro.arm.decoder import A64Class, sweep
from repro.elf.parser import ELFFile
from repro.eval.metrics import score


def main() -> None:
    funcs = generate_bti_program(200, seed=11)
    binary = link_bti_program(funcs, seed=11)
    elf = ELFFile(binary.data)
    print(f"synthesized AArch64 binary: {len(binary.data)} bytes, "
          f"{len(binary.ground_truth.function_starts)} functions")

    txt = elf.section(".text")
    insns = sweep(txt.data, txt.sh_addr)
    by_class = {}
    for insn in insns:
        by_class[insn.klass] = by_class.get(insn.klass, 0) + 1
    print("\ninstruction mix:")
    for klass in (A64Class.BTI, A64Class.BL, A64Class.B, A64Class.RET):
        print(f"  {klass.name:4s} {by_class.get(klass, 0):6d}")

    result = identify_functions_bti(elf)
    conf = score(binary.ground_truth.function_starts, result.functions)
    print(f"\nFunSeeker-BTI: {len(result.functions)} functions")
    print(f"  precision {conf.precision:.3f}  recall {conf.recall:.3f}")
    print("\nthe same E ∪ C ∪ J' structure transfers unchanged — the "
          "paper's §VI claim.")


if __name__ == "__main__":
    main()
