#!/usr/bin/env python3
"""Analyze a real CET binary from your system (or compile one on the fly).

Usage:
    python examples/analyze_real_binary.py /usr/bin/something
    python examples/analyze_real_binary.py          # compiles a demo

Shows the full downstream-user workflow: parse, identify, and — when
the binary still has symbols — score the result against the symbol
table using the paper's ground-truth policy (§V-A1: ``.cold``/``.part``
fragment symbols are not functions).
"""

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.analysis.groundtruth import ground_truth_from_symbols
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.eval.metrics import score

DEMO_C = r"""
#include <stdio.h>
static int square(int x) { return x * x; }
static int cube(int x) { return x * square(x); }
int compute(int x) { return square(x) + cube(x); }
int main(int argc, char **argv) {
    printf("%d\n", compute(argc));
    return 0;
}
"""


def compile_demo() -> Path:
    gcc = shutil.which("gcc")
    if gcc is None:
        sys.exit("no binary given and gcc unavailable — pass an ELF path")
    tmp = Path(tempfile.mkdtemp())
    src = tmp / "demo.c"
    src.write_text(DEMO_C)
    out = tmp / "demo"
    subprocess.run(
        [gcc, "-O2", "-fcf-protection=full", "-o", str(out), str(src)],
        check=True,
    )
    print(f"compiled demo with CET -> {out}")
    return out


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else compile_demo()
    elf = ELFFile.from_path(path)
    arch = "x86-64" if elf.is64 else "x86"
    kind = "PIE" if elf.header.is_pie else "non-PIE"
    print(f"{path}: {arch} {kind}, "
          f"{'stripped' if elf.is_stripped else 'with symbols'}")

    result = FunSeeker(elf).identify()
    print(f"\nFunSeeker: {len(result.functions)} functions in "
          f"{result.elapsed_seconds * 1000:.1f} ms")
    if not result.endbr_all:
        print("note: no end-branch instructions — this binary was not "
              "compiled with -fcf-protection (FunSeeker still reports "
              "direct-call targets)")

    if not elf.is_stripped:
        gt = ground_truth_from_symbols(elf)
        conf = score(gt, result.functions)
        print(f"vs symbol ground truth ({len(gt)} functions): "
              f"precision {conf.precision:.3f}, recall {conf.recall:.3f}")
        missed = sorted(gt - result.functions)
        if missed:
            names = {s.value: s.name for s in elf.symbols()}
            print("missed (typically non-CET CRT code or dead functions):")
            for addr in missed[:8]:
                print(f"  {addr:#x} {names.get(addr, '?')}")


if __name__ == "__main__":
    main()
