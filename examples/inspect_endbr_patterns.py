#!/usr/bin/env python3
"""Reproduce the paper's Figures 1 and 2: where end-branches appear.

Builds targeted synthetic programs and walks their disassembly to show
the three end-branch locations the paper's §III study identifies:

1. at function entries (Fig. 1b),
2. right after a ``call setjmp@plt`` (Fig. 2a), and
3. at C++ exception landing pads (Fig. 2b),

plus the NOTRACK-prefixed jump-table dispatch from Fig. 1b.
"""

from repro.core.disassemble import disassemble
from repro.elf.ehframe import parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.elf.plt import build_plt_map
from repro.synth import CompilerProfile, link_program
from repro.synth.ir import FunctionSpec, ProgramSpec
from repro.x86.insn import InsnClass
from repro.x86.sweep import linear_sweep


def build_showcase() -> bytes:
    """One program exhibiting every end-branch pattern at once."""
    profile = CompilerProfile("gcc", "O2", 64, True)
    functions = [
        FunctionSpec(name="_start", has_endbr=True,
                     takes_address_of=["main"],
                     plt_callees=["__libc_start_main"], seed=1),
        FunctionSpec(name="main", has_endbr=True, address_taken=True,
                     callees=["sort_files", "dispatch"], seed=2),
        # Fig. 2a: a setjmp user — endbr lands after the call site.
        FunctionSpec(name="sort_files", has_endbr=True,
                     setjmp_sites=["setjmp"], seed=3),
        # Fig. 1b: switch statement via NOTRACK jump table.
        FunctionSpec(name="dispatch", has_endbr=True,
                     jump_table_cases=8, seed=4),
        # Fig. 2b: C++ catch blocks — endbr at each landing pad.
        FunctionSpec(name="molecule_ctor", has_endbr=True,
                     landing_pads=2,
                     plt_callees=["__cxa_allocate_exception"],
                     callees=["main"], seed=5),
    ]
    spec = ProgramSpec(
        name="showcase", functions=functions,
        imports=["__libc_start_main", "setjmp",
                 "__cxa_allocate_exception", "__cxa_begin_catch",
                 "__cxa_end_catch", "__gxx_personality_v0"],
    )
    return link_program(spec, profile).data


def main() -> None:
    data = build_showcase()
    elf = ELFFile(data)
    txt = elf.section(".text")
    plt = build_plt_map(elf)

    eh_sec = elf.section(".eh_frame")
    get_sec = elf.section(".gcc_except_table")
    eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
    pads = landing_pads_from_exception_info(
        eh, get_sec.data, get_sec.sh_addr, elf.is64)

    sweep = disassemble(txt.data, txt.sh_addr, 64)
    symbols = {s.value: s.name for s in elf.symbols()
               if s.is_function and s.is_defined}

    print("end-branch instruction inventory "
          f"({len(sweep.endbr_addrs)} total):\n")
    for addr in sorted(sweep.endbr_addrs):
        if addr in symbols:
            kind = f"function entry of {symbols[addr]!r}   (Fig. 1b)"
        elif addr in pads:
            kind = "exception landing pad          (Fig. 2b)"
        else:
            pred = sweep.endbr_predecessor.get(addr)
            name = plt.name_at(pred[1]) if pred and pred[1] else None
            kind = (f"after call to {name!r}          (Fig. 2a)"
                    if name else "other")
        print(f"  {addr:#08x}  {kind}")

    print("\nNOTRACK jump-table dispatches (Fig. 1b):")
    for insn in linear_sweep(txt.data, txt.sh_addr, 64):
        if insn.klass == InsnClass.JMP_INDIRECT and insn.notrack:
            print(f"  {insn.addr:#08x}  {insn.mnemonic()}")

    print("\nconclusion: an end-branch is *usually* a function entry, "
          "but setjmp\nreturn sites and catch blocks would be false "
          "positives without\nFILTERENDBR — exactly the paper's Table I "
          "observation.")


if __name__ == "__main__":
    main()
