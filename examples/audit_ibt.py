#!/usr/bin/env python3
"""IBT compliance auditing: would this binary survive CET enforcement?

Under Indirect Branch Tracking (paper §II), an indirect branch to an
address without an end-branch marker raises a control-protection fault.
This example audits two synthetic binaries — one correct, one with
markers deliberately stripped from address-taken functions — and shows
the auditor pinpointing exactly the functions that would fault.

Usage: python examples/audit_ibt.py [/path/to/binary]
"""

import sys

from repro.analysis.ibt_audit import audit_ibt
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


def _report(title: str, elf: ELFFile, names: dict[int, str]) -> None:
    report = audit_ibt(elf)
    verdict = "COMPLIANT" if report.compliant else "WOULD FAULT"
    print(f"\n{title}: {report.candidate_count} indirect-branch-target "
          f"candidates -> {verdict}")
    for violation in report.violations:
        name = names.get(violation.target, "?")
        print(f"  violation: {violation.target:#x} <{name}> "
              f"(referenced via {violation.source.value}, no endbr)")


def main() -> None:
    if len(sys.argv) > 1:
        elf = ELFFile.from_path(sys.argv[1])
        names = {s.value: s.name for s in elf.symbols()
                 if s.is_function and s.is_defined}
        _report(sys.argv[1], elf, names)
        return

    profile = CompilerProfile("gcc", "O2", 64, True)

    good = link_program(
        generate_program("good", 40, profile, seed=9, cxx=True), profile)
    names = {e.address: e.name for e in good.ground_truth.entries}
    _report("correctly built binary", ELFFile(good.data), names)

    bad = link_program(
        generate_program("bad", 40, profile, seed=9, cxx=True,
                         ibt_violations=3),
        profile)
    names = {e.address: e.name for e in bad.ground_truth.entries}
    _report("binary with stripped markers", ELFFile(bad.data), names)

    print("\nthis is the enforcement view of the paper's §II background: "
          "the same\nmarkers FunSeeker mines for identification are what "
          "the CPU checks at runtime.")


if __name__ == "__main__":
    main()
