#!/usr/bin/env python3
"""Survey a directory of real binaries for CET adoption and analyze one.

The paper's premise is that CET-enabled binaries are becoming the norm
("CET is enabled by default on modern compilers and OSes", §VI). This
example measures that premise on *your* system: it streams a directory
tree (default ``/usr/bin``) through the ingest subsystem's discoverer
and admission triage — so symlink loops, unreadable entries, FIFOs,
hard-link aliases, and arbitrarily wide directories are all survived,
not special-cased — reports how many admitted binaries advertise
IBT/SHSTK in ``.note.gnu.property``, and runs FunSeeker on a sample.

For whole-fleet reports (degradation histograms, per-tool agreement,
crash-safe resume), use the full pipeline: ``funseeker scan <dir>``.

Usage: python examples/scan_system_binaries.py [directory] [max_files]
"""

import sys
from pathlib import Path

from repro.core.funseeker import FunSeeker
from repro.elf.gnuproperty import parse_cet_features
from repro.elf.parser import ELFFile, ElfParseError
from repro.ingest import Candidate, discover, triage


def main() -> None:
    directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("/usr/bin")
    limit = int(sys.argv[2]) if len(sys.argv) > 2 else 120

    total = 0
    cet_count = 0
    skipped = 0
    largest: tuple[int, Path, ELFFile] | None = None
    # The discoverer is a bounded-memory generator: it advances only as
    # we consume it, so `limit` truly bounds the work — no directory
    # listing is ever materialized (or silently truncated).
    for event in discover([directory]):
        if total >= limit:
            break
        if not isinstance(event, Candidate):
            skipped += 1
            continue
        if not triage(event).analyze:
            skipped += 1
            continue
        try:
            elf = ELFFile.from_path(event.path, strict=False)
        except (ElfParseError, OSError):
            # Even degraded parsing gives up on a few truly hostile
            # files; they cost one entry, never the survey.
            skipped += 1
            continue
        txt = elf.section(".text")
        if txt is None:
            skipped += 1
            continue
        total += 1
        features = parse_cet_features(elf)
        if features.any:
            cet_count += 1
        # Sample target: the largest binary below 4 MB of text, so the
        # demo stays interactive (the sweep is linear — a 60 MB Go
        # binary works too, it just takes most of a minute).
        if txt.sh_size < 4 << 20 and (largest is None
                                      or txt.sh_size > largest[0]):
            largest = (txt.sh_size, event.path, elf)

    print(f"{directory}: {total} x86/x86-64 ELF executables scanned "
          f"({skipped} entries triaged out)")
    print(f"CET-advertising (.note.gnu.property IBT/SHSTK): {cet_count}")
    if total and not cet_count:
        print("  (distros often link CET-less CRT objects, which clears "
              "the linker's\n   ANDed feature bits even when user code "
              "has endbr — see docs/substrates.md)")

    if largest is None:
        return
    _size, path, elf = largest
    result = FunSeeker(elf).identify()
    print(f"\nanalyzing largest: {path}")
    print(f"  cet note: {'yes' if result.cet_enabled else 'no'}; "
          f"end-branches seen: {len(result.endbr_all)}")
    print(f"  functions identified: {len(result.functions)} "
          f"in {result.elapsed_seconds * 1000:.0f} ms "
          f"({result.insn_count} instructions)")
    if not result.endbr_all:
        print("  legacy binary: results rest on direct-call targets "
              "only (paper §VI)")


if __name__ == "__main__":
    main()
