"""DISASSEMBLE — the linear-sweep collection pass (paper §IV-B, Alg. 1).

One pass over ``.text`` collects everything the rest of the pipeline
needs:

- ``E`` — addresses of end-branch instructions;
- ``C`` — direct-call targets that land inside ``.text``;
- ``J`` — direct unconditional-jump targets inside ``.text``;
- per-site records for tail-call selection;
- the instruction preceding each end-branch (for the indirect-return
  filter);
- direct-call sites whose target leaves ``.text`` (PLT calls), so
  FILTERENDBR can match them against the indirect-return list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode_raw
from repro.x86.insn import InsnClass
from repro.x86.superset import get_index


@dataclass(frozen=True)
class BranchSite:
    """One direct branch instruction and its target."""

    addr: int
    target: int
    is_call: bool


@dataclass
class SweepResult:
    """Everything collected by one linear sweep of ``.text``."""

    endbr_addrs: set[int] = field(default_factory=set)
    call_targets: set[int] = field(default_factory=set)
    jump_targets: set[int] = field(default_factory=set)
    call_sites: list[BranchSite] = field(default_factory=list)
    jump_sites: list[BranchSite] = field(default_factory=list)
    #: endbr addr -> (class, target) of the immediately preceding insn.
    endbr_predecessor: dict[int, tuple[InsnClass, int | None]] = field(
        default_factory=dict
    )
    #: Direct-call sites targeting outside .text (candidate PLT calls).
    external_call_sites: list[BranchSite] = field(default_factory=list)
    text_start: int = 0
    text_end: int = 0
    insn_count: int = 0


def disassemble(data: bytes, base_addr: int, bits: int) -> SweepResult:
    """Linear-sweep ``data`` and collect the (E, C, J) tuple plus the
    side tables FILTERENDBR and SELECTTAILCALL consume.

    Decode failures advance one byte, per the paper.
    """
    with obs.span("sweep", bytes=len(data)):
        if vector.available():
            return _disassemble_indexed(
                get_index(data, bits, base_addr), data, base_addr, bits
            )
        return _disassemble(data, base_addr, bits)


def _disassemble_indexed(
    index, data: bytes, base_addr: int, bits: int
) -> SweepResult:
    """The same collection pass, walking the shared decode index.

    The batched pass has already classified every offset; this walk
    touches only instruction boundaries and materializes no ``Insn``
    objects. Bookkeeping (error resets of ``prev``, boundary checks on
    branch targets, counters) mirrors :func:`_disassemble` exactly —
    the differential tests hold the two to identical results.
    """
    result = SweepResult(text_start=base_addr, text_end=base_addr + len(data))
    end = result.text_end
    lengths = index.lengths
    klasses = index.klasses
    targets = index.targets
    prev: tuple[int, int | None] | None = None
    offset = 0
    count = 0
    errors = 0
    n = len(data)
    endbr64 = int(InsnClass.ENDBR64)
    endbr32 = int(InsnClass.ENDBR32)
    call_d = int(InsnClass.CALL_DIRECT)
    jmp_d = int(InsnClass.JMP_DIRECT)
    while offset < n:
        length = lengths[offset]
        if length == 0:
            offset += 1
            prev = None
            errors += 1
            continue
        addr = base_addr + offset
        klass = klasses[offset]
        target = targets.get(offset)
        offset += length
        count += 1
        if klass == endbr64 or klass == endbr32:
            result.endbr_addrs.add(addr)
            if prev is not None:
                result.endbr_predecessor[addr] = (
                    InsnClass(prev[0]), prev[1]
                )
        elif klass == call_d:
            if base_addr <= target < end:
                result.call_targets.add(target)
                result.call_sites.append(BranchSite(addr, target, True))
            else:
                result.external_call_sites.append(
                    BranchSite(addr, target, True)
                )
        elif klass == jmp_d:
            if base_addr <= target < end:
                result.jump_targets.add(target)
                result.jump_sites.append(BranchSite(addr, target, False))
        prev = (klass, target)
    result.insn_count = count
    obs.add("sweep.insns", count)
    obs.add("sweep.decode_errors", errors)
    obs.add("sweep.endbr_sites", len(result.endbr_addrs))
    return result


def _disassemble(data: bytes, base_addr: int, bits: int) -> SweepResult:
    result = SweepResult(text_start=base_addr, text_end=base_addr + len(data))
    end = result.text_end
    # Previous instruction's (class, target); None after decode errors.
    prev: tuple[int, int | None] | None = None
    offset = 0
    count = 0
    errors = 0
    n = len(data)
    endbr64 = int(InsnClass.ENDBR64)
    endbr32 = int(InsnClass.ENDBR32)
    call_d = int(InsnClass.CALL_DIRECT)
    jmp_d = int(InsnClass.JMP_DIRECT)
    while offset < n:
        addr = base_addr + offset
        try:
            length, klass, target, _notrack = decode_raw(
                data, offset, addr, bits
            )
        except DecodeError:
            offset += 1
            prev = None
            errors += 1
            continue
        offset += length
        count += 1
        if klass == endbr64 or klass == endbr32:
            result.endbr_addrs.add(addr)
            if prev is not None:
                result.endbr_predecessor[addr] = (
                    InsnClass(prev[0]), prev[1]
                )
        elif klass == call_d:
            if base_addr <= target < end:
                result.call_targets.add(target)
                result.call_sites.append(BranchSite(addr, target, True))
            else:
                result.external_call_sites.append(
                    BranchSite(addr, target, True)
                )
        elif klass == jmp_d:
            if base_addr <= target < end:
                result.jump_targets.add(target)
                result.jump_sites.append(BranchSite(addr, target, False))
        prev = (klass, target)
    result.insn_count = count
    obs.add("sweep.insns", count)
    obs.add("sweep.decode_errors", errors)
    obs.add("sweep.endbr_sites", len(result.endbr_addrs))
    return result
