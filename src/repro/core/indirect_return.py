"""The indirect-return function list used by FILTERENDBR (paper §IV-C).

GCC's ``special_function_p`` (gcc/calls.c) flags exactly five base names
as "returns twice": a call to any of them is followed by an end-branch
instruction to protect the indirect return edge. FunSeeker matches call
targets against this list to discard those end-branches.

Names are matched after stripping the leading underscores the C library
adds to its implementation aliases (``_setjmp``, ``__sigsetjmp``, ...),
exactly as GCC's matcher does.
"""

from __future__ import annotations

#: The five "returns twice" base names from GCC's ``special_function_p``.
INDIRECT_RETURN_FUNCTIONS = frozenset(
    {"setjmp", "sigsetjmp", "savectx", "vfork", "getcontext"}
)

__all__ = ["INDIRECT_RETURN_FUNCTIONS", "is_indirect_return_name"]


def is_indirect_return_name(name: str) -> bool:
    """Whether an imported function name is on the indirect-return list.

    >>> is_indirect_return_name("setjmp")
    True
    >>> is_indirect_return_name("__sigsetjmp")
    True
    >>> is_indirect_return_name("printf")
    False
    """
    return name.lstrip("_") in INDIRECT_RETURN_FUNCTIONS
