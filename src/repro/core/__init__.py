"""FunSeeker core: the paper's function-identification algorithm."""

from repro.core.disassemble import BranchSite, SweepResult, disassemble
from repro.core.filter_endbr import filter_endbr
from repro.core.funseeker import (
    Config,
    FunSeeker,
    FunSeekerResult,
    identify_functions,
)
from repro.core.indirect_return import (
    INDIRECT_RETURN_FUNCTIONS,
    is_indirect_return_name,
)
from repro.core.robust import RobustFunSeeker, disassemble_robust
from repro.core.tailcall import select_tail_calls

__all__ = [
    "BranchSite",
    "Config",
    "FunSeeker",
    "FunSeekerResult",
    "INDIRECT_RETURN_FUNCTIONS",
    "RobustFunSeeker",
    "SweepResult",
    "disassemble_robust",
    "disassemble",
    "filter_endbr",
    "identify_functions",
    "is_indirect_return_name",
    "select_tail_calls",
]
