"""FunSeeker — CET-aware function identification (paper Algorithm 1).

::

    function FunSeeker(bin)
        txt, exn <- PARSE(bin)
        E, C, J  <- DISASSEMBLE(txt)
        E'       <- FILTERENDBR(E, exn)
        J'       <- SELECTTAILCALL(J)
        return E' ∪ C ∪ J'

The four evaluation configurations of Table II are exposed through
:class:`Config`.

Usage::

    from repro.core.funseeker import FunSeeker
    result = FunSeeker.from_path("a.out").identify()
    print(sorted(hex(a) for a in result.functions))
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field

from repro import obs
from repro.cache.context import get_context
from repro.core.filter_endbr import filter_endbr
from repro.core.tailcall import select_tail_calls
from repro.elf import constants as C
from repro.elf.parser import ELFFile
from repro.errors import Diagnostics, Severity


class Config(enum.Enum):
    """The four FunSeeker configurations evaluated in Table II."""

    RAW = 1              # ① E ∪ C
    FILTERED = 2         # ② E' ∪ C
    ALL_JUMPS = 3        # ③ E' ∪ C ∪ J
    FULL = 4             # ④ E' ∪ C ∪ J'  (the real FunSeeker)


@dataclass
class FunSeekerResult:
    """Output of one FunSeeker run."""

    functions: set[int]
    endbr_all: set[int] = field(default_factory=set)          # E
    endbr_filtered: set[int] = field(default_factory=set)     # E'
    call_targets: set[int] = field(default_factory=set)       # C
    jump_targets: set[int] = field(default_factory=set)       # J
    tail_call_targets: set[int] = field(default_factory=set)  # J'
    landing_pads: set[int] = field(default_factory=set)
    insn_count: int = 0
    elapsed_seconds: float = 0.0
    #: CET features the binary advertises via .note.gnu.property.
    #: FunSeeker operates by design on CET-enabled binaries (§VI);
    #: ``cet_enabled`` False flags a legacy input whose results rest on
    #: direct-call targets alone.
    cet_enabled: bool = False
    #: Structured account of every parse anomaly tolerated while
    #: producing this result (see :mod:`repro.errors`). Empty on a
    #: clean, fully-parsed input.
    diagnostics: Diagnostics = field(default_factory=Diagnostics)


class FunSeeker:
    """Function identification for one CET-enabled ELF binary.

    With ``strict=False`` an unsupported architecture becomes a
    recorded diagnostic and :meth:`identify` returns an empty result
    instead of the constructor raising — the mode corpus sweeps over
    untrusted inputs use (pair it with a degraded-mode
    :class:`~repro.elf.parser.ELFFile`).
    """

    def __init__(
        self,
        elf: ELFFile,
        config: Config = Config.FULL,
        *,
        strict: bool = True,
    ) -> None:
        self._supported = elf.machine in (C.EM_386, C.EM_X86_64)
        if not self._supported:
            message = (
                f"FunSeeker targets x86/x86-64 binaries "
                f"(e_machine={elf.machine}); for AArch64 use "
                f"repro.arm.identify_functions_bti"
            )
            if strict:
                raise ValueError(message)
            elf.diagnostics.record(
                "funseeker", message, severity=Severity.ERROR,
            )
        self.elf = elf
        self.config = config
        self.strict = strict

    @classmethod
    def from_bytes(
        cls, data: bytes, config: Config = Config.FULL, *,
        strict: bool = True,
    ) -> "FunSeeker":
        return cls(ELFFile(data, strict=strict), config, strict=strict)

    @classmethod
    def from_path(
        cls, path: str | os.PathLike, config: Config = Config.FULL, *,
        strict: bool = True,
    ) -> "FunSeeker":
        return cls(ELFFile.from_path(path, strict=strict), config,
                   strict=strict)

    # -- PARSE ------------------------------------------------------------

    def _parse_exception_info(self) -> set[int]:
        """Landing-pad addresses from .eh_frame + .gcc_except_table.

        Missing or malformed exception metadata yields a partial (or
        empty) set — plain C binaries simply have no
        ``.gcc_except_table``, and a corrupt FDE or LSDA drops only the
        landing pads it described, recorded on the file's diagnostics.
        Memoized on the file's analysis context, so repeat runs and
        other consumers of the same ``ELFFile`` share one parse.
        """
        return get_context(self.elf).landing_pads()

    # -- main algorithm ----------------------------------------------------

    def identify(self) -> FunSeekerResult:
        """Run the algorithm and return identified function entries."""
        started = time.perf_counter()

        if not self._supported:
            return FunSeekerResult(functions=set(),
                                   diagnostics=self.elf.diagnostics)
        ctx = get_context(self.elf)
        sweep = ctx.sweep()
        if sweep is None:
            return FunSeekerResult(functions=set(),
                                   diagnostics=self.elf.diagnostics)
        landing_pads = self._parse_exception_info()
        plt_map = ctx.plt_map()

        if self.config is Config.RAW:
            e_set = sweep.endbr_addrs
        else:
            with obs.span("filter"):
                e_set = filter_endbr(sweep, plt_map, landing_pads)

        functions = set(e_set)
        functions.update(sweep.call_targets)

        tail_targets: set[int] = set()
        if self.config is Config.ALL_JUMPS:
            functions.update(sweep.jump_targets)
        elif self.config is Config.FULL:
            with obs.span("tailcall"):
                tail_targets = select_tail_calls(
                    sweep.jump_sites,
                    sweep.call_sites,
                    known_entries=functions,
                    text_start=sweep.text_start,
                    text_end=sweep.text_end,
                )
            functions.update(tail_targets)

        elapsed = time.perf_counter() - started
        return FunSeekerResult(
            functions=functions,
            cet_enabled=ctx.cet_features().any,
            diagnostics=self.elf.diagnostics,
            endbr_all=set(sweep.endbr_addrs),
            endbr_filtered=e_set if self.config is not Config.RAW else set(),
            call_targets=set(sweep.call_targets),
            jump_targets=set(sweep.jump_targets),
            tail_call_targets=tail_targets,
            landing_pads=landing_pads,
            insn_count=sweep.insn_count,
            elapsed_seconds=elapsed,
        )


def identify_functions(
    data: bytes, config: Config = Config.FULL
) -> set[int]:
    """Convenience wrapper: function entry addresses for an ELF image."""
    return FunSeeker.from_bytes(data, config).identify().functions
