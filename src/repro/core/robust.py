"""Data-tolerant FunSeeker front end (paper §VI future work).

Swaps DISASSEMBLE's plain linear sweep for superset-based robust sweep
(:mod:`repro.x86.superset`), making the pipeline resilient to data
embedded in ``.text`` by hand-written assembly — the known linear-sweep
failure the paper defers to future work.
"""

from __future__ import annotations

from repro.cache.context import get_context
from repro.core.disassemble import BranchSite, SweepResult
from repro.core.filter_endbr import filter_endbr
from repro.core.funseeker import FunSeeker, FunSeekerResult
from repro.core.tailcall import select_tail_calls
from repro.x86.insn import Insn, InsnClass
from repro.x86.superset import robust_sweep


def disassemble_robust(data: bytes, base_addr: int, bits: int) -> SweepResult:
    """DISASSEMBLE built on the superset-validated sweep."""
    result = SweepResult(text_start=base_addr,
                         text_end=base_addr + len(data))
    end = result.text_end
    prev: Insn | None = None
    count = 0
    for insn in robust_sweep(data, base_addr, bits):
        klass = insn.klass
        if klass in (InsnClass.ENDBR64, InsnClass.ENDBR32):
            result.endbr_addrs.add(insn.addr)
            if prev is not None and prev.end == insn.addr:
                result.endbr_predecessor[insn.addr] = (prev.klass,
                                                       prev.target)
        elif klass == InsnClass.CALL_DIRECT:
            site = BranchSite(insn.addr, insn.target, True)
            if base_addr <= insn.target < end:
                result.call_targets.add(insn.target)
                result.call_sites.append(site)
            else:
                result.external_call_sites.append(site)
        elif klass == InsnClass.JMP_DIRECT:
            if base_addr <= insn.target < end:
                result.jump_targets.add(insn.target)
                result.jump_sites.append(
                    BranchSite(insn.addr, insn.target, False))
        count += 1
        prev = insn
    result.insn_count = count
    return result


class RobustFunSeeker(FunSeeker):
    """FunSeeker with the superset-validated disassembly front end."""

    def identify(self) -> FunSeekerResult:
        import time

        started = time.perf_counter()
        if not self._supported:
            return FunSeekerResult(functions=set(),
                                   diagnostics=self.elf.diagnostics)
        ctx = get_context(self.elf)
        sweep = ctx.robust_sweep_result()
        if sweep is None:
            return FunSeekerResult(functions=set(),
                                   diagnostics=self.elf.diagnostics)
        landing_pads = self._parse_exception_info()
        plt_map = ctx.plt_map()
        filtered = filter_endbr(sweep, plt_map, landing_pads)
        functions = filtered | sweep.call_targets
        tails = select_tail_calls(
            sweep.jump_sites, sweep.call_sites, known_entries=functions,
            text_start=sweep.text_start, text_end=sweep.text_end,
        )
        functions |= tails
        return FunSeekerResult(
            functions=functions,
            endbr_all=set(sweep.endbr_addrs),
            endbr_filtered=filtered,
            call_targets=set(sweep.call_targets),
            jump_targets=set(sweep.jump_targets),
            tail_call_targets=tails,
            landing_pads=landing_pads,
            insn_count=sweep.insn_count,
            elapsed_seconds=time.perf_counter() - started,
            diagnostics=self.elf.diagnostics,
        )
