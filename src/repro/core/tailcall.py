"""SELECTTAILCALL — pick the jump targets that are tail calls (§IV-D).

A direct unconditional jump target is accepted as a function entry only
when both conditions hold:

1. the target lies beyond the boundary of the function containing the
   jump (Qiao et al.'s condition), where function boundaries are
   approximated by the already-identified entry set ``E' ∪ C``; and
2. the target is referenced by multiple functions, not only the one the
   jump belongs to (FETCH-inspired).

Both checks are simple set/bisect operations — no dataflow analysis —
which is where FunSeeker's speed advantage over FETCH comes from.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.core.disassemble import BranchSite


def select_tail_calls(
    jump_sites: list[BranchSite],
    call_sites: list[BranchSite],
    known_entries: set[int],
    text_start: int,
    text_end: int,
) -> set[int]:
    """Return ``J'``: jump targets judged to be tail-called functions.

    Parameters
    ----------
    jump_sites / call_sites:
        Direct branch records from DISASSEMBLE.
    known_entries:
        The function entries identified so far (``E' ∪ C``); used to
        approximate function boundaries.
    text_start / text_end:
        Bounds of the swept region.
    """
    starts = sorted(known_entries)

    def owner(addr: int) -> int:
        """Start address of the function containing ``addr`` (or the
        text start when the address precedes every known entry)."""
        idx = bisect_right(starts, addr) - 1
        return starts[idx] if idx >= 0 else text_start

    def next_boundary(addr: int) -> int:
        idx = bisect_right(starts, addr)
        return starts[idx] if idx < len(starts) else text_end

    # Reference owners per target, over *all* direct branches.
    ref_owners: dict[int, set[int]] = {}
    for site in jump_sites:
        ref_owners.setdefault(site.target, set()).add(owner(site.addr))
    for site in call_sites:
        ref_owners.setdefault(site.target, set()).add(owner(site.addr))

    selected: set[int] = set()
    for site in jump_sites:
        target = site.target
        if target in known_entries:
            continue  # already identified; nothing to add
        current = owner(site.addr)
        # Condition 1: the jump escapes its containing function.
        if current <= target < next_boundary(site.addr):
            continue
        # Condition 2: multi-function reference, beyond the current one.
        owners = ref_owners.get(target, set())
        if len(owners) < 2 or owners == {current}:
            continue
        selected.add(target)
    return selected
