"""FILTERENDBR — remove non-function-entry end-branches (paper §IV-C).

Two categories of end-branch instructions are discarded from ``E``:

1. **Indirect-return sites**: an end-branch whose immediately preceding
   instruction is a direct call into a PLT stub whose import name is on
   GCC's indirect-return list (``setjmp`` and friends, Fig. 2a).
2. **Exception landing pads**: end-branches located at landing pads
   described by the LSDAs in ``.gcc_except_table`` (Fig. 2b). LSDAs are
   located through the FDE augmentation data — any function owning an
   LSDA necessarily has an FDE, so this is exact even though FunSeeker
   does not otherwise rely on ``.eh_frame``.
"""

from __future__ import annotations

from repro.core.disassemble import SweepResult
from repro.core.indirect_return import is_indirect_return_name
from repro.elf.plt import PLTMap
from repro.x86.insn import InsnClass


def filter_endbr(
    sweep: SweepResult,
    plt_map: PLTMap,
    landing_pads: set[int],
) -> set[int]:
    """Return ``E'``: end-branch addresses that plausibly start functions.

    Parameters
    ----------
    sweep:
        The DISASSEMBLE result.
    plt_map:
        PLT stub-address -> import-name map for the binary.
    landing_pads:
        Absolute landing-pad addresses extracted from the exception
        metadata (empty for C binaries).
    """
    kept: set[int] = set()
    for addr in sweep.endbr_addrs:
        if addr in landing_pads:
            continue
        if follows_indirect_return_call(sweep, plt_map, addr):
            continue
        kept.add(addr)
    return kept


def follows_indirect_return_call(
    sweep: SweepResult, plt_map: PLTMap, endbr_addr: int
) -> bool:
    pred = sweep.endbr_predecessor.get(endbr_addr)
    if pred is None:
        return False
    klass, target = pred
    if klass != InsnClass.CALL_DIRECT or target is None:
        return False
    name = plt_map.name_at(target)
    if name is None:
        return False
    return is_indirect_return_name(name)
