"""Deterministic fault plans: *what* to inject, *where*, and *when*.

A fault plan is a list of :class:`FaultSpec` triples
``(kind, site, ordinal)``: inject fault *kind* at the *ordinal*-th hit
of named fault point *site* in a process. Plans have a canonical
one-line text form so they can cross process boundaries through an
environment variable (forked pool workers inherit the parent's plan)
and be typed on a command line::

    enospc@journal.append#2,kill@cell.execute#5,corrupt@cache.get#*

``#*`` fires on *every* hit of the site; a numeric ordinal fires
exactly once (1-based). Ordinals are counted per process, and pool
workers reset their counters at spawn, so a plan is a reproducible
recipe: the same plan against the same corpus injects the same faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Named fault points (the catalog is documented in docs/robustness.md).
SITE_ELF_READ = "elf.read"
SITE_BLOB_READ = "blob.read"
SITE_CACHE_GET = "cache.get"
SITE_CACHE_PUT = "cache.put"
SITE_JOURNAL_APPEND = "journal.append"
SITE_WORKER_DISPATCH = "worker.dispatch"
SITE_CELL_EXECUTE = "cell.execute"
SITE_INGEST_WALK = "ingest.walk"
SITE_INGEST_ADMIT = "ingest.admit"
SITE_INGEST_ANALYZE = "ingest.analyze"

ALL_SITES = (
    SITE_ELF_READ,
    SITE_BLOB_READ,
    SITE_CACHE_GET,
    SITE_CACHE_PUT,
    SITE_JOURNAL_APPEND,
    SITE_WORKER_DISPATCH,
    SITE_CELL_EXECUTE,
    SITE_INGEST_WALK,
    SITE_INGEST_ADMIT,
    SITE_INGEST_ANALYZE,
)

#: Fault kinds. Behavioral kinds act inside the registry (raise, kill,
#: spin); data kinds are returned to the instrumented call site, which
#: applies the site-specific corruption itself.
KIND_IO = "io"                # raise OSError(EIO)
KIND_ENOSPC = "enospc"        # raise OSError(ENOSPC)
KIND_TRANSIENT = "transient"  # raise TransientFaultError (retryable)
KIND_PERMANENT = "permanent"  # raise PermanentFaultError (fail-fast)
KIND_KILL = "kill"            # SIGKILL the current process
KIND_HANG = "hang"            # busy-spin until the watchdog fires
KIND_TRUNCATE = "truncate"    # data kind: caller truncates its read
KIND_CORRUPT = "corrupt"      # data kind: caller corrupts its artifact

BEHAVIORAL_KINDS = (
    KIND_IO, KIND_ENOSPC, KIND_TRANSIENT, KIND_PERMANENT, KIND_KILL,
    KIND_HANG,
)
DATA_KINDS = (KIND_TRUNCATE, KIND_CORRUPT)
ALL_KINDS = BEHAVIORAL_KINDS + DATA_KINDS

#: Ordinal sentinel for "every hit".
EVERY = 0


@dataclass(frozen=True)
class FaultSpec:
    """One planned injection: ``kind`` at the ``ordinal``-th ``site`` hit.

    ``ordinal`` is 1-based; :data:`EVERY` (spelled ``*`` in text form)
    fires on every hit.
    """

    kind: str
    site: str
    ordinal: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {ALL_KINDS}")
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; pick from {ALL_SITES}")
        if self.ordinal < 0:
            raise ValueError(f"fault ordinal must be >= 0: {self.ordinal}")

    def matches(self, site: str, count: int) -> bool:
        """Whether this spec fires at the ``count``-th hit of ``site``."""
        return self.site == site and (
            self.ordinal == EVERY or self.ordinal == count)

    def __str__(self) -> str:
        ordinal = "*" if self.ordinal == EVERY else str(self.ordinal)
        return f"{self.kind}@{self.site}#{ordinal}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of :class:`FaultSpec`."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the canonical ``kind@site#ordinal[,...]`` form."""
        specs = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                kind, rest = item.split("@", 1)
                site, ordinal_text = rest.split("#", 1)
            except ValueError:
                raise ValueError(
                    f"malformed fault spec {item!r} "
                    "(expected kind@site#ordinal)") from None
            ordinal = (EVERY if ordinal_text.strip() == "*"
                       else int(ordinal_text))
            specs.append(FaultSpec(kind.strip(), site.strip(), ordinal))
        return cls(tuple(specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        n: int = 3,
        sites: tuple[str, ...] = ALL_SITES,
        kinds: tuple[str, ...] = (KIND_IO, KIND_TRANSIENT, KIND_PERMANENT),
        max_ordinal: int = 8,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same injections."""
        rng = random.Random(f"fault-plan:{seed}")
        specs = tuple(
            FaultSpec(rng.choice(kinds), rng.choice(sites),
                      rng.randrange(1, max_ordinal + 1))
            for _ in range(n)
        )
        return cls(specs)

    def first_match(self, site: str, count: int) -> FaultSpec | None:
        for spec in self.specs:
            if spec.matches(site, count):
                return spec
        return None

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __str__(self) -> str:
        return ",".join(str(s) for s in self.specs)
