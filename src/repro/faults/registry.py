"""The process-wide fault registry: plan resolution and injection.

Instrumented code calls :func:`hit` at each named fault point. With no
plan installed (the default) a hit is one cached-attribute check and a
``None`` return — the registry is free in production. With a plan
installed (directly, or through the :data:`ENV_FAULT_PLAN` environment
variable, which forked evaluation workers inherit), the hit counts the
site's per-process ordinal and executes the first matching spec:

- behavioral kinds act right here (raise an :class:`OSError` or an
  injected-fault error, ``SIGKILL`` the process, busy-spin until the
  cell watchdog fires);
- data kinds (``truncate``, ``corrupt``) are *returned* to the call
  site, which applies the corruption to its own artifact — that way
  the production error-handling path under test is the real one.
"""

from __future__ import annotations

import errno
import os
import signal
import time

from repro import obs
from repro.errors import PermanentFaultError, TransientFaultError
from repro.faults.plan import (
    KIND_CORRUPT,
    KIND_ENOSPC,
    KIND_HANG,
    KIND_IO,
    KIND_KILL,
    KIND_PERMANENT,
    KIND_TRANSIENT,
    KIND_TRUNCATE,
    FaultPlan,
)

#: Environment variable carrying the active plan across fork/spawn.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Upper bound on an injected hang: long enough that any realistic cell
#: watchdog fires first, short enough that a mis-configured test run
#: (hang injected with no timeout armed) eventually frees itself.
HANG_SECONDS = 30.0

_UNSET = object()
_plan: FaultPlan | None | object = _UNSET
_counts: dict[str, int] = {}


def active_plan() -> FaultPlan | None:
    """The installed plan, lazily resolved from the environment."""
    global _plan
    if _plan is _UNSET:
        text = os.environ.get(ENV_FAULT_PLAN)
        _plan = FaultPlan.parse(text) if text else None
    return _plan  # type: ignore[return-value]


def install(plan: FaultPlan | str | None, *, env: bool = True) -> None:
    """Install a plan (and optionally export it for child processes).

    ``None`` clears the plan. With ``env=True`` (default) the canonical
    text form is written to :data:`ENV_FAULT_PLAN` so pool workers
    forked later inherit the same plan.
    """
    global _plan
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _plan = plan
    reset_counts()
    if env:
        if plan:
            os.environ[ENV_FAULT_PLAN] = str(plan)
        else:
            os.environ.pop(ENV_FAULT_PLAN, None)


def clear() -> None:
    """Remove any installed plan (including the environment export)."""
    install(None)


def reset_counts() -> None:
    """Zero the per-site hit counters (pool workers call this at spawn)."""
    _counts.clear()


def hit(site: str) -> str | None:
    """Pass through a named fault point; inject if the plan says so.

    Returns ``None`` (no injection) or a *data* kind the caller must
    apply. Behavioral kinds never return: they raise, kill, or spin.
    """
    plan = active_plan()
    if plan is None:
        return None
    count = _counts.get(site, 0) + 1
    _counts[site] = count
    spec = plan.first_match(site, count)
    if spec is None:
        return None
    obs.add("faults.injected", 1)
    obs.add(f"faults.{spec.kind}", 1)
    return _execute(spec.kind, site)


def _execute(kind: str, site: str) -> str | None:
    if kind in (KIND_TRUNCATE, KIND_CORRUPT):
        return kind
    if kind == KIND_IO:
        raise OSError(errno.EIO, f"injected I/O fault at {site}")
    if kind == KIND_ENOSPC:
        raise OSError(errno.ENOSPC, f"injected disk-full fault at {site}")
    if kind == KIND_TRANSIENT:
        raise TransientFaultError(f"injected transient fault at {site}")
    if kind == KIND_PERMANENT:
        raise PermanentFaultError(f"injected permanent fault at {site}")
    if kind == KIND_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
        return None  # pragma: no cover — the signal is immediate
    if kind == KIND_HANG:
        # A pure-Python spin: interruptible by the SIGALRM watchdog,
        # which is exactly the recovery path the injection validates.
        end = time.monotonic() + HANG_SECONDS
        while time.monotonic() < end:
            pass
        return None
    raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover


def guarded(site: str, body):
    """Wrap a zero-argument callable with a leading fault point."""
    def _run():
        hit(site)
        return body()
    return _run
