"""Chaos harness: prove crash-safety end to end against injected faults.

Each :class:`ChaosScenario` runs the full evaluation stack twice over
the same corpus:

1. a **faulted run** with a deterministic fault plan installed — a
   worker SIGKILL, a torn journal append, corrupted cache entries,
   disk-full on the journal, an injected cell hang — journaling into a
   fresh run directory; the run may finish with failure records or
   abort outright, both are legitimate crash shapes;
2. a **resume run** with the plan cleared, continuing from the journal.

The recovered report must then match the fault-free baseline *exactly*
once timing fields are normalized away — the chaos property the
``funseeker chaos`` CLI (and the ``chaos_smoke`` tier-1 tests) assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.cache import DiskCache, default_cache, set_default_cache
from repro.errors import EvaluationError
from repro.eval.export import report_to_json
from repro.eval.journal import (
    JOURNAL_NAME,
    RunJournal,
    build_manifest,
    check_manifest,
    merge_resumed_report,
    read_journal,
)
from repro.eval.parallel import run_evaluation_parallel

#: Parent-side lost-worker grace used by chaos runs (the default 30s
#: would dominate a smoke run's wall clock).
CHAOS_BACKSTOP_GRACE = 2.0


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault plan plus the run shape that exercises it."""

    name: str
    plan: str
    workers: int = 1
    timeout: float | None = 2.0
    retries: int = 0
    use_cache: bool = False
    tear_tail_bytes: int = 0   # extra raw truncation of the journal tail


def default_scenarios(seed: int = 2022) -> list[ChaosScenario]:
    """The acceptance matrix, with seed-derived (but bounded) ordinals."""
    import random

    rng = random.Random(f"chaos:{seed}")
    early = rng.randrange(2, 4)       # fires within the first entry or two
    mid = rng.randrange(4, 7)
    return [
        ChaosScenario(
            name="worker-kill",
            plan=f"kill@cell.execute#{mid}",
            workers=2,
        ),
        ChaosScenario(
            name="torn-journal",
            plan=f"truncate@journal.append#{early}",
        ),
        ChaosScenario(
            name="corrupted-cache",
            plan="corrupt@cache.get#*",
            use_cache=True,
        ),
        ChaosScenario(
            name="journal-enospc",
            plan=f"enospc@journal.append#{early}",
        ),
        ChaosScenario(
            name="cell-hang",
            plan=f"hang@cell.execute#{mid}",
            timeout=1.0,
        ),
    ]


@dataclass
class ScenarioResult:
    name: str
    plan: str
    ok: bool
    detail: str
    faulted_run_error: str | None = None
    resumed_cells: int = 0
    journaled_cells: int = 0


@dataclass
class ChaosReport:
    baseline_cells: int = 0
    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"chaos: {len(self.results)} scenarios over "
            f"{self.baseline_cells} baseline cells"
        ]
        for r in self.results:
            status = "ok  " if r.ok else "FAIL"
            crash = (f" crash={r.faulted_run_error}"
                     if r.faulted_run_error else "")
            lines.append(
                f"  [{status}] {r.name:<16s} plan={r.plan} "
                f"journaled={r.journaled_cells} resumed={r.resumed_cells}"
                f"{crash}")
            if not r.ok:
                lines.append(f"         {r.detail}")
        verdict = ("all scenarios recovered to the fault-free report"
                   if self.ok else "UNRECOVERED failures — see above")
        lines.append(verdict)
        return "\n".join(lines)


def normalize_report_doc(doc: dict) -> dict:
    """Strip timing (and only timing) from an exported report document.

    The chaos property is byte-identity *modulo timing fields*: wall
    clock legitimately differs between a faulted-and-resumed run and an
    uninterrupted one, nothing else may.
    """
    doc = json.loads(json.dumps(doc))  # deep copy
    for row in doc.get("records", ()):
        row["elapsed_seconds"] = 0.0
        row.pop("phases", None)
    for row in doc.get("failures", ()):
        row["elapsed_seconds"] = 0.0
        row["attempts"] = 0
    for summary in (doc.get("summary") or {}).values():
        summary["mean_seconds"] = 0.0
        summary.pop("phase_seconds", None)
    doc.pop("phase_seconds", None)
    return doc


def _normalized(report) -> dict:
    return normalize_report_doc(json.loads(report_to_json(report)))


def run_chaos(
    corpus,
    tools: list[str],
    work_dir: str | Path,
    *,
    seed: int = 2022,
    scenarios: list[ChaosScenario] | None = None,
) -> ChaosReport:
    """Run every scenario and compare each recovery to the baseline.

    ``work_dir`` receives one run directory per scenario (useful for a
    post-mortem when a scenario fails). The fault registry is always
    left clean, even on exceptions.
    """
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    corpus = list(corpus)
    report = ChaosReport()

    faults.clear()
    baseline = run_evaluation_parallel(
        corpus, tools, workers=1, timeout=None)
    baseline_doc = _normalized(baseline)
    report.baseline_cells = len(baseline.records)

    for scenario in (scenarios if scenarios is not None
                     else default_scenarios(seed)):
        report.results.append(
            _run_scenario(scenario, corpus, tools, baseline_doc,
                          work_dir / scenario.name))
    return report


def _run_scenario(
    scenario: ChaosScenario,
    corpus,
    tools: list[str],
    baseline_doc: dict,
    run_dir: Path,
) -> ScenarioResult:
    result = ScenarioResult(name=scenario.name, plan=scenario.plan,
                            ok=False, detail="")
    previous_cache = None
    if scenario.use_cache:
        previous_cache = default_cache()
        cache = DiskCache(run_dir / "cache")
        set_default_cache(cache)
        # Warm the cache fault-free so the faulted run actually reads
        # (and recovers from) corrupted entries.
        run_evaluation_parallel(corpus, tools, workers=1, timeout=None)

    journal = RunJournal.create(
        run_dir,
        build_manifest(corpus, tools, seed=None, scale=None,
                       timeout=scenario.timeout,
                       retries=scenario.retries))
    # -- faulted run --------------------------------------------------------
    faults.install(scenario.plan)
    try:
        run_evaluation_parallel(
            corpus, tools,
            workers=scenario.workers,
            timeout=scenario.timeout,
            retries=scenario.retries,
            journal=journal,
            backstop_grace=CHAOS_BACKSTOP_GRACE,
        )
    except (EvaluationError, OSError) as exc:
        result.faulted_run_error = f"{type(exc).__name__}: {exc}"
    finally:
        faults.clear()
        journal.close()

    if scenario.tear_tail_bytes:
        _tear_tail(run_dir / JOURNAL_NAME, scenario.tear_tail_bytes)

    # -- resume run ---------------------------------------------------------
    try:
        state = read_journal(run_dir)
        result.journaled_cells = len(state.records)
        resume_journal = RunJournal.resume(run_dir)
        check_manifest(resume_journal.manifest(), corpus, tools)
        try:
            fresh = run_evaluation_parallel(
                corpus, tools, workers=1, timeout=scenario.timeout,
                retries=scenario.retries, journal=resume_journal,
                completed=state.completed,
            )
        finally:
            resume_journal.close()
        result.resumed_cells = len(fresh.records) + len(fresh.failures)
        final = merge_resumed_report(corpus, tools, state, fresh)
    except (EvaluationError, OSError) as exc:
        result.detail = (f"resume itself failed: "
                         f"{type(exc).__name__}: {exc}")
        _restore_cache(scenario, previous_cache)
        return result
    _restore_cache(scenario, previous_cache)

    if final.failures:
        first = final.failures[0]
        result.detail = (
            f"{len(final.failures)} unrecovered failures, first: "
            f"{first.tool}/{first.phase} {first.error_type}: "
            f"{first.message}")
        return result
    final_doc = _normalized(final)
    if final_doc != baseline_doc:
        result.detail = _first_divergence(baseline_doc, final_doc)
        return result
    result.ok = True
    result.detail = "recovered report identical to fault-free baseline"
    return result


def _restore_cache(scenario: ChaosScenario, previous) -> None:
    if scenario.use_cache:
        set_default_cache(previous)


def _tear_tail(path: Path, n_bytes: int) -> None:
    """Chop raw bytes off the journal tail (simulated torn last write)."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    path.write_bytes(data[: max(0, len(data) - n_bytes)])


def _first_divergence(expected: dict, got: dict) -> str:
    exp_rows = expected.get("records", [])
    got_rows = got.get("records", [])
    if len(exp_rows) != len(got_rows):
        return (f"record count diverged: baseline {len(exp_rows)}, "
                f"recovered {len(got_rows)}")
    for i, (a, b) in enumerate(zip(exp_rows, got_rows)):
        if a != b:
            return f"record {i} diverged: baseline {a} != recovered {b}"
    return "summary/metadata diverged"
