"""Deterministic, seeded fault injection for the analysis pipeline.

The evaluation stack claims to survive worker deaths, torn journal
writes, corrupted cache entries, and disk-full errors. This package
makes those claims *testable*: named fault points at the I/O and
process boundaries (:data:`~repro.faults.plan.ALL_SITES`), fault plans
addressing them by ``(kind, site, ordinal)``, and a chaos harness
(:mod:`repro.faults.chaos`) asserting that a faulted-then-resumed run
reproduces the fault-free report exactly.

Usage::

    from repro import faults

    faults.install("enospc@journal.append#2")   # or $REPRO_FAULT_PLAN
    ...run evaluation; second journal append raises ENOSPC...
    faults.clear()

Instrumentation is one call at each boundary::

    kind = faults.hit(faults.SITE_CACHE_GET)
    if kind == faults.KIND_CORRUPT:
        ...scribble over the artifact before reading it...

See docs/robustness.md for the fault-point catalog.
"""

from repro.faults.plan import (
    ALL_KINDS,
    ALL_SITES,
    BEHAVIORAL_KINDS,
    DATA_KINDS,
    EVERY,
    KIND_CORRUPT,
    KIND_ENOSPC,
    KIND_HANG,
    KIND_IO,
    KIND_KILL,
    KIND_PERMANENT,
    KIND_TRANSIENT,
    KIND_TRUNCATE,
    SITE_BLOB_READ,
    SITE_CACHE_GET,
    SITE_CACHE_PUT,
    SITE_CELL_EXECUTE,
    SITE_ELF_READ,
    SITE_INGEST_ADMIT,
    SITE_INGEST_ANALYZE,
    SITE_INGEST_WALK,
    SITE_JOURNAL_APPEND,
    SITE_WORKER_DISPATCH,
    FaultPlan,
    FaultSpec,
)
from repro.faults.registry import (
    ENV_FAULT_PLAN,
    HANG_SECONDS,
    active_plan,
    clear,
    guarded,
    hit,
    install,
    reset_counts,
)

__all__ = [
    "ALL_KINDS",
    "ALL_SITES",
    "BEHAVIORAL_KINDS",
    "DATA_KINDS",
    "ENV_FAULT_PLAN",
    "EVERY",
    "FaultPlan",
    "FaultSpec",
    "HANG_SECONDS",
    "KIND_CORRUPT",
    "KIND_ENOSPC",
    "KIND_HANG",
    "KIND_IO",
    "KIND_KILL",
    "KIND_PERMANENT",
    "KIND_TRANSIENT",
    "KIND_TRUNCATE",
    "SITE_BLOB_READ",
    "SITE_CACHE_GET",
    "SITE_CACHE_PUT",
    "SITE_CELL_EXECUTE",
    "SITE_ELF_READ",
    "SITE_INGEST_ADMIT",
    "SITE_INGEST_ANALYZE",
    "SITE_INGEST_WALK",
    "SITE_JOURNAL_APPEND",
    "SITE_WORKER_DISPATCH",
    "active_plan",
    "clear",
    "guarded",
    "hit",
    "install",
    "reset_counts",
]
