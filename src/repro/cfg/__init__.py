"""CFG recovery built on identified function entries (paper §VII-B)."""

from repro.cfg.blocks import BasicBlock, FunctionCFG, build_function_cfg
from repro.cfg.callgraph import ProgramCFG, recover_program_cfg

__all__ = [
    "BasicBlock",
    "FunctionCFG",
    "ProgramCFG",
    "build_function_cfg",
    "recover_program_cfg",
]
