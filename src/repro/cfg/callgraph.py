"""Whole-program CFG and call-graph recovery on top of FunSeeker.

Combines identified function entries with per-function CFG recovery to
produce the artifact the paper positions function identification as the
prerequisite for. The call graph is a :mod:`networkx` digraph, so the
usual graph analyses (reachability, SCCs, dominators) apply directly.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import networkx as nx

from repro.cfg.blocks import FunctionCFG, build_function_cfg
from repro.elf import constants as C
from repro.elf.parser import ELFFile


@dataclass
class ProgramCFG:
    """Recovered CFGs for every identified function plus the call graph."""

    functions: dict[int, FunctionCFG] = field(default_factory=dict)
    call_graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @property
    def total_blocks(self) -> int:
        return sum(f.block_count for f in self.functions.values())

    @property
    def total_insns(self) -> int:
        return sum(f.insn_count for f in self.functions.values())

    def boundaries(self) -> dict[int, int]:
        """Estimated (entry -> end) function boundaries."""
        return {entry: cfg.high_addr
                for entry, cfg in self.functions.items()}

    def reachable_from(self, entry: int) -> set[int]:
        """Functions transitively callable from ``entry``."""
        if entry not in self.call_graph:
            return set()
        return set(nx.descendants(self.call_graph, entry)) | {entry}

    def unreachable_functions(self, roots: set[int]) -> set[int]:
        """Functions not reachable from any root — dead-code candidates
        (the paper's dominant false-negative class is exactly these)."""
        reachable: set[int] = set()
        for root in roots:
            reachable |= self.reachable_from(root)
        return set(self.functions) - reachable


def recover_program_cfg(
    elf: ELFFile, function_entries: set[int]
) -> ProgramCFG:
    """Build per-function CFGs and the call graph for a binary.

    ``function_entries`` typically comes from
    :meth:`repro.core.funseeker.FunSeeker.identify`.
    """
    txt = elf.section(C.SECTION_TEXT)
    program = ProgramCFG()
    if txt is None or not txt.data:
        return program
    bits = 64 if elf.is64 else 32
    entries = sorted(a for a in function_entries
                     if txt.contains_addr(a))
    end_addr = txt.sh_addr + len(txt.data)

    for i, entry in enumerate(entries):
        limit = entries[i + 1] if i + 1 < len(entries) else end_addr
        cfg = build_function_cfg(
            txt.data, txt.sh_addr, bits, entry, limit=limit)
        program.functions[entry] = cfg
        program.call_graph.add_node(entry)

    entry_list = entries
    for entry, cfg in program.functions.items():
        for target in cfg.call_targets:
            owner = _owner_of(entry_list, target)
            if owner == target:  # calls must land on an entry
                program.call_graph.add_edge(entry, target)
    return program


def _owner_of(entries: list[int], addr: int) -> int | None:
    idx = bisect_right(entries, addr) - 1
    return entries[idx] if idx >= 0 else None
