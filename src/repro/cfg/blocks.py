"""Intra-procedural control-flow-graph recovery.

The paper motivates function identification as "the cornerstone of
binary analysis because CFG recovery techniques often rely on the
assumption that function entries are known" (§VII-B). This module is
that downstream consumer: given a function entry (e.g. from FunSeeker),
it recovers the function's basic blocks and edges.

Recovery is the classic two-pass algorithm: reachable instructions are
discovered by following control flow from the entry, block leaders are
the entry plus every branch target and fall-through-after-branch, and
blocks are split at leaders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import Insn, InsnClass


@dataclass
class BasicBlock:
    """One basic block: a maximal straight-line instruction run."""

    start: int
    insns: list[Insn] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        if not self.insns:
            return self.start
        return self.insns[-1].end

    @property
    def terminator(self) -> Insn | None:
        return self.insns[-1] if self.insns else None

    @property
    def is_exit(self) -> bool:
        """Whether control leaves the function here (return / tail
        jump out / no successors)."""
        return not self.successors


@dataclass
class FunctionCFG:
    """The control-flow graph of one function."""

    entry: int
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    #: Direct call targets found in the body (call-graph edges).
    call_targets: set[int] = field(default_factory=set)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def insn_count(self) -> int:
        return sum(len(b.insns) for b in self.blocks.values())

    @property
    def high_addr(self) -> int:
        """One past the highest recovered instruction — a boundary
        estimate for the function."""
        return max((b.end for b in self.blocks.values()),
                   default=self.entry)

    def edges(self) -> list[tuple[int, int]]:
        return [(b.start, succ) for b in self.blocks.values()
                for succ in b.successors]

    def exit_blocks(self) -> list[BasicBlock]:
        return [b for b in self.blocks.values() if b.is_exit]


def build_function_cfg(
    data: bytes,
    base_addr: int,
    bits: int,
    entry: int,
    *,
    limit: int | None = None,
) -> FunctionCFG:
    """Recover the CFG of the function starting at ``entry``.

    ``limit`` bounds the exploration (typically the next function's
    entry); control flow that leaves ``[entry, limit)`` is treated as
    exiting the function (tail call).
    """
    end_addr = base_addr + len(data)
    if limit is None:
        limit = end_addr

    # Pass 1: discover reachable instructions and leaders.
    insns: dict[int, Insn] = {}
    leaders: set[int] = {entry}
    work = [entry]
    while work:
        addr = work.pop()
        while entry <= addr < limit and addr not in insns:
            offset = addr - base_addr
            try:
                insn = decode(data, offset, addr, bits)
            except DecodeError:
                break
            insns[addr] = insn
            klass = insn.klass
            if klass == InsnClass.JCC:
                target = insn.target
                if target is not None and entry <= target < limit:
                    leaders.add(target)
                    work.append(target)
                leaders.add(insn.end)
            elif klass == InsnClass.JMP_DIRECT:
                target = insn.target
                if target is not None and entry <= target < limit:
                    leaders.add(target)
                    work.append(target)
                break
            elif insn.is_terminator:
                break
            addr = insn.end

    # Pass 2: slice into blocks at leaders.
    cfg = FunctionCFG(entry=entry)
    ordered = sorted(insns)
    leader_list = sorted(a for a in leaders if a in insns)
    for leader in leader_list:
        block = BasicBlock(start=leader)
        addr = leader
        while addr in insns:
            insn = insns[addr]
            block.insns.append(insn)
            if insn.klass == InsnClass.CALL_DIRECT \
                    and insn.target is not None:
                cfg.call_targets.add(insn.target)
            nxt = insn.end
            if insn.klass == InsnClass.JCC:
                if insn.target is not None \
                        and entry <= insn.target < limit:
                    block.successors.append(insn.target)
                block.successors.append(nxt)
                break
            if insn.klass == InsnClass.JMP_DIRECT:
                if insn.target is not None \
                        and entry <= insn.target < limit:
                    block.successors.append(insn.target)
                break
            if insn.is_terminator:
                break
            if nxt in leaders:
                block.successors.append(nxt)
                break
            addr = nxt
        cfg.blocks[leader] = block
    _dedupe_block_overlaps(cfg, ordered, leaders)
    return cfg


def _dedupe_block_overlaps(
    cfg: FunctionCFG, ordered: list[int], leaders: set[int]
) -> None:
    """Trim instructions that a later leader claims.

    Pass 2 walks each leader independently, so a block whose straight
    line runs past the next leader would duplicate that suffix; cut each
    block at the first following leader.
    """
    leader_sorted = sorted(cfg.blocks)
    for i, start in enumerate(leader_sorted):
        block = cfg.blocks[start]
        nxt = (leader_sorted[i + 1]
               if i + 1 < len(leader_sorted) else None)
        if nxt is None:
            continue
        kept = [ins for ins in block.insns if ins.addr < nxt]
        if len(kept) != len(block.insns):
            block.insns = kept
            block.successors = [nxt]
