"""FunSeeker wrapped in the common detector interface for evaluation."""

from __future__ import annotations

from repro.baselines.base import FunctionDetector
from repro.core.funseeker import Config, FunSeeker
from repro.elf.parser import ELFFile


class FunSeekerDetector(FunctionDetector):
    """The paper's tool, run under any of its four configurations."""

    name = "funseeker"

    def __init__(self, config: Config = Config.FULL) -> None:
        self.config = config
        if config is not Config.FULL:
            self.name = f"funseeker-cfg{config.value}"

    def _detect(self, elf: ELFFile) -> set[int]:
        return FunSeeker(elf, self.config).identify().functions
