"""Naive end-branch detector: every ``endbr`` is a function entry.

The strawman the paper's study rules out (§III): treating each
end-branch instruction as a function start over-reports on C++ binaries
(landing pads) and under-reports endbr-less statics. Used as an
ablation reference point alongside FunSeeker's config ①.
"""

from __future__ import annotations

from repro.baselines.base import FunctionDetector, text_section
from repro.core.disassemble import disassemble
from repro.elf.parser import ELFFile


class NaiveEndbrDetector(FunctionDetector):
    """Report exactly the end-branch instruction addresses."""

    name = "naive-endbr"

    def _detect(self, elf: ELFFile) -> set[int]:
        txt = text_section(elf)
        if txt is None or not txt.data:
            return set()
        bits = 64 if elf.is64 else 32
        sweep = disassemble(txt.data, txt.sh_addr, bits)
        return set(sweep.endbr_addrs)
