"""Naive end-branch detector: every ``endbr`` is a function entry.

The strawman the paper's study rules out (§III): treating each
end-branch instruction as a function start over-reports on C++ binaries
(landing pads) and under-reports endbr-less statics. Used as an
ablation reference point alongside FunSeeker's config ①.
"""

from __future__ import annotations

from repro.baselines.base import FunctionDetector
from repro.cache.context import get_context
from repro.elf.parser import ELFFile


class NaiveEndbrDetector(FunctionDetector):
    """Report exactly the end-branch instruction addresses."""

    name = "naive-endbr"

    #: Reading endbr addresses off the shared sweep costs microseconds;
    #: a disk-cache round trip costs more than the run it would save,
    #: so the disk layer is bypassed (see ``DISK_CACHE_MIN_COST_PER_MB``).
    cost_per_mb = 0.005

    def _detect(self, elf: ELFFile) -> set[int]:
        sweep = get_context(elf).sweep()
        if sweep is None:
            return set()
        return set(sweep.endbr_addrs)
