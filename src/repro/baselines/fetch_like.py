"""FETCH-style detector: exception-handling-information driven.

Re-implements the strategy of FETCH (Pang et al., DSN 2021, paper
§V-A2): function entries come from the ``PC begin`` fields of the Frame
Description Entries in ``.eh_frame``, refined with a tail-call analysis
that examines stack-frame heights at escaping jumps along the
intra-procedural CFG.

Reproduced failure modes:

- **x86 Clang C binaries**: Clang emits no FDEs for plain-C 32-bit
  functions, so recall collapses (Table III, the ~50% rows).
- **.part / .cold FDEs**: GCC emits FDEs for outlined fragments; FETCH
  reports them as functions (§VII — ~3.3% of FDEs).
- **Cost**: building a per-function CFG and propagating stack heights
  across it makes FETCH several times slower than FunSeeker's purely
  syntactic pass (Table III's timing columns).

All region walks run off the shared per-buffer
:class:`~repro.x86.superset.DecodeIndex` when the vectorized decode is
available: the text is classified once, and the calling-convention
scan, the per-region CFGs and the callee checks all read from that
index instead of re-decoding. The scalar decoder remains the fallback,
producing identical results.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.baselines.base import FunctionDetector, fde_starts, text_section
from repro.elf.parser import ELFFile
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode_raw
from repro.x86.defuse import def_use
from repro.x86.insn import TERMINATOR_CLASSES, InsnClass
from repro.x86.superset import get_index

_JCC = int(InsnClass.JCC)
_RET = int(InsnClass.RET)
_JMP_DIRECT = int(InsnClass.JMP_DIRECT)
_TERMINATORS = frozenset(int(k) for k in TERMINATOR_CLASSES)


class _ScalarIndex:
    """Decode-on-demand stand-in for a :class:`DecodeIndex`.

    Used when the vectorized pass is unavailable; offers the same
    ``lengths``/``klasses``/``targets`` view the region walks consume,
    decoding lazily and caching per offset so repeated walks (the
    refinement passes revisit regions) stay linear.
    """

    def __init__(self, data: bytes, base: int, bits: int) -> None:
        self.data = data
        self.base = base
        self.bits = bits
        self._memo: dict[int, tuple[int, int, int | None]] = {}

    def at(self, offset: int) -> tuple[int, int, int | None]:
        """``(length, klass, target)``; length 0 on decode failure."""
        hit = self._memo.get(offset)
        if hit is not None:
            return hit
        try:
            length, klass, target, _notrack = decode_raw(
                self.data, offset, self.base + offset, self.bits
            )
        except DecodeError:
            out = (0, 0, None)
        else:
            out = (length, klass, target)
        self._memo[offset] = out
        return out


class _VectorIndexView:
    """Uniform ``at()`` view over a prebuilt :class:`DecodeIndex`."""

    def __init__(self, index) -> None:
        self._lengths = index.lengths
        self._klasses = index.klasses
        self._targets = index.targets

    def at(self, offset: int) -> tuple[int, int, int | None]:
        length = self._lengths[offset]
        if length == 0:
            return (0, 0, None)
        return (length, self._klasses[offset], self._targets.get(offset))


def _index_view(data: bytes, base: int, bits: int):
    if vector.available():
        return _VectorIndexView(get_index(data, bits, base))
    return _ScalarIndex(data, base, bits)


class FetchLikeDetector(FunctionDetector):
    """Exception-information-based function detection."""

    name = "fetch"

    #: Refinement passes: FETCH iterates — newly found tail targets
    #: split regions, which can expose further escaping jumps.
    passes = 2

    def _detect(self, elf: ELFFile) -> set[int]:
        txt = text_section(elf)
        if txt is None or not txt.data:
            return set()
        bits = 64 if elf.is64 else 32
        starts, ranges = fde_starts(elf)
        found = {s for s in starts if txt.contains_addr(s)}
        ranges = sorted(r for r in ranges if txt.contains_addr(r[0]))
        view = _index_view(txt.data, txt.sh_addr, bits)
        # Calling-convention analysis over every function — the
        # register-usage scan that dominates FETCH's runtime (the paper
        # attributes FETCH's 5x slowdown to exactly this machinery).
        arg_usage = _calling_convention_scan(
            txt.data, txt.sh_addr, bits, sorted(found), view
        )
        for _ in range(self.passes):
            tail_targets = self._tail_call_targets(
                txt.data, txt.sh_addr, bits, sorted(found), ranges, view
            )
            tail_targets = {
                t for t in tail_targets
                if _callee_plausible(txt.data, txt.sh_addr, bits, t, view)
                and _cc_compatible(arg_usage, t)
            }
            if tail_targets <= found:
                break
            found |= tail_targets
        return found

    # -- tail-call analysis -----------------------------------------------

    def _tail_call_targets(
        self,
        data: bytes,
        base: int,
        bits: int,
        sorted_starts: list[int],
        ranges: list[tuple[int, int]],
        view,
    ) -> set[int]:
        """Targets of frame-balanced escaping jumps.

        A direct unconditional jump is a tail call when (1) it leaves
        its own FDE region, (2) the stack height along every CFG path
        from the entry to the jump is zero (the frame has been torn
        down), and (3) the target is the *start* of a code region — a
        jump into the middle of another FDE range is a shared-code
        artifact, not a call.
        """
        if not sorted_starts:
            return set()
        end = base + len(data)
        range_starts = [r[0] for r in ranges]
        targets: set[int] = set()
        for i, start in enumerate(sorted_starts):
            limit = (sorted_starts[i + 1] if i + 1 < len(sorted_starts)
                     else end)
            insns = _decode_region(data, base, bits, start, limit, view)
            if not insns:
                continue
            heights = _propagate_heights(insns, start, bits, data, base)
            for addr, (length, klass, target) in insns.items():
                if klass != _JMP_DIRECT or target is None:
                    continue
                if start <= target < limit:
                    continue
                if not base <= target < end:
                    continue
                if heights.get(addr) != 0:
                    continue
                if _inside_some_range(target, ranges, range_starts):
                    continue
                targets.add(target)
        return targets


#: System V AMD64 integer argument registers (register numbers).
_ARG_REGS_64 = (7, 6, 2, 1, 8, 9)  # rdi rsi rdx rcx r8 r9


def _calling_convention_scan(
    data: bytes, base: int, bits: int, sorted_starts: list[int], view
) -> dict[int, frozenset[int]]:
    """Per-function argument-register read-before-write analysis.

    For each FDE-delimited function, walk every instruction and track
    which System V argument registers are read before being written —
    FETCH's calling-convention interface analysis, built on the full
    operand model (:mod:`repro.x86.defuse`).

    This is intentionally a complete second analysis pass over the
    text: it is the machinery whose cost Table III's timing comparison
    reflects.
    """
    usage: dict[int, frozenset[int]] = {}
    end = base + len(data)
    n = len(data)
    for i, start in enumerate(sorted_starts):
        limit = (sorted_starts[i + 1] if i + 1 < len(sorted_starts)
                 else end)
        read_first: set[int] = set()
        written: set[int] = set()
        offset = start - base
        while base + offset < limit and offset < n:
            length, klass, _target = view.at(offset)
            if length == 0:
                offset += 1
                continue
            du = def_use(data[offset : offset + length], bits)
            for reg in du.reads:
                if reg not in written:
                    read_first.add(reg)
            written |= du.writes
            offset += length
            if klass == _RET:
                break
        usage[start] = frozenset(
            r for r in read_first if r in _ARG_REGS_64
        )
    return usage


def _cc_compatible(
    arg_usage: dict[int, frozenset[int]], target: int
) -> bool:
    """Whether a tail-call target's argument usage is achievable.

    All compiler-generated tail calls satisfy this (the caller forwards
    its own arguments); the check exists to mirror FETCH's validation
    step and rejects targets consuming more argument registers than the
    System V convention provides.
    """
    return len(arg_usage.get(target, frozenset())) <= len(_ARG_REGS_64)


def _callee_plausible(
    data: bytes, base: int, bits: int, target: int, view
) -> bool:
    """Calling-convention sanity check on a tail-call candidate.

    FETCH validates candidates by examining the callee side; here we
    decode the candidate's first instructions and require them to form
    a coherent straight-line prefix (no immediate decode failure, no
    landing in the middle of padding).
    """
    offset = target - base
    if offset < 0 or offset >= len(data):
        return False
    for _ in range(8):
        length, klass, _target = view.at(offset)
        if length == 0:
            return False
        if klass in _TERMINATORS:
            return True
        offset += length
        if offset >= len(data):
            return False
    return True


def _decode_region(
    data: bytes, base: int, bits: int, start: int, limit: int, view
) -> dict[int, tuple[int, int, int | None]]:
    """Linear decode of one function region.

    Keyed by address; values are ``(length, klass, target)`` straight
    from the decode index — no ``Insn`` objects on this path.
    """
    insns: dict[int, tuple[int, int, int | None]] = {}
    offset = start - base
    n = len(data)
    while base + offset < limit and offset < n:
        length, klass, target = view.at(offset)
        if length == 0:
            offset += 1
            continue
        insns[base + offset] = (length, klass, target)
        offset += length
    return insns


def _propagate_heights(
    insns: dict[int, tuple[int, int, int | None]], entry: int, bits: int,
    data: bytes, base: int
) -> dict[int, int]:
    """Worklist propagation of stack heights over the region CFG.

    Heights are measured *before* each instruction executes; the value
    reported for a jump is the height at the jump itself after the
    preceding instructions' effects. Conflicting heights at a join are
    resolved pessimistically (kept as non-zero) — FETCH only needs the
    zero/non-zero distinction.
    """
    order = sorted(insns)
    index = {addr: i for i, addr in enumerate(order)}
    heights: dict[int, int] = {}
    work = [(entry, 0)]
    while work:
        addr, height = work.pop()
        while addr in insns:
            seen = heights.get(addr)
            if seen is not None:
                if seen != height:
                    heights[addr] = max(seen, height, key=abs)
                break
            heights[addr] = height
            length, klass, target = insns[addr]
            off = addr - base
            effect = _stack_effect(data[off : off + length], bits)
            next_height = height + effect
            if klass == _JCC and target in insns:
                work.append((target, next_height))
            if klass in _TERMINATORS:
                break
            # Record the pre-effect height for branch instructions so the
            # caller reads the height at the jump site.
            idx = index[addr] + 1
            if idx >= len(order):
                break
            addr = order[idx]
            height = next_height
    return heights


def _stack_effect(b: bytes, bits: int) -> int:
    """Stack-pointer delta from raw instruction bytes.

    Recognizes the frame-manipulation shapes compilers emit: push/pop
    of registers (with REX), ``sub/add rsp, imm`` and ``leave``.
    Everything else is treated as stack-neutral.
    """
    word = 8 if bits == 64 else 4
    i = 0
    if bits == 64 and b and 0x40 <= b[0] <= 0x4F:
        i = 1
    if i >= len(b):
        return 0
    op = b[i]
    if 0x50 <= op <= 0x57:       # push reg
        return -word
    if 0x58 <= op <= 0x5F:       # pop reg
        return word
    if op == 0xC9:               # leave
        return word
    if op in (0x68, 0x6A):       # push imm
        return -word
    if op in (0x81, 0x83) and i + 1 < len(b):
        reg = (b[i + 1] >> 3) & 7
        rm = b[i + 1] & 7
        mod = b[i + 1] >> 6
        if mod == 3 and rm == 4:  # operates on rsp/esp
            imm = (b[i + 2] if op == 0x83
                   else int.from_bytes(b[i + 2 : i + 6], "little"))
            if op == 0x83 and imm > 127:
                imm -= 256
            if reg == 5:          # sub
                return -imm
            if reg == 0:          # add
                return imm
    return 0


def _inside_some_range(
    addr: int, ranges: list[tuple[int, int]], range_starts: list[int]
) -> bool:
    """Whether ``addr`` falls strictly inside an FDE range (not at its
    start)."""
    idx = bisect_right(range_starts, addr) - 1
    if idx < 0:
        return False
    lo, hi = ranges[idx]
    return lo < addr < hi
