"""IDA-style detector: call-graph traversal plus signature matching.

Re-implements the strategy of a classic interactive disassembler
(§V-A2): recursive traversal from the program entry point, chasing of
address-materialization references (``lea``/``mov $imm``/``push $imm``
operands that point into ``.text`` — IDA creates functions at code
cross-references), and FLIRT-flavored prologue signature matching over
unexplored aligned addresses. No use of CET markers as an entry
signature, and no reliance on ``.eh_frame`` (real IDA predates both and
uses proprietary heuristics).

Reproduced failure modes (Table III): the lowest recall of all tools —
96% of its misses in the paper are indirect-branch-only targets that
leave no chaseable reference, plus statics with irregular optimized
prologues.
"""

from __future__ import annotations

from repro.baselines.base import (
    FunctionDetector,
    prologue_scan,
    recursive_traversal,
    text_section,
)
from repro.core.disassemble import disassemble
from repro.elf.parser import ELFFile
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import TERMINATOR_CLASSES, InsnClass
from repro.x86.superset import get_index

#: Classes whose operand is an address-materialization candidate.
_XREF_CLASSES = frozenset(
    {InsnClass.LEA, InsnClass.MOV_IMM, InsnClass.PUSH_IMM}
)

_TERMINATORS = frozenset(int(k) for k in TERMINATOR_CLASSES)


class IdaLikeDetector(FunctionDetector):
    """Entry-point traversal + code xrefs + prologue signatures."""

    name = "ida"

    def _detect(self, elf: ELFFile) -> set[int]:
        txt = text_section(elf)
        if txt is None or not txt.data:
            return set()
        bits = 64 if elf.is64 else 32

        seeds: set[int] = set()
        if txt.contains_addr(elf.header.e_entry):
            seeds.add(elf.header.e_entry)
        # Code cross-references: operands of address-materializing
        # instructions that point at plausible code. IDA's auto-analysis
        # creates functions at such targets. In position-independent
        # code absolute immediates are data, not code pointers, so only
        # RIP-relative LEAs count there.
        pie = elf.header.is_pie
        seeds.update(self._xref_targets(txt, bits, pie=pie))
        found = recursive_traversal(txt.data, txt.sh_addr, bits, seeds)
        # Signature sweep over still-unexplored aligned addresses.
        found.update(
            prologue_scan(txt.data, txt.sh_addr, bits, skip=found)
        )
        return found

    def _xref_targets(self, txt, bits: int, *, pie: bool) -> set[int]:
        data = txt.data
        base = txt.sh_addr
        if vector.available():
            return self._xref_targets_indexed(
                get_index(data, bits, base), data, base, bits, pie=pie
            )
        out: set[int] = set()
        end = base + len(data)
        classes = {InsnClass.LEA} if pie else _XREF_CLASSES
        offset = 0
        while offset < len(data):
            try:
                insn = decode(data, offset, base + offset, bits)
            except DecodeError:
                offset += 1
                continue
            offset += insn.length
            if insn.klass in classes and insn.target is not None:
                if base <= insn.target < end \
                        and self._plausible_entry(data, insn.target - base,
                                                  bits):
                    out.add(insn.target)
        return out

    def _xref_targets_indexed(
        self, index, data: bytes, base: int, bits: int, *, pie: bool
    ) -> set[int]:
        """The xref sweep off the shared decode index (same outputs)."""
        out: set[int] = set()
        end = base + len(data)
        n = len(data)
        lengths = index.lengths
        klasses = index.klasses
        targets = index.targets
        classes = frozenset(
            int(k) for k in ({InsnClass.LEA} if pie else _XREF_CLASSES)
        )
        offset = 0
        while offset < n:
            length = lengths[offset]
            if length == 0:
                offset += 1
                continue
            klass = klasses[offset]
            start = offset
            offset += length
            if klass in classes:
                target = targets.get(start)
                if target is not None and base <= target < end \
                        and self._plausible_entry_indexed(
                            index, target - base, n):
                    out.add(target)
        return out

    @staticmethod
    def _plausible_entry(data: bytes, offset: int, bits: int) -> bool:
        """IDA only creates a function at an xref if the bytes decode."""
        for _ in range(4):
            try:
                insn = decode(data, offset, offset, bits)
            except DecodeError:
                return False
            if insn.is_terminator:
                return True
            offset += insn.length
            if offset >= len(data):
                return False
        return True

    @staticmethod
    def _plausible_entry_indexed(index, offset: int, n: int) -> bool:
        lengths = index.lengths
        klasses = index.klasses
        for _ in range(4):
            length = lengths[offset]
            if length == 0:
                return False
            if klasses[offset] in _TERMINATORS:
                return True
            offset += length
            if offset >= n:
                return False
        return True
