"""Ghidra-style detector: eh_frame-driven with pattern-scan fallback.

Re-implements Ghidra's documented entry discovery pipeline (§V-A2,
§VII-B): seed from the ELF entry point and — aggressively — from every
``.eh_frame`` FDE, expand through call-graph traversal, then sweep the
remaining aligned gaps with compiler prologue patterns.

Reproduced failure modes (Table III):

- On x86 binaries without FDEs (Clang C code) the eh_frame seeds vanish
  and recall drops to whatever traversal + patterns can reach.
- FDEs of ``.part`` / ``.cold`` fragments and pattern matches inside
  fragments surface as false positives.
"""

from __future__ import annotations

from repro.baselines.base import (
    FunctionDetector,
    fde_starts,
    prologue_scan,
    recursive_traversal,
    text_section,
)
from repro.elf.parser import ELFFile


class GhidraLikeDetector(FunctionDetector):
    """eh_frame seeding + recursive traversal + prologue gap scan."""

    name = "ghidra"

    def _detect(self, elf: ELFFile) -> set[int]:
        txt = text_section(elf)
        if txt is None or not txt.data:
            return set()
        bits = 64 if elf.is64 else 32

        seeds: set[int] = set()
        if txt.contains_addr(elf.header.e_entry):
            seeds.add(elf.header.e_entry)
        starts, _ranges = fde_starts(elf)
        seeds.update(s for s in starts if txt.contains_addr(s))

        found = recursive_traversal(txt.data, txt.sh_addr, bits, seeds)
        found.update(
            prologue_scan(txt.data, txt.sh_addr, bits, skip=found)
        )
        return found
