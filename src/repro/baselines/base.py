"""Shared infrastructure for the baseline function detectors.

Each baseline re-implements the *documented strategy* of one comparison
tool from the paper (§V-A2): what metadata it consumes (``.eh_frame``,
prologue patterns, call-graph traversal) determines its failure modes,
which is what the paper's Table III measures. None of them consult CET
end-branch instructions as an entry signature — the paper's central
observation about pre-CET tooling.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro import obs
from repro.cache.context import get_context
from repro.elf import constants as C
from repro.elf.parser import ELFFile
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import TERMINATOR_CLASSES, InsnClass
from repro.x86.superset import get_index

#: Detectors estimating their own cost below this threshold (seconds of
#: detector wall clock per MB of input) bypass the *disk* cache: a
#: round trip through hash + JSON + fsync costs more than just running
#: them, which is how the naive-endbr baseline ended up with a warm
#: "speedup" of 0.48x. Bypasses are counted in the cache census.
DISK_CACHE_MIN_COST_PER_MB = 0.05


@dataclass
class DetectionResult:
    """Functions found by one detector on one binary."""

    tool: str
    functions: set[int] = field(default_factory=set)
    elapsed_seconds: float = 0.0


class FunctionDetector(abc.ABC):
    """Base class for all function-identification tools in this repo."""

    #: Human-readable tool name used in reports.
    name: str = "detector"

    #: Whether whole-run results may be served from the content-addressed
    #: disk cache. Only safe when the output is a pure function of the
    #: binary image and the tool name — detectors carrying external
    #: state (e.g. a trained model) must opt out.
    cacheable: bool = True

    #: Estimated full-run cost in seconds per MB of input. Detectors
    #: cheaper than :data:`DISK_CACHE_MIN_COST_PER_MB` skip the disk
    #: cache (memory memoization still applies via the analysis
    #: context). ``None`` means "expensive": always worth persisting.
    cost_per_mb: float | None = None

    def detect(self, elf: ELFFile) -> DetectionResult:
        """Run detection with wall-clock timing.

        Entry sets of ``cacheable`` detectors flow through the binary's
        analysis context, which consults the disk cache (when one is
        configured) under the key ``(content hash, tool name)`` —
        unless the detector's declared cost is below the disk cache's
        own round-trip cost, in which case the store is bypassed.
        """
        started = time.perf_counter()
        with obs.span("detect", tool=self.name):
            if self.cacheable:
                use_disk = (
                    self.cost_per_mb is None
                    or self.cost_per_mb >= DISK_CACHE_MIN_COST_PER_MB
                )
                functions = get_context(elf).detector_result(
                    self.name, lambda: self._detect(elf),
                    use_disk=use_disk,
                )
            else:
                functions = self._detect(elf)
        elapsed = time.perf_counter() - started
        obs.add("detect.runs", 1)
        obs.add("detect.functions", len(functions))
        return DetectionResult(tool=self.name, functions=functions,
                               elapsed_seconds=elapsed)

    def detect_bytes(self, data: bytes) -> DetectionResult:
        return self.detect(ELFFile(data))

    @abc.abstractmethod
    def _detect(self, elf: ELFFile) -> set[int]:
        """Return the set of identified function entry addresses."""


# ---------------------------------------------------------------------------
# shared analysis helpers
# ---------------------------------------------------------------------------


def text_section(elf: ELFFile):
    return elf.section(C.SECTION_TEXT)


def fde_starts(elf: ELFFile) -> tuple[set[int], list[tuple[int, int]]]:
    """FDE ``pc_begin`` values and ranges, or empty when unparseable.

    Strict-parse semantics (a malformed ``.eh_frame`` yields empty
    results, not a partial parse), memoized on the file's analysis
    context so eh_frame-seeded detectors share one parse per binary.
    """
    return get_context(elf).fde_starts()


def recursive_traversal(
    data: bytes, base: int, bits: int, seeds: set[int]
) -> set[int]:
    """Follow direct calls transitively from the seed entry points.

    Disassembles each function from its entry until a terminator (or a
    decode failure), queuing every direct-call target found. Direct
    unconditional jump targets are followed as code but not recorded as
    entries — the conservatism that costs IDA-style tools their recall
    on indirectly-reached functions (§V-C).
    """
    if vector.available():
        return _recursive_traversal_indexed(data, base, bits, seeds)
    end = base + len(data)
    found: set[int] = set()
    work = [s for s in seeds if base <= s < end]
    visited_bytes: set[int] = set()
    while work:
        entry = work.pop()
        if entry in found:
            continue
        found.add(entry)
        offset = entry - base
        # Walk straight-line code collecting call targets; bounded by
        # section end and previously visited bytes.
        steps = 0
        while offset < len(data) and steps < 100000:
            if offset in visited_bytes:
                break
            visited_bytes.add(offset)
            try:
                insn = decode(data, offset, base + offset, bits)
            except DecodeError:
                break
            if insn.klass == InsnClass.CALL_DIRECT and insn.target is not None:
                if base <= insn.target < end and insn.target not in found:
                    work.append(insn.target)
            if insn.is_terminator:
                break
            offset += insn.length
            steps += 1
    return found


_CALL_DIRECT = int(InsnClass.CALL_DIRECT)
_TERMINATORS = frozenset(int(k) for k in TERMINATOR_CLASSES)


def _recursive_traversal_indexed(
    data: bytes, base: int, bits: int, seeds: set[int]
) -> set[int]:
    """The same traversal, walking the shared decode index.

    Work-list order, the visited-bytes stop, the step bound and the
    decode-failure handling all mirror the scalar loop exactly, so the
    entry sets are identical.
    """
    index = get_index(data, bits, base)
    lengths = index.lengths
    klasses = index.klasses
    targets = index.targets
    end = base + len(data)
    n = len(data)
    found: set[int] = set()
    work = [s for s in seeds if base <= s < end]
    visited_bytes: set[int] = set()
    while work:
        entry = work.pop()
        if entry in found:
            continue
        found.add(entry)
        offset = entry - base
        steps = 0
        while offset < n and steps < 100000:
            if offset in visited_bytes:
                break
            visited_bytes.add(offset)
            length = lengths[offset]
            if length == 0:
                break
            klass = klasses[offset]
            if klass == _CALL_DIRECT:
                target = targets.get(offset)
                if target is not None and base <= target < end \
                        and target not in found:
                    work.append(target)
            if klass in _TERMINATORS:
                break
            offset += length
            steps += 1
    return found


# Prologue byte signatures (pre-CET tool heuristics).
_PROLOGUE_SIGS_64 = (
    b"\x55\x48\x89\xe5",     # push rbp; mov rbp, rsp
    b"\x53\x48\x83\xec",     # push rbx; sub rsp, imm8
    b"\x48\x83\xec",         # sub rsp, imm8
)
_PROLOGUE_SIGS_32 = (
    b"\x55\x89\xe5",         # push ebp; mov ebp, esp
    b"\x53\x83\xec",         # push ebx; sub esp, imm8
    b"\x83\xec",             # sub esp, imm8
)


def prologue_scan(
    data: bytes, base: int, bits: int, *, alignment: int = 16,
    skip: set[int] | None = None,
) -> set[int]:
    """Scan aligned addresses for classic prologue byte patterns.

    This is the compiler-specific pattern matching mainstream tools use
    to sweep gaps (§VII-B). It knows nothing about end-branch
    instructions.
    """
    sigs = _PROLOGUE_SIGS_64 if bits == 64 else _PROLOGUE_SIGS_32
    skip = skip or set()
    found: set[int] = set()
    for off in range(0, len(data), alignment):
        addr = base + off
        if addr in skip:
            continue
        window = data[off : off + 8]
        for sig in sigs:
            if window.startswith(sig):
                found.add(addr)
                break
        else:
            # push rbp preceded by an endbr marker: the pattern engines
            # match the push, landing 4 bytes in. Model the tools'
            # endbr-oblivious view: accept when the post-endbr bytes
            # form a prologue (entry still reported at the aligned
            # address, which happens to be correct).
            if window[4:8]:
                for sig in sigs:
                    if window[4:].startswith(sig) and _is_endbr(window[:4]):
                        found.add(addr)
                        break
    return found


def _is_endbr(chunk: bytes) -> bool:
    return chunk in (b"\xf3\x0f\x1e\xfa", b"\xf3\x0f\x1e\xfb")
