"""ByteWeight-style learned detector (paper §VII-B related work).

ByteWeight [6] learns a weighted prefix tree over function-start byte
sequences: each tree node holds the empirical probability that a prefix
begins a function. Classification walks the tree along the bytes at a
candidate address and thresholds the deepest matched node's weight.

The paper (citing Koo et al. [26]) notes that such learned models "are
prone to errors when handling unseen binary patterns as they are
largely dependent on the training dataset" — unlike FunSeeker, which
needs no training. The cross-configuration benchmark reproduces exactly
that: a tree trained on one compiler/architecture generalizes poorly to
another.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import FunctionDetector, text_section
from repro.elf.parser import ELFFile
from repro.x86.decoder import DecodeError, decode_raw

#: Maximum prefix depth learned (ByteWeight's default tree depth is 10).
MAX_DEPTH = 10


@dataclass
class _Node:
    positive: int = 0
    total: int = 0
    children: dict[int, "_Node"] = field(default_factory=dict)

    @property
    def weight(self) -> float:
        return self.positive / self.total if self.total else 0.0


@dataclass
class PrefixTree:
    """Weighted prefix tree over function-start byte sequences."""

    root: _Node = field(default_factory=_Node)
    depth: int = MAX_DEPTH

    def add(self, sample: bytes, is_start: bool) -> None:
        node = self.root
        node.total += 1
        node.positive += is_start
        for byte in sample[: self.depth]:
            node = node.children.setdefault(byte, _Node())
            node.total += 1
            node.positive += is_start

    def score(self, sample: bytes) -> float:
        """Weight of the deepest matching node."""
        node = self.root
        weight = node.weight
        for byte in sample[: self.depth]:
            child = node.children.get(byte)
            if child is None:
                break
            node = child
            weight = node.weight
        return weight

    @property
    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count


def train_prefix_tree(
    training_set: list[tuple[bytes, int, set[int]]],
    *,
    depth: int = MAX_DEPTH,
) -> PrefixTree:
    """Learn a prefix tree from labeled binaries.

    ``training_set`` holds ``(text_bytes, base_addr, function_starts)``
    triples. Positive samples are the bytes at each function start;
    negatives are the other instruction-start offsets discovered by
    linear sweep (ByteWeight's construction).
    """
    tree = PrefixTree(depth=depth)
    for data, base, starts in training_set:
        bits = 64  # samples carry their own byte patterns; mode only
        # affects the negative-offset enumeration marginally.
        offset = 0
        n = len(data)
        while offset < n:
            addr = base + offset
            try:
                length, _k, _t, _n = decode_raw(data, offset, addr, bits)
            except DecodeError:
                offset += 1
                continue
            tree.add(data[offset : offset + depth], addr in starts)
            offset += length
    return tree


class ByteWeightLikeDetector(FunctionDetector):
    """Classify instruction-start offsets with a learned prefix tree."""

    name = "byteweight"

    #: Output depends on the trained tree and threshold, which the
    #: content-addressed cache key cannot see — never cache results.
    cacheable = False

    def __init__(self, tree: PrefixTree, threshold: float = 0.5) -> None:
        self.tree = tree
        self.threshold = threshold

    def _detect(self, elf: ELFFile) -> set[int]:
        txt = text_section(elf)
        if txt is None or not txt.data:
            return set()
        bits = 64 if elf.is64 else 32
        data = txt.data
        found: set[int] = set()
        offset = 0
        n = len(data)
        while offset < n:
            addr = txt.sh_addr + offset
            try:
                length, _k, _t, _no = decode_raw(data, offset, addr, bits)
            except DecodeError:
                offset += 1
                continue
            if self.tree.score(data[offset : offset + self.tree.depth]) \
                    >= self.threshold:
                found.add(addr)
            offset += length
        return found
