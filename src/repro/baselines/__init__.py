"""Baseline function-identification tools (paper §V-A2).

Each detector re-implements the documented strategy of one comparison
target — see the module docstrings for which failure modes each one
reproduces.
"""

from repro.baselines.base import DetectionResult, FunctionDetector
from repro.baselines.byteweight_like import (
    ByteWeightLikeDetector,
    PrefixTree,
    train_prefix_tree,
)
from repro.baselines.fetch_like import FetchLikeDetector
from repro.baselines.funseeker_tool import FunSeekerDetector
from repro.baselines.ghidra_like import GhidraLikeDetector
from repro.baselines.ida_like import IdaLikeDetector
from repro.baselines.naive import NaiveEndbrDetector

#: The zero-configuration detectors (ByteWeight needs a trained tree,
#: so it is constructed explicitly rather than listed here).
ALL_DETECTORS = {
    "funseeker": FunSeekerDetector,
    "ida": IdaLikeDetector,
    "ghidra": GhidraLikeDetector,
    "fetch": FetchLikeDetector,
    "naive-endbr": NaiveEndbrDetector,
}

__all__ = [
    "ALL_DETECTORS",
    "ByteWeightLikeDetector",
    "DetectionResult",
    "FetchLikeDetector",
    "FunctionDetector",
    "FunSeekerDetector",
    "GhidraLikeDetector",
    "IdaLikeDetector",
    "NaiveEndbrDetector",
    "PrefixTree",
    "train_prefix_tree",
]
