"""Vectorized per-offset x86 decode (the superset/linear-sweep hot path).

The scalar decoder (:func:`repro.x86.decoder.decode_raw`) costs a few
microseconds per call in pure Python; decoding *every* offset of a
multi-megabyte corpus that way dominates the pipeline's wall clock.
This module re-expresses the same table-driven decode as a batched
NumPy pass: every offset's prefix, opcode, ModRM/SIB/displacement and
immediate layout is classified through the exact 256-entry dispatch
tables in :mod:`repro.x86.opcodes`, in a constant number of
whole-buffer array operations, and only the small "interesting"
subset (endbr/call/jmp/ret/prologue-shaped immediates) is ever touched
per-element.

Bit-identity with the scalar decoder is the contract (the differential
property tests in ``tests/x86/test_vector_differential.py`` enforce
it). It is kept by construction: every encoding shape the array pass
does not model *exactly* — VEX/EVEX escapes, more than one legacy
prefix (the F3/F2 ``rep`` flag is order-dependent), 16-bit addressing
in 32-bit mode — is flagged into a fallback mask and re-decoded through
``decode_raw`` itself. Those shapes are rare at real *and* garbage
offsets, so the fallback stays a small fraction of the buffer.

The pass is opt-out: set ``REPRO_NO_VECTOR`` (or call
:func:`set_enabled`) to force every consumer back onto the scalar
sweep — that switch is what the differential tests and the
``vectorized`` benchmark trajectory compare against. Without NumPy the
module degrades to unavailable and nothing changes behavior.
"""

from __future__ import annotations

import os

from repro.x86 import opcodes as OP
from repro.x86.decoder import DecodeError, decode_raw
from repro.x86.insn import TERMINATOR_CLASSES

try:  # NumPy is a declared dependency, but stay importable without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on bare installs
    _np = None

#: Environment kill switch: any non-empty value disables the pass.
ENV_DISABLE = "REPRO_NO_VECTOR"

#: Test override installed by :func:`set_enabled` (None = env decides).
_FORCED: bool | None = None


def set_enabled(flag: bool | None) -> None:
    """Force the vector pass on/off (``None`` restores env control)."""
    global _FORCED
    _FORCED = flag


def available() -> bool:
    """Whether consumers should take the vectorized decode path."""
    if _np is None:
        return False
    if _FORCED is not None:
        return _FORCED
    return not os.environ.get(ENV_DISABLE)


# ---------------------------------------------------------------------------
# derived lookup tables (built once at import; a few hundred bytes)
# ---------------------------------------------------------------------------


def _build_imm_lut(is64: bool) -> "object":
    """Immediate size by ``immk<<3 | opsize16 | rexw<<1 | addrsize<<2``.

    Mirrors the scalar ``_imm_size`` exactly, except GRP3 (needs
    ModRM.reg and the F6/F7 distinction) which stays 0 here and is
    patched per-offset.
    """
    lut = _np.zeros(16 << 3, dtype=_np.uint8)
    for immk in range(11):
        for flags in range(8):
            opsize16 = bool(flags & 1)
            rexw = bool(flags & 2)
            addrsize = bool(flags & 4)
            opsize = 64 if rexw else (16 if opsize16 else 32)
            if immk in (OP.IMM_IB, OP.IMM_REL8):
                size = 1
            elif immk == OP.IMM_IW:
                size = 2
            elif immk in (OP.IMM_IZ, OP.IMM_RELZ):
                size = 2 if opsize == 16 else 4
            elif immk == OP.IMM_IV:
                size = {16: 2, 32: 4, 64: 8}[opsize]
            elif immk == OP.IMM_AP:
                size = 4 if opsize == 16 else 6
            elif immk == OP.IMM_MOFFS:
                if is64:
                    size = 4 if addrsize else 8
                else:
                    size = 2 if addrsize else 4
            elif immk == OP.IMM_ENTER:
                size = 3
            else:  # NONE, GRP3
                size = 0
            lut[(immk << 3) | flags] = size
    return lut


def _build_modrm_lut() -> "object":
    """Packed per-ModRM-byte operand layout.

    Low nibble: displacement bytes plus one for a SIB byte (the
    unconditional part); bit 4: "SIB with mod==0" — those add 4 more
    displacement bytes when SIB.base is 5.
    """
    lut = _np.zeros(256, dtype=_np.uint8)
    for modrm in range(0xC0):  # register-direct forms contribute 0
        mod, rm = modrm >> 6, modrm & 7
        extra = 1 if rm == 4 else 0
        if mod == 1:
            extra += 1
        elif mod == 2:
            extra += 4
        elif rm == 5:  # mod == 0
            extra += 4
        lut[modrm] = extra
        if rm == 4 and mod == 0:
            lut[modrm] |= 0x10
    return lut


def _build_prefix_bits(kinds) -> "object":
    """Packed per-byte prefix facts: one gather replaces five compares.

    bit 0: legacy prefix; bit 1: REX; bits 2/3/4/5: this byte is
    0x66/0x67/0xF3/0x3E *and* a legacy prefix in this mode.
    """
    bits = _np.zeros(256, dtype=_np.uint8)
    for b in range(256):
        kind = kinds[b]
        if kind == OP.PK_REX:
            bits[b] = 2
        elif kind:
            bits[b] = 1
    for b, flag in ((0x66, 4), (0x67, 8), (0xF3, 16), (0x3E, 32)):
        if bits[b] & 1:
            bits[b] |= flag
    return bits


if _np is not None:
    _PK32 = _np.array(OP.PREFIX_KIND, dtype=_np.uint8)
    _PK64 = _np.array(OP.PREFIX_KIND_64, dtype=_np.uint8)
    _PB32 = _build_prefix_bits(OP.PREFIX_KIND)
    _PB64 = _build_prefix_bits(OP.PREFIX_KIND_64)
    _SPEC1 = _np.array(OP.ONE_BYTE, dtype=_np.int16)
    _SPEC2 = _np.array(OP.TWO_BYTE, dtype=_np.int16)
    _IMM_LUT32 = _build_imm_lut(False)
    _IMM_LUT64 = _build_imm_lut(True)
    _MODRM_LUT = _build_modrm_lut()
    _TERM_LUT = _np.zeros(256, dtype=bool)
    for _k in TERMINATOR_CLASSES:
        _TERM_LUT[int(_k)] = True

_SPEC_38 = OP.spec(OP.MODRM)                 # whole 0F 38 map
_SPEC_3A = OP.spec(OP.MODRM, OP.IMM_IB)      # whole 0F 3A map

# InsnClass values inlined as ints (hot arrays are plain uint8).
_ENDBR64 = 1
_ENDBR32 = 2
_CALL_DIRECT = 3
_CALL_INDIRECT = 4
_JMP_DIRECT = 5
_JMP_INDIRECT = 6
_JCC = 7
_RET = 8
_NOP = 9
_INT3 = 10
_HLT = 11
_UD = 12
_LEA = 13
_MOV_IMM = 14
_PUSH_IMM = 15

_MASK64 = (1 << 64) - 1


def _read_u32(pad: "object", p: "object") -> "object":
    np = _np
    return (
        pad[p].astype(np.uint32)
        | (pad[p + 1].astype(np.uint32) << 8)
        | (pad[p + 2].astype(np.uint32) << 16)
        | (pad[p + 3].astype(np.uint32) << 24)
    )


def decode_all(
    data: bytes, bits: int, base_addr: int = 0
) -> tuple[bytes, bytes, dict[int, int], set[int], int]:
    """Decode every offset of ``data`` in one batched pass.

    Returns ``(lengths, klasses, targets, notracks, fallbacks)`` with
    the same per-offset semantics as calling ``decode_raw`` at each
    offset: ``lengths[i] == 0`` marks a :class:`DecodeError`. Lengths
    and classes come back as ``bytes`` (both fit a byte, and ``bytes``
    indexes faster than a list while costing 1/60th the memory);
    targets and NOTRACK flags are sparse. ``fallbacks`` counts the
    offsets re-decoded through the scalar path.
    """
    np = _np
    n = len(data)
    if n == 0:
        return b"", b"", {}, set(), 0
    is64 = bits == 64
    pb = _PB64 if is64 else _PB32

    # Offset arithmetic runs in int32 throughout: buffers are far below
    # 2 GiB and the whole-array passes are memory-bound, so halving the
    # element width is a measurable win on multi-megabyte images.
    pad = np.zeros(n + 16, dtype=np.uint8)
    pad[:n] = np.frombuffer(data, dtype=np.uint8)
    idx = np.arange(n, dtype=np.int32)

    # ---- prefixes (at most one legacy prefix, then an optional REX) ----
    # One packed-bits gather per byte; the rarely-consulted F3/3E flags
    # are read back out of ``p0`` per interesting offset, not expanded
    # into whole-buffer booleans.
    b0 = pad[:n]
    p0 = np.take(pb, b0)
    legacy0 = (p0 & 1) != 0
    opsize16 = (p0 & 4) != 0
    addrsize = (p0 & 8) != 0
    pos = idx + legacy0
    # ``pos`` differs from ``idx`` only where legacy0: select, don't
    # gather (the shifted view is contiguous).
    b1 = np.where(legacy0, pad[1:n + 1], b0)
    p1 = np.take(pb, b1)
    # A second legacy prefix makes the rep flag order-dependent: punt.
    fallback = (p0 & p1 & 1) != 0
    if is64:
        isrex = (p1 & 2) != 0
        rexw = isrex & ((b1 & 0x08) != 0)
        pos = pos + isrex
        ob = np.take(pad, pos)
    else:
        rexw = None  # no REX prefixes outside 64-bit mode
        ob = b1
    del b1, p1

    # ---- opcode dispatch ----
    # VEX/EVEX escapes (and the 32-bit BOUND/LES/LDS ambiguity) go to
    # the scalar decoder wholesale.
    fallback |= (ob == 0xC4) | (ob == 0xC5) | (ob == 0x62)
    spec = np.take(_SPEC1, ob)
    op = ob
    two = ob == 0x0F
    oplen = two.astype(np.int32)
    n2 = np.flatnonzero(two)
    if n2.size:
        ob2 = pad[pos[n2] + 1]
        spec2 = np.take(_SPEC2, ob2)
        t38 = ob2 == 0x38
        t3a = ob2 == 0x3A
        spec2[t38] = _SPEC_38
        spec2[t3a] = _SPEC_3A
        three = t38 | t3a
        op2 = ob2
        if three.any():
            n3 = n2[three]
            op2 = np.where(three, pad[pos[n2] + 2], ob2)
            oplen[n3] += 1
        op = op.copy()
        op[n2] = op2
        spec[n2] = spec2
    pos = pos + 1 + oplen

    err = (spec & (OP.INVALID | (OP.INV64 if is64 else OP.INV32))) != 0

    # ---- ModRM / SIB / displacement ----
    has_modrm = (spec & OP.MODRM) != 0
    modrm = np.take(pad, pos)
    # FF /7 and FE /2../7 are invalid groups: only offsets whose opcode
    # byte is FF/FE (a small subset) need their ModRM.reg inspected.
    ffsel = np.flatnonzero((ob == 0xFF) | (ob == 0xFE))
    if ffsel.size:
        regf = (modrm[ffsel] >> 3) & 7
        bad = has_modrm[ffsel] & ~two[ffsel] & np.where(
            ob[ffsel] == 0xFF, regf == 7, regf > 1
        )
        err[ffsel[bad]] = True
    if not is64:
        # 16-bit addressing changes the displacement layout: punt.
        fallback |= has_modrm & (modrm < 0xC0) & addrsize
    layout = np.take(_MODRM_LUT, modrm)
    sib = np.take(pad, pos + 1)
    extra = (layout & 0x0F) + ((layout >> 4) & ((sib & 7) == 5)) * 4
    pos = pos + has_modrm * (1 + extra.astype(np.int32))

    # ---- immediate ----
    immk = (spec >> OP.IMM_SHIFT) & 0xF
    key = (immk << 3) | opsize16 | (addrsize.astype(np.int16) << 2)
    if rexw is None:
        opsize16eff = opsize16              # opsize == 16
    else:
        key |= rexw.astype(np.int16) << 1
        opsize16eff = opsize16 & ~rexw      # opsize == 16
    imm = np.take(_IMM_LUT64 if is64 else _IMM_LUT32, key)\
        .astype(np.int32)
    g0 = np.flatnonzero(immk == OP.IMM_GRP3)
    if g0.size:
        gi = g0[has_modrm[g0] & (((modrm[g0] >> 3) & 7) <= 1)]
        imm[gi] = np.where(
            op[gi] == 0xF6, 1, np.where(opsize16eff[gi], 2, 4)
        )
    imm_pos = pos
    end = pos + imm
    length = end - idx
    # Any scalar-side truncation raise implies end > n here (every
    # consumed byte sits below ``end``), and the longest shape the
    # array pass models is 14 bytes — so these two checks subsume the
    # scalar decoder's intermediate bounds/length raises exactly.
    err |= (end > n) | (length > 15)

    ok = ~err & ~fallback
    ii = np.flatnonzero(ok & ((spec & OP.INTERESTING) != 0))

    # ---- classification (compacted: only interesting offsets) ----
    klasses = np.zeros(n, dtype=np.uint8)
    opi = op[ii]
    twoi = two[ii]
    onei = ~twoi
    modrmi = modrm[ii]
    regi = (modrmi >> 3) & 7
    hmi = has_modrm[ii]
    kl = np.zeros(ii.size, dtype=np.uint8)

    relm = np.zeros(ii.size, dtype=bool)
    m = onei & (opi == 0xE8)
    kl[m] = _CALL_DIRECT
    relm |= m
    m = onei & ((opi == 0xE9) | (opi == 0xEB))
    kl[m] = _JMP_DIRECT
    relm |= m
    m = onei & (((opi >= 0x70) & (opi <= 0x7F))
                | ((opi >= 0xE0) & (opi <= 0xE3)))
    kl[m] = _JCC
    relm |= m
    m = twoi & (opi >= 0x80) & (opi <= 0x8F)
    kl[m] = _JCC
    relm |= m
    kl[onei & ((opi == 0xC3) | (opi == 0xC2)
               | (opi == 0xCB) | (opi == 0xCA))] = _RET
    ffg = onei & (opi == 0xFF) & hmi
    cim = ffg & ((regi == 2) | (regi == 3))
    jim = ffg & ((regi == 4) | (regi == 5))
    kl[cim] = _CALL_INDIRECT
    kl[jim] = _JMP_INDIRECT
    kl[onei & (opi == 0x90)] = _NOP
    kl[onei & (opi == 0xCC)] = _INT3
    kl[onei & (opi == 0xF4)] = _HLT
    leam = onei & (opi == 0x8D) & hmi
    kl[leam] = _LEA
    ge32 = ~opsize16eff[ii]                 # opsize >= 32
    movpush = onei & ge32 & (
        ((opi >= 0xB8) & (opi <= 0xBF)) | ((opi == 0xC7) & hmi)
        | (opi == 0x68)
    )
    kl[movpush & (opi != 0x68)] = _MOV_IMM
    kl[movpush & (opi == 0x68)] = _PUSH_IMM
    endbr = twoi & (opi == 0x1E) & ((p0[ii] & 16) != 0)
    kl[endbr & (modrmi == 0xFA)] = _ENDBR64
    kl[endbr & (modrmi == 0xFB)] = _ENDBR32
    kl[twoi & (opi == 0x1F)] = _NOP
    kl[twoi & ((opi == 0x0B) | (opi == 0xB9) | (opi == 0xFF))] = _UD
    klasses[ii] = kl

    # ---- sparse targets ----
    targets: dict[int, int] = {}
    base_u = np.uint64(base_addr & _MASK64)

    ra = ii[relm]
    if ra.size:
        sz = imm[ra]
        p = imm_pos[ra]
        rel = np.empty(ra.size, dtype=np.int32)
        m1 = sz == 1
        rel[m1] = pad[p[m1]].astype(np.int8)
        m2 = sz == 2
        if m2.any():
            pp = p[m2]
            rel[m2] = (
                pad[pp].astype(np.uint16)
                | (pad[pp + 1].astype(np.uint16) << 8)
            ).astype(np.int16)
        m4 = sz == 4
        rel[m4] = _read_u32(pad, p[m4]).astype(np.int32)
        t = base_u + (ra + length[ra]).astype(np.uint64) \
            + rel.astype(np.uint64)
        if not is64:
            t &= np.uint64(0xFFFFFFFF)
        o16 = opsize16eff[ra]
        if o16.any():
            t[o16] &= np.uint64(0xFFFF)
        targets.update(zip(ra.tolist(), t.tolist()))

    la = ii[leam & ((modrmi & 0xC7) == 0x05)]  # mod == 0, rm == 5
    if la.size:
        d32 = _read_u32(pad, la + length[la] - 4).astype(np.int32)
        if is64:
            t = base_u + (la + length[la]).astype(np.uint64) \
                + d32.astype(np.uint64)
        else:
            t = d32.astype(np.uint64) & np.uint64(0xFFFFFFFF)
        targets.update(zip(la.tolist(), t.tolist()))

    ma = ii[movpush]
    if ma.size:
        sz = imm[ma]
        p = imm_pos[ma]
        u = np.empty(ma.size, dtype=np.uint64)
        m4 = sz != 8  # only 4- and 8-byte immediates reach here
        u[m4] = _read_u32(pad, p[m4])
        m8 = ~m4
        if m8.any():
            pp = p[m8]
            u[m8] = _read_u32(pad, pp).astype(np.uint64) | (
                _read_u32(pad, pp + 4).astype(np.uint64) << np.uint64(32)
            )
        targets.update(zip(ma.tolist(), u.tolist()))

    notracks = set(ii[(cim | jim) & ((p0[ii] & 32) != 0)].tolist())

    lengths = (length * ok).astype(np.uint8)

    # ---- scalar fallback for the shapes the array pass punts on ----
    fb = np.flatnonzero(fallback)
    lengths_b = bytearray(lengths.tobytes())
    klasses_b = bytearray(klasses.tobytes())
    for i in fb.tolist():
        try:
            flen, fklass, ftarget, fnotrack = decode_raw(
                data, i, base_addr + i, bits
            )
        except DecodeError:
            continue
        lengths_b[i] = flen
        klasses_b[i] = fklass
        if ftarget is not None:
            targets[i] = ftarget
        if fnotrack:
            notracks.add(i)
    return bytes(lengths_b), bytes(klasses_b), targets, notracks, \
        int(fb.size)


def viability(lengths: bytes, klasses: bytes) -> bytes:
    """Right-to-left chain viability, as one pointer-doubling pass.

    Semantics match the scalar DP in :mod:`repro.x86.superset`:
    ``viable[i]`` is truthy when offset ``i`` decodes and is a
    terminator, or falls through to a viable offset (the end-of-region
    sentinel at index ``n`` is viable). Every fall-through chain
    strictly advances, so successor-pointer doubling over the shrinking
    unknown set resolves all offsets in ``O(log n)`` compacted steps.
    Returns ``n + 1`` bytes of 0/1, sentinel included.
    """
    np = _np
    if np is None:
        raise RuntimeError("viability() requires numpy")
    n = len(lengths)
    if n == 0:
        return b"\x01"
    lens = np.frombuffer(lengths, dtype=np.uint8)
    kls = np.frombuffer(klasses, dtype=np.uint8)
    decodable = lens != 0
    term = decodable & np.take(_TERM_LUT, kls)
    # 0 = unknown, 1 = dead, 2 = viable — written arithmetically
    # (bools are uint8 under the hood, so ``.view`` is free); boolean
    # fancy-indexed stores cost a mask scan plus a scatter each.
    state = np.empty(n + 1, dtype=np.uint8)
    state[n] = 2
    np.multiply(term.view(np.uint8), 2, out=state[:n])
    state[:n] += (~decodable).view(np.uint8)
    # int32 pointers: the doubling loop below is gather-bound, and the
    # narrower index type halves its memory traffic. Resolved offsets
    # point at *themselves*, which makes them fixed points of the
    # doubling — a composed pointer can never skip past a terminator.
    # ``term ⊆ decodable`` turns the and-not into one xor, and
    # ``lens * follow`` (uint8, lens ≤ 15) keeps dead and terminator
    # offsets in place without a fancy-indexed gather/scatter pair.
    follow = decodable ^ term
    nxt = np.arange(n + 1, dtype=np.int32)
    nxt[:n] += lens * follow
    # A few whole-array doubling rounds first: real chains reach a
    # terminator within a handful of instructions, so this resolves the
    # bulk without the fancy-indexing overhead of the compacted loop.
    # ``np.take`` beats ``nxt[nxt]`` fancy indexing, and the ping-pong
    # scratch buffer keeps the rounds allocation-free.
    tmp = np.empty_like(nxt)
    for _ in range(2):
        np.take(nxt, nxt, out=tmp)
        np.take(tmp, tmp, out=nxt)
    unknown = np.flatnonzero(state == 0)
    for _ in range(64):  # doubling: 2**64 exceeds any chain length
        if not unknown.size:
            break
        s = state[nxt[unknown]]
        done = s != 0
        if done.any():
            state[unknown[done]] = s[done]
            unknown = unknown[~done]
            if not unknown.size:
                break
        nxt[unknown] = nxt[nxt[unknown]]
    return (state == 2).tobytes()
