"""x86 / x86-64 instruction decoder.

A table-driven length decoder with the semantic classification needed by
function identification. It decodes exact instruction lengths for the
full compiler-emitted instruction set — legacy, SSE, AVX (VEX), and
AVX-512 (EVEX) encodings — so that linear-sweep disassembly stays in
sync, and classifies the instructions FunSeeker and the baselines react
to: end-branch markers, direct/indirect branches, returns, padding.

The decoder is validated against ``objdump`` on real GCC-12 binaries in
``tests/integration``.
"""

from __future__ import annotations

from repro.x86 import opcodes as OP
from repro.x86.insn import Insn, InsnClass

MAX_INSN_LEN = 15


class DecodeError(Exception):
    """Raised when bytes do not form a valid instruction."""


_OTHER = int(InsnClass.OTHER)


def decode(data: bytes, offset: int, addr: int, bits: int) -> Insn:
    """Decode one instruction into an :class:`Insn`.

    Parameters
    ----------
    data:
        Code buffer.
    offset:
        Offset of the instruction's first byte within ``data``.
    addr:
        Virtual address corresponding to ``offset``.
    bits:
        32 or 64.

    Raises
    ------
    DecodeError
        If the bytes are not a valid instruction in the given mode.
    """
    if bits not in (32, 64):
        raise ValueError(f"bits must be 32 or 64, got {bits}")
    length, klass, target, notrack = decode_raw(data, offset, addr, bits)
    return Insn(addr=addr, length=length, klass=InsnClass(klass),
                target=target, notrack=notrack)


def decode_raw(
    data: bytes, offset: int, addr: int, bits: int
) -> tuple[int, int, int | None, bool]:
    """Length-and-classification decode without object construction.

    Returns ``(length, klass, target, notrack)`` with ``klass`` as a
    plain int (:class:`InsnClass` value). This is the linear-sweep hot
    path: FunSeeker's whole-binary sweep calls it once per instruction,
    so it avoids allocating an :class:`Insn` per call.
    """
    is64 = bits == 64
    n = len(data)
    pos = offset
    limit = offset + MAX_INSN_LEN
    if limit > n:
        limit = n

    # ---- prefixes ---------------------------------------------------------
    # Single-pass scanner: one mode-specific table lookup classifies
    # each byte as prefix, REX, or opcode start — the common no-prefix
    # case costs exactly one lookup.
    opsize16 = False
    addrsize = False
    rep_f3 = False
    seg_3e = False
    rex = 0
    kinds = OP.PREFIX_KIND_64 if is64 else OP.PREFIX_KIND
    b = data[pos]
    kind = kinds[b]
    if kind:
        while True:
            if kind == OP.PK_REX:
                rex = b
                pos += 1  # REX must immediately precede the opcode
                break
            if kind == OP.PK_OPSIZE:
                opsize16 = True
            elif kind == OP.PK_ADDRSIZE:
                addrsize = True
            elif kind == OP.PK_REP:
                rep_f3 = True
            elif kind == OP.PK_REPNE:
                rep_f3 = False
            elif kind == OP.PK_NOTRACK:
                seg_3e = True
            pos += 1
            if pos >= limit:
                break
            b = data[pos]
            kind = kinds[b]
            if not kind:
                break
    if pos >= limit:
        raise DecodeError("ran out of bytes in prefixes")

    rex_w = rex & 0x08

    # ---- VEX / EVEX -------------------------------------------------------
    b = data[pos]
    if b == 0xC5 and _is_vex(data, pos, n, is64):
        return _decode_vex(data, offset, pos, is64, addrsize, two_byte=True)
    if b == 0xC4 and _is_vex(data, pos, n, is64):
        return _decode_vex(data, offset, pos, is64, addrsize, two_byte=False)
    if b == 0x62 and _is_evex(data, pos, n, is64):
        return _decode_evex(data, offset, pos, is64, addrsize)

    # ---- opcode dispatch ---------------------------------------------------
    table = OP.ONE_BYTE
    opcode_map = 1
    opcode = b
    pos += 1
    if opcode == 0x0F:
        if pos >= limit:
            raise DecodeError("truncated two-byte opcode")
        opcode = data[pos]
        pos += 1
        if opcode == 0x38:
            if pos >= limit:
                raise DecodeError("truncated 0F 38 opcode")
            opcode = data[pos]
            pos += 1
            table = OP.THREE_BYTE_38
            opcode_map = 3
        elif opcode == 0x3A:
            if pos >= limit:
                raise DecodeError("truncated 0F 3A opcode")
            opcode = data[pos]
            pos += 1
            table = OP.THREE_BYTE_3A
            opcode_map = 4
        else:
            table = OP.TWO_BYTE
            opcode_map = 2

    sp = table[opcode]
    if sp & OP.INVALID:
        raise DecodeError(f"invalid opcode {opcode:#x} (map {opcode_map})")
    if is64 and sp & OP.INV64:
        raise DecodeError(f"opcode {opcode:#x} invalid in 64-bit mode")
    if not is64 and sp & OP.INV32:
        raise DecodeError(f"opcode {opcode:#x} invalid in 32-bit mode")

    # ---- ModRM / SIB / displacement ---------------------------------------
    modrm = -1
    if sp & OP.MODRM:
        if pos >= limit:
            raise DecodeError("truncated ModRM")
        modrm = data[pos]
        pos += 1
        if opcode_map == 1:
            reg = (modrm >> 3) & 7
            if opcode == 0xFF and reg == 7:
                raise DecodeError("FF /7 is undefined")
            if opcode == 0xFE and reg > 1:
                raise DecodeError("FE /2..7 are undefined")
        if modrm < 0xC0:  # register-direct operands need no skip
            pos = _skip_mem_operand(data, pos, limit, modrm, is64, addrsize)

    # ---- immediate -----------------------------------------------------------
    imm_kind = (sp >> OP.IMM_SHIFT) & 0xF
    opsize = 64 if rex_w else (16 if opsize16 else 32)
    imm_pos = pos
    if imm_kind:
        imm_size = _imm_size(imm_kind, opsize, is64, addrsize, modrm, opcode)
        pos += imm_size
        if pos > limit:
            raise DecodeError("truncated immediate")
    else:
        imm_size = 0
    length = pos - offset
    if length > MAX_INSN_LEN:
        raise DecodeError("instruction longer than 15 bytes")

    # Fast path: most instructions carry no classification of interest;
    # the spec already fetched carries the INTERESTING bit, so no second
    # table lookup is needed.
    if not sp & OP.INTERESTING:
        return length, _OTHER, None, False

    return _classify(
        data, offset, addr, length, opcode_map, opcode, modrm,
        imm_kind, imm_pos, imm_size, rep_f3, seg_3e, is64, opsize,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _imm_size(
    imm_kind: int, opsize: int, is64: bool, addrsize: bool,
    modrm: int, opcode: int,
) -> int:
    if imm_kind == OP.IMM_NONE:
        return 0
    if imm_kind in (OP.IMM_IB, OP.IMM_REL8):
        return 1
    if imm_kind == OP.IMM_IW:
        return 2
    if imm_kind == OP.IMM_IZ:
        return 2 if opsize == 16 else 4
    if imm_kind == OP.IMM_IV:
        return {16: 2, 32: 4, 64: 8}[opsize]
    if imm_kind == OP.IMM_RELZ:
        # A 0x66 operand-size prefix shrinks the displacement to rel16
        # in 32- AND 64-bit mode (Intel truncates [ER]IP to 16 bits);
        # REX.W keeps the usual 32-bit displacement.
        return 2 if opsize == 16 else 4
    if imm_kind == OP.IMM_AP:
        return 4 if opsize == 16 else 6
    if imm_kind == OP.IMM_MOFFS:
        if is64:
            return 4 if addrsize else 8
        return 2 if addrsize else 4
    if imm_kind == OP.IMM_ENTER:
        return 3
    if imm_kind == OP.IMM_GRP3:
        # F6 /0-/1 (TEST r/m8, imm8) take imm8; F7 /0-/1 take immz.
        if modrm >= 0 and ((modrm >> 3) & 7) in (0, 1):
            if opcode == 0xF6:
                return 1
            return 2 if opsize == 16 else 4
        return 0
    raise DecodeError(f"unhandled immediate kind {imm_kind}")


def _skip_mem_operand(
    data: bytes, pos: int, limit: int, modrm: int, is64: bool, addrsize: bool
) -> int:
    """Advance past the SIB byte and displacement of a memory operand."""
    mod = modrm >> 6
    rm = modrm & 7
    if mod == 3:
        return pos
    if not is64 and addrsize:
        # 16-bit addressing (never emitted by the toolchains we model,
        # but decoded for robustness).
        if mod == 0:
            disp = 2 if rm == 6 else 0
        elif mod == 1:
            disp = 1
        else:
            disp = 2
        pos += disp
    else:
        if rm == 4:  # SIB follows
            if pos >= limit:
                raise DecodeError("truncated SIB")
            sib = data[pos]
            pos += 1
            base = sib & 7
            if mod == 0 and base == 5:
                pos += 4
        if mod == 0 and rm == 5:
            pos += 4  # disp32 (RIP-relative in 64-bit mode)
        elif mod == 1:
            pos += 1
        elif mod == 2:
            pos += 4
    if pos > limit:
        raise DecodeError("truncated displacement")
    return pos


def _is_vex(data: bytes, pos: int, n: int, is64: bool) -> bool:
    """C4/C5 start a VEX prefix in 64-bit mode, or in 32-bit mode when the
    following byte's top two bits are 11 (which would be an invalid LES/LDS
    ModRM)."""
    if pos + 1 >= n:
        return False
    return is64 or (data[pos + 1] & 0xC0) == 0xC0


def _is_evex(data: bytes, pos: int, n: int, is64: bool) -> bool:
    """62 starts an EVEX prefix in 64-bit mode, or in 32-bit mode when the
    following byte's top two bits are 11 (invalid BOUND ModRM)."""
    if pos + 1 >= n:
        return False
    return is64 or (data[pos + 1] & 0xC0) == 0xC0


def _decode_vex(
    data: bytes, offset: int, pos: int,
    is64: bool, addrsize: bool, *, two_byte: bool,
) -> tuple[int, int, int | None, bool]:
    n = len(data)
    limit = min(n, offset + MAX_INSN_LEN)
    if two_byte:
        if pos + 2 >= n:
            raise DecodeError("truncated VEX2")
        vex_map = 1
        pos += 2  # C5, payload
    else:
        if pos + 3 >= n:
            raise DecodeError("truncated VEX3")
        vex_map = data[pos + 1] & 0x1F
        pos += 3  # C4, payload1, payload2
    if pos >= limit:
        raise DecodeError("truncated VEX opcode")
    opcode = data[pos]
    pos += 1
    sp = _vex_spec(vex_map, opcode)
    return _finish_simd(data, offset, pos, limit, sp, is64, addrsize)


def _decode_evex(
    data: bytes, offset: int, pos: int, is64: bool, addrsize: bool
) -> tuple[int, int, int | None, bool]:
    n = len(data)
    limit = min(n, offset + MAX_INSN_LEN)
    if pos + 4 >= n:
        raise DecodeError("truncated EVEX")
    mmm = data[pos + 1] & 0x07
    pos += 4  # 62, P0, P1, P2
    opcode = data[pos]
    pos += 1
    # Maps 5 and 6 (AVX512-FP16) reuse the 0F / 0F38 immediate behaviour.
    vex_map = {5: 1, 6: 2}.get(mmm, mmm)
    sp = _vex_spec(vex_map, opcode)
    return _finish_simd(data, offset, pos, limit, sp, is64, addrsize)


def _vex_spec(vex_map: int, opcode: int) -> int:
    if vex_map == 1:
        sp = OP.TWO_BYTE[opcode]
    elif vex_map == 2:
        sp = OP.THREE_BYTE_38[opcode]
    elif vex_map == 3:
        sp = OP.THREE_BYTE_3A[opcode]
    else:
        raise DecodeError(f"unsupported VEX map {vex_map}")
    if sp & OP.INVALID:
        raise DecodeError(f"invalid VEX opcode {opcode:#x} in map {vex_map}")
    return sp


def _finish_simd(
    data: bytes, offset: int, pos: int, limit: int,
    sp: int, is64: bool, addrsize: bool,
) -> tuple[int, int, int | None, bool]:
    if sp & OP.MODRM:
        if pos >= limit:
            raise DecodeError("truncated VEX ModRM")
        modrm = data[pos]
        pos += 1
        pos = _skip_mem_operand(data, pos, limit, modrm, is64, addrsize)
    imm_kind = OP.spec_imm(sp)
    if imm_kind == OP.IMM_IB:
        pos += 1
    elif imm_kind != OP.IMM_NONE:
        raise DecodeError("unexpected VEX immediate kind")
    if pos > limit:
        raise DecodeError("truncated VEX instruction")
    return pos - offset, int(InsnClass.OTHER), None, False


def _read_imm(data: bytes, pos: int, size: int, signed: bool) -> int:
    return int.from_bytes(data[pos : pos + size], "little", signed=signed)


def _classify(
    data: bytes, offset: int, addr: int, length: int,
    opcode_map: int, opcode: int, modrm: int,
    imm_kind: int, imm_pos: int, imm_size: int,
    rep_f3: bool, seg_3e: bool, is64: bool, opsize: int,
) -> tuple[int, int, int | None, bool]:
    klass = InsnClass.OTHER
    target: int | None = None
    notrack = False
    end = addr + length
    # With a 16-bit operand size the instruction pointer truncates to
    # 16 bits, so relative-branch targets wrap within the low word.
    branch_mask = 0xFFFF if opsize == 16 else _mask(is64)

    if opcode_map == 1:
        if opcode == 0xE8:
            klass = InsnClass.CALL_DIRECT
            target = (end + _read_imm(data, imm_pos, imm_size, True)) \
                & branch_mask
        elif opcode in (0xE9, 0xEB):
            klass = InsnClass.JMP_DIRECT
            target = (end + _read_imm(data, imm_pos, imm_size, True)) \
                & branch_mask
        elif 0x70 <= opcode <= 0x7F or 0xE0 <= opcode <= 0xE3:
            klass = InsnClass.JCC
            target = (end + _read_imm(data, imm_pos, imm_size, True)) \
                & branch_mask
        elif opcode in (0xC3, 0xC2, 0xCB, 0xCA):
            klass = InsnClass.RET
        elif opcode == 0xFF and modrm >= 0:
            reg = (modrm >> 3) & 7
            if reg in (2, 3):
                klass = InsnClass.CALL_INDIRECT
                notrack = seg_3e
            elif reg in (4, 5):
                klass = InsnClass.JMP_INDIRECT
                notrack = seg_3e
        elif opcode == 0x90:
            klass = InsnClass.NOP
        elif opcode == 0xCC:
            klass = InsnClass.INT3
        elif opcode == 0xF4:
            klass = InsnClass.HLT
        elif opcode == 0x8D and modrm >= 0:
            klass = InsnClass.LEA
            target = _lea_target(data, offset, addr, length, modrm, is64)
        elif 0xB8 <= opcode <= 0xBF and opsize >= 32:
            klass = InsnClass.MOV_IMM
            target = _read_imm(data, imm_pos, imm_size, False)
        elif opcode == 0xC7 and modrm >= 0 and opsize >= 32:
            klass = InsnClass.MOV_IMM
            target = _read_imm(data, imm_pos, imm_size, False)
        elif opcode == 0x68 and opsize >= 32:
            klass = InsnClass.PUSH_IMM
            target = _read_imm(data, imm_pos, imm_size, False)
    elif opcode_map == 2:
        if opcode == 0x1E and rep_f3 and modrm in (0xFA, 0xFB):
            klass = InsnClass.ENDBR64 if modrm == 0xFA else InsnClass.ENDBR32
        elif 0x80 <= opcode <= 0x8F:
            klass = InsnClass.JCC
            target = (end + _read_imm(data, imm_pos, imm_size, True)) \
                & branch_mask
        elif opcode == 0x1F:
            klass = InsnClass.NOP
        elif opcode == 0x0B or opcode == 0xB9 or opcode == 0xFF:
            klass = InsnClass.UD

    return length, int(klass), target, notrack


def _lea_target(
    data: bytes, offset: int, addr: int, length: int, modrm: int, is64: bool
) -> int | None:
    """Resolve the referenced address of a RIP-relative or absolute LEA."""
    mod = modrm >> 6
    rm = modrm & 7
    if mod != 0 or rm != 5:
        return None
    # The disp32 is the last 4 bytes of the instruction (LEA has no imm).
    disp = int.from_bytes(
        data[offset + length - 4 : offset + length], "little", signed=True
    )
    if is64:
        return (addr + length + disp) & _mask(True)
    return disp & 0xFFFFFFFF


def _mask(is64: bool) -> int:
    return (1 << 64) - 1 if is64 else (1 << 32) - 1
