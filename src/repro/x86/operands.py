"""Structured operand extraction for x86/x86-64 instructions.

Complements the length/classification decoder with operand-level
detail for the integer instruction families compilers emit: register,
memory (base + index*scale + displacement, RIP-relative), and immediate
operands, plus the mnemonic. Used by the text formatter and available
to analyses that need def/use information richer than
:mod:`repro.baselines.fetch_like`'s approximation.

Coverage is the one-byte map's integer core plus the common 0F
extensions (movzx/movsx, setcc, cmov, imul). SIMD instructions raise
:class:`OperandError` — their operands never matter for function
identification.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

REG_NAMES_64 = ("rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
                "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
REG_NAMES_32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
                "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d",
                "r15d")
REG_NAMES_16 = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
                "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w",
                "r15w")
REG_NAMES_8 = ("al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
               "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b",
               "r15b")
#: 8-bit registers without REX (AH..BH in slots 4-7).
REG_NAMES_8_LEGACY = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")


def reg_name(num: int, width: int, *, rex_present: bool = True) -> str:
    """Render a register number at a given operand width."""
    if width == 8:
        if not rex_present and num < 8:
            return REG_NAMES_8_LEGACY[num]
        return REG_NAMES_8[num]
    table = {16: REG_NAMES_16, 32: REG_NAMES_32, 64: REG_NAMES_64}[width]
    return table[num]


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    num: int
    width: int
    rex_present: bool = True

    def render(self) -> str:
        return reg_name(self.num, self.width,
                        rex_present=self.rex_present)


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + index*scale + disp]``."""

    base: int | None
    index: int | None
    scale: int
    disp: int
    rip_relative: bool = False
    addr_width: int = 64

    def render(self) -> str:
        parts = []
        if self.rip_relative:
            parts.append("rip")
        elif self.base is not None:
            parts.append(reg_name(self.base, self.addr_width))
        if self.index is not None:
            parts.append(
                f"{reg_name(self.index, self.addr_width)}*{self.scale}")
        body = "+".join(parts)
        if self.disp or not parts:
            sign = "+" if self.disp >= 0 and parts else ""
            body += f"{sign}{self.disp:#x}" if self.disp >= 0 \
                else f"-{-self.disp:#x}"
        return f"[{body}]"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int
    width: int

    def render(self) -> str:
        return f"{self.value:#x}"


Operand = Reg | Mem | Imm


class OperandError(Exception):
    """Raised when an instruction's operands are not modeled."""


#: Operand encodings per opcode (one-byte map).
class _Enc(enum.Enum):
    MR = "mr"        # r/m, reg
    RM = "rm"        # reg, r/m
    MI = "mi"        # r/m, imm
    M1 = "m1"        # r/m (single operand)
    OI = "oi"        # reg-in-opcode, imm
    O = "o"          # reg-in-opcode
    AI = "ai"        # accumulator, imm
    NONE = "none"


@dataclass(frozen=True)
class _Spec:
    mnemonic: str
    enc: _Enc
    byte_op: bool = False   # operates on 8-bit operands
    imm8: bool = False      # immediate is 1 byte regardless of opsize


def _alu(name: str, base: int) -> dict[int, _Spec]:
    return {
        base + 0: _Spec(name, _Enc.MR, byte_op=True),
        base + 1: _Spec(name, _Enc.MR),
        base + 2: _Spec(name, _Enc.RM, byte_op=True),
        base + 3: _Spec(name, _Enc.RM),
        base + 4: _Spec(name, _Enc.AI, byte_op=True),
        base + 5: _Spec(name, _Enc.AI),
    }


_ONE_BYTE: dict[int, _Spec] = {}
for _name, _base in (("add", 0x00), ("or", 0x08), ("adc", 0x10),
                     ("sbb", 0x18), ("and", 0x20), ("sub", 0x28),
                     ("xor", 0x30), ("cmp", 0x38)):
    _ONE_BYTE.update(_alu(_name, _base))
_ONE_BYTE.update({
    0x84: _Spec("test", _Enc.MR, byte_op=True),
    0x85: _Spec("test", _Enc.MR),
    0x86: _Spec("xchg", _Enc.MR, byte_op=True),
    0x87: _Spec("xchg", _Enc.MR),
    0x88: _Spec("mov", _Enc.MR, byte_op=True),
    0x89: _Spec("mov", _Enc.MR),
    0x8A: _Spec("mov", _Enc.RM, byte_op=True),
    0x8B: _Spec("mov", _Enc.RM),
    0x8D: _Spec("lea", _Enc.RM),
    0xC6: _Spec("mov", _Enc.MI, byte_op=True, imm8=True),
    0xC7: _Spec("mov", _Enc.MI),
    0xA8: _Spec("test", _Enc.AI, byte_op=True),
    0xA9: _Spec("test", _Enc.AI),
    0x63: _Spec("movsxd", _Enc.RM),
    0x69: _Spec("imul", _Enc.RM),      # three-operand form; imm appended
    0x6B: _Spec("imul", _Enc.RM, imm8=True),
})
for _r in range(8):
    _ONE_BYTE[0x50 + _r] = _Spec("push", _Enc.O)
    _ONE_BYTE[0x58 + _r] = _Spec("pop", _Enc.O)
    _ONE_BYTE[0xB0 + _r] = _Spec("mov", _Enc.OI, byte_op=True)
    _ONE_BYTE[0xB8 + _r] = _Spec("mov", _Enc.OI)

_GRP1 = {0: "add", 1: "or", 2: "adc", 3: "sbb", 4: "and", 5: "sub",
         6: "xor", 7: "cmp"}
_GRP2 = {0: "rol", 1: "ror", 2: "rcl", 3: "rcr", 4: "shl", 5: "shr",
         6: "sal", 7: "sar"}
_GRP3 = {0: "test", 1: "test", 2: "not", 3: "neg", 4: "mul", 5: "imul",
         6: "div", 7: "idiv"}
_GRP5 = {0: "inc", 1: "dec", 2: "call", 3: "lcall", 4: "jmp", 5: "ljmp",
         6: "push"}

_TWO_BYTE: dict[int, _Spec] = {
    0xAF: _Spec("imul", _Enc.RM),
    0xB6: _Spec("movzx", _Enc.RM),
    0xB7: _Spec("movzx", _Enc.RM),
    0xBE: _Spec("movsx", _Enc.RM),
    0xBF: _Spec("movsx", _Enc.RM),
    0xA3: _Spec("bt", _Enc.MR),
    0xAB: _Spec("bts", _Enc.MR),
    0xB3: _Spec("btr", _Enc.MR),
    0xBC: _Spec("bsf", _Enc.RM),
    0xBD: _Spec("bsr", _Enc.RM),
}
for _cc in range(16):
    _TWO_BYTE[0x90 + _cc] = _Spec("set", _Enc.M1, byte_op=True)
    _TWO_BYTE[0x40 + _cc] = _Spec("cmov", _Enc.RM)



def _imm_at(raw: bytes, pos: int, nbytes: int) -> int:
    """Read a little-endian immediate; truncation is an OperandError."""
    if pos + nbytes > len(raw):
        raise OperandError("truncated immediate")
    return int.from_bytes(raw[pos : pos + nbytes], "little")

@dataclass(frozen=True)
class DecodedOperands:
    """Mnemonic and operand list of one instruction."""

    mnemonic: str
    operands: tuple[Operand, ...]

    def render(self) -> str:
        if not self.operands:
            return self.mnemonic
        ops = ", ".join(op.render() for op in self.operands)
        return f"{self.mnemonic:<6s} {ops}"


def analyze_operands(raw: bytes, bits: int) -> DecodedOperands:
    """Extract mnemonic and operands from one instruction's bytes.

    Raises :class:`OperandError` for instructions outside the modeled
    integer core.
    """
    i = 0
    opsize16 = False
    rex = 0
    rex_present = False
    while i < len(raw):
        b = raw[i]
        if b == 0x66:
            opsize16 = True
        elif b in (0x67, 0xF0, 0xF2, 0xF3, 0x26, 0x2E, 0x36, 0x3E,
                   0x64, 0x65):
            pass
        elif bits == 64 and 0x40 <= b <= 0x4F:
            rex = b
            rex_present = True
            i += 1
            break
        else:
            break
        i += 1
    if i >= len(raw):
        raise OperandError("no opcode")

    opcode = raw[i]
    i += 1
    table = _ONE_BYTE
    group: dict[int, str] | None = None
    two_byte = False
    if opcode == 0x0F:
        if i >= len(raw):
            raise OperandError("truncated 0F")
        opcode = raw[i]
        i += 1
        table = _TWO_BYTE
        two_byte = True
    elif opcode in (0x80, 0x81, 0x83):
        group = _GRP1
    elif opcode in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
        group = _GRP2
    elif opcode in (0xF6, 0xF7):
        group = _GRP3
    elif opcode == 0xFF:
        group = _GRP5

    opsize = 64 if (rex & 8) else (16 if opsize16 else 32)
    width = opsize if bits == 64 or opsize == 16 else 32
    addr_width = 64 if bits == 64 else 32

    if group is not None:
        return _analyze_group(raw, i, opcode, group, rex, rex_present,
                              width, addr_width)

    spec = table.get(opcode)
    if spec is None:
        raise OperandError(f"opcode {opcode:#x} not modeled")
    op_width = 8 if spec.byte_op else width
    if two_byte and spec.mnemonic in ("movzx", "movsx"):
        # Source width differs; report the destination width.
        op_width = width

    if spec.enc is _Enc.O:
        reg = (opcode & 7) | ((rex & 1) << 3)
        w = 64 if bits == 64 and spec.mnemonic in ("push", "pop") \
            else op_width
        return DecodedOperands(spec.mnemonic,
                               (Reg(reg, w, rex_present),))
    if spec.enc is _Enc.OI:
        reg = (opcode & 7) | ((rex & 1) << 3)
        imm_width = 8 if spec.byte_op else \
            (64 if rex & 8 else (16 if opsize16 else 32))
        imm = _imm_at(raw, i, imm_width // 8)
        return DecodedOperands(spec.mnemonic, (
            Reg(reg, op_width, rex_present), Imm(imm, imm_width)))
    if spec.enc is _Enc.AI:
        imm_width = 8 if spec.byte_op else (16 if opsize16 else 32)
        imm = _imm_at(raw, i, imm_width // 8)
        return DecodedOperands(spec.mnemonic, (
            Reg(0, op_width, rex_present), Imm(imm, imm_width)))
    if spec.enc is _Enc.NONE:
        return DecodedOperands(spec.mnemonic, ())

    rm, reg_op, after = _parse_modrm(raw, i, rex, rex_present, op_width,
                                     addr_width)
    # movzx/movsx read a narrower source than they write.
    if two_byte and opcode in (0xB6, 0xBE) and isinstance(rm, Reg):
        rm = Reg(rm.num, 8, rex_present)
    elif two_byte and opcode in (0xB7, 0xBF) and isinstance(rm, Reg):
        rm = Reg(rm.num, 16, rex_present)
    if spec.enc is _Enc.MR:
        return DecodedOperands(spec.mnemonic, (rm, reg_op))
    if spec.enc is _Enc.RM:
        ops: tuple[Operand, ...] = (reg_op, rm)
        if spec.mnemonic == "imul" and opcode in (0x69, 0x6B):
            imm_width = 8 if spec.imm8 else (16 if opsize16 else 32)
            imm = _imm_at(raw, after, imm_width // 8)
            ops = ops + (Imm(imm, imm_width),)
        return DecodedOperands(spec.mnemonic, ops)
    if spec.enc is _Enc.MI:
        imm_width = 8 if (spec.byte_op or spec.imm8) else \
            (16 if opsize16 else 32)
        imm = _imm_at(raw, after, imm_width // 8)
        return DecodedOperands(spec.mnemonic, (rm, Imm(imm, imm_width)))
    if spec.enc is _Enc.M1:
        return DecodedOperands(spec.mnemonic, (rm,))
    raise OperandError(f"encoding {spec.enc} not handled")


def _analyze_group(
    raw: bytes, i: int, opcode: int, group: dict[int, str],
    rex: int, rex_present: bool, width: int, addr_width: int,
) -> DecodedOperands:
    if i >= len(raw):
        raise OperandError("truncated group ModRM")
    reg_field = (raw[i] >> 3) & 7
    name = group.get(reg_field)
    if name is None:
        raise OperandError(f"group reg {reg_field} undefined")
    byte_op = opcode in (0x80, 0xC0, 0xD0, 0xD2, 0xF6, 0xFE)
    op_width = 8 if byte_op else width
    rm, _reg, after = _parse_modrm(raw, i, rex, rex_present, op_width,
                                   addr_width)
    ops: tuple[Operand, ...] = (rm,)
    if group is _GRP1:
        imm_width = 8 if opcode in (0x80, 0x83) else \
            (16 if width == 16 else 32)
        imm = _imm_at(raw, after, imm_width // 8)
        ops = (rm, Imm(imm, imm_width))
    elif group is _GRP2:
        if opcode in (0xC0, 0xC1):
            ops = (rm, Imm(_imm_at(raw, after, 1), 8))
        elif opcode in (0xD2, 0xD3):
            ops = (rm, Reg(1, 8, rex_present))  # cl
        else:
            ops = (rm, Imm(1, 8))
    elif group is _GRP3 and reg_field in (0, 1):
        imm_width = 8 if opcode == 0xF6 else (16 if width == 16 else 32)
        imm = _imm_at(raw, after, imm_width // 8)
        ops = (rm, Imm(imm, imm_width))
    return DecodedOperands(name, ops)


def _parse_modrm(
    raw: bytes, i: int, rex: int, rex_present: bool,
    op_width: int, addr_width: int,
) -> tuple[Operand, Reg, int]:
    """Parse ModRM(+SIB+disp); return (rm_operand, reg_operand,
    next_offset)."""
    if i >= len(raw):
        raise OperandError("truncated ModRM")
    modrm = raw[i]
    i += 1
    mod = modrm >> 6
    reg = ((modrm >> 3) & 7) | ((rex & 4) << 1)
    rm = modrm & 7
    reg_operand = Reg(reg, op_width, rex_present)

    if mod == 3:
        return (Reg(rm | ((rex & 1) << 3), op_width, rex_present),
                reg_operand, i)

    base: int | None = rm | ((rex & 1) << 3)
    index: int | None = None
    scale = 1
    rip_relative = False
    if rm == 4:  # SIB
        if i >= len(raw):
            raise OperandError("truncated SIB")
        sib = raw[i]
        i += 1
        scale = 1 << (sib >> 6)
        idx = ((sib >> 3) & 7) | ((rex & 2) << 2)
        if idx != 4:
            index = idx
        base = (sib & 7) | ((rex & 1) << 3)
        if (sib & 7) == 5 and mod == 0:
            base = None  # disp32 only

    disp = 0
    if mod == 1:
        if i + 1 > len(raw):
            raise OperandError("truncated disp8")
        disp = int.from_bytes(raw[i : i + 1], "little", signed=True)
        i += 1
    elif mod == 2 or (mod == 0 and (rm == 5 or base is None)):
        if i + 4 > len(raw):
            raise OperandError("truncated disp32")
        disp = int.from_bytes(raw[i : i + 4], "little", signed=True)
        i += 4
        if mod == 0 and rm == 5:
            base = None
            rip_relative = addr_width == 64
    return (Mem(base=base, index=index, scale=scale, disp=disp,
                rip_relative=rip_relative, addr_width=addr_width),
            reg_operand, i)
