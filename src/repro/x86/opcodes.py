"""Opcode attribute tables for the x86/x86-64 length decoder.

Each opcode maps to a small integer *spec* combining flag bits with an
immediate-kind code. The tables cover the full one-byte map and the
0F / 0F 38 / 0F 3A maps — enough to decode every instruction emitted by
GCC and Clang for C/C++ code, which is what linear-sweep disassembly of
compiler-generated binaries requires (paper §IV-B).

Spec layout::

    bit 0      MODRM       — a ModRM byte (and possibly SIB/disp) follows
    bit 1      INV64       — undefined in 64-bit mode
    bit 2      INV32       — undefined in 32-bit mode
    bit 3      INVALID     — undefined in both modes
    bits 4-7   immediate kind (IMM_*)
    bit 8      INTERESTING — the decoder's classifier can act on this
               opcode; everything else short-circuits to OTHER

Besides the opcode maps, this module precomputes the 256-entry prefix
dispatch tables (:data:`PREFIX_KIND` / :data:`PREFIX_KIND_64`) so the
decoder's prefix scanner is a single table lookup per byte — REX
detection in 64-bit mode included — instead of a lookup plus range
checks.
"""

from __future__ import annotations

MODRM = 1
INV64 = 2
INV32 = 4
INVALID = 8
INTERESTING = 1 << 8

IMM_NONE = 0
IMM_IB = 1       # 1-byte immediate
IMM_IW = 2       # 2-byte immediate
IMM_IZ = 3       # 2 or 4 bytes, by operand size
IMM_IV = 4       # 2, 4, or 8 bytes, by operand size (mov r64, imm64)
IMM_REL8 = 5     # 1-byte relative branch displacement
IMM_RELZ = 6     # 2- or 4-byte relative branch displacement
IMM_AP = 7       # far pointer: 16:16 or 16:32
IMM_MOFFS = 8    # address-size-wide memory offset (mov AL, moffs)
IMM_ENTER = 9    # imm16 + imm8 (ENTER)
IMM_GRP3 = 10    # immediate only when ModRM.reg is 0 or 1 (TEST in F6/F7)

IMM_SHIFT = 4


def spec(flags: int = 0, imm: int = IMM_NONE) -> int:
    """Pack flags and an immediate kind into one spec value."""
    return flags | (imm << IMM_SHIFT)


def spec_imm(value: int) -> int:
    """Extract the immediate kind from a spec."""
    return (value >> IMM_SHIFT) & 0xF


_PREFIX_BYTES = frozenset(
    {0x26, 0x2E, 0x36, 0x3E, 0x64, 0x65, 0x66, 0x67, 0xF0, 0xF2, 0xF3}
)


def is_legacy_prefix(byte: int) -> bool:
    """Whether a byte is a legacy (non-REX) instruction prefix."""
    return byte in _PREFIX_BYTES


# Prefix kinds dispatched by the decoder's single-pass scanner.
PK_NONE = 0
PK_OPSIZE = 1    # 0x66
PK_ADDRSIZE = 2  # 0x67
PK_REP = 3       # 0xF3
PK_REPNE = 4     # 0xF2
PK_NOTRACK = 5   # 0x3E (DS segment; CET NOTRACK on indirect branches)
PK_OTHER = 6     # remaining segment overrides and LOCK
PK_REX = 7       # 0x40-0x4F, 64-bit mode only


def _build_prefix_kinds(*, with_rex: bool) -> list[int]:
    """Byte -> prefix kind, one 256-entry table per mode."""
    t = [PK_NONE] * 256
    t[0x66] = PK_OPSIZE
    t[0x67] = PK_ADDRSIZE
    t[0xF3] = PK_REP
    t[0xF2] = PK_REPNE
    t[0x3E] = PK_NOTRACK
    for b in (0x26, 0x2E, 0x36, 0x64, 0x65, 0xF0):
        t[b] = PK_OTHER
    if with_rex:
        for b in range(0x40, 0x50):
            t[b] = PK_REX
    return t


#: Prefix dispatch for 32-bit mode (0x40-0x4F are INC/DEC opcodes).
PREFIX_KIND: list[int] = _build_prefix_kinds(with_rex=False)
#: Prefix dispatch for 64-bit mode (0x40-0x4F are REX prefixes).
PREFIX_KIND_64: list[int] = _build_prefix_kinds(with_rex=True)


def _build_one_byte() -> list[int]:
    t = [spec(INVALID)] * 256

    # 0x00-0x3F: the eight ALU rows (ADD/OR/ADC/SBB/AND/SUB/XOR/CMP).
    for base in range(0x00, 0x40, 0x08):
        for off in range(4):
            t[base + off] = spec(MODRM)
        t[base + 4] = spec(imm=IMM_IB)
        t[base + 5] = spec(imm=IMM_IZ)
        # base+6 / base+7: push/pop segment registers (invalid in 64-bit),
        # except the escape byte and the segment prefixes handled below.
        t[base + 6] = spec(INV64)
        t[base + 7] = spec(INV64)
    t[0x0F] = spec(INVALID)  # two-byte escape; dispatched by the decoder
    for b in (0x26, 0x2E, 0x36, 0x3E):
        t[b] = spec(INVALID)  # segment prefixes; consumed by the prefix loop
    for b in (0x27, 0x2F, 0x37, 0x3F):
        t[b] = spec(INV64)  # DAA/DAS/AAA/AAS

    # 0x40-0x5F: INC/DEC (REX in 64-bit mode) and PUSH/POP.
    for b in range(0x40, 0x60):
        t[b] = spec()

    t[0x60] = spec(INV64)                 # PUSHA
    t[0x61] = spec(INV64)                 # POPA
    t[0x62] = spec(MODRM | INV64)         # BOUND (EVEX handled in decoder)
    t[0x63] = spec(MODRM)                 # ARPL / MOVSXD
    for b in (0x64, 0x65, 0x66, 0x67):
        t[b] = spec(INVALID)              # prefixes
    t[0x68] = spec(imm=IMM_IZ)            # PUSH imm
    t[0x69] = spec(MODRM, IMM_IZ)         # IMUL r, r/m, imm
    t[0x6A] = spec(imm=IMM_IB)            # PUSH imm8
    t[0x6B] = spec(MODRM, IMM_IB)         # IMUL r, r/m, imm8
    for b in range(0x6C, 0x70):
        t[b] = spec()                     # INS/OUTS

    for b in range(0x70, 0x80):
        t[b] = spec(imm=IMM_REL8)         # Jcc rel8

    t[0x80] = spec(MODRM, IMM_IB)
    t[0x81] = spec(MODRM, IMM_IZ)
    t[0x82] = spec(MODRM | INV64, IMM_IB)
    t[0x83] = spec(MODRM, IMM_IB)
    for b in range(0x84, 0x90):
        t[b] = spec(MODRM)                # TEST/XCHG/MOV/LEA/POP

    for b in range(0x90, 0x9A):
        t[b] = spec()                     # XCHG/NOP/CBW/CWD
    t[0x9A] = spec(INV64, IMM_AP)         # CALLF ptr16:32
    for b in range(0x9B, 0xA0):
        t[b] = spec()                     # WAIT/PUSHF/POPF/SAHF/LAHF

    for b in range(0xA0, 0xA4):
        t[b] = spec(imm=IMM_MOFFS)        # MOV AL/eAX <-> moffs
    for b in range(0xA4, 0xA8):
        t[b] = spec()                     # MOVS/CMPS
    t[0xA8] = spec(imm=IMM_IB)            # TEST AL, imm8
    t[0xA9] = spec(imm=IMM_IZ)            # TEST eAX, imm
    for b in range(0xAA, 0xB0):
        t[b] = spec()                     # STOS/LODS/SCAS

    for b in range(0xB0, 0xB8):
        t[b] = spec(imm=IMM_IB)           # MOV r8, imm8
    for b in range(0xB8, 0xC0):
        t[b] = spec(imm=IMM_IV)           # MOV r, imm (imm64 with REX.W)

    t[0xC0] = spec(MODRM, IMM_IB)         # shift group, imm8
    t[0xC1] = spec(MODRM, IMM_IB)
    t[0xC2] = spec(imm=IMM_IW)            # RET imm16
    t[0xC3] = spec()                      # RET
    t[0xC4] = spec(MODRM | INV64)         # LES (VEX handled in decoder)
    t[0xC5] = spec(MODRM | INV64)         # LDS (VEX handled in decoder)
    t[0xC6] = spec(MODRM, IMM_IB)         # MOV r/m8, imm8
    t[0xC7] = spec(MODRM, IMM_IZ)         # MOV r/m, imm
    t[0xC8] = spec(imm=IMM_ENTER)         # ENTER imm16, imm8
    t[0xC9] = spec()                      # LEAVE
    t[0xCA] = spec(imm=IMM_IW)            # RETF imm16
    t[0xCB] = spec()                      # RETF
    t[0xCC] = spec()                      # INT3
    t[0xCD] = spec(imm=IMM_IB)            # INT imm8
    t[0xCE] = spec(INV64)                 # INTO
    t[0xCF] = spec()                      # IRET

    for b in range(0xD0, 0xD4):
        t[b] = spec(MODRM)                # shift group by 1/CL
    t[0xD4] = spec(INV64, IMM_IB)         # AAM
    t[0xD5] = spec(INV64, IMM_IB)         # AAD
    t[0xD6] = spec(INV64)                 # SALC
    t[0xD7] = spec()                      # XLAT
    for b in range(0xD8, 0xE0):
        t[b] = spec(MODRM)                # x87 escape rows

    for b in range(0xE0, 0xE4):
        t[b] = spec(imm=IMM_REL8)         # LOOPcc / JCXZ
    for b in (0xE4, 0xE5, 0xE6, 0xE7):
        t[b] = spec(imm=IMM_IB)           # IN/OUT imm8
    t[0xE8] = spec(imm=IMM_RELZ)          # CALL rel
    t[0xE9] = spec(imm=IMM_RELZ)          # JMP rel
    t[0xEA] = spec(INV64, IMM_AP)         # JMPF ptr16:32
    t[0xEB] = spec(imm=IMM_REL8)          # JMP rel8
    for b in range(0xEC, 0xF0):
        t[b] = spec()                     # IN/OUT dx

    t[0xF0] = spec(INVALID)               # LOCK prefix
    t[0xF1] = spec()                      # INT1
    t[0xF2] = spec(INVALID)               # REPNE prefix
    t[0xF3] = spec(INVALID)               # REP prefix
    t[0xF4] = spec()                      # HLT
    t[0xF5] = spec()                      # CMC
    t[0xF6] = spec(MODRM, IMM_GRP3)       # TEST/NOT/NEG/... r/m8
    t[0xF7] = spec(MODRM, IMM_GRP3)       # TEST/NOT/NEG/... r/m
    for b in range(0xF8, 0xFE):
        t[b] = spec()                     # CLC..STD
    t[0xFE] = spec(MODRM)                 # INC/DEC r/m8
    t[0xFF] = spec(MODRM)                 # group 5: INC/DEC/CALL/JMP/PUSH
    return t


def _build_two_byte() -> list[int]:
    t = [spec(INVALID)] * 256

    t[0x00] = spec(MODRM)                 # group 6
    t[0x01] = spec(MODRM)                 # group 7
    t[0x02] = spec(MODRM)                 # LAR
    t[0x03] = spec(MODRM)                 # LSL
    for b in (0x05, 0x06, 0x07, 0x08, 0x09, 0x0B, 0x0E):
        t[b] = spec()                     # SYSCALL/CLTS/.../UD2/FEMMS
    t[0x0D] = spec(MODRM)                 # PREFETCH (3DNow hints)
    t[0x0F] = spec(MODRM, IMM_IB)         # 3DNow (suffix opcode byte)
    for b in range(0x10, 0x18):
        t[b] = spec(MODRM)                # SSE moves
    for b in range(0x18, 0x20):
        t[b] = spec(MODRM)                # hint NOPs (incl. ENDBR encoding)
    for b in range(0x20, 0x24):
        t[b] = spec(MODRM)                # MOV to/from control/debug regs
    for b in range(0x28, 0x30):
        t[b] = spec(MODRM)                # SSE moves / converts
    for b in range(0x30, 0x38):
        t[b] = spec()                     # WRMSR/RDTSC/.../GETSEC
    # 0x38 / 0x3A are the three-byte escapes, dispatched by the decoder.
    for b in range(0x40, 0x50):
        t[b] = spec(MODRM)                # CMOVcc
    for b in range(0x50, 0x80):
        t[b] = spec(MODRM)                # SSE / MMX block
    for b in (0x70, 0x71, 0x72, 0x73):
        t[b] = spec(MODRM, IMM_IB)        # PSHUF / shift groups
    t[0x77] = spec()                      # EMMS
    for b in range(0x80, 0x90):
        t[b] = spec(imm=IMM_RELZ)         # Jcc rel32
    for b in range(0x90, 0xA0):
        t[b] = spec(MODRM)                # SETcc
    for b in (0xA0, 0xA1, 0xA2):
        t[b] = spec()                     # PUSH/POP FS, CPUID
    t[0xA3] = spec(MODRM)                 # BT
    t[0xA4] = spec(MODRM, IMM_IB)         # SHLD imm8
    t[0xA5] = spec(MODRM)                 # SHLD CL
    for b in (0xA8, 0xA9, 0xAA):
        t[b] = spec()                     # PUSH/POP GS, RSM
    t[0xAB] = spec(MODRM)                 # BTS
    t[0xAC] = spec(MODRM, IMM_IB)         # SHRD imm8
    t[0xAD] = spec(MODRM)                 # SHRD CL
    t[0xAE] = spec(MODRM)                 # group 15 (fences, [LD|ST]MXCSR)
    t[0xAF] = spec(MODRM)                 # IMUL
    for b in range(0xB0, 0xB8):
        t[b] = spec(MODRM)                # CMPXCHG/.../MOVZX
    t[0xB8] = spec(MODRM)                 # POPCNT (F3) / JMPE
    t[0xB9] = spec(MODRM)                 # UD1
    t[0xBA] = spec(MODRM, IMM_IB)         # BT group, imm8
    for b in range(0xBB, 0xC0):
        t[b] = spec(MODRM)                # BTC/BSF/BSR/MOVSX
    t[0xC0] = spec(MODRM)                 # XADD r/m8
    t[0xC1] = spec(MODRM)                 # XADD r/m
    t[0xC2] = spec(MODRM, IMM_IB)         # CMPPS imm8
    t[0xC3] = spec(MODRM)                 # MOVNTI
    t[0xC4] = spec(MODRM, IMM_IB)         # PINSRW
    t[0xC5] = spec(MODRM, IMM_IB)         # PEXTRW
    t[0xC6] = spec(MODRM, IMM_IB)         # SHUFPS
    t[0xC7] = spec(MODRM)                 # group 9 (CMPXCHG8B/RDRAND)
    for b in range(0xC8, 0xD0):
        t[b] = spec()                     # BSWAP
    for b in range(0xD0, 0x100):
        t[b] = spec(MODRM)                # MMX/SSE arithmetic block
    t[0xFF] = spec(MODRM)                 # UD0
    return t


def _mark_interesting(table: list[int], opcodes) -> None:
    for op in opcodes:
        table[op] |= INTERESTING


ONE_BYTE: list[int] = _build_one_byte()
TWO_BYTE: list[int] = _build_two_byte()

# Opcodes the decoder's _classify can act on (branches, returns,
# end-branch markers, padding, address materialization). The hot path
# returns InsnClass.OTHER without a classification call for the rest.
_mark_interesting(ONE_BYTE, (
    0xE8, 0xE9, 0xEB, 0xC3, 0xC2, 0xCB, 0xCA, 0xFF, 0x90, 0xCC, 0xF4,
    0x8D, 0xC7, 0x68,
    *range(0x70, 0x80),   # Jcc rel8
    *range(0xE0, 0xE4),   # LOOPcc / JCXZ
    *range(0xB8, 0xC0),   # MOV r, imm
))
_mark_interesting(TWO_BYTE, (
    0x1E,                 # endbr (with F3)
    0x1F,                 # nop
    0x0B,                 # ud2
    0xB9,                 # ud1
    0xFF,                 # ud0
    *range(0x80, 0x90),   # Jcc rel32
))

#: 0F 38 map: every defined opcode takes a ModRM byte and no immediate.
THREE_BYTE_38: list[int] = [spec(MODRM)] * 256

#: 0F 3A map: ModRM plus an imm8 selector.
THREE_BYTE_3A: list[int] = [spec(MODRM, IMM_IB)] * 256
