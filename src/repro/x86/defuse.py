"""Register def-use extraction built on the operand model.

Provides the register-level read/write sets that calling-convention
analyses (FETCH-style, §V-D) consume — computed from structured
operands instead of byte heuristics. Instructions outside the modeled
integer core conservatively report empty sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.x86.operands import (
    Imm,
    Mem,
    OperandError,
    Reg,
    analyze_operands,
)

#: Mnemonics whose first operand is written (destination).
_WRITES_FIRST = frozenset({
    "mov", "movsxd", "movzx", "movsx", "lea", "add", "or", "adc", "sbb",
    "and", "sub", "xor", "imul", "pop", "inc", "dec", "not", "neg",
    "rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar", "set",
    "cmov", "bsf", "bsr", "xchg",
})

#: Mnemonics whose first operand is also read (read-modify-write).
_READS_FIRST = frozenset({
    "add", "or", "adc", "sbb", "and", "sub", "xor", "imul", "inc",
    "dec", "not", "neg", "rol", "ror", "rcl", "rcr", "shl", "shr",
    "sal", "sar", "xchg",
})

#: Compare/test: everything is read, nothing written.
_READ_ONLY = frozenset({"cmp", "test", "bt", "push"})


@dataclass(frozen=True)
class DefUse:
    """Register numbers read and written by one instruction."""

    reads: frozenset[int]
    writes: frozenset[int]


EMPTY = DefUse(frozenset(), frozenset())


@lru_cache(maxsize=65536)
def def_use(raw: bytes, bits: int) -> DefUse:
    """Extract (reads, writes) register sets from instruction bytes.

    ``lea`` reads only the address components; memory operands read
    their base and index registers regardless of position.

    Memoized on the raw encoding: a corpus re-encodes the same few
    thousand instruction byte patterns endlessly, so the
    calling-convention scans that hammer this function mostly hit the
    cache instead of re-running the operand model.
    """
    try:
        decoded = analyze_operands(raw, bits)
    except OperandError:
        return EMPTY
    reads: set[int] = set()
    writes: set[int] = set()
    name = decoded.mnemonic
    for position, operand in enumerate(decoded.operands):
        if isinstance(operand, Imm):
            continue
        if isinstance(operand, Mem):
            if operand.base is not None:
                reads.add(operand.base)
            if operand.index is not None:
                reads.add(operand.index)
            continue
        assert isinstance(operand, Reg)
        if position == 0 and name not in _READ_ONLY:
            if name in _WRITES_FIRST:
                writes.add(operand.num)
            if name in _READS_FIRST or name not in _WRITES_FIRST:
                reads.add(operand.num)
        else:
            reads.add(operand.num)
    # lea's "memory" operand computes an address; the destination is
    # written but memory is not dereferenced — reads above already only
    # include the address registers, which is the right answer.
    if name == "push":
        writes.add(4)   # rsp
        reads.add(4)
    elif name == "pop":
        writes.add(4)
        reads.add(4)
    return DefUse(frozenset(reads), frozenset(writes))


#: System V AMD64 integer argument registers.
SYSV_ARG_REGS = (7, 6, 2, 1, 8, 9)  # rdi rsi rdx rcx r8 r9


def args_read_before_write(
    insn_bytes: list[bytes], bits: int
) -> frozenset[int]:
    """Which SysV argument registers a straight-line block consumes.

    Walks the instruction byte sequences in order, tracking which
    argument registers are read before any write — the callee-side half
    of a calling-convention interface analysis.
    """
    written: set[int] = set()
    consumed: set[int] = set()
    arg_set = set(SYSV_ARG_REGS)
    for raw in insn_bytes:
        du = def_use(raw, bits)
        for reg in du.reads:
            if reg in arg_set and reg not in written:
                consumed.add(reg)
        written |= du.writes
    return frozenset(consumed)
