"""Linear-sweep disassembly (paper §IV-B).

Disassembles a code region from its start address to its end. On a
decode error the sweep advances the cursor by a single byte and resumes,
exactly as the paper specifies — linear sweep is reliable on
compiler-generated x86 code because GCC and Clang do not embed data in
``.text``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro import obs
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import Insn


def linear_sweep(data: bytes, base_addr: int, bits: int) -> Iterator[Insn]:
    """Yield instructions across ``data`` starting at ``base_addr``.

    Decode failures advance by one byte and continue (paper §IV-B); the
    bad byte is simply not yielded. Decode/error totals are reported to
    the observability counters once, when the sweep is exhausted —
    nothing is added to the per-instruction loop.
    """
    offset = 0
    count = 0
    errors = 0
    n = len(data)
    while offset < n:
        try:
            insn = decode(data, offset, base_addr + offset, bits)
        except DecodeError:
            offset += 1
            errors += 1
            continue
        yield insn
        count += 1
        offset += insn.length
    obs.add("sweep.insns", count)
    obs.add("sweep.decode_errors", errors)


def sweep_section(section, bits: int) -> list[Insn]:
    """Linear-sweep one parsed ELF section object."""
    with obs.span("sweep", bytes=len(section.data)):
        return list(linear_sweep(section.data, section.sh_addr, bits))
