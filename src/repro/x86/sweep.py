"""Linear-sweep disassembly (paper §IV-B).

Disassembles a code region from its start address to its end. On a
decode error the sweep advances the cursor by a single byte and resumes,
exactly as the paper specifies — linear sweep is reliable on
compiler-generated x86 code because GCC and Clang do not embed data in
``.text``.

When the vectorized decode pass is available the sweep walks the
shared per-buffer :class:`~repro.x86.superset.DecodeIndex` instead of
re-decoding: the batched pass has already classified every offset, and
any other consumer of the same buffer (superset sweep, detectors)
reuses the identical index.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro import obs
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import Insn


def linear_sweep(data: bytes, base_addr: int, bits: int) -> Iterator[Insn]:
    """Yield instructions across ``data`` starting at ``base_addr``.

    Decode failures advance by one byte and continue (paper §IV-B); the
    bad byte is simply not yielded. Decode/error totals are reported to
    the observability counters once, when the sweep is exhausted —
    nothing is added to the per-instruction loop.
    """
    if vector.available():
        yield from _indexed_sweep(data, base_addr, bits)
        return
    offset = 0
    count = 0
    errors = 0
    n = len(data)
    while offset < n:
        try:
            insn = decode(data, offset, base_addr + offset, bits)
        except DecodeError:
            offset += 1
            errors += 1
            continue
        yield insn
        count += 1
        offset += insn.length
    obs.add("sweep.insns", count)
    obs.add("sweep.decode_errors", errors)


def _indexed_sweep(data: bytes, base_addr: int, bits: int) -> Iterator[Insn]:
    """Linear sweep over the shared decode index (identical outputs)."""
    from repro.x86.superset import get_index

    index = get_index(data, bits, base_addr)
    lengths = index.lengths
    offset = 0
    count = 0
    errors = 0
    n = len(data)
    while offset < n:
        length = lengths[offset]
        if length == 0:
            offset += 1
            errors += 1
            continue
        yield index.insn_at(offset)
        count += 1
        offset += length
    obs.add("sweep.insns", count)
    obs.add("sweep.decode_errors", errors)


def sweep_section(section, bits: int) -> list[Insn]:
    """Linear-sweep one parsed ELF section object."""
    with obs.span("sweep", bytes=len(section.data)):
        return list(linear_sweep(section.data, section.sh_addr, bits))
