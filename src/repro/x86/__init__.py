"""x86 / x86-64 decoding substrate.

Public entry points:

- :func:`~repro.x86.decoder.decode` — decode one instruction.
- :func:`~repro.x86.sweep.linear_sweep` — linear-sweep a code buffer.
- :class:`~repro.x86.insn.Insn` / :class:`~repro.x86.insn.InsnClass` —
  the instruction model.
"""

from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import Insn, InsnClass, TERMINATOR_CLASSES
from repro.x86.sweep import linear_sweep, sweep_section

__all__ = [
    "DecodeError",
    "Insn",
    "InsnClass",
    "TERMINATOR_CLASSES",
    "decode",
    "linear_sweep",
    "sweep_section",
]
