"""Readable text formatting for decoded instructions.

Produces objdump-flavored Intel-syntax listings for the instruction
subset compilers emit. Full x86 operand fidelity is not the goal — the
formatter renders exact text for the control-flow and data-movement
instructions function identification cares about, and a best-effort
``mnemonic`` + raw bytes for the rest, so listings stay honest without
a thousand-entry mnemonic table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import Insn, InsnClass

_REGS64 = ("rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
           "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
_REGS32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

#: Mnemonics for common operandless one-byte opcodes.
_ONE_BYTE_NAMES = {
    0x98: "cdqe", 0x99: "cdq", 0xC9: "leave", 0xF5: "cmc",
    0xFC: "cld", 0xFD: "std",
}

_ALU_NAMES = {0: "add", 1: "or", 2: "adc", 3: "sbb", 4: "and",
              5: "sub", 6: "xor", 7: "cmp"}

_CC_NAMES = {0x0: "o", 0x1: "no", 0x2: "b", 0x3: "ae", 0x4: "e",
             0x5: "ne", 0x6: "be", 0x7: "a", 0x8: "s", 0x9: "ns",
             0xA: "p", 0xB: "np", 0xC: "l", 0xD: "ge", 0xE: "le",
             0xF: "g"}


@dataclass(frozen=True)
class FormattedInsn:
    """One listing line."""

    addr: int
    raw: bytes
    text: str

    def render(self) -> str:
        hexdump = self.raw.hex(" ")
        return f"{self.addr:8x}:\t{hexdump:<30s}\t{self.text}"


def format_insn(insn: Insn, raw: bytes, bits: int,
                symbols: dict[int, str] | None = None) -> FormattedInsn:
    """Format one decoded instruction."""
    symbols = symbols or {}
    text = _text_for(insn, raw, bits, symbols)
    return FormattedInsn(addr=insn.addr, raw=raw, text=text)


def _sym(addr: int, symbols: dict[int, str]) -> str:
    name = symbols.get(addr)
    return f"{addr:#x} <{name}>" if name else f"{addr:#x}"


def _text_for(insn: Insn, raw: bytes, bits: int,
              symbols: dict[int, str]) -> str:
    klass = insn.klass
    if klass == InsnClass.ENDBR64:
        return "endbr64"
    if klass == InsnClass.ENDBR32:
        return "endbr32"
    if klass == InsnClass.CALL_DIRECT:
        return f"call   {_sym(insn.target, symbols)}"
    if klass == InsnClass.JMP_DIRECT:
        return f"jmp    {_sym(insn.target, symbols)}"
    if klass == InsnClass.JCC:
        cc = _jcc_condition(raw)
        return f"j{cc:<6s}{_sym(insn.target, symbols)}"
    if klass == InsnClass.CALL_INDIRECT:
        return f"call   *{_indirect_operand(raw, bits)}"
    if klass == InsnClass.JMP_INDIRECT:
        prefix = "notrack " if insn.notrack else ""
        return f"{prefix}jmp    *{_indirect_operand(raw, bits)}"
    if klass == InsnClass.RET:
        return "ret" if raw[-1] in (0xC3, 0xCB) else \
            f"ret    {int.from_bytes(raw[-2:], 'little'):#x}"
    if klass == InsnClass.NOP:
        return "nop" if len(raw) == 1 else f"nop{len(raw)}"
    if klass == InsnClass.INT3:
        return "int3"
    if klass == InsnClass.HLT:
        return "hlt"
    if klass == InsnClass.UD:
        return "ud2"
    if klass == InsnClass.LEA:
        if insn.target is not None:
            reg = _lea_dest(raw, bits)
            base = "rip+" if bits == 64 else ""
            return f"lea    {reg}, [{base}{_sym(insn.target, symbols)}]"
        return "lea    " + _generic_operands(raw, bits)
    if klass == InsnClass.MOV_IMM:
        return f"mov    {_mov_dest(raw, bits)}, {insn.target:#x}"
    if klass == InsnClass.PUSH_IMM:
        return f"push   {insn.target:#x}"
    return _generic_text(raw, bits)


def _jcc_condition(raw: bytes) -> str:
    for i, byte in enumerate(raw):
        if 0x70 <= byte <= 0x7F:
            return _CC_NAMES[byte & 0xF]
        if byte == 0x0F and i + 1 < len(raw) \
                and 0x80 <= raw[i + 1] <= 0x8F:
            return _CC_NAMES[raw[i + 1] & 0xF]
        if 0xE0 <= byte <= 0xE3:
            return ("loopne", "loope", "loop", "cxz")[byte - 0xE0]
    return "cc"


def _skip_prefixes(raw: bytes, bits: int) -> tuple[int, int]:
    """Return (opcode_index, rex)."""
    rex = 0
    i = 0
    while i < len(raw):
        b = raw[i]
        if b in (0x66, 0x67, 0xF0, 0xF2, 0xF3, 0x26, 0x2E, 0x36, 0x3E,
                 0x64, 0x65):
            i += 1
        elif bits == 64 and 0x40 <= b <= 0x4F:
            rex = b
            i += 1
        else:
            break
    return i, rex


def _reg_name(num: int, bits: int) -> str:
    if bits == 64:
        return _REGS64[num & 0xF]
    return _REGS32[num & 0x7]


def _indirect_operand(raw: bytes, bits: int) -> str:
    i, rex = _skip_prefixes(raw, bits)
    if i + 1 >= len(raw):
        return "?"
    modrm = raw[i + 1]
    mod = modrm >> 6
    rm = (modrm & 7) | ((rex & 1) << 3)
    if mod == 3:
        return f"%{_reg_name(rm, bits)}"
    if mod == 0 and (modrm & 7) == 5:
        return "[rip+disp]" if bits == 64 else "[disp32]"
    return f"[{_reg_name(rm, bits)}+...]"


def _lea_dest(raw: bytes, bits: int) -> str:
    i, rex = _skip_prefixes(raw, bits)
    modrm = raw[i + 1]
    reg = ((modrm >> 3) & 7) | ((rex & 4) << 1)
    return _reg_name(reg, bits)


def _mov_dest(raw: bytes, bits: int) -> str:
    i, rex = _skip_prefixes(raw, bits)
    op = raw[i]
    if 0xB8 <= op <= 0xBF:
        return _reg_name((op & 7) | ((rex & 1) << 3), bits)
    if op == 0xC7 and i + 1 < len(raw):
        modrm = raw[i + 1]
        if modrm >> 6 == 3:
            return _reg_name((modrm & 7) | ((rex & 1) << 3), bits)
        return "[mem]"
    return "?"


def _generic_operands(raw: bytes, bits: int) -> str:
    return f"({raw.hex()})"


def _generic_text(raw: bytes, bits: int) -> str:
    """Best-effort text for unclassified instructions.

    Uses the structured operand model where the instruction is covered;
    falls back to a simple mnemonic or the raw bytes otherwise.
    """
    from repro.x86.operands import OperandError, analyze_operands

    try:
        return analyze_operands(raw, bits).render()
    except OperandError:
        pass
    i, _rex = _skip_prefixes(raw, bits)
    if i < len(raw) and raw[i] in _ONE_BYTE_NAMES:
        return _ONE_BYTE_NAMES[raw[i]]
    return f"(insn) {raw.hex()}"


def format_listing(
    data: bytes, base_addr: int, bits: int,
    symbols: dict[int, str] | None = None,
) -> list[FormattedInsn]:
    """Format a whole code region (linear sweep)."""
    out: list[FormattedInsn] = []
    offset = 0
    n = len(data)
    symbols = symbols or {}
    while offset < n:
        addr = base_addr + offset
        try:
            insn = decode(data, offset, addr, bits)
        except DecodeError:
            out.append(FormattedInsn(
                addr=addr, raw=data[offset : offset + 1],
                text=f".byte {data[offset]:#04x}"))
            offset += 1
            continue
        raw = data[offset : offset + insn.length]
        out.append(format_insn(insn, raw, bits, symbols))
        offset += insn.length
    return out
