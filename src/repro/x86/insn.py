"""Instruction model for the x86/x86-64 decoder.

The decoder classifies each instruction into the small set of semantic
classes that function identification cares about (end-branch markers,
direct/indirect branches, returns, ...) while decoding exact lengths for
*all* instructions so that linear sweep stays synchronized.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InsnClass(enum.IntEnum):
    """Semantic classes relevant to function identification."""

    OTHER = 0
    ENDBR64 = 1
    ENDBR32 = 2
    CALL_DIRECT = 3        # E8 rel
    CALL_INDIRECT = 4      # FF /2, FF /3
    JMP_DIRECT = 5         # E9 / EB rel
    JMP_INDIRECT = 6       # FF /4, FF /5
    JCC = 7                # 70-7F, 0F 80-8F, E0-E3
    RET = 8                # C3, C2, CB, CA
    NOP = 9                # 90, 0F 1F, 66 90 ...
    INT3 = 10              # CC
    HLT = 11               # F4
    UD = 12                # 0F 0B (ud2), 0F B9 (ud1)
    LEA = 13               # 8D (records RIP-relative target)
    MOV_IMM = 14           # B8-BF / C7 with pointer-size immediate
    PUSH_IMM = 15          # 68 imm32


#: Classes that terminate straight-line control flow.
TERMINATOR_CLASSES = frozenset(
    {
        InsnClass.JMP_DIRECT,
        InsnClass.JMP_INDIRECT,
        InsnClass.RET,
        InsnClass.HLT,
        InsnClass.UD,
    }
)

_MNEMONICS = {
    InsnClass.OTHER: "insn",
    InsnClass.ENDBR64: "endbr64",
    InsnClass.ENDBR32: "endbr32",
    InsnClass.CALL_DIRECT: "call",
    InsnClass.CALL_INDIRECT: "call*",
    InsnClass.JMP_DIRECT: "jmp",
    InsnClass.JMP_INDIRECT: "jmp*",
    InsnClass.JCC: "jcc",
    InsnClass.RET: "ret",
    InsnClass.NOP: "nop",
    InsnClass.INT3: "int3",
    InsnClass.HLT: "hlt",
    InsnClass.UD: "ud2",
    InsnClass.LEA: "lea",
    InsnClass.MOV_IMM: "mov",
    InsnClass.PUSH_IMM: "push",
}


@dataclass(slots=True)
class Insn:
    """One decoded instruction.

    Slotted and non-frozen: the decoder constructs one per instruction
    on the linear-sweep hot path, so construction cost matters. Treat
    instances as immutable by convention.

    Attributes
    ----------
    addr:
        Virtual address of the first byte.
    length:
        Encoded length in bytes.
    klass:
        Semantic classification.
    target:
        Resolved branch target for direct branches, the referenced
        address for RIP-relative ``lea``, or the immediate for
        pointer-width ``mov``/``push`` immediates. ``None`` otherwise.
    notrack:
        Whether the instruction carries the CET NOTRACK (0x3E) prefix —
        meaningful on indirect jumps (jump tables; paper Fig. 1b).
    """

    addr: int
    length: int
    klass: InsnClass
    target: int | None = None
    notrack: bool = False

    @property
    def end(self) -> int:
        """Address one past the last byte."""
        return self.addr + self.length

    @property
    def is_endbr(self) -> bool:
        return self.klass in (InsnClass.ENDBR64, InsnClass.ENDBR32)

    @property
    def is_terminator(self) -> bool:
        """Whether fall-through execution stops after this instruction."""
        return self.klass in TERMINATOR_CLASSES

    def mnemonic(self) -> str:
        """Best-effort mnemonic for diagnostics and examples."""
        m = _MNEMONICS[self.klass]
        if self.notrack and self.klass == InsnClass.JMP_INDIRECT:
            return "notrack jmp*"
        return m

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        tgt = f" -> {self.target:#x}" if self.target is not None else ""
        return f"{self.addr:#x}: {self.mnemonic()}{tgt} ({self.length}B)"
