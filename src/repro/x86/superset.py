"""Superset disassembly (paper §VI future work).

Linear sweep misbehaves when hand-written assembly embeds data inside
``.text``: a decode error advances one byte at a time through the blob,
and mis-decoded garbage can synthesize phantom end-branches or branch
targets. The paper names superset disassembly [7] and probabilistic
disassembly [29] as the fix.

This module decodes at *every* byte offset and computes, right to left,
which offsets start a *viable* instruction chain: one whose fall-through
successors all decode, terminated by an instruction with no fall-through
(ret/jmp/hlt/ud2) or by the end of the region. Data bytes rarely form
viable chains, so a sweep that jumps from the end of one instruction to
the next viable offset skips embedded data instead of grinding through
it byte by byte.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.x86.decoder import DecodeError, decode, decode_raw
from repro.x86.insn import Insn, InsnClass

_TERMINATORS = frozenset(
    int(k) for k in (InsnClass.JMP_DIRECT, InsnClass.JMP_INDIRECT,
                     InsnClass.RET, InsnClass.HLT, InsnClass.UD)
)


def viable_offsets(data: bytes, bits: int) -> list[bool]:
    """For each offset, whether a viable instruction chain starts there.

    Computed in one right-to-left pass: ``viable[i]`` holds when the
    instruction at ``i`` decodes and either ends straight-line control
    flow, or falls through to a viable offset (or exactly to the end of
    the region).
    """
    n = len(data)
    viable = [False] * (n + 1)
    viable[n] = True
    lengths = [0] * n
    klasses = [0] * n
    for i in range(n - 1, -1, -1):
        try:
            length, klass, _target, _notrack = decode_raw(data, i, i, bits)
        except DecodeError:
            continue
        lengths[i] = length
        klasses[i] = klass
        if i + length > n:
            continue
        if klass in _TERMINATORS or viable[i + length]:
            viable[i] = True
    return viable[:n]


def robust_sweep(data: bytes, base_addr: int, bits: int) -> Iterator[Insn]:
    """Linear sweep that recovers through embedded data.

    Identical to plain linear sweep on clean compiler output. On a
    decode failure — or when the cursor lands on a non-viable offset —
    it skips forward to the next viable offset instead of decoding
    garbage byte by byte.
    """
    viable = viable_offsets(data, bits)
    n = len(data)
    offset = 0
    while offset < n:
        if not viable[offset]:
            offset = _next_viable(data, viable, offset + 1, bits)
            if offset >= n:
                return
        try:
            insn = decode(data, offset, base_addr + offset, bits)
        except DecodeError:  # pragma: no cover - viable implies decodable
            offset += 1
            continue
        yield insn
        offset += insn.length


_ENDBR_PATTERNS = (b"\xf3\x0f\x1e\xfa", b"\xf3\x0f\x1e\xfb")
_RESYNC_WINDOW = 16


def _next_viable(data: bytes, viable: list[bool], start: int,
                 bits: int) -> int:
    """Pick the resynchronization point after a non-viable region.

    CET-aware: within a short window past the first viable offset, a
    viable *end-branch* beats an earlier viable offset — data tails
    often merge with the first real instruction, whereas an end-branch
    marker is an intentional, checkable landmark.
    """
    first = -1
    for i in range(start, len(viable)):
        if not viable[i]:
            continue
        if first < 0:
            first = i
        if data[i : i + 4] in _ENDBR_PATTERNS:
            return i
        if i - first >= _RESYNC_WINDOW:
            break
    return first if first >= 0 else len(viable)


def data_regions(data: bytes, bits: int, *, min_size: int = 4) -> list[tuple[int, int]]:
    """Maximal non-viable byte runs — likely embedded data.

    Returns ``(start_offset, length)`` pairs of at least ``min_size``
    bytes where no viable instruction chain begins.
    """
    viable = viable_offsets(data, bits)
    out: list[tuple[int, int]] = []
    run_start: int | None = None
    for i, ok in enumerate(viable):
        if not ok and run_start is None:
            run_start = i
        elif ok and run_start is not None:
            if i - run_start >= min_size:
                out.append((run_start, i - run_start))
            run_start = None
    if run_start is not None and len(viable) - run_start >= min_size:
        out.append((run_start, len(viable) - run_start))
    return out
