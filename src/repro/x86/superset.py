"""Superset disassembly (paper §VI future work).

Linear sweep misbehaves when hand-written assembly embeds data inside
``.text``: a decode error advances one byte at a time through the blob,
and mis-decoded garbage can synthesize phantom end-branches or branch
targets. The paper names superset disassembly [7] and probabilistic
disassembly [29] as the fix.

This module decodes at *every* byte offset and computes, right to left,
which offsets start a *viable* instruction chain: one whose fall-through
successors all decode, terminated by an instruction with no fall-through
(ret/jmp/hlt/ud2) or by the end of the region. Data bytes rarely form
viable chains, so a sweep that jumps from the end of one instruction to
the next viable offset skips embedded data instead of grinding through
it byte by byte.

The decode-at-every-offset pass is materialized as a
:class:`DecodeIndex`. When NumPy is usable (see
:mod:`repro.x86.vector`) the whole pass runs as one batched
table-driven sweep — per-offset lengths and classes in packed
``bytes``, with ``Insn`` objects materialized only on demand — and
viability resolves lazily by pointer doubling the first time something
asks for it. Otherwise a scalar right-to-left pass decodes each offset
exactly once and the viability DP shares every suffix result.
``viable_offsets``, ``robust_sweep`` and ``data_regions`` all draw from
the same index (memoized per buffer), so a pipeline that needs several
of these pays for the decode pass once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Iterator

from repro import obs
from repro.x86 import vector
from repro.x86.decoder import DecodeError, decode_raw
from repro.x86.insn import Insn, InsnClass

_TERMINATORS = frozenset(
    int(k) for k in (InsnClass.JMP_DIRECT, InsnClass.JMP_INDIRECT,
                     InsnClass.RET, InsnClass.HLT, InsnClass.UD)
)


class DecodeIndex:
    """Per-offset decode results for one code buffer.

    ``lengths[i] == 0`` marks a decode failure at offset ``i``; targets
    and NOTRACK flags are stored sparsely. Lengths and classes are
    packed ``bytes`` (both fit one byte per offset). ``viable`` has one
    extra trailing entry for the end-of-region sentinel and is computed
    on first use: the detector paths that only walk instruction chains
    never pay for it.
    """

    __slots__ = ("base_addr", "bits", "lengths", "klasses", "targets",
                 "notracks", "_viable")

    def __init__(
        self,
        base_addr: int,
        bits: int,
        lengths: bytes,
        klasses: bytes,
        targets: dict[int, int] | None = None,
        notracks: set[int] | None = None,
        viable: bytes | None = None,
    ) -> None:
        self.base_addr = base_addr
        self.bits = bits
        self.lengths = lengths
        self.klasses = klasses
        self.targets = targets if targets is not None else {}
        self.notracks = notracks if notracks is not None else set()
        self._viable = viable

    @property
    def viable(self) -> bytes:
        if self._viable is None:
            with obs.span("superset.viability", bytes=len(self.lengths)):
                self._viable = vector.viability(self.lengths, self.klasses)
        return self._viable

    def retained_bytes(self) -> int:
        """Approximate heap footprint of this index, for memo bounding.

        Counts the packed per-offset arrays (``viable`` as if already
        materialized — it usually is by the time eviction matters) plus
        a per-element estimate for the sparse target/NOTRACK containers.
        """
        n = len(self.lengths)
        sparse = 120 * len(self.targets) + 64 * len(self.notracks)
        return 3 * n + 1 + sparse + 256

    def insn_at(self, offset: int) -> Insn | None:
        """Reconstruct the decoded instruction starting at ``offset``."""
        length = self.lengths[offset]
        if length == 0:
            return None
        return Insn(
            addr=self.base_addr + offset,
            length=length,
            klass=InsnClass(self.klasses[offset]),
            target=self.targets.get(offset),
            notrack=offset in self.notracks,
        )


def build_index(data: bytes, bits: int, base_addr: int = 0) -> DecodeIndex:
    """Decode every offset once.

    The vectorized path classifies all offsets in one batched pass and
    defers viability until asked. The scalar path works right to left —
    viability is a pure suffix property: ``viable[i]`` only consults
    ``viable[i + length]``, already final when ``i`` is visited — so
    either way the whole decode-at-every-offset pass is a single linear
    scan instead of one chain walk per offset.
    """
    n = len(data)
    if vector.available():
        with obs.span("superset.index", bytes=n, vectorized=True):
            lengths, klasses, targets, notracks, fallbacks = \
                vector.decode_all(data, bits, base_addr)
            errors = lengths.count(0)
            obs.add("superset.offsets_decoded", n - errors)
            obs.add("superset.decode_errors", errors)
            obs.add("superset.vectorized_bytes", n)
            obs.add("superset.scalar_fallbacks", fallbacks)
        return DecodeIndex(
            base_addr=base_addr, bits=bits, lengths=lengths,
            klasses=klasses, targets=targets, notracks=notracks,
        )
    lengths_b = bytearray(n)
    klasses_b = bytearray(n)
    targets: dict[int, int] = {}
    notracks: set[int] = set()
    viable = bytearray(n + 1)
    viable[n] = 1
    terminators = _TERMINATORS
    errors = 0
    with obs.span("superset.index", bytes=n):
        for i in range(n - 1, -1, -1):
            try:
                length, klass, target, notrack = decode_raw(
                    data, i, base_addr + i, bits
                )
            except DecodeError:
                errors += 1
                continue
            lengths_b[i] = length
            klasses_b[i] = klass
            if target is not None:
                targets[i] = target
            if notrack:
                notracks.add(i)
            if klass in terminators or viable[i + length]:
                viable[i] = 1
        obs.add("superset.offsets_decoded", n - errors)
        obs.add("superset.decode_errors", errors)
    return DecodeIndex(
        base_addr=base_addr, bits=bits, lengths=bytes(lengths_b),
        klasses=bytes(klasses_b), targets=targets, notracks=notracks,
        viable=bytes(viable),
    )


#: Most-recently-built indexes, keyed by ``(sha256(data), bits, base)``.
#: Keying by digest instead of the raw buffer means the memo never pins
#: binary images in memory — a long-lived server that analyzes many
#: distinct binaries would otherwise retain up to four whole images for
#: the process lifetime. The digest costs ~1 GB/s, negligible next to
#: the decode pass it guards. Bounded by the *retained bytes* of the
#: indexes themselves (an index is ~3x its buffer), not by entry count,
#: so a handful of tiny sections and one huge one are both handled.
_INDEX_MEMO: OrderedDict[tuple[str, int, int], DecodeIndex] = OrderedDict()
_INDEX_MEMO_MAX_BYTES = 96 * 1024 * 1024
_memo_retained = 0


def _index_key(data: bytes, bits: int, base_addr: int) -> tuple[str, int, int]:
    return (hashlib.sha256(data).hexdigest(), bits, base_addr)


def get_index(data: bytes, bits: int, base_addr: int = 0) -> DecodeIndex:
    """Memoized :func:`build_index`."""
    global _memo_retained
    key = _index_key(data, bits, base_addr)
    index = _INDEX_MEMO.get(key)
    if index is not None:
        _INDEX_MEMO.move_to_end(key)
        obs.add("superset.index_memo_hits", 1)
        return index
    obs.add("superset.index_memo_misses", 1)
    index = build_index(data, bits, base_addr)
    _INDEX_MEMO[key] = index
    _memo_retained += index.retained_bytes()
    while _memo_retained > _INDEX_MEMO_MAX_BYTES and len(_INDEX_MEMO) > 1:
        _, evicted = _INDEX_MEMO.popitem(last=False)
        _memo_retained -= evicted.retained_bytes()
        obs.add("superset.index_memo_evictions", 1)
    return index


def index_memo_stats() -> tuple[int, int]:
    """``(entries, retained_bytes)`` currently held by the memo."""
    return len(_INDEX_MEMO), _memo_retained


def clear_index_memo() -> None:
    """Drop all memoized indexes (used by tests and cache eviction)."""
    global _memo_retained
    _INDEX_MEMO.clear()
    _memo_retained = 0


def viable_offsets(data: bytes, bits: int) -> list[bool]:
    """For each offset, whether a viable instruction chain starts there.

    Computed in one right-to-left pass: ``viable[i]`` holds when the
    instruction at ``i`` decodes and either ends straight-line control
    flow, or falls through to a viable offset (or exactly to the end of
    the region).
    """
    return [bool(v) for v in get_index(data, bits).viable[: len(data)]]


def robust_sweep(data: bytes, base_addr: int, bits: int) -> Iterator[Insn]:
    """Linear sweep that recovers through embedded data.

    Identical to plain linear sweep on clean compiler output. On a
    decode failure — or when the cursor lands on a non-viable offset —
    it skips forward to the next viable offset instead of decoding
    garbage byte by byte. Instructions come straight from the decode
    index: nothing on this path is decoded a second time.
    """
    index = get_index(data, bits, base_addr)
    viable = index.viable
    n = len(data)
    offset = 0
    while offset < n:
        if not viable[offset]:
            offset = _next_viable(data, viable, offset + 1, bits)
            if offset >= n:
                return
        insn = index.insn_at(offset)
        if insn is None:  # pragma: no cover - viable implies decodable
            offset += 1
            continue
        yield insn
        offset += insn.length


_ENDBR_PATTERNS = (b"\xf3\x0f\x1e\xfa", b"\xf3\x0f\x1e\xfb")
_RESYNC_WINDOW = 16


def _next_viable(data: bytes, viable: bytes, start: int,
                 bits: int) -> int:
    """Pick the resynchronization point after a non-viable region.

    CET-aware: within a short window past the first viable offset, a
    viable *end-branch* beats an earlier viable offset — data tails
    often merge with the first real instruction, whereas an end-branch
    marker is an intentional, checkable landmark.
    """
    first = -1
    for i in range(start, len(data)):
        if not viable[i]:
            continue
        if first < 0:
            first = i
        if data[i : i + 4] in _ENDBR_PATTERNS:
            return i
        if i - first >= _RESYNC_WINDOW:
            break
    return first if first >= 0 else len(data)


def data_regions(data: bytes, bits: int, *, min_size: int = 4) -> list[tuple[int, int]]:
    """Maximal non-viable byte runs — likely embedded data.

    Returns ``(start_offset, length)`` pairs of at least ``min_size``
    bytes where no viable instruction chain begins.
    """
    viable = viable_offsets(data, bits)
    out: list[tuple[int, int]] = []
    run_start: int | None = None
    for i, ok in enumerate(viable):
        if not ok and run_start is None:
            run_start = i
        elif ok and run_start is not None:
            if i - run_start >= min_size:
                out.append((run_start, i - run_start))
            run_start = None
    if run_start is not None and len(viable) - run_start >= min_size:
        out.append((run_start, len(viable) - run_start))
    return out
