"""FunSeeker reproduction (DSN 2022).

A from-scratch Python implementation of CET-aware function
identification, including the ELF/x86 analysis substrates, a synthetic
CET toolchain for corpus generation, baseline detectors, and the
evaluation harness that regenerates the paper's tables and figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
