"""Binary fault-injection harness.

Deterministic, seeded mutators over synthesized CET ELFs plus a driver
that asserts the robustness invariant — *no uncaught exception, no
hang, diagnostics populated* — across the mutation matrix. See
``docs/robustness.md``.
"""

from repro.fuzz.harness import FuzzCaseFailure, FuzzReport, run_fuzz
from repro.fuzz.mutators import MUTATOR_FAMILIES, Mutant, mutate

__all__ = [
    "FuzzCaseFailure",
    "FuzzReport",
    "MUTATOR_FAMILIES",
    "Mutant",
    "mutate",
    "run_fuzz",
]
