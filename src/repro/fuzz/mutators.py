"""Deterministic seeded mutators over ELF images.

Each mutator family is a pure function ``(data, rng) -> Mutant``: given
a valid base image and a seeded :class:`random.Random`, it returns one
corrupted copy. Determinism is the point — a failing mutant is fully
reproduced by ``(base image, family, seed)``, so every harness failure
is a regression test waiting to be checked in.

The families target the structures the parsers actually walk:

- ``bitflip``    — random single/multi bit flips anywhere in the image.
- ``truncate``   — cut the image at (or one byte around) structure
  boundaries: header end, program/section header table entries,
  section payload edges.
- ``header``     — boundary values into ELF header fields
  (``e_shoff``, ``e_shstrndx``, ``e_shentsize``, ``e_machine``, ...).
- ``shdr``       — corrupt one field of one section header.
- ``ehframe``    — scramble bytes inside ``.eh_frame`` (length framing,
  CIE/FDE bodies, pointer encodings).
- ``lsda``       — scramble bytes inside ``.gcc_except_table``.

The section locator below is intentionally independent of
``repro.elf.parser`` — the mutators must keep working on images the
real parser is too hardened to misread.
"""

from __future__ import annotations

import random
import struct
from collections.abc import Callable
from dataclasses import dataclass


@dataclass(frozen=True)
class Mutant:
    """One corrupted image plus enough metadata to reproduce it."""

    family: str
    label: str
    data: bytes


# ---------------------------------------------------------------------------
# Minimal raw ELF view (valid base images only)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _HeaderView:
    """Raw header fields of a *valid* base image."""

    is64: bool
    e_phoff: int
    e_phentsize: int
    e_phnum: int
    e_shoff: int
    e_shentsize: int
    e_shnum: int
    e_shstrndx: int

    # (offset, struct format) of the corruptible ELF header fields.
    @property
    def fields(self) -> dict[str, tuple[int, str]]:
        if self.is64:
            return {
                "e_type": (16, "<H"), "e_machine": (18, "<H"),
                "e_entry": (24, "<Q"), "e_phoff": (32, "<Q"),
                "e_shoff": (40, "<Q"), "e_phentsize": (54, "<H"),
                "e_phnum": (56, "<H"), "e_shentsize": (58, "<H"),
                "e_shnum": (60, "<H"), "e_shstrndx": (62, "<H"),
            }
        return {
            "e_type": (16, "<H"), "e_machine": (18, "<H"),
            "e_entry": (24, "<I"), "e_phoff": (28, "<I"),
            "e_shoff": (32, "<I"), "e_phentsize": (42, "<H"),
            "e_phnum": (44, "<H"), "e_shentsize": (46, "<H"),
            "e_shnum": (48, "<H"), "e_shstrndx": (50, "<H"),
        }


def _header_view(data: bytes) -> _HeaderView:
    is64 = data[4] == 2
    if is64:
        e_phoff, e_shoff = struct.unpack_from("<QQ", data, 32)[0], \
            struct.unpack_from("<Q", data, 40)[0]
        phentsize, phnum, shentsize, shnum, shstrndx = struct.unpack_from(
            "<5H", data, 54)
    else:
        e_phoff = struct.unpack_from("<I", data, 28)[0]
        e_shoff = struct.unpack_from("<I", data, 32)[0]
        phentsize, phnum, shentsize, shnum, shstrndx = struct.unpack_from(
            "<5H", data, 42)
    return _HeaderView(
        is64=is64, e_phoff=e_phoff, e_phentsize=phentsize, e_phnum=phnum,
        e_shoff=e_shoff, e_shentsize=shentsize, e_shnum=shnum,
        e_shstrndx=shstrndx,
    )


def _section_ranges(data: bytes) -> dict[str, tuple[int, int]]:
    """Map section name -> (file offset, size) from a valid image."""
    hdr = _header_view(data)
    shdrs = []
    for i in range(hdr.e_shnum):
        base = hdr.e_shoff + i * hdr.e_shentsize
        if hdr.is64:
            name, _typ, _flags, _addr, offset, size = struct.unpack_from(
                "<IIQQQQ", data, base)
        else:
            name, _typ, _flags, _addr, offset, size = struct.unpack_from(
                "<IIIIII", data, base)
        shdrs.append((name, offset, size))
    if not 0 < hdr.e_shstrndx < len(shdrs):
        return {}
    str_off, str_size = shdrs[hdr.e_shstrndx][1:]
    strtab = data[str_off:str_off + str_size]
    out = {}
    for name_off, offset, size in shdrs:
        end = strtab.find(b"\0", name_off)
        if end < 0:
            continue
        name = strtab[name_off:end].decode("latin-1")
        out[name] = (offset, size)
    return out


def _boundaries(data: bytes) -> list[int]:
    """File offsets of structure edges — the truncation targets."""
    hdr = _header_view(data)
    edges = {0, 16, 52 if not hdr.is64 else 64, len(data)}
    for i in range(hdr.e_phnum + 1):
        edges.add(hdr.e_phoff + i * hdr.e_phentsize)
    for i in range(hdr.e_shnum + 1):
        edges.add(hdr.e_shoff + i * hdr.e_shentsize)
    for offset, size in _section_ranges(data).values():
        edges.add(offset)
        edges.add(offset + size)
    return sorted(e for e in edges if 0 <= e <= len(data))


def _put(data: bytearray, offset: int, fmt: str, value: int) -> None:
    mask = (1 << (8 * struct.calcsize(fmt))) - 1
    struct.pack_into(fmt, data, offset, value & mask)


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def mutate_bitflip(data: bytes, rng: random.Random) -> Mutant:
    """Flip 1..8 random bits anywhere in the image."""
    out = bytearray(data)
    n = rng.randint(1, 8)
    spots = []
    for _ in range(n):
        pos = rng.randrange(len(out))
        bit = rng.randrange(8)
        out[pos] ^= 1 << bit
        spots.append(f"{pos:#x}.{bit}")
    return Mutant("bitflip", f"flip {','.join(spots)}", bytes(out))


def mutate_truncate(data: bytes, rng: random.Random) -> Mutant:
    """Cut the image at (or one byte around) a structure boundary."""
    edges = _boundaries(data)
    cut = rng.choice(edges) + rng.choice((-1, 0, 1))
    cut = max(0, min(len(data) - 1, cut))
    return Mutant("truncate", f"cut at {cut:#x}/{len(data):#x}",
                  data[:cut])


#: Boundary values a header/section field gets corrupted to. ``None``
#: slots are filled per-image (file length, random word).
_BOUNDARY_VALUES = (0, 1, 0xFF, 0xFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF)


def _boundary_value(data: bytes, rng: random.Random) -> int:
    pool = _BOUNDARY_VALUES + (
        len(data), len(data) - 1, len(data) + 1,
        rng.getrandbits(32),
    )
    return rng.choice(pool)


def mutate_header(data: bytes, rng: random.Random) -> Mutant:
    """Write a boundary value into one ELF header field."""
    hdr = _header_view(data)
    field = rng.choice(sorted(hdr.fields))
    offset, fmt = hdr.fields[field]
    value = _boundary_value(data, rng)
    out = bytearray(data)
    _put(out, offset, fmt, value)
    return Mutant("header", f"{field} <- {value:#x}", bytes(out))


def mutate_shdr(data: bytes, rng: random.Random) -> Mutant:
    """Corrupt one field of one section header."""
    hdr = _header_view(data)
    if hdr.e_shnum == 0:
        return mutate_bitflip(data, rng)
    idx = rng.randrange(hdr.e_shnum)
    if hdr.is64:
        fields = {"sh_name": (0, "<I"), "sh_type": (4, "<I"),
                  "sh_offset": (24, "<Q"), "sh_size": (32, "<Q"),
                  "sh_link": (40, "<I"), "sh_entsize": (56, "<Q")}
    else:
        fields = {"sh_name": (0, "<I"), "sh_type": (4, "<I"),
                  "sh_offset": (16, "<I"), "sh_size": (20, "<I"),
                  "sh_link": (24, "<I"), "sh_entsize": (36, "<I")}
    field = rng.choice(sorted(fields))
    rel, fmt = fields[field]
    offset = hdr.e_shoff + idx * hdr.e_shentsize + rel
    if offset + struct.calcsize(fmt) > len(data):
        return mutate_bitflip(data, rng)
    value = _boundary_value(data, rng)
    out = bytearray(data)
    _put(out, offset, fmt, value)
    return Mutant("shdr", f"shdr[{idx}].{field} <- {value:#x}",
                  bytes(out))


def _scramble_section(
    data: bytes, rng: random.Random, family: str, section: str
) -> Mutant:
    """Scramble bytes inside one named section.

    Three sub-modes: random byte writes (decoder confusion), zeroed
    32-bit words (kills length framing), and 0xFF runs (maximal
    lengths/offsets). Falls back to bit flips when the base image
    lacks the section.
    """
    ranges = _section_ranges(data)
    if section not in ranges or ranges[section][1] == 0:
        return mutate_bitflip(data, rng)
    offset, size = ranges[section]
    out = bytearray(data)
    mode = rng.choice(("bytes", "zero", "ones"))
    if mode == "bytes":
        n = rng.randint(1, min(16, size))
        for _ in range(n):
            out[offset + rng.randrange(size)] = rng.randrange(256)
        label = f"{section}: {n} random bytes"
    elif mode == "zero":
        pos = offset + rng.randrange(max(1, size - 3))
        out[pos:pos + 4] = b"\0\0\0\0"
        label = f"{section}: zero word at {pos - offset:#x}"
    else:
        start = rng.randrange(size)
        run = rng.randint(1, min(32, size - start))
        out[offset + start:offset + start + run] = b"\xff" * run
        label = f"{section}: 0xff run [{start:#x}:{start + run:#x}]"
    if bytes(out) == data:
        # The scramble landed on bytes that already held the written
        # value; force a real change so no budget is spent on no-ops.
        pos = offset + rng.randrange(size)
        out[pos] ^= 1 << rng.randrange(8)
        label += " (+forced flip)"
    return Mutant(family, label, bytes(out))


def mutate_ehframe(data: bytes, rng: random.Random) -> Mutant:
    """Scramble ``.eh_frame`` — CIE/FDE framing and bodies."""
    return _scramble_section(data, rng, "ehframe", ".eh_frame")


def mutate_lsda(data: bytes, rng: random.Random) -> Mutant:
    """Scramble ``.gcc_except_table`` — LSDA call-site tables."""
    return _scramble_section(data, rng, "lsda", ".gcc_except_table")


#: Family name -> mutator, in matrix order.
MUTATOR_FAMILIES: dict[str, Callable[[bytes, random.Random], Mutant]] = {
    "bitflip": mutate_bitflip,
    "truncate": mutate_truncate,
    "header": mutate_header,
    "shdr": mutate_shdr,
    "ehframe": mutate_ehframe,
    "lsda": mutate_lsda,
}


def mutate(family: str, data: bytes, rng: random.Random) -> Mutant:
    """Apply one named mutator family."""
    return MUTATOR_FAMILIES[family](data, rng)
