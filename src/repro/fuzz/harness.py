"""Fault-injection driver: assert the robustness invariant.

For every mutant of a synthesized CET binary, the full analysis
pipeline (``ELFFile`` parse + :class:`FunSeeker` identification) must
satisfy three properties:

1. **No uncaught exception** — the strict pipeline may reject the
   input, but only with a documented error
   (:class:`~repro.errors.ReproError` subclasses, or ``ValueError``
   for unsupported machines).
2. **No hang** — both pipelines finish within a per-case wall-clock
   deadline.
3. **Diagnostics populated** — the degraded pipeline
   (``strict=False``) never raises at all, and whenever the strict
   pipeline rejected the input it records at least one diagnostic
   explaining what it skipped.

Everything is deterministic: ``run_fuzz(budget, seed=S)`` visits the
same mutants in the same order on every run, so a failure report is a
reproduction recipe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.errors import CellTimeoutError, FuzzInvariantError, ReproError
from repro.eval.isolation import deadline
from repro.fuzz.mutators import MUTATOR_FAMILIES, Mutant
from repro.synth.generate import generate_program
from repro.synth.linker import link_program
from repro.synth.profiles import CompilerProfile

#: Errors the *strict* pipeline is allowed to raise on malformed input.
DOCUMENTED_ERRORS = (ReproError, ValueError)

#: Default wall-clock budget per pipeline run, seconds.
DEFAULT_CASE_TIMEOUT = 5.0


@dataclass(frozen=True)
class FuzzCaseFailure:
    """One invariant violation, with its reproduction recipe."""

    family: str
    label: str
    base: str
    index: int           # case index within the run
    kind: str            # "uncaught" | "hang" | "degraded-raise" |
                         # "no-diagnostics"
    stage: str           # "strict" | "degraded"
    error_type: str
    message: str

    def render(self) -> str:
        return (f"[{self.kind}] case {self.index} {self.family} "
                f"({self.label}) on {self.base}, {self.stage} stage: "
                f"{self.error_type}: {self.message}")


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    budget: int
    seed: int
    per_family: dict[str, int] = field(default_factory=dict)
    strict_rejected: int = 0     # strict raised a documented error
    diagnosed: int = 0           # degraded runs with >= 1 diagnostic
    failures: list[FuzzCaseFailure] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.per_family.values())

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        fams = ", ".join(f"{k}={v}" for k, v in self.per_family.items())
        lines = [
            f"fuzz: {self.total} mutants (seed {self.seed}) — {fams}",
            f"  strict rejected {self.strict_rejected} "
            f"(documented errors), degraded diagnosed {self.diagnosed}",
        ]
        if self.ok:
            lines.append("  invariant holds: no uncaught exception, "
                         "no hang, diagnostics populated")
        else:
            lines.append(f"  INVARIANT VIOLATIONS: {len(self.failures)}")
            lines.extend("  " + f.render() for f in self.failures)
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise FuzzInvariantError(
                f"{len(self.failures)} invariant violation(s); first: "
                f"{self.failures[0].render()}"
            )


def default_base_images() -> dict[str, bytes]:
    """Small synthesized CET binaries the mutators start from.

    Both carry ``.eh_frame`` and (via ``cxx=True``)
    ``.gcc_except_table``, so every mutator family has a real target.
    Kept small — the harness runs the full pipeline twice per mutant.
    """
    out = {}
    for name, profile, n in (
        ("gcc-x64-pie", CompilerProfile("gcc", "O2", 64, True), 14),
        ("clang-x86", CompilerProfile("clang", "O1", 32, False), 10),
    ):
        spec = generate_program(f"fuzzbase-{name}", n, profile,
                                seed=0xCE7, cxx=True)
        out[name] = link_program(spec, profile).data
    return out


def _case_rng(seed: int, family: str, index: int) -> random.Random:
    # String seeding is stable across processes and interpreter runs
    # (unlike hashing a tuple, which PYTHONHASHSEED would randomize).
    return random.Random(f"{seed}:{family}:{index}")


def check_mutant(
    mutant: Mutant,
    *,
    base: str,
    index: int,
    case_timeout: float | None = DEFAULT_CASE_TIMEOUT,
    report: FuzzReport,
) -> None:
    """Run both pipelines on one mutant, recording violations."""

    def _fail(kind: str, stage: str, error: BaseException | None) -> None:
        report.failures.append(FuzzCaseFailure(
            family=mutant.family, label=mutant.label, base=base,
            index=index, kind=kind, stage=stage,
            error_type=type(error).__name__ if error else "",
            message=str(error) if error else "",
        ))

    strict_rejected = False
    try:
        with deadline(case_timeout):
            elf = ELFFile(mutant.data)
            FunSeeker(elf).identify()
    except CellTimeoutError as exc:
        _fail("hang", "strict", exc)
    except DOCUMENTED_ERRORS:
        strict_rejected = True
        report.strict_rejected += 1
    except Exception as exc:
        _fail("uncaught", "strict", exc)

    try:
        with deadline(case_timeout):
            elf = ELFFile(mutant.data, strict=False)
            FunSeeker(elf, strict=False).identify()
    except CellTimeoutError as exc:
        _fail("hang", "degraded", exc)
    except Exception as exc:
        _fail("degraded-raise", "degraded", exc)
    else:
        if len(elf.diagnostics):
            report.diagnosed += 1
        elif strict_rejected:
            # Strict saw something worth rejecting; degraded mode must
            # say what it glossed over.
            _fail("no-diagnostics", "degraded", None)


def run_fuzz(
    budget: int = 500,
    *,
    seed: int = 2022,
    families: list[str] | None = None,
    case_timeout: float | None = DEFAULT_CASE_TIMEOUT,
    base_images: dict[str, bytes] | None = None,
) -> FuzzReport:
    """Run ``budget`` mutants round-robin across families and bases.

    ``families`` defaults to all of :data:`MUTATOR_FAMILIES`; unknown
    names raise ``ValueError``. The run is fully determined by
    ``(budget, seed, families, base_images)``.
    """
    names = list(families) if families else list(MUTATOR_FAMILIES)
    unknown = [n for n in names if n not in MUTATOR_FAMILIES]
    if unknown:
        raise ValueError(f"unknown mutator families: {unknown}")
    bases = base_images if base_images is not None else default_base_images()
    base_items = sorted(bases.items())

    report = FuzzReport(budget=budget, seed=seed,
                        per_family=dict.fromkeys(names, 0))
    for i in range(budget):
        family = names[i % len(names)]
        base_name, base_data = base_items[(i // len(names))
                                          % len(base_items)]
        rng = _case_rng(seed, family, i)
        mutant = MUTATOR_FAMILIES[family](base_data, rng)
        report.per_family[family] += 1
        check_mutant(mutant, base=base_name, index=i,
                     case_timeout=case_timeout, report=report)
    return report
