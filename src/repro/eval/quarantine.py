"""Quarantine store: crashing/hanging inputs captured for offline replay.

When an evaluation cell fails — a parse rejection, a detector crash, a
blown watchdog, a lost worker — the input binary that caused it is the
single most valuable debugging artifact, and at corpus scale it is also
the easiest thing to lose. The quarantine store captures it at failure
time: the stripped image plus the structured failure metadata, keyed by
content hash so the same pathological binary failing many cells is
stored once.

Layout::

    QUARANTINE_DIR/
      <sha256-prefix>/
        input.bin          # the stripped image handed to the cell
        meta.json          # {"sha256", "size", "failures": [...]}

``funseeker quarantine list`` renders the store;
``funseeker quarantine replay`` re-runs each captured failure's
(parse, detect) cells against the stored bytes under a fresh watchdog —
the offline reproduction loop for anything the sweep flagged.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.eval.isolation import FailureRecord, run_cell

META_NAME = "meta.json"
INPUT_NAME = "input.bin"

#: Directory-name length (hex chars of the content sha256).
_NAME_LEN = 16


@dataclass
class QuarantineEntry:
    """One captured input plus every failure observed against it."""

    sha256: str
    path: Path
    size: int
    failures: list[dict]

    @property
    def short(self) -> str:
        return self.sha256[:_NAME_LEN]

    def read_input(self) -> bytes:
        return (self.path / INPUT_NAME).read_bytes()


class QuarantineStore:
    """Content-addressed capture of failing evaluation inputs."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def capture(self, stripped: bytes, failure: FailureRecord) -> Path | None:
        """Store (or extend) the quarantine entry for one failed cell.

        Best-effort: quarantine is forensics, never a point of failure
        — any filesystem error degrades to "not captured".
        """
        sha = hashlib.sha256(stripped).hexdigest()
        entry_dir = self.root / sha[:_NAME_LEN]
        meta_path = entry_dir / META_NAME
        try:
            entry_dir.mkdir(parents=True, exist_ok=True)
            input_path = entry_dir / INPUT_NAME
            if not input_path.exists():
                input_path.write_bytes(stripped)
            meta = self._read_meta(meta_path) or {
                "sha256": sha,
                "size": len(stripped),
                "failures": [],
            }
            record = _failure_meta(failure)
            if record not in meta["failures"]:
                meta["failures"].append(record)
            tmp = meta_path.with_name(META_NAME + ".tmp")
            tmp.write_text(json.dumps(meta, indent=1, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, meta_path)
        except OSError:
            return None
        obs.add("quarantine.captured", 1)
        return entry_dir

    def capture_job(
        self,
        data: bytes,
        *,
        job_id: str,
        tenant: str,
        tools: tuple[str, ...] | list[str],
        error: BaseException | str,
        phase: str = "worker",
        attempts: int = 1,
    ) -> Path | None:
        """Capture a poisoned *service job*'s bytes.

        Service jobs carry no corpus provenance, so the corpus-shaped
        :class:`FailureRecord` fields are repurposed by convention:
        ``suite="service"``, ``program=<job id>``, ``compiler=<tenant>``
        and ``tool`` is the comma-joined requested tool set. Replay
        (``funseeker quarantine replay``) still works — a joined tool
        name matches no detector, so the replay degrades to a
        parse-only reproduction, which is exactly what a worker-killing
        input needs.
        """
        failure = FailureRecord(
            suite="service",
            program=job_id,
            compiler=tenant,
            bits=0,
            pie=False,
            opt="-",
            tool=",".join(tools),
            phase=phase,
            error_type=(type(error).__name__
                        if isinstance(error, BaseException)
                        else str(error)),
            message=str(error),
            attempts=attempts,
        )
        return self.capture(data, failure)

    @staticmethod
    def _read_meta(path: Path) -> dict | None:
        try:
            with open(path, encoding="utf-8") as f:
                meta = json.load(f)
        except (OSError, ValueError):
            return None
        if (not isinstance(meta, dict)
                or not isinstance(meta.get("failures"), list)):
            return None
        return meta

    def entries(self) -> list[QuarantineEntry]:
        if not self.root.is_dir():
            return []
        out = []
        for entry_dir in sorted(self.root.iterdir()):
            if not entry_dir.is_dir():
                continue
            meta = self._read_meta(entry_dir / META_NAME)
            if meta is None or not (entry_dir / INPUT_NAME).is_file():
                continue
            out.append(QuarantineEntry(
                sha256=meta.get("sha256", entry_dir.name),
                path=entry_dir,
                size=meta.get("size", 0),
                failures=meta["failures"],
            ))
        return out


def _failure_meta(failure: FailureRecord) -> dict:
    return {
        "suite": failure.suite,
        "program": failure.program,
        "compiler": failure.compiler,
        "bits": failure.bits,
        "pie": failure.pie,
        "opt": failure.opt,
        "tool": failure.tool,
        "phase": failure.phase,
        "error_type": failure.error_type,
        "message": failure.message,
    }


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """Result of re-running one captured failure's cells."""

    sha256: str
    tool: str
    original_error: str
    reproduced: bool
    error_type: str | None
    message: str
    elapsed_seconds: float


def replay_entry(
    entry: QuarantineEntry, *, timeout: float | None = 30.0
) -> list[ReplayOutcome]:
    """Re-run every captured failure of one entry under a watchdog.

    Each distinct failing tool gets one parse + detect replay against
    the stored bytes. ``reproduced`` means the replay failed again (in
    any phase) — the quarantined input still triggers *a* failure,
    though possibly a different one after a code change.
    """
    from repro.baselines import ALL_DETECTORS
    from repro.elf.parser import ELFFile

    data = entry.read_input()
    outcomes = []
    seen_tools: set[str] = set()
    for meta in entry.failures:
        tool = meta.get("tool", "?")
        if tool in seen_tools:
            continue
        seen_tools.add(tool)

        def _body(tool=tool):
            elf = ELFFile(data)
            if tool in ALL_DETECTORS:
                ALL_DETECTORS[tool]().detect(elf)

        _result, error, _attempts, elapsed = run_cell(_body, timeout=timeout)
        outcomes.append(ReplayOutcome(
            sha256=entry.sha256,
            tool=tool,
            original_error=meta.get("error_type", "?"),
            reproduced=error is not None,
            error_type=type(error).__name__ if error is not None else None,
            message=str(error) if error is not None else "ok",
            elapsed_seconds=elapsed,
        ))
    return outcomes
