"""Library-clean single-image analysis: bytes in, entry report out.

The evaluation runners (:mod:`repro.eval.runner`,
:mod:`repro.eval.parallel`) are corpus-shaped: they want ground truth,
provenance profiles, and a journal. The analysis *service*
(:mod:`repro.service`) wants none of that — it is handed an untrusted
binary image and must produce the per-tool entry sets, with explicit
cache attribution, against a caller-supplied (per-tenant)
:class:`~repro.cache.disk.DiskCache` rather than the process-global
default. :func:`analyze_image` is that callable: no globals mutated, no
ground truth required, safe to run from any executor.

Cache semantics: artifacts live under the same ``tool.<name>`` keys the
evaluation sweeps use, so a cache warmed by ``funseeker evaluate`` (or
by a previous job) serves lookups here and vice versa. A submission
whose requested tools are all cacheable and all present is served
entirely from disk — the binary is never parsed, never decoded
(:func:`warm_lookup`). The no-new-diagnostics store guard from
:mod:`repro.cache.context` applies on the way in.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro import faults, obs
from repro.baselines import ALL_DETECTORS
from repro.cache import serialize as S
from repro.cache.disk import DiskCache, default_cache
from repro.elf.parser import ELFFile
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    run_cell,
    watchdog_armable,
)

ANALYSIS_SCHEMA = "image-analysis/v1"

#: Cache attribution values on :class:`ToolReport`.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_UNCACHEABLE = "uncacheable"
CACHE_DISABLED = "disabled"


@dataclass(frozen=True)
class ToolReport:
    """One detector's outcome on one submitted image."""

    tool: str
    #: Sorted entry addresses, or ``None`` when the tool failed.
    functions: tuple[int, ...] | None
    elapsed_seconds: float = 0.0
    #: Where the answer came from: one of the ``CACHE_*`` constants.
    cache: str = CACHE_MISS
    phase: str | None = None
    error_type: str | None = None
    message: str | None = None
    attempts: int = 1
    #: Whether a requested wall-clock deadline was actually armed for
    #: this tool's cells. ``False`` flags the off-main-thread case
    #: where ``SIGALRM`` cannot fire and the timeout went unenforced.
    enforced: bool = True

    @property
    def ok(self) -> bool:
        return self.functions is not None

    def to_doc(self) -> dict:
        return {
            "tool": self.tool,
            "functions": list(self.functions)
            if self.functions is not None else None,
            "elapsed_seconds": self.elapsed_seconds,
            "cache": self.cache,
            "phase": self.phase,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "enforced": self.enforced,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ToolReport":
        functions = doc.get("functions")
        return cls(
            tool=doc["tool"],
            functions=tuple(functions) if functions is not None else None,
            elapsed_seconds=doc.get("elapsed_seconds", 0.0),
            cache=doc.get("cache", CACHE_MISS),
            phase=doc.get("phase"),
            error_type=doc.get("error_type"),
            message=doc.get("message"),
            attempts=doc.get("attempts", 1),
            enforced=doc.get("enforced", True),
        )


@dataclass
class ImageAnalysis:
    """Everything one submission produced, in journal-ready shape."""

    sha256: str
    size_bytes: int
    tools: dict[str, ToolReport] = field(default_factory=dict)
    diagnostics: list[dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: True when the whole answer came from the disk cache (no parse).
    warm: bool = False

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tools.values())

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.tools.values() if t.cache == CACHE_HIT)

    def to_doc(self) -> dict:
        return {
            "schema": ANALYSIS_SCHEMA,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "tools": {name: t.to_doc()
                      for name, t in sorted(self.tools.items())},
            "diagnostics": self.diagnostics,
            "elapsed_seconds": self.elapsed_seconds,
            "warm": self.warm,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ImageAnalysis":
        return cls(
            sha256=doc["sha256"],
            size_bytes=doc["size_bytes"],
            tools={name: ToolReport.from_doc(t)
                   for name, t in doc.get("tools", {}).items()},
            diagnostics=list(doc.get("diagnostics", [])),
            elapsed_seconds=doc.get("elapsed_seconds", 0.0),
            warm=doc.get("warm", False),
        )


def content_digest(data: bytes) -> str:
    """The submission identity: SHA-256 of the raw image."""
    return hashlib.sha256(data).hexdigest()


def _tool_artifact(tool: str) -> str:
    return f"tool.{tool}"


def _is_cacheable(tool: str) -> bool:
    cls = ALL_DETECTORS[tool]
    return bool(getattr(cls, "cacheable", False))


def warm_lookup(
    sha256: str,
    size_bytes: int,
    tools: list[str] | tuple[str, ...],
    cache: DiskCache | None,
) -> ImageAnalysis | None:
    """Serve a submission entirely from the disk cache, or ``None``.

    Succeeds only when *every* requested tool is cacheable and has a
    valid cached document for this hash — a partial answer would still
    pay the parse, so the caller may as well take the cold path and let
    per-tool hits shorten it.
    """
    if cache is None or not tools:
        return None
    reports: dict[str, ToolReport] = {}
    for name in tools:
        if not _is_cacheable(name):
            return None
        doc = cache.get(sha256, _tool_artifact(name))
        if doc is None:
            return None
        try:
            functions = S.addrs_from_doc(doc)
        except S.SerializationError:
            return None
        reports[name] = ToolReport(
            tool=name,
            functions=tuple(sorted(functions)),
            cache=CACHE_HIT,
        )
    obs.add("analyze.warm_lookups", 1)
    return ImageAnalysis(
        sha256=sha256, size_bytes=size_bytes, tools=reports, warm=True,
    )


def analyze_image(
    data: bytes,
    tools: list[str] | tuple[str, ...] | None = None,
    *,
    cache: DiskCache | None = None,
    use_default_cache: bool = True,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> ImageAnalysis:
    """Run the requested detectors over one binary image.

    Parameters mirror the evaluation cells: each phase (parse, each
    detect) runs under :func:`~repro.eval.isolation.run_cell` with the
    same timeout/retry/taxonomy semantics and the same
    ``cell.execute`` fault point, so the service inherits the entire
    fault-injection and chaos story for free.

    ``cache`` is the caller's :class:`DiskCache` (e.g. a per-tenant
    namespace); when omitted and ``use_default_cache`` is true, the
    process default (``$REPRO_CACHE_DIR``) applies. Failures never
    raise: they land on the per-tool report, mirroring how the corpus
    runners degrade to :class:`FailureRecord`.
    """
    started = time.perf_counter()
    if tools is None:
        tools = list(ALL_DETECTORS)
    unknown = [t for t in tools if t not in ALL_DETECTORS]
    if unknown:
        raise ValueError(
            f"unknown tools {unknown} (known: {sorted(ALL_DETECTORS)})")
    if cache is None and use_default_cache:
        cache = default_cache()
    sha256 = content_digest(data)

    warm = warm_lookup(sha256, len(data), tools, cache)
    if warm is not None:
        warm.elapsed_seconds = time.perf_counter() - started
        return warm

    analysis = ImageAnalysis(sha256=sha256, size_bytes=len(data))
    obs.add("analyze.cold_lookups", 1)
    # Record on every report whether the requested deadline could be
    # armed here: run_cell silently degrades off the main thread, and
    # that fact must survive into the result document.
    enforced = timeout is None or timeout <= 0 or watchdog_armable()
    elf, error, attempts, elapsed = run_cell(
        faults.guarded(faults.SITE_CELL_EXECUTE, lambda: ELFFile(data)),
        timeout=timeout, retries=retries, backoff=backoff,
    )
    if error is not None:
        for name in tools:
            analysis.tools[name] = ToolReport(
                tool=name, functions=None, elapsed_seconds=elapsed,
                phase=PHASE_PARSE, error_type=type(error).__name__,
                message=str(error), attempts=attempts,
                enforced=enforced,
            )
        analysis.elapsed_seconds = time.perf_counter() - started
        return analysis

    for name in tools:
        analysis.tools[name] = _run_tool(
            elf, sha256, name, cache,
            timeout=timeout, retries=retries, backoff=backoff,
            enforced=enforced,
        )
    analysis.diagnostics = elf.diagnostics.to_dicts()
    analysis.elapsed_seconds = time.perf_counter() - started
    return analysis


def _run_tool(
    elf: ELFFile,
    sha256: str,
    name: str,
    cache: DiskCache | None,
    *,
    timeout: float | None,
    retries: int,
    backoff: float,
    enforced: bool = True,
) -> ToolReport:
    cacheable = _is_cacheable(name)
    if cacheable and cache is not None:
        doc = cache.get(sha256, _tool_artifact(name))
        if doc is not None:
            try:
                functions = S.addrs_from_doc(doc)
            except S.SerializationError:
                functions = None
            if functions is not None:
                return ToolReport(
                    tool=name,
                    functions=tuple(sorted(functions)),
                    cache=CACHE_HIT,
                )
    detector = ALL_DETECTORS[name]()
    before = len(elf.diagnostics)
    result, error, attempts, elapsed = run_cell(
        faults.guarded(faults.SITE_CELL_EXECUTE,
                       lambda: detector.detect(elf)),
        timeout=timeout, retries=retries, backoff=backoff,
    )
    if error is not None:
        return ToolReport(
            tool=name, functions=None, elapsed_seconds=elapsed,
            cache=CACHE_MISS if cacheable else CACHE_UNCACHEABLE,
            phase=PHASE_DETECT, error_type=type(error).__name__,
            message=str(error), attempts=attempts, enforced=enforced,
        )
    if not cacheable:
        state = CACHE_UNCACHEABLE
    elif cache is None:
        state = CACHE_DISABLED
    else:
        state = CACHE_MISS
        # Same bit-identity rule as the analysis context: a run that
        # recorded new diagnostics is served but never stored.
        if len(elf.diagnostics) == before:
            cache.put(sha256, _tool_artifact(name),
                      S.addrs_to_doc(result.functions))
    return ToolReport(
        tool=name,
        functions=tuple(sorted(result.functions)),
        elapsed_seconds=result.elapsed_seconds,
        cache=state,
        attempts=attempts,
        enforced=enforced,
    )
