"""Per-tool circuit breaker for evaluation sweeps.

A detector that has started failing *systematically* — a bug tripped by
a whole corpus slice, a dependency gone sideways — burns its full
timeout budget on every remaining binary. At paper scale that turns one
sick tool into hours of wasted wall clock. The breaker watches each
tool's consecutive detect-phase failures and, past a threshold, *opens*:
subsequent cells for that tool are skipped immediately (recorded as
``CircuitOpen`` failure records, so nothing disappears silently and a
later ``--resume`` retries them). After ``cooldown`` skips the breaker
goes *half-open* and lets exactly one probe cell through: success
closes the circuit, failure re-opens it.

Only detect-phase outcomes drive the state machine — a malformed
binary fails its *parse* cell for every tool and says nothing about any
detector's health.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import obs

#: Phase string recorded on breaker-skipped cells.
PHASE_BREAKER = "breaker"

#: ``error_type`` recorded on breaker-skipped cells.
CIRCUIT_OPEN = "CircuitOpen"


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class _ToolCircuit:
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    skips_while_open: int = 0
    probe_in_flight: bool = False


@dataclass
class CircuitBreaker:
    """Consecutive-failure breaker, one independent circuit per tool.

    ``threshold`` consecutive detect failures open a tool's circuit;
    ``cooldown`` skipped cells later it goes half-open and admits one
    probe. State lives in the sweep parent only (the serial loop, or
    the parallel runner's dispatch/absorb path), so no synchronization
    is needed.
    """

    threshold: int = 5
    cooldown: int = 10
    _circuits: dict[str, _ToolCircuit] = field(default_factory=dict)

    def _circuit(self, tool: str) -> _ToolCircuit:
        return self._circuits.setdefault(tool, _ToolCircuit())

    def state(self, tool: str) -> BreakerState:
        return self._circuit(tool).state

    def allow(self, tool: str) -> bool:
        """Whether the next cell for ``tool`` may run (consuming call).

        An ``OPEN`` answer counts toward the cooldown; the first call
        past the cooldown flips to ``HALF_OPEN`` and admits the probe.
        """
        circuit = self._circuit(tool)
        if circuit.state is BreakerState.CLOSED:
            return True
        if circuit.state is BreakerState.HALF_OPEN:
            if circuit.probe_in_flight:
                obs.add("breaker.skipped", 1)
                return False
            circuit.probe_in_flight = True
            obs.add("breaker.probes", 1)
            return True
        circuit.skips_while_open += 1
        if circuit.skips_while_open >= self.cooldown:
            circuit.state = BreakerState.HALF_OPEN
            circuit.skips_while_open = 0
            circuit.probe_in_flight = True
            obs.add("breaker.half_open", 1)
            obs.add("breaker.probes", 1)
            return True
        obs.add("breaker.skipped", 1)
        return False

    def record_success(self, tool: str) -> None:
        circuit = self._circuit(tool)
        if circuit.state is not BreakerState.CLOSED:
            obs.add("breaker.closed", 1)
        circuit.state = BreakerState.CLOSED
        circuit.consecutive_failures = 0
        circuit.skips_while_open = 0
        circuit.probe_in_flight = False

    def record_failure(self, tool: str) -> None:
        circuit = self._circuit(tool)
        if circuit.state is BreakerState.HALF_OPEN:
            # Failed probe: straight back to open.
            circuit.state = BreakerState.OPEN
            circuit.skips_while_open = 0
            circuit.probe_in_flight = False
            obs.add("breaker.reopened", 1)
            return
        circuit.consecutive_failures += 1
        if (circuit.state is BreakerState.CLOSED
                and circuit.consecutive_failures >= self.threshold):
            circuit.state = BreakerState.OPEN
            circuit.skips_while_open = 0
            obs.add("breaker.opened", 1)

    def open_tools(self) -> list[str]:
        return sorted(t for t, c in self._circuits.items()
                      if c.state is not BreakerState.CLOSED)
