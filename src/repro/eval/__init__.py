"""Evaluation harness: metrics, experiment runner, table renderers."""

from repro.eval.breaker import BreakerState, CircuitBreaker
from repro.eval.export import report_to_csv, report_to_json
from repro.eval.isolation import FailureRecord
from repro.eval.journal import (
    JournalState,
    RunJournal,
    build_manifest,
    check_manifest,
    merge_resumed_report,
    read_journal,
)
from repro.eval.metrics import (
    Confusion,
    false_negatives,
    false_positives,
    score,
    score_boundaries,
)
from repro.eval.parallel import run_evaluation_parallel
from repro.eval.quarantine import QuarantineStore, replay_entry
from repro.eval.runner import (
    ErrorBreakdown,
    EvalReport,
    RunRecord,
    analyze_errors,
    run_evaluation,
)
from repro.eval.tables import (
    error_breakdown,
    failure_summary,
    figure3,
    table1,
    table2,
    table3,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Confusion",
    "ErrorBreakdown",
    "EvalReport",
    "FailureRecord",
    "JournalState",
    "QuarantineStore",
    "RunJournal",
    "RunRecord",
    "analyze_errors",
    "build_manifest",
    "check_manifest",
    "error_breakdown",
    "failure_summary",
    "false_negatives",
    "false_positives",
    "figure3",
    "merge_resumed_report",
    "read_journal",
    "replay_entry",
    "report_to_csv",
    "report_to_json",
    "run_evaluation",
    "run_evaluation_parallel",
    "score",
    "score_boundaries",
    "table1",
    "table2",
    "table3",
]
