"""Evaluation harness: metrics, experiment runner, table renderers."""

from repro.eval.export import report_to_csv, report_to_json
from repro.eval.isolation import FailureRecord
from repro.eval.metrics import (
    Confusion,
    false_negatives,
    false_positives,
    score,
    score_boundaries,
)
from repro.eval.parallel import run_evaluation_parallel
from repro.eval.runner import (
    ErrorBreakdown,
    EvalReport,
    RunRecord,
    analyze_errors,
    run_evaluation,
)
from repro.eval.tables import (
    error_breakdown,
    failure_summary,
    figure3,
    table1,
    table2,
    table3,
)

__all__ = [
    "Confusion",
    "ErrorBreakdown",
    "EvalReport",
    "FailureRecord",
    "RunRecord",
    "analyze_errors",
    "error_breakdown",
    "failure_summary",
    "false_negatives",
    "false_positives",
    "figure3",
    "report_to_csv",
    "report_to_json",
    "run_evaluation",
    "run_evaluation_parallel",
    "score",
    "score_boundaries",
    "table1",
    "table2",
    "table3",
]
