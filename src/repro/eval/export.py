"""Export evaluation reports as JSON or CSV.

The table renderers target eyeballs; downstream plotting and regression
tracking want raw records. Both exporters emit one row per
(binary, tool) with the full provenance and confusion counts.
"""

from __future__ import annotations

import csv
import io
import json

from repro.eval.runner import EvalReport

_FIELDS = ("suite", "program", "compiler", "bits", "pie", "opt", "tool",
           "tp", "fp", "fn", "precision", "recall", "f1",
           "elapsed_seconds")


def _rows(report: EvalReport, *, with_phases: bool = False) -> list[dict]:
    rows = []
    for rec in report.records:
        conf = rec.confusion
        row = {
            "suite": rec.suite,
            "program": rec.program,
            "compiler": rec.compiler,
            "bits": rec.bits,
            "pie": rec.pie,
            "opt": rec.opt,
            "tool": rec.tool,
            "tp": conf.tp,
            "fp": conf.fp,
            "fn": conf.fn,
            "precision": round(conf.precision, 6),
            "recall": round(conf.recall, 6),
            "f1": round(conf.f1, 6),
            "elapsed_seconds": round(rec.elapsed_seconds, 6),
        }
        if with_phases and rec.phase_seconds:
            row["phases"] = {k: round(v, 6)
                             for k, v in sorted(rec.phase_seconds.items())}
        rows.append(row)
    return rows


def _phase_totals(report: EvalReport) -> dict[str, float]:
    """Per-phase span totals summed over the report's records.

    Empty when the sweep ran without an observability recorder (the
    default) — every record's ``phase_seconds`` is ``None`` then.
    """
    totals: dict[str, float] = {}
    for rec in report.records:
        if not rec.phase_seconds:
            continue
        for name, seconds in rec.phase_seconds.items():
            totals[name] = totals.get(name, 0.0) + seconds
    return {k: round(v, 6) for k, v in sorted(totals.items())}


def _failure_rows(report: EvalReport) -> list[dict]:
    return [
        {
            "suite": f.suite,
            "program": f.program,
            "compiler": f.compiler,
            "bits": f.bits,
            "pie": f.pie,
            "opt": f.opt,
            "tool": f.tool,
            "phase": f.phase,
            "error_type": f.error_type,
            "message": f.message,
            "attempts": f.attempts,
            "elapsed_seconds": round(f.elapsed_seconds, 6),
        }
        for f in report.failures
    ]


def report_to_json(report: EvalReport) -> str:
    """Serialize a report with per-tool pooled summaries attached."""
    summary = {}
    for tool in report.tools():
        sub = report.filtered(tool=tool)
        pooled = sub.pooled()
        summary[tool] = {
            "precision": round(pooled.precision, 6),
            "recall": round(pooled.recall, 6),
            "f1": round(pooled.f1, 6),
            "mean_seconds": round(sub.mean_time(), 6),
            "binaries": len(sub.records),
            "failures": len(sub.failures),
        }
        phases = _phase_totals(sub)
        if phases:
            summary[tool]["phase_seconds"] = phases
    doc = {
        "summary": summary,
        "success_rate": round(report.success_rate(), 6),
        "records": _rows(report, with_phases=True),
        "failures": _failure_rows(report),
    }
    phases = _phase_totals(report)
    if phases:
        doc["phase_seconds"] = phases
    return json.dumps(doc, indent=1)


def report_to_csv(report: EvalReport) -> str:
    """Serialize the per-record rows as CSV."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=_FIELDS)
    writer.writeheader()
    writer.writerows(_rows(report))
    return buf.getvalue()
