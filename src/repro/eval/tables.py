"""Renderers that regenerate the paper's tables and figures.

Each ``table*`` / ``figure*`` function computes the experiment over a
corpus and returns (rendered_text, raw_results). The rendered text
shows measured values next to the paper's, so divergence is visible at
a glance. The raw results feed the shape assertions in ``benchmarks/``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.endbr_locations import (
    EndbrDistribution,
    EndbrLocation,
    classify_endbr_locations,
)
from repro.analysis.function_props import (
    ALL_REGIONS,
    CALL,
    ENDBR,
    JMP,
    PropertyVenn,
    analyze_function_properties,
)
from repro.baselines import (
    FetchLikeDetector,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
)
from repro.core.funseeker import Config
from repro.elf.parser import ELFFile
from repro.eval import paper_values as paper
from repro.eval.runner import (
    ErrorBreakdown,
    EvalReport,
    analyze_errors,
    run_evaluation,
)
from repro.synth.corpus import CorpusEntry

SUITE_ORDER = ("coreutils", "binutils", "spec")


def _pct(value: float) -> str:
    return f"{100 * value:6.2f}"


def failure_summary(report: EvalReport) -> str:
    """Render the failed cells of a sweep, one line per cell.

    Returns an empty string for a clean report so renderers can append
    it unconditionally.
    """
    if not report.failures:
        return ""
    lines = [
        f"FAILED CELLS: {len(report.failures)} "
        f"(success rate {100 * report.success_rate():.2f}%)"
    ]
    for f in report.failures:
        lines.append(
            f"  {f.suite}/{f.program} [{f.compiler} x{f.bits} {f.opt}] "
            f"{f.tool}: {f.phase} {f.error_type}: {f.message} "
            f"(attempts={f.attempts})"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------


def table1(corpus: Iterable[CorpusEntry]) -> tuple[str, dict]:
    """Distribution of end-branch locations per compiler and suite."""
    groups: dict[tuple[str, str], EndbrDistribution] = {}
    for entry in corpus:
        key = (entry.profile.compiler, entry.suite)
        dist = classify_endbr_locations(
            ELFFile(entry.binary.data),
            entry.binary.ground_truth.function_starts,
        )
        groups.setdefault(key, EndbrDistribution()).merge(dist)

    lines = [
        "TABLE I: Distribution of end-branch instruction locations",
        "(measured | paper)",
        f"{'':22s} {'Func.Entry':>19s} {'IndirectRet':>19s} "
        f"{'Exception':>19s}",
    ]
    results: dict[tuple[str, str], tuple[float, float, float]] = {}
    for compiler in ("gcc", "clang"):
        for suite in SUITE_ORDER:
            dist = groups.get((compiler, suite))
            if dist is None:
                continue
            entry_f = dist.fraction(EndbrLocation.FUNCTION_ENTRY)
            indir_f = dist.fraction(EndbrLocation.INDIRECT_RETURN)
            exc_f = dist.fraction(EndbrLocation.EXCEPTION)
            results[(compiler, suite)] = (entry_f, indir_f, exc_f)
            ref = paper.TABLE1[(compiler, suite)]
            lines.append(
                f"{compiler:6s}{suite:16s}"
                f"{_pct(entry_f)}|{ref[0]:6.2f} "
                f"{_pct(indir_f)}|{ref[1]:6.2f} "
                f"{_pct(exc_f)}|{ref[2]:6.2f}"
            )
    return "\n".join(lines), results


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------

_REGION_LABEL = {
    frozenset(): "(none)",
    frozenset({ENDBR}): "EndBr only",
    frozenset({CALL}): "DirCall only",
    frozenset({JMP}): "DirJmp only",
    frozenset({ENDBR, CALL}): "EndBr+DirCall",
    frozenset({ENDBR, JMP}): "EndBr+DirJmp",
    frozenset({CALL, JMP}): "DirCall+DirJmp",
    frozenset({ENDBR, CALL, JMP}): "all three",
}


def figure3(corpus: Iterable[CorpusEntry]) -> tuple[str, PropertyVenn]:
    """Function syntactic-property Venn over the whole corpus."""
    venn = PropertyVenn()
    for entry in corpus:
        venn.merge(analyze_function_properties(
            ELFFile(entry.binary.data),
            entry.binary.ground_truth.function_starts,
        ))
    lines = [
        "FIGURE 3: Function syntactic properties "
        f"({venn.total} functions)",
        "(measured% | paper%)",
    ]
    for region in ALL_REGIONS:
        lines.append(
            f"  {_REGION_LABEL[region]:16s} "
            f"{_pct(venn.fraction(region))} | {paper.FIGURE3[region]:6.2f}"
        )
    lines.append(
        f"  {'EndBrAtHead total':16s} "
        f"{_pct(venn.with_property(ENDBR) / venn.total if venn.total else 0)}"
        f" | {89.31:6.2f}"
    )
    return "\n".join(lines), venn


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2(corpus: list[CorpusEntry]) -> tuple[str, EvalReport]:
    """FunSeeker under its four configurations."""
    detectors = {
        f"cfg{cfg.value}": FunSeekerDetector(cfg) for cfg in Config
    }
    report = run_evaluation(corpus, detectors)
    lines = [
        "TABLE II: FunSeeker precision/recall by configuration",
        "(measured | paper)",
    ]
    for compiler in ("gcc", "clang"):
        for suite in SUITE_ORDER:
            sub = report.filtered(compiler=compiler, suite=suite)
            if not sub.records:
                continue
            cells = []
            for cfg in Config:
                pooled = sub.filtered(tool=f"cfg{cfg.value}").pooled()
                ref = paper.TABLE2[(compiler, suite)][cfg.value]
                cells.append(
                    f"P{_pct(pooled.precision)}|{ref[0]:5.1f} "
                    f"R{_pct(pooled.recall)}|{ref[1]:5.1f}"
                )
            lines.append(f"{compiler:6s}{suite:10s} " + "  ".join(cells))
    total_cells = []
    for cfg in Config:
        pooled = report.filtered(tool=f"cfg{cfg.value}").pooled()
        ref = paper.TABLE2_TOTAL[cfg.value]
        total_cells.append(
            f"P{_pct(pooled.precision)}|{ref[0]:5.1f} "
            f"R{_pct(pooled.recall)}|{ref[1]:5.1f}"
        )
    lines.append(f"{'total':16s} " + "  ".join(total_cells))
    failures = failure_summary(report)
    if failures:
        lines.append(failures)
    return "\n".join(lines), report


# ---------------------------------------------------------------------------
# Table III
# ---------------------------------------------------------------------------

TABLE3_TOOLS = ("funseeker", "ida", "ghidra", "fetch")


def table3(corpus: list[CorpusEntry]) -> tuple[str, EvalReport]:
    """FunSeeker vs the state-of-the-art baselines, plus timing."""
    detectors = {
        "funseeker": FunSeekerDetector(),
        "ida": IdaLikeDetector(),
        "ghidra": GhidraLikeDetector(),
        "fetch": FetchLikeDetector(),
    }
    report = run_evaluation(corpus, detectors)
    lines = [
        "TABLE III: Function identification vs state-of-the-art tools",
        "(measured | paper)",
    ]
    for bits in (32, 64):
        for suite in SUITE_ORDER:
            sub = report.filtered(bits=bits, suite=suite)
            if not sub.records:
                continue
            cells = []
            for tool in TABLE3_TOOLS:
                pooled = sub.filtered(tool=tool).pooled()
                ref = paper.TABLE3[(bits, suite)][tool]
                cells.append(
                    f"{tool[:4]}: P{_pct(pooled.precision)}|{ref[0]:5.1f}"
                    f" R{_pct(pooled.recall)}|{ref[1]:5.1f}"
                )
            lines.append(f"x{bits:<3d}{suite:10s} " + " ".join(cells))
    total_cells = []
    for tool in TABLE3_TOOLS:
        pooled = report.filtered(tool=tool).pooled()
        ref = paper.TABLE3_TOTAL[tool]
        total_cells.append(
            f"{tool[:4]}: P{_pct(pooled.precision)}|{ref[0]:5.1f}"
            f" R{_pct(pooled.recall)}|{ref[1]:5.1f}"
        )
    lines.append(f"{'total':14s} " + " ".join(total_cells))

    fs_time = report.filtered(tool="funseeker").mean_time()
    fetch_time = report.filtered(tool="fetch").mean_time()
    ratio = fetch_time / fs_time if fs_time else 0.0
    lines.append(
        f"mean time/binary: funseeker {fs_time * 1000:.1f} ms, "
        f"fetch {fetch_time * 1000:.1f} ms "
        f"(fetch/funseeker = {ratio:.1f}x; paper: "
        f"{paper.TABLE3_TIME['funseeker']}s vs "
        f"{paper.TABLE3_TIME['fetch']}s = {paper.TABLE3_SPEEDUP}x)"
    )
    failures = failure_summary(report)
    if failures:
        lines.append(failures)
    return "\n".join(lines), report


# ---------------------------------------------------------------------------
# §V-C error breakdown
# ---------------------------------------------------------------------------


def error_breakdown(corpus: list[CorpusEntry]) -> tuple[str, ErrorBreakdown]:
    """FunSeeker's FN/FP categories over a corpus (paper §V-C)."""
    detector = FunSeekerDetector()
    total = ErrorBreakdown()
    for entry in corpus:
        detected = detector.detect_bytes(entry.stripped).functions
        total.merge(analyze_errors(entry, detected))
    lines = ["FunSeeker error analysis (paper §V-C)"]
    if total.fn_total:
        lines.append(
            f"  FN: {total.fn_total} — dead functions "
            f"{100 * total.fn_dead / total.fn_total:.1f}% (paper 93.3%), "
            f"tail targets "
            f"{100 * total.fn_tail_target / total.fn_total:.1f}% "
            f"(paper 6.7%)"
        )
    if total.fp_total:
        lines.append(
            f"  FP: {total.fp_total} — fragment references "
            f"{100 * total.fp_fragment / total.fp_total:.1f}% (paper 100%)"
        )
    return "\n".join(lines), total
