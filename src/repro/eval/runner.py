"""Experiment driver: run detectors over a corpus and aggregate results.

Used by every table/figure regeneration benchmark. Detection always
runs on *stripped* images (the paper strips all binaries before
evaluation, §III-A) while ground truth comes from the synthesis-time
metadata.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.baselines.base import FunctionDetector
from repro.elf.parser import ELFFile
from repro.eval.metrics import Confusion, score
from repro.synth.corpus import CorpusEntry


@dataclass(frozen=True)
class RunRecord:
    """One (binary, tool) evaluation outcome."""

    suite: str
    program: str
    compiler: str
    bits: int
    pie: bool
    opt: str
    tool: str
    confusion: Confusion
    elapsed_seconds: float


@dataclass
class EvalReport:
    """All run records of one evaluation sweep."""

    records: list[RunRecord] = field(default_factory=list)

    def filtered(self, **criteria) -> "EvalReport":
        """Records matching all given attribute=value criteria."""
        out = [r for r in self.records
               if all(getattr(r, k) == v for k, v in criteria.items())]
        return EvalReport(records=out)

    def pooled(self) -> Confusion:
        """Pooled confusion counts over all records."""
        total = Confusion()
        for rec in self.records:
            total.add(rec.confusion)
        return total

    def mean_time(self) -> float:
        if not self.records:
            return 0.0
        return (sum(r.elapsed_seconds for r in self.records)
                / len(self.records))

    def tools(self) -> list[str]:
        return sorted({r.tool for r in self.records})

    def suites(self) -> list[str]:
        return sorted({r.suite for r in self.records})


def run_evaluation(
    corpus: Iterable[CorpusEntry],
    detectors: dict[str, FunctionDetector],
) -> EvalReport:
    """Run every detector on every (stripped) corpus binary."""
    report = EvalReport()
    for entry in corpus:
        elf = ELFFile(entry.stripped)
        gt = entry.binary.ground_truth.function_starts
        profile = entry.profile
        for tool_name, detector in detectors.items():
            result = detector.detect(elf)
            report.records.append(RunRecord(
                suite=entry.suite,
                program=entry.program,
                compiler=profile.compiler,
                bits=profile.bits,
                pie=profile.pie,
                opt=profile.opt,
                tool=tool_name,
                confusion=score(gt, result.functions),
                elapsed_seconds=result.elapsed_seconds,
            ))
    return report


# ---------------------------------------------------------------------------
# Error analysis (paper §V-C: FN/FP breakdowns)
# ---------------------------------------------------------------------------


@dataclass
class ErrorBreakdown:
    """Categorized false negatives and false positives."""

    fn_dead: int = 0
    fn_tail_target: int = 0
    fn_other: int = 0
    fp_fragment: int = 0
    fp_other: int = 0

    @property
    def fn_total(self) -> int:
        return self.fn_dead + self.fn_tail_target + self.fn_other

    @property
    def fp_total(self) -> int:
        return self.fp_fragment + self.fp_other

    def merge(self, other: "ErrorBreakdown") -> None:
        self.fn_dead += other.fn_dead
        self.fn_tail_target += other.fn_tail_target
        self.fn_other += other.fn_other
        self.fp_fragment += other.fp_fragment
        self.fp_other += other.fp_other


def analyze_errors(
    entry: CorpusEntry, detected: set[int]
) -> ErrorBreakdown:
    """Attribute one binary's FPs/FNs to the paper's categories.

    False negatives are classified as dead functions or missed
    tail-call targets (paper: 93.3% / 6.7%); false positives as
    ``.part``/``.cold`` fragment references or other (paper: 100%
    fragments).
    """
    gt = entry.binary.ground_truth
    out = ErrorBreakdown()
    dead = {e.address for e in gt.entries if e.is_function and e.is_dead}
    fragments = gt.fragment_starts
    for addr in gt.function_starts - detected:
        if addr in dead:
            out.fn_dead += 1
        else:
            out.fn_tail_target += 1
    for addr in detected - gt.function_starts:
        if addr in fragments:
            out.fp_fragment += 1
        else:
            out.fp_other += 1
    return out
