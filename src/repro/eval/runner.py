"""Experiment driver: run detectors over a corpus and aggregate results.

Used by every table/figure regeneration benchmark. Detection always
runs on *stripped* images (the paper strips all binaries before
evaluation, §III-A) while ground truth comes from the synthesis-time
metadata.
"""

from __future__ import annotations

from collections.abc import Iterable
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro import faults, obs
from repro.baselines.base import FunctionDetector
from repro.cache.disk import default_cache
from repro.elf.parser import ELFFile
from repro.errors import EvaluationAborted
from repro.eval.breaker import CIRCUIT_OPEN, PHASE_BREAKER, CircuitBreaker
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    FailureRecord,
    run_cell,
    watchdog_armable,
)
from repro.eval.metrics import Confusion, score
from repro.synth.corpus import CorpusEntry

#: Sentinel distinguishing "attribute absent" from "attribute is None"
#: in :meth:`EvalReport.filtered`.
_MISSING = object()


@dataclass(frozen=True)
class RunRecord:
    """One (binary, tool) evaluation outcome."""

    suite: str
    program: str
    compiler: str
    bits: int
    pie: bool
    opt: str
    tool: str
    confusion: Confusion
    elapsed_seconds: float
    #: Per-phase span totals (seconds) for this cell, keyed by span
    #: name (``detect``/``sweep``/``filter``/...). Populated only when
    #: an observability recorder is active; ``None`` otherwise.
    phase_seconds: dict | None = None


@dataclass
class EvalReport:
    """All run records (and failed cells) of one evaluation sweep."""

    records: list[RunRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)

    def filtered(self, **criteria) -> "EvalReport":
        """Records matching all given attribute=value criteria.

        Failures share the provenance fields, so they are filtered by
        the same criteria (a criterion naming a field failures lack,
        e.g. ``confusion``, simply excludes all failures). A missing
        attribute never matches — not even a criterion whose value is
        ``None`` — hence the sentinel rather than a ``None`` default.
        """
        out = [r for r in self.records
               if all(getattr(r, k, _MISSING) == v
                      for k, v in criteria.items())]
        fails = [f for f in self.failures
                 if all(getattr(f, k, _MISSING) == v
                        for k, v in criteria.items())]
        return EvalReport(records=out, failures=fails)

    def pooled(self) -> Confusion:
        """Pooled confusion counts over all records."""
        total = Confusion()
        for rec in self.records:
            total.add(rec.confusion)
        return total

    def mean_time(self) -> float:
        if not self.records:
            return 0.0
        return (sum(r.elapsed_seconds for r in self.records)
                / len(self.records))

    def tools(self) -> list[str]:
        return sorted({r.tool for r in self.records}
                      | {f.tool for f in self.failures})

    def suites(self) -> list[str]:
        return sorted({r.suite for r in self.records}
                      | {f.suite for f in self.failures})

    def success_rate(self) -> float:
        """Fraction of attempted cells that produced a record."""
        attempted = len(self.records) + len(self.failures)
        if attempted == 0:
            return 1.0
        return len(self.records) / attempted


def _provenance(entry: CorpusEntry) -> dict:
    profile = entry.profile
    return {
        "suite": entry.suite,
        "program": entry.program,
        "compiler": profile.compiler,
        "bits": profile.bits,
        "pie": profile.pie,
        "opt": profile.opt,
    }


def _failure(
    prov: dict, tool: str, phase: str, error: BaseException,
    attempts: int, elapsed: float, enforced: bool = True,
) -> FailureRecord:
    return FailureRecord(
        **prov,
        tool=tool,
        phase=phase,
        error_type=type(error).__name__,
        message=str(error),
        attempts=attempts,
        elapsed_seconds=elapsed,
        enforced=enforced,
    )


def _breaker_failure(prov: dict, tool: str) -> FailureRecord:
    return FailureRecord(
        **prov,
        tool=tool,
        phase=PHASE_BREAKER,
        error_type=CIRCUIT_OPEN,
        message=f"circuit open for tool {tool!r}: cell skipped",
        attempts=0,
    )


def run_evaluation(
    corpus: Iterable[CorpusEntry],
    detectors: dict[str, FunctionDetector],
    *,
    timeout: float | None = None,
    retries: int = 0,
    keep_going: bool = True,
    backoff: float = 0.0,
    journal=None,
    completed: set | None = None,
    breaker: CircuitBreaker | None = None,
    quarantine=None,
) -> EvalReport:
    """Run every detector on every (stripped) corpus binary.

    Each entry is parsed once and the same ``ELFFile`` is handed to
    every detector, so its analysis context (:mod:`repro.cache`) is
    shared: the sweep, exception metadata, and PLT map are computed by
    whichever tool needs them first and reused by the rest.

    Each (binary, tool) cell runs in isolation: an exception or a
    blown ``timeout`` (seconds of wall clock, enforced via ``SIGALRM``
    on the main thread) becomes a :class:`FailureRecord` on
    ``report.failures`` and the sweep continues. ``retries`` re-runs a
    raising cell up to that many extra times (transient failures only
    — the :mod:`repro.errors` taxonomy fails fast on permanent kinds —
    sleeping ``backoff``-based exponential delays between attempts).
    With ``keep_going=False`` the first failure aborts the sweep by
    raising :class:`~repro.errors.EvaluationAborted`.

    Crash-safety hooks (all optional):

    - ``journal``: a :class:`~repro.eval.journal.RunJournal`; every
      decided cell is appended (and fsync'd) before the sweep moves on.
    - ``completed``: cell keys (see
      :func:`~repro.eval.journal.cell_key`) to skip — the resume path.
      An entry whose cells are all complete is not even parsed.
    - ``breaker``: a :class:`~repro.eval.breaker.CircuitBreaker`;
      detect cells of an open tool are skipped as ``CircuitOpen``
      failures instead of burning their timeout budget.
    - ``quarantine``: a
      :class:`~repro.eval.quarantine.QuarantineStore`; failing inputs
      are captured for offline replay.
    """
    report = EvalReport()
    completed = completed or set()
    # A timeout requested off the main thread cannot be armed; record
    # that on every failure of this sweep instead of claiming a
    # deadline that never existed.
    enforced = timeout is None or timeout <= 0 or watchdog_armable()

    def _record_failure(failure: FailureRecord,
                        entry: CorpusEntry | None = None) -> None:
        report.failures.append(failure)
        if journal is not None:
            journal.append_failure(failure)
        if (quarantine is not None and entry is not None
                and failure.phase != PHASE_BREAKER):
            quarantine.capture(entry.stripped, failure)
        if not keep_going:
            raise EvaluationAborted(
                f"[{failure.suite}/{failure.program}/{failure.tool}] "
                f"{failure.phase}: {failure.error_type}: {failure.message}"
            )

    def _record_success(record: RunRecord) -> None:
        report.records.append(record)
        if journal is not None:
            journal.append_record(record)

    for entry in corpus:
        prov = _provenance(entry)
        key_prefix = tuple(prov[f] for f in
                           ("suite", "program", "compiler", "bits", "pie",
                            "opt"))
        todo = [name for name in detectors
                if key_prefix + (name,) not in completed]
        if skipped := len(detectors) - len(todo):
            obs.add("eval.cells_skipped", skipped)
        if not todo:
            continue
        with obs.span("entry", suite=entry.suite, program=entry.program):
            elf, error, attempts, elapsed = run_cell(
                faults.guarded(faults.SITE_CELL_EXECUTE,
                               lambda: ELFFile(entry.stripped)),
                timeout=timeout, retries=retries, backoff=backoff,
            )
            if error is not None:
                # The parse serves every tool of this entry: fail each
                # cell.
                for tool_name in todo:
                    _record_failure(_failure(
                        prov, tool_name, PHASE_PARSE, error, attempts,
                        elapsed, enforced), entry)
                continue
            gt = entry.binary.ground_truth.function_starts
            # One store batch per binary: every artifact the tools
            # produce for this entry lands in a single flush + one
            # eviction check instead of a disk walk per store.
            cache = default_cache()
            with cache.batch() if cache is not None else nullcontext():
                for tool_name in todo:
                    detector = detectors[tool_name]
                    if breaker is not None and not breaker.allow(tool_name):
                        _record_failure(_breaker_failure(prov, tool_name))
                        continue
                    cell_mark = obs.mark()
                    result, error, attempts, elapsed = run_cell(
                        faults.guarded(faults.SITE_CELL_EXECUTE,
                                       lambda d=detector: d.detect(elf)),
                        timeout=timeout, retries=retries, backoff=backoff,
                    )
                    if error is not None:
                        if breaker is not None:
                            breaker.record_failure(tool_name)
                        _record_failure(_failure(
                            prov, tool_name, PHASE_DETECT, error, attempts,
                            elapsed, enforced), entry)
                        continue
                    if breaker is not None:
                        breaker.record_success(tool_name)
                    with obs.span("score", tool=tool_name):
                        confusion = score(gt, result.functions)
                    phases = obs.phase_totals(cell_mark) or None
                    _record_success(RunRecord(
                        **prov,
                        tool=tool_name,
                        confusion=confusion,
                        elapsed_seconds=result.elapsed_seconds,
                        phase_seconds=phases,
                    ))
    return report


# ---------------------------------------------------------------------------
# Error analysis (paper §V-C: FN/FP breakdowns)
# ---------------------------------------------------------------------------


@dataclass
class ErrorBreakdown:
    """Categorized false negatives and false positives."""

    fn_dead: int = 0
    fn_tail_target: int = 0
    fn_other: int = 0
    fp_fragment: int = 0
    fp_other: int = 0

    @property
    def fn_total(self) -> int:
        return self.fn_dead + self.fn_tail_target + self.fn_other

    @property
    def fp_total(self) -> int:
        return self.fp_fragment + self.fp_other

    def merge(self, other: "ErrorBreakdown") -> None:
        self.fn_dead += other.fn_dead
        self.fn_tail_target += other.fn_tail_target
        self.fn_other += other.fn_other
        self.fp_fragment += other.fp_fragment
        self.fp_other += other.fp_other


def analyze_errors(
    entry: CorpusEntry, detected: set[int]
) -> ErrorBreakdown:
    """Attribute one binary's FPs/FNs to the paper's categories.

    False negatives are classified as dead functions or missed
    tail-call targets (paper: 93.3% / 6.7%); false positives as
    ``.part``/``.cold`` fragment references or other (paper: 100%
    fragments).
    """
    gt = entry.binary.ground_truth
    out = ErrorBreakdown()
    dead = {e.address for e in gt.entries if e.is_function and e.is_dead}
    fragments = gt.fragment_starts
    for addr in gt.function_starts - detected:
        if addr in dead:
            out.fn_dead += 1
        else:
            out.fn_tail_target += 1
    for addr in detected - gt.function_starts:
        if addr in fragments:
            out.fp_fragment += 1
        else:
            out.fp_other += 1
    return out
