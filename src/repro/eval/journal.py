"""Crash-safe run journal: append-only, fsync'd, checksummed, resumable.

A paper-scale sweep (8,136 binaries x 5 tools) must survive worker
SIGKILLs, disk faults, and operator interrupts without losing completed
work. The journal is the substrate: every decided cell — a
:class:`~repro.eval.runner.RunRecord` or a
:class:`~repro.eval.isolation.FailureRecord` — is appended to
``journal.jsonl`` in the run directory *as soon as the parent learns of
it*, flushed and ``fsync``'d before the sweep moves on.

Layout (``run-journal/v1``)::

    RUN_DIR/
      manifest.json       # run-manifest/v1: corpus + config fingerprint
      journal.jsonl       # one checksummed line per decided cell
      quarantine/         # optional: captured crashing inputs

Each journal line is ``{"crc": <crc32 hex>, "data": {...}}`` where the
checksum covers the canonical (sorted-key, tight-separator) JSON dump
of ``data``. Loading tolerates a torn tail — a process killed
mid-append leaves at most one partial line, which is dropped and
counted, never fatal — and skips (while counting) any corrupt interior
line.

Resume semantics: a cell with a journaled *success* record is skipped
by the next run; journaled *failures* are retried (so a crash-induced
failure heals on resume, and the recovered report matches a fault-free
run). ``--resume`` refuses a journal whose manifest fingerprint does
not match the rebuilt corpus (:class:`ManifestMismatchError`) — the
journal describes a different run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.errors import (
    JournalError,
    JournalWriteError,
    ManifestCorruptError,
    ManifestMismatchError,
)
from repro.eval.isolation import FailureRecord
from repro.eval.metrics import Confusion
from repro.eval.runner import EvalReport, RunRecord
from repro.synth.corpus import CorpusEntry

JOURNAL_SCHEMA = "run-journal/v1"
MANIFEST_SCHEMA = "run-manifest/v1"

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"

#: Provenance fields identifying one evaluation cell across runs.
_KEY_FIELDS = ("suite", "program", "compiler", "bits", "pie", "opt", "tool")

#: One evaluation cell's identity across runs.
CellKey = tuple


def cell_key(record) -> CellKey:
    """The (suite, program, compiler, bits, pie, opt, tool) identity."""
    return tuple(getattr(record, f) for f in _KEY_FIELDS)


def entry_cell_key(entry: CorpusEntry, tool: str) -> CellKey:
    profile = entry.profile
    return (entry.suite, entry.program, profile.compiler, profile.bits,
            profile.pie, profile.opt, tool)


def corpus_fingerprint(corpus: Iterable[CorpusEntry]) -> str:
    """Content hash over the corpus's stripped images, in order.

    Cell results are a pure function of the stripped bytes, so two
    corpora with the same fingerprint produce interchangeable journals
    regardless of how they were (re)generated.
    """
    h = hashlib.sha256()
    for entry in corpus:
        h.update(entry.label.encode())
        h.update(b"\x00")
        h.update(hashlib.sha256(entry.stripped).digest())
    return h.hexdigest()


def _entry_digest(entry: CorpusEntry) -> str:
    return hashlib.sha256(entry.stripped).hexdigest()


def build_manifest(
    corpus: Sequence[CorpusEntry],
    tools: Sequence[str],
    *,
    scale: str | None = None,
    seed: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
) -> dict:
    return {
        "schema": MANIFEST_SCHEMA,
        "journal_schema": JOURNAL_SCHEMA,
        "scale": scale,
        "seed": seed,
        "tools": list(tools),
        "corpus": {
            "count": len(corpus),
            "fingerprint": corpus_fingerprint(corpus),
            # Per-entry hashes let a fingerprint mismatch name the first
            # divergent entry instead of just dumping two digests.
            "entries": [
                {"label": e.label, "sha256": _entry_digest(e)}
                for e in corpus
            ],
        },
        "config": {"timeout": timeout, "retries": retries},
        "created": time.time(),
    }


def check_manifest(
    manifest: dict,
    corpus: Sequence[CorpusEntry],
    tools: Sequence[str],
) -> None:
    """Refuse to resume a journal recorded for a *different* run."""
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ManifestMismatchError(
            f"unsupported manifest schema {manifest.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA})")
    recorded = manifest.get("tools")
    if recorded != list(tools):
        raise ManifestMismatchError(
            f"tool set changed since the journal was created: "
            f"recorded {recorded}, resuming with {list(tools)}")
    corpus_doc = manifest.get("corpus") or {}
    recorded_fp = corpus_doc.get("fingerprint")
    fingerprint = corpus_fingerprint(corpus)
    if recorded_fp != fingerprint:
        detail = _divergence_detail(corpus_doc.get("entries"), corpus)
        raise ManifestMismatchError(
            f"corpus changed since the journal was created: journal was "
            f"recorded for {recorded_fp}, resuming corpus hashes to "
            f"{fingerprint}{detail}")


def _divergence_detail(
    recorded: object, corpus: Sequence[CorpusEntry],
) -> str:
    """Name the first entry where the resumed corpus diverges.

    ``recorded`` is the manifest's per-entry list when present; older
    manifests (pre per-entry hashes) fall back to the bare-fingerprint
    message.
    """
    if not isinstance(recorded, list) or not all(
            isinstance(d, dict) for d in recorded):
        return ""
    for i, entry in enumerate(corpus):
        if i >= len(recorded):
            return (f"; resuming corpus has {len(corpus)} entries, journal "
                    f"recorded {len(recorded)} — first extra entry is "
                    f"#{i} {entry.label}")
        old_label = recorded[i].get("label")
        old_sha = recorded[i].get("sha256")
        if old_label != entry.label:
            return (f"; first divergent entry is #{i}: journal recorded "
                    f"{old_label}, resuming corpus has {entry.label}")
        if old_sha != _entry_digest(entry):
            return (f"; first divergent entry is #{i} {entry.label}: "
                    f"its stripped image hash changed "
                    f"({old_sha} -> {_entry_digest(entry)})")
    if len(recorded) > len(corpus):
        missing = recorded[len(corpus)].get("label")
        return (f"; resuming corpus has {len(corpus)} entries, journal "
                f"recorded {len(recorded)} — first missing entry is "
                f"#{len(corpus)} {missing}")
    return ""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _checksum(payload: str) -> str:
    return f"{zlib.crc32(payload.encode()) & 0xFFFFFFFF:08x}"


class JournalFile:
    """Checksummed JSONL appender: one fsync'd line per payload.

    The byte-level substrate shared by the evaluation run journal and
    the fleet-scan journal (:mod:`repro.ingest.journal`): callers hand
    over one ``dict`` per decided unit of work, this class handles the
    checksum envelope, the flush-and-fsync durability contract, and the
    ``journal.append`` fault point (including the simulated torn write
    of the ``truncate`` data kind).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._file = None

    def append(self, data: dict) -> None:
        canonical = _canonical(data)
        line = json.dumps(
            {"crc": _checksum(canonical), "data": data},
            sort_keys=True, separators=(",", ":"),
        )
        try:
            fault_kind = faults.hit(faults.SITE_JOURNAL_APPEND)
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            if fault_kind == faults.KIND_TRUNCATE:
                # Simulated torn write: half the line reaches the disk,
                # then the "crash".
                self._file.write(line[: len(line) // 2])
                self._file.flush()
                os.fsync(self._file.fileno())
                raise OSError("injected crash mid-append (torn line)")
            self._file.write(line + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError as exc:
            obs.add("journal.append_errors", 1)
            raise JournalWriteError(
                f"journal append to {self.path} failed: {exc}") from exc
        obs.add("journal.appends", 1)

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            finally:
                self._file = None


def read_journal_lines(
    path: str | os.PathLike,
) -> tuple[list[dict], int, bool]:
    """Load every valid payload from a checksummed JSONL journal.

    Returns ``(payloads, corrupt_lines, torn_tail)``. A torn final line
    (a process killed mid-append) is dropped and flagged, never fatal;
    corrupt interior lines are skipped and counted. A missing file is
    an empty journal.
    """
    payloads: list[dict] = []
    corrupt = 0
    torn_tail = False
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except FileNotFoundError:
        return payloads, corrupt, torn_tail
    except OSError as exc:
        raise JournalError(f"unreadable journal {path}: {exc}") from exc
    lines = raw.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        data = _decode_line(line)
        if data is None:
            if index == len(lines) - 1:
                torn_tail = True
                obs.add("journal.torn_tail", 1)
            else:
                corrupt += 1
                obs.add("journal.corrupt_lines", 1)
            continue
        payloads.append(data)
    return payloads, corrupt, torn_tail


class RunJournal:
    """Single-writer append handle on a run directory's journal.

    Only the sweep *parent* writes: pool workers report results up and
    the parent journals them, so there is exactly one writer per run
    and lines never interleave. Every append is flushed and fsync'd —
    a SIGKILL between cells loses nothing, a SIGKILL mid-append tears
    at most the final line, which loading tolerates.
    """

    def __init__(self, run_dir: str | os.PathLike) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self._journal = JournalFile(self.path)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, run_dir: str | os.PathLike,
               manifest: dict) -> "RunJournal":
        """Initialize a fresh run directory (manifest + empty journal)."""
        journal = cls(run_dir)
        journal.run_dir.mkdir(parents=True, exist_ok=True)
        if (journal.run_dir / MANIFEST_NAME).exists():
            raise JournalError(
                f"run directory {journal.run_dir} already holds a "
                "manifest; use resume() or pick a fresh directory")
        _write_atomic(journal.run_dir / MANIFEST_NAME,
                      json.dumps(manifest, indent=1, sort_keys=True))
        journal.path.touch()
        return journal

    @classmethod
    def resume(cls, run_dir: str | os.PathLike) -> "RunJournal":
        """Open an existing run directory for appending."""
        journal = cls(run_dir)
        if not (journal.run_dir / MANIFEST_NAME).is_file():
            raise JournalError(
                f"{journal.run_dir} is not a run directory "
                f"(no {MANIFEST_NAME})")
        return journal

    def manifest(self) -> dict:
        try:
            with open(self.run_dir / MANIFEST_NAME, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            raise ManifestCorruptError(
                f"manifest in {self.run_dir} is unreadable or corrupt: "
                f"{exc}") from exc
        if not isinstance(doc, dict):
            raise ManifestCorruptError(
                f"manifest in {self.run_dir} is unreadable or corrupt: "
                f"not a JSON object")
        return doc

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def append_record(self, record: RunRecord) -> None:
        self._append("record", _record_to_dict(record))

    def append_failure(self, failure: FailureRecord) -> None:
        self._append("failure", _failure_to_dict(failure))

    def _append(self, kind: str, payload: dict) -> None:
        self._journal.append({"kind": kind, **payload})


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _record_to_dict(record: RunRecord) -> dict:
    doc = {
        **{f: getattr(record, f) for f in _KEY_FIELDS},
        "tp": record.confusion.tp,
        "fp": record.confusion.fp,
        "fn": record.confusion.fn,
        "elapsed_seconds": record.elapsed_seconds,
    }
    if record.phase_seconds:
        doc["phase_seconds"] = record.phase_seconds
    return doc


def _record_from_dict(doc: dict) -> RunRecord:
    return RunRecord(
        **{f: doc[f] for f in _KEY_FIELDS},
        confusion=Confusion(tp=doc["tp"], fp=doc["fp"], fn=doc["fn"]),
        elapsed_seconds=doc["elapsed_seconds"],
        phase_seconds=doc.get("phase_seconds"),
    )


def _failure_to_dict(failure: FailureRecord) -> dict:
    return {
        **{f: getattr(failure, f) for f in _KEY_FIELDS},
        "phase": failure.phase,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "elapsed_seconds": failure.elapsed_seconds,
        "enforced": failure.enforced,
    }


def _failure_from_dict(doc: dict) -> FailureRecord:
    return FailureRecord(
        **{f: doc[f] for f in _KEY_FIELDS},
        phase=doc["phase"],
        error_type=doc["error_type"],
        message=doc["message"],
        attempts=doc.get("attempts", 1),
        elapsed_seconds=doc.get("elapsed_seconds", 0.0),
        enforced=doc.get("enforced", True),
    )


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


@dataclass
class JournalState:
    """Everything a resume needs from a prior run's journal."""

    records: list[RunRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    corrupt_lines: int = 0
    torn_tail: bool = False

    @property
    def completed(self) -> set[CellKey]:
        """Cells that need no re-run: those with a *success* record.

        Failures are deliberately absent — a journaled failure is
        retried on resume so crash-induced failures heal rather than
        persist into the recovered report.
        """
        return {cell_key(r) for r in self.records}


def read_journal(run_dir: str | os.PathLike) -> JournalState:
    """Load a journal, tolerating a torn tail and corrupt lines.

    Later lines win when a cell appears more than once (a resumed run
    appends its fresh outcome after the original one), and a success
    record for a cell supersedes any journaled failure for it.
    """
    path = Path(run_dir) / JOURNAL_NAME
    state = JournalState()
    payloads, state.corrupt_lines, state.torn_tail = read_journal_lines(
        path)

    records: dict[CellKey, RunRecord] = {}
    failures: dict[CellKey, FailureRecord] = {}
    order: list[CellKey] = []
    seen: set[CellKey] = set()
    for data in payloads:
        kind = data.get("kind")
        try:
            if kind == "record":
                record = _record_from_dict(data)
                key = cell_key(record)
                records[key] = record
                failures.pop(key, None)
            elif kind == "failure":
                failure = _failure_from_dict(data)
                key = cell_key(failure)
                failures[key] = failure
            else:
                state.corrupt_lines += 1
                continue
        except (KeyError, TypeError):
            state.corrupt_lines += 1
            continue
        if key not in seen:
            seen.add(key)
            order.append(key)
    state.records = [records[k] for k in order if k in records]
    state.failures = [failures[k] for k in order
                      if k in failures and k not in records]
    return state


def _decode_line(line: str) -> dict | None:
    """One journal line's ``data``, or ``None`` if torn/corrupt."""
    line = line.strip()
    if not line:
        return None
    try:
        doc = json.loads(line)
    except ValueError:
        return None
    if not isinstance(doc, dict):
        return None
    data = doc.get("data")
    if not isinstance(data, dict):
        return None
    if doc.get("crc") != _checksum(_canonical(data)):
        return None
    return data


# ---------------------------------------------------------------------------
# Resume assembly
# ---------------------------------------------------------------------------


def merge_resumed_report(
    corpus: Sequence[CorpusEntry],
    tools: Sequence[str],
    prior: JournalState,
    fresh: EvalReport,
) -> EvalReport:
    """Combine journaled results with a resume run's fresh results.

    Records are emitted in canonical corpus x tool order — the order a
    fault-free serial sweep produces — so a recovered report is
    byte-identical (modulo timing fields) to an uninterrupted one. A
    fresh outcome supersedes a journaled one for the same cell, and
    only failures that *survived* the resume run (fresh failures, plus
    journaled failures for cells the resume did not re-decide) remain.
    """
    records: dict[CellKey, RunRecord] = {cell_key(r): r
                                         for r in prior.records}
    failures: dict[CellKey, FailureRecord] = {cell_key(f): f
                                              for f in prior.failures}
    for record in fresh.records:
        key = cell_key(record)
        records[key] = record
        failures.pop(key, None)
    for failure in fresh.failures:
        key = cell_key(failure)
        failures[key] = failure
        records.pop(key, None)

    merged = EvalReport()
    for entry in corpus:
        for tool in tools:
            key = entry_cell_key(entry, tool)
            if key in records:
                merged.records.append(records[key])
            elif key in failures:
                merged.failures.append(failures[key])
    return merged
