"""Multi-process corpus evaluation.

The paper's full matrix is thousands of binaries; evaluation is
embarrassingly parallel across them. This runner fans corpus entries
out over a process pool and reassembles an :class:`EvalReport`
identical (up to timing jitter) to the serial one.

Detectors are addressed by registry name (``repro.baselines``), not by
instance — worker processes construct their own, so nothing stateful
crosses the fork boundary. Each worker parses its job's binary once
and runs every tool against that one ``ELFFile``, so the per-binary
analysis context (:mod:`repro.cache`) is built once per job and shared
across the job's tools; the opt-in disk cache crosses the fork
boundary through the inherited ``REPRO_CACHE_DIR`` environment (and the
fault plan through ``REPRO_FAULT_PLAN``).

Fault isolation mirrors the serial runner: each (binary, tool) cell is
guarded in the worker (exceptions and ``timeout`` become
:class:`~repro.eval.isolation.FailureRecord` entries), and the parent
additionally guards against the worker itself dying — a crashed or
wedged worker costs its own job a failure record, not the sweep.
``multiprocessing.Pool`` respawns replacement workers, so the
remaining jobs still run. ``max_rss_mb`` arms an address-space rlimit
in every worker, so a cell that balloons is killed by its own
``MemoryError`` (a permanent, non-retried failure record) instead of
taking the host down.

Jobs are dispatched **lazily** (a bounded window of in-flight handles)
and collected **out of order** against per-job absolute deadlines
armed at dispatch; the driving discipline lives in
:class:`repro.eval.dispatch.BoundedPoolDriver`, which this runner
shares with the fleet-scan ingest pipeline. One wedged worker costs
the sweep roughly a single backstop beyond its useful work, never
``jobs × backstop``, and an early loss never stalls the collection of
already-finished later results. Lazy dispatch is also what gives the
per-tool circuit ``breaker`` its teeth: cells of a tool whose circuit
opened mid-sweep are skipped at dispatch time, before they can burn a
worker's budget.

Crash-safety hooks run in the **parent**, which is the single writer:
every absorbed cell outcome is appended (fsync'd) to the optional
``journal`` the moment it is learned, ``completed`` cell keys from a
prior journal are never dispatched at all, and failing inputs are
captured into the optional ``quarantine`` store.

When ``trace_dir`` is given, each worker installs its own
observability recorder (:mod:`repro.obs`) and appends its spans and
counters to a per-worker JSONL part file after every job; the parent
(or CLI) merges the parts into one trace with
:func:`repro.obs.merge_traces`.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Iterable
from contextlib import nullcontext
from pathlib import Path

from repro import faults, obs
from repro.baselines import ALL_DETECTORS
from repro.cache.disk import default_cache
from repro.elf.parser import ELFFile
from repro.errors import EvaluationAborted
from repro.eval import shm
from repro.eval.breaker import CircuitBreaker
from repro.eval.dispatch import BoundedPoolDriver, shutdown_pool
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    PHASE_WORKER,
    FailureRecord,
    run_cell,
)
from repro.eval.metrics import score
from repro.eval.runner import EvalReport, RunRecord, _breaker_failure
from repro.synth.corpus import CorpusEntry

#: Extra wall-clock (seconds) the parent grants a worker beyond the
#: per-cell budgets before declaring it lost.
_BACKSTOP_GRACE = 30.0

#: In-flight dispatch window, as a multiple of the pool size.
_INFLIGHT_FACTOR = 2


def run_evaluation_parallel(
    corpus: Iterable[CorpusEntry],
    tool_names: list[str],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    keep_going: bool = True,
    trace_dir: str | os.PathLike | None = None,
    backoff: float = 0.0,
    journal=None,
    completed: set | None = None,
    breaker: CircuitBreaker | None = None,
    quarantine=None,
    max_rss_mb: int | None = None,
    backstop_grace: float | None = None,
    pool_factory=None,
) -> EvalReport:
    """Evaluate ``tool_names`` over ``corpus`` using a process pool.

    ``tool_names`` must be keys of
    :data:`repro.baselines.ALL_DETECTORS`. ``workers`` defaults to the
    CPU count; ``workers=1`` degrades to in-process execution (useful
    under debuggers).

    ``timeout`` bounds each (binary, tool) cell in wall-clock seconds
    (enforced inside the worker, with a parent-side backstop for
    workers that die outright); ``retries`` re-runs transiently
    failing cells with ``backoff``-based exponential delays. With
    ``keep_going=False`` the first failed cell aborts the sweep via
    :class:`~repro.errors.EvaluationAborted`. ``trace_dir`` (optional)
    enables per-worker observability traces, written as JSONL part
    files into that directory.

    ``journal``/``completed``/``breaker``/``quarantine``/``max_rss_mb``
    are the crash-safety hooks described in the module docstring; all
    default to off. ``backstop_grace`` tunes the parent-side lost-
    worker grace period (tests and the chaos harness shrink it).

    ``pool_factory`` injects the executor: any callable with the
    ``multiprocessing.Pool(processes=, initializer=, initargs=)``
    signature whose pools support ``apply_async``/``close``/``join``/
    ``terminate``. Defaults to ``multiprocessing.Pool``; embedders (the
    analysis service, tests) substitute instrumented or pre-warmed
    pools without monkeypatching this module.
    """
    unknown = [t for t in tool_names if t not in ALL_DETECTORS]
    if unknown:
        raise ValueError(f"unknown detectors: {unknown}")
    completed = completed or set()
    jobs = []
    skipped_cells = 0
    for entry in corpus:
        todo = [t for t in tool_names
                if _entry_key(entry, t) not in completed]
        skipped_cells += len(tool_names) - len(todo)
        if todo:
            jobs.append(_job_payload(entry, todo))
    if skipped_cells:
        obs.add("eval.cells_skipped", skipped_cells)
    report = EvalReport()

    def _absorb(records: list[RunRecord],
                failures: list[FailureRecord],
                job: tuple | None = None) -> None:
        if breaker is not None:
            for record in records:
                breaker.record_success(record.tool)
            for failure in failures:
                if failure.phase == PHASE_DETECT:
                    breaker.record_failure(failure.tool)
        report.records.extend(records)
        report.failures.extend(failures)
        if journal is not None:
            for record in records:
                journal.append_record(record)
            for failure in failures:
                journal.append_failure(failure)
        if quarantine is not None and failures and job is not None:
            stripped = _image_bytes(job[0])
            for failure in failures:
                quarantine.capture(stripped, failure)
        if failures and not keep_going:
            f = failures[0]
            raise EvaluationAborted(
                f"[{f.suite}/{f.program}/{f.tool}] {f.phase}: "
                f"{f.error_type}: {f.message}"
            )

    def _breaker_filter(job: tuple) -> tuple | None:
        """Strip open-circuit tools from a job before dispatch."""
        if breaker is None:
            return job
        allowed, denied = [], []
        for name in job[-1]:
            (allowed if breaker.allow(name) else denied).append(name)
        if denied:
            prov = _job_provenance(job)
            _absorb([], [_breaker_failure(prov, name) for name in denied],
                    job)
        if not allowed:
            return None
        return job[:-1] + (tuple(allowed),)

    if workers == 1:
        for job in jobs:
            job = _breaker_filter(job)
            if job is None:
                continue
            faults.hit(faults.SITE_WORKER_DISPATCH)
            records, failures = _evaluate_job(job, timeout, retries,
                                              trace_dir, backoff)
            _absorb(records, failures, job)
        return report

    # A worker enforces its own per-cell deadline; the parent-side
    # backstop only has to catch workers that never report back at all
    # (hard crash, uninterruptible hang).
    if backstop_grace is None:
        backstop_grace = _BACKSTOP_GRACE
    backstop = None
    if timeout is not None:
        per_job_cells = len(tool_names) + 1  # + the shared parse
        backstop = (timeout * (retries + 1) * per_job_cells
                    + backstop_grace)

    # Ship images through a shared-memory arena instead of pickling
    # them into every dispatch: jobs carry a small ImageRef and workers
    # slice the mapped segment, so the job queue stops being the
    # bottleneck on large corpora.
    arena = None
    if shm.available() and jobs:
        arena, refs = shm.share_images([job[0] for job in jobs])
        jobs = [(ref,) + job[1:] for job, ref in zip(jobs, refs)]

    pool_size = workers or os.cpu_count() or 1
    max_inflight = _INFLIGHT_FACTOR * pool_size + 2
    if pool_factory is None:
        pool_factory = multiprocessing.Pool
    pool = pool_factory(
        processes=workers,
        initializer=_worker_init,
        initargs=(None if trace_dir is None else str(trace_dir),
                  max_rss_mb),
    )
    driver = BoundedPoolDriver(max_inflight=max_inflight,
                               backstop=backstop)

    def _submit(job):
        job = _breaker_filter(job)
        if job is None:
            return None
        faults.hit(faults.SITE_WORKER_DISPATCH)
        return job, pool.apply_async(
            _evaluate_job,
            (job, timeout, retries,
             None if trace_dir is None else str(trace_dir), backoff))

    def _collect(job, result):
        records, failures = result
        _absorb(records, failures, job)

    def _lost(job, message):
        _absorb([], _lost_worker_failures(job, message), job)

    try:
        try:
            driver.drive(jobs, _submit, _collect, _lost)
        except BaseException:
            # Abort path (--fail-fast, KeyboardInterrupt): drop the pool
            # immediately, in-flight work included.
            pool.terminate()
            pool.join()
            raise
        shutdown_pool(pool, lost_worker=driver.any_lost)
    finally:
        if arena is not None:
            arena.destroy()
    return report


def _worker_init(trace_dir: str | None, max_rss_mb: int | None) -> None:
    """Pool-worker initializer: recorder, fault counters, RSS ceiling.

    Workers must not inherit the parent recorder across ``fork`` —
    spans the parent collected before the pool spawned would be
    re-exported by every worker. Tracing runs get a fresh recorder;
    otherwise the no-op default is (re)installed. Fault-point hit
    counters restart at zero so a plan's ordinals are reproducible per
    worker, and ``max_rss_mb`` arms an address-space rlimit so runaway
    cells die by ``MemoryError`` inside their own isolation guard.
    """
    obs.set_recorder(obs.TraceRecorder() if trace_dir else None)
    faults.reset_counts()
    if max_rss_mb is not None:
        _apply_rss_limit(max_rss_mb)


def _apply_rss_limit(max_rss_mb: int) -> None:
    """Best-effort address-space ceiling for the current process."""
    try:
        import resource
    except ImportError:  # pragma: no cover — non-POSIX
        return
    limit = int(max_rss_mb) * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover — platform quirk
        pass


def _flush_job_trace(trace_dir: str) -> None:
    """Append this process's accumulated spans/counters to its part file."""
    recorder = obs.recorder()
    if not recorder.enabled:
        return
    path = Path(trace_dir) / f"worker-{os.getpid()}.jsonl"
    try:
        obs.append_payload(path, recorder.drain())
    except OSError:
        pass  # tracing is an accelerant, never a point of failure


def _image_bytes(stripped) -> bytes:
    """Resolve a job's image: raw bytes, or a shared-memory ref."""
    if isinstance(stripped, shm.ImageRef):
        return stripped.fetch()
    return stripped


def _entry_key(entry: CorpusEntry, tool: str) -> tuple:
    profile = entry.profile
    return (entry.suite, entry.program, profile.compiler, profile.bits,
            profile.pie, profile.opt, tool)


def _job_payload(entry: CorpusEntry, tool_names: list[str]) -> tuple:
    profile = entry.profile
    return (
        entry.stripped,
        frozenset(entry.binary.ground_truth.function_starts),
        entry.suite,
        entry.program,
        profile.compiler,
        profile.bits,
        profile.pie,
        profile.opt,
        tuple(tool_names),
    )


def _job_provenance(job: tuple) -> dict:
    (_stripped, _gt, suite, program, compiler, bits, pie, opt,
     _tool_names) = job
    return {
        "suite": suite,
        "program": program,
        "compiler": compiler,
        "bits": bits,
        "pie": pie,
        "opt": opt,
    }


def _lost_worker_failures(job: tuple, message: str) -> list[FailureRecord]:
    """Failure records for every cell of a job whose worker was lost."""
    prov = _job_provenance(job)
    tool_names = job[-1]
    return [
        FailureRecord(
            **prov,
            tool=name,
            phase=PHASE_WORKER,
            error_type="WorkerLost",
            message=message,
        )
        for name in tool_names
    ]


def _evaluate_job(
    job: tuple,
    timeout: float | None = None,
    retries: int = 0,
    trace_dir: str | None = None,
    backoff: float = 0.0,
) -> tuple[list[RunRecord], list[FailureRecord]]:
    """Evaluate one corpus entry; never raises.

    Runs in a pool worker (or in-process for ``workers=1``). Every
    cell failure is returned as data so nothing propagates across the
    process boundary as an exception.
    """
    try:
        return _evaluate_job_inner(job, timeout, retries, backoff)
    finally:
        if trace_dir is not None:
            _flush_job_trace(trace_dir)


def _evaluate_job_inner(
    job: tuple, timeout: float | None, retries: int, backoff: float = 0.0
) -> tuple[list[RunRecord], list[FailureRecord]]:
    (stripped, gt, suite, program, compiler, bits, pie, opt,
     tool_names) = job
    prov = _job_provenance(job)
    records: list[RunRecord] = []
    failures: list[FailureRecord] = []

    def _fail(tool: str, phase: str, error: BaseException,
              attempts: int, elapsed: float) -> None:
        failures.append(FailureRecord(
            **prov,
            tool=tool,
            phase=phase,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            elapsed_seconds=elapsed,
        ))

    with obs.span("entry", suite=suite, program=program):
        # Resolving inside the guarded cell means a torn-down arena
        # surfaces as an ordinary parse failure, not a worker crash.
        elf, error, attempts, elapsed = run_cell(
            faults.guarded(faults.SITE_CELL_EXECUTE,
                           lambda: ELFFile(_image_bytes(stripped))),
            timeout=timeout, retries=retries, backoff=backoff)
        if error is not None:
            for name in tool_names:
                _fail(name, PHASE_PARSE, error, attempts, elapsed)
            return records, failures

        gt_set = set(gt)
        cache = default_cache()
        with cache.batch() if cache is not None else nullcontext():
            for name in tool_names:
                cell_mark = obs.mark()
                result, error, attempts, elapsed = run_cell(
                    faults.guarded(
                        faults.SITE_CELL_EXECUTE,
                        lambda n=name: ALL_DETECTORS[n]().detect(elf)),
                    timeout=timeout, retries=retries, backoff=backoff)
                if error is not None:
                    _fail(name, PHASE_DETECT, error, attempts, elapsed)
                    continue
                with obs.span("score", tool=name):
                    confusion = score(gt_set, result.functions)
                phases = obs.phase_totals(cell_mark) or None
                records.append(RunRecord(
                    suite=suite,
                    program=program,
                    compiler=compiler,
                    bits=bits,
                    pie=pie,
                    opt=opt,
                    tool=name,
                    confusion=confusion,
                    elapsed_seconds=result.elapsed_seconds,
                    phase_seconds=phases,
                ))
    return records, failures
