"""Multi-process corpus evaluation.

The paper's full matrix is thousands of binaries; evaluation is
embarrassingly parallel across them. This runner fans corpus entries
out over a process pool and reassembles an :class:`EvalReport`
identical (up to timing jitter) to the serial one.

Detectors are addressed by registry name (``repro.baselines``), not by
instance — worker processes construct their own, so nothing stateful
crosses the fork boundary. Each worker parses its job's binary once
and runs every tool against that one ``ELFFile``, so the per-binary
analysis context (:mod:`repro.cache`) is built once per job and shared
across the job's tools; the opt-in disk cache crosses the fork
boundary through the inherited ``REPRO_CACHE_DIR`` environment.

Fault isolation mirrors the serial runner: each (binary, tool) cell is
guarded in the worker (exceptions and ``timeout`` become
:class:`~repro.eval.isolation.FailureRecord` entries), and the parent
additionally guards against the worker itself dying — a crashed or
wedged worker costs its own job a failure record, not the sweep.
``multiprocessing.Pool`` respawns replacement workers, so the
remaining jobs still run.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable

from repro.baselines import ALL_DETECTORS
from repro.elf.parser import ELFFile
from repro.errors import EvaluationAborted
from repro.eval.isolation import (
    PHASE_DETECT,
    PHASE_PARSE,
    PHASE_WORKER,
    FailureRecord,
    run_cell,
)
from repro.eval.metrics import score
from repro.eval.runner import EvalReport, RunRecord
from repro.synth.corpus import CorpusEntry

#: Extra wall-clock (seconds) the parent grants a worker beyond the
#: per-cell budgets before declaring it lost.
_BACKSTOP_GRACE = 30.0


def run_evaluation_parallel(
    corpus: Iterable[CorpusEntry],
    tool_names: list[str],
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 0,
    keep_going: bool = True,
) -> EvalReport:
    """Evaluate ``tool_names`` over ``corpus`` using a process pool.

    ``tool_names`` must be keys of
    :data:`repro.baselines.ALL_DETECTORS`. ``workers`` defaults to the
    CPU count; ``workers=1`` degrades to in-process execution (useful
    under debuggers).

    ``timeout`` bounds each (binary, tool) cell in wall-clock seconds
    (enforced inside the worker, with a parent-side backstop for
    workers that die outright); ``retries`` re-runs raising cells.
    With ``keep_going=False`` the first failed cell aborts the sweep
    via :class:`~repro.errors.EvaluationAborted`.
    """
    unknown = [t for t in tool_names if t not in ALL_DETECTORS]
    if unknown:
        raise ValueError(f"unknown detectors: {unknown}")
    jobs = [_job_payload(entry, tool_names) for entry in corpus]
    report = EvalReport()

    def _absorb(records: list[RunRecord],
                failures: list[FailureRecord]) -> None:
        report.records.extend(records)
        report.failures.extend(failures)
        if failures and not keep_going:
            f = failures[0]
            raise EvaluationAborted(
                f"[{f.suite}/{f.program}/{f.tool}] {f.phase}: "
                f"{f.error_type}: {f.message}"
            )

    if workers == 1:
        for job in jobs:
            records, failures = _evaluate_job(job, timeout, retries)
            _absorb(records, failures)
        return report

    # A worker enforces its own per-cell deadline; the parent-side
    # backstop only has to catch workers that never report back at all
    # (hard crash, uninterruptible hang).
    backstop = None
    if timeout is not None:
        per_job_cells = len(tool_names) + 1  # + the shared parse
        backstop = (timeout * (retries + 1) * per_job_cells
                    + _BACKSTOP_GRACE)

    pool = multiprocessing.Pool(processes=workers)
    try:
        pending = [
            (job, pool.apply_async(_evaluate_job, (job, timeout, retries)))
            for job in jobs
        ]
        for job, handle in pending:
            try:
                records, failures = handle.get(backstop)
            except multiprocessing.TimeoutError:
                records, failures = [], _lost_worker_failures(
                    job, f"worker exceeded {backstop:g}s backstop")
            except Exception as exc:  # worker died mid-job
                records, failures = [], _lost_worker_failures(
                    job, f"worker crashed: {type(exc).__name__}: {exc}")
            _absorb(records, failures)
    finally:
        pool.terminate()
        pool.join()
    return report


def _job_payload(entry: CorpusEntry, tool_names: list[str]) -> tuple:
    profile = entry.profile
    return (
        entry.stripped,
        frozenset(entry.binary.ground_truth.function_starts),
        entry.suite,
        entry.program,
        profile.compiler,
        profile.bits,
        profile.pie,
        profile.opt,
        tuple(tool_names),
    )


def _job_provenance(job: tuple) -> dict:
    (_stripped, _gt, suite, program, compiler, bits, pie, opt,
     _tool_names) = job
    return {
        "suite": suite,
        "program": program,
        "compiler": compiler,
        "bits": bits,
        "pie": pie,
        "opt": opt,
    }


def _lost_worker_failures(job: tuple, message: str) -> list[FailureRecord]:
    """Failure records for every cell of a job whose worker was lost."""
    prov = _job_provenance(job)
    tool_names = job[-1]
    return [
        FailureRecord(
            **prov,
            tool=name,
            phase=PHASE_WORKER,
            error_type="WorkerLost",
            message=message,
        )
        for name in tool_names
    ]


def _evaluate_job(
    job: tuple, timeout: float | None = None, retries: int = 0
) -> tuple[list[RunRecord], list[FailureRecord]]:
    """Evaluate one corpus entry; never raises.

    Runs in a pool worker (or in-process for ``workers=1``). Every
    cell failure is returned as data so nothing propagates across the
    process boundary as an exception.
    """
    (stripped, gt, suite, program, compiler, bits, pie, opt,
     tool_names) = job
    prov = _job_provenance(job)
    records: list[RunRecord] = []
    failures: list[FailureRecord] = []

    def _fail(tool: str, phase: str, error: BaseException,
              attempts: int, elapsed: float) -> None:
        failures.append(FailureRecord(
            **prov,
            tool=tool,
            phase=phase,
            error_type=type(error).__name__,
            message=str(error),
            attempts=attempts,
            elapsed_seconds=elapsed,
        ))

    elf, error, attempts, elapsed = run_cell(
        lambda: ELFFile(stripped), timeout=timeout, retries=retries)
    if error is not None:
        for name in tool_names:
            _fail(name, PHASE_PARSE, error, attempts, elapsed)
        return records, failures

    gt_set = set(gt)
    for name in tool_names:
        result, error, attempts, elapsed = run_cell(
            lambda n=name: ALL_DETECTORS[n]().detect(elf),
            timeout=timeout, retries=retries)
        if error is not None:
            _fail(name, PHASE_DETECT, error, attempts, elapsed)
            continue
        records.append(RunRecord(
            suite=suite,
            program=program,
            compiler=compiler,
            bits=bits,
            pie=pie,
            opt=opt,
            tool=name,
            confusion=score(gt_set, result.functions),
            elapsed_seconds=result.elapsed_seconds,
        ))
    return records, failures
