"""Multi-process corpus evaluation.

The paper's full matrix is thousands of binaries; evaluation is
embarrassingly parallel across them. This runner fans corpus entries
out over a process pool and reassembles an :class:`EvalReport`
identical (up to timing jitter) to the serial one.

Detectors are addressed by registry name (``repro.baselines``), not by
instance — worker processes construct their own, so nothing stateful
crosses the fork boundary.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable

from repro.baselines import ALL_DETECTORS
from repro.elf.parser import ELFFile
from repro.eval.metrics import score
from repro.eval.runner import EvalReport, RunRecord
from repro.synth.corpus import CorpusEntry


def run_evaluation_parallel(
    corpus: Iterable[CorpusEntry],
    tool_names: list[str],
    *,
    workers: int | None = None,
) -> EvalReport:
    """Evaluate ``tool_names`` over ``corpus`` using a process pool.

    ``tool_names`` must be keys of
    :data:`repro.baselines.ALL_DETECTORS`. ``workers`` defaults to the
    CPU count; ``workers=1`` degrades to in-process execution (useful
    under debuggers).
    """
    unknown = [t for t in tool_names if t not in ALL_DETECTORS]
    if unknown:
        raise ValueError(f"unknown detectors: {unknown}")
    jobs = [_job_payload(entry, tool_names) for entry in corpus]
    if workers == 1:
        results = [_evaluate_one(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            results = pool.map(_evaluate_one, jobs)
    report = EvalReport()
    for records in results:
        report.records.extend(records)
    return report


def _job_payload(entry: CorpusEntry, tool_names: list[str]) -> tuple:
    profile = entry.profile
    return (
        entry.stripped,
        frozenset(entry.binary.ground_truth.function_starts),
        entry.suite,
        entry.program,
        profile.compiler,
        profile.bits,
        profile.pie,
        profile.opt,
        tuple(tool_names),
    )


def _evaluate_one(job: tuple) -> list[RunRecord]:
    (stripped, gt, suite, program, compiler, bits, pie, opt,
     tool_names) = job
    elf = ELFFile(stripped)
    gt_set = set(gt)
    records = []
    for name in tool_names:
        result = ALL_DETECTORS[name]().detect(elf)
        records.append(RunRecord(
            suite=suite,
            program=program,
            compiler=compiler,
            bits=bits,
            pie=pie,
            opt=opt,
            tool=name,
            confusion=score(gt_set, result.functions),
            elapsed_seconds=result.elapsed_seconds,
        ))
    return records
