"""Shared-memory binary images for multi-process evaluation.

The parallel runners used to pickle every binary image through the
pool's job queue: each dispatch re-serialized megabytes of ``bytes``
through a pipe, so parallel speedup was bounded by the queue, not by
the workers. Instead, the parent packs all images into one
``multiprocessing.shared_memory`` arena up front and ships only tiny
picklable :class:`ImageRef` handles; workers map the segment once and
slice their image out of it with zero copies through the queue.

Ownership is strictly creator-side: the parent that built the
:class:`Arena` unlinks it (``destroy()``) after the pool is done.
Workers attach read-only-by-convention and must *not* let their
resource tracker reclaim the segment behind the creator's back —
:func:`_attach` passes ``track=False`` where Python supports it
(3.13+) and otherwise suppresses the tracker registration call for
the duration of the attach (the documented workaround).

Everything degrades gracefully: on platforms without POSIX shared
memory :func:`available` is false and callers fall back to shipping
raw bytes, which keeps outputs identical (just slower).
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass

from repro import obs

try:
    from multiprocessing import resource_tracker as _tracker
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover — non-POSIX build
    _shm = None
    _tracker = None


def available() -> bool:
    """Whether shared-memory arenas can be used on this platform."""
    return _shm is not None


#: Per-process cache of attached segments, keyed by segment name. Pool
#: workers serve many jobs from the same arena; mapping it once per
#: process is the entire point.
_ATTACHED: dict[str, object] = {}


def _attach(name: str):
    seg = _ATTACHED.get(name)
    if seg is None:
        # Attaching must not register the segment with the resource
        # tracker: the tracker would unlink the creator's arena at
        # worker exit, and forked workers share one tracker process, so
        # register-then-unregister pairs from two workers can interleave
        # into a spurious KeyError traceback inside the tracker. Use
        # ``track=False`` (3.13+) when present; otherwise suppress the
        # registration call for the duration of the attach — unlike
        # unregistering afterwards, no tracker message is sent at all.
        try:
            seg = _shm.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13
            orig = _tracker.register
            _tracker.register = lambda *a, **k: None
            try:
                seg = _shm.SharedMemory(name=name)
            finally:
                _tracker.register = orig
        _ATTACHED[name] = seg
        obs.add("shm.attaches", 1)
    return seg


@dataclass(frozen=True)
class ImageRef:
    """Picklable handle to one binary image inside an arena."""

    segment: str
    offset: int
    length: int

    def fetch(self) -> bytes:
        """Materialize the image bytes (maps the segment on first use)."""
        seg = _attach(self.segment)
        obs.add("shm.fetches", 1)
        return bytes(seg.buf[self.offset : self.offset + self.length])


#: Creator-side registry of live arenas, keyed by segment name. An
#: uncaught exception or KeyboardInterrupt between ``share_images`` and
#: the clean-path ``destroy()`` used to strand the ``/dev/shm`` segment
#: until reboot; the atexit sweep below reclaims those. The registry is
#: pid-stamped so a forked worker that inherits it never unlinks the
#: parent's segments on its own exit.
_LIVE_ARENAS: dict[str, "Arena"] = {}
_atexit_registered = False


def _reap_live_arenas() -> None:
    for arena in list(_LIVE_ARENAS.values()):
        if arena._creator_pid == os.getpid():
            obs.add("shm.atexit_reaped", 1)
            arena.destroy()


def _register_arena(arena: "Arena") -> None:
    global _atexit_registered
    _LIVE_ARENAS[arena.name] = arena
    if not _atexit_registered:
        atexit.register(_reap_live_arenas)
        _atexit_registered = True


class Arena:
    """One creator-owned segment packing many images back to back."""

    def __init__(self, seg) -> None:
        self._seg = seg
        self._creator_pid = os.getpid()
        self._destroyed = False

    @property
    def name(self) -> str:
        return self._seg.name

    def destroy(self) -> None:
        """Close and unlink the segment; call once the pool is done.

        Idempotent: crash-recovery paths (``finally`` blocks, the atexit
        sweep, explicit cleanup) may all race to call it, and only the
        first call acts. Live worker mappings survive the unlink (POSIX
        semantics); the kernel reclaims the memory when the last mapping
        closes.
        """
        if self._destroyed:
            return
        self._destroyed = True
        _LIVE_ARENAS.pop(self._seg.name, None)
        attached = _ATTACHED.pop(self._seg.name, None)
        if attached is not None and attached is not self._seg:
            try:
                attached.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._seg.close()
            self._seg.unlink()
        except OSError:  # pragma: no cover — already gone
            pass


def share_images(images: list[bytes]) -> tuple[Arena, list[ImageRef]]:
    """Pack ``images`` into one fresh arena; returns it plus the refs."""
    total = sum(len(b) for b in images)
    seg = _shm.SharedMemory(create=True, size=max(total, 1))
    refs: list[ImageRef] = []
    offset = 0
    for data in images:
        seg.buf[offset : offset + len(data)] = data
        refs.append(ImageRef(seg.name, offset, len(data)))
        offset += len(data)
    obs.add("shm.images", len(images))
    obs.add("shm.bytes", total)
    arena = Arena(seg)
    _register_arena(arena)
    return arena, refs
