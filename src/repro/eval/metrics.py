"""Precision / recall metrics for function identification (§V)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Confusion:
    """Pooled true/false positive/negative counts."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def add(self, other: "Confusion") -> None:
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn


def score(ground_truth: set[int], detected: set[int]) -> Confusion:
    """Confusion counts of one detection run against ground truth."""
    tp = len(ground_truth & detected)
    return Confusion(
        tp=tp,
        fp=len(detected) - tp,
        fn=len(ground_truth) - tp,
    )


def false_positives(ground_truth: set[int], detected: set[int]) -> set[int]:
    return detected - ground_truth


def false_negatives(ground_truth: set[int], detected: set[int]) -> set[int]:
    return ground_truth - detected


def score_boundaries(
    true_boundaries: dict[int, int],
    detected_boundaries: dict[int, int],
    *,
    tolerance: int = 0,
) -> Confusion:
    """Confusion counts over (entry, end) function boundaries.

    A detected boundary is a true positive when its entry matches a
    ground-truth entry exactly and its end lands within ``tolerance``
    bytes of the true end — the boundary-identification metric used by
    FETCH-style evaluations.
    """
    tp = 0
    for entry, end in detected_boundaries.items():
        true_end = true_boundaries.get(entry)
        if true_end is not None and abs(end - true_end) <= tolerance:
            tp += 1
    return Confusion(
        tp=tp,
        fp=len(detected_boundaries) - tp,
        fn=len(true_boundaries)
        - sum(1 for e in true_boundaries if e in detected_boundaries
              and abs(detected_boundaries[e] - true_boundaries[e])
              <= tolerance),
    )
