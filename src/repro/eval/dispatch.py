"""Bounded-window, out-of-order process-pool dispatch.

Two pipelines fan work out over a ``multiprocessing.Pool`` and must
survive workers that crash or wedge: the corpus evaluation runner
(:mod:`repro.eval.parallel`) and the fleet-scan ingest pipeline
(:mod:`repro.ingest.pipeline`). Both need the same driving discipline,
extracted here:

- **Backpressure.** Jobs are pulled lazily from an iterator and at most
  ``max_inflight`` are outstanding, so a job source that is itself a
  streaming generator (a directory walk over a million binaries) is
  only advanced as pool capacity frees up — parent memory stays bounded
  by the window, not the corpus.
- **Out-of-order absorption.** Finished handles are absorbed as soon as
  they are ready, regardless of dispatch order, so one slow job never
  delays the results behind it.
- **Per-job backstop deadlines.** Each dispatched job carries an
  absolute deadline armed at dispatch. Because a queued job's clock
  cannot fairly run while the pool is busy elsewhere, every completed
  job refreshes the deadlines of the jobs still pending — one wedged
  worker costs the run roughly a single backstop beyond its useful
  work, never ``jobs × backstop``.
- **Lost-worker accounting.** A handle whose ``get`` raises (the worker
  died mid-job) or whose backstop expired is reported through the
  ``on_lost`` callback and counted, so the caller can decide between a
  clean ``close()`` and a ``terminate()`` at shutdown.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator

from repro import obs

#: Sleep between handle polls when nothing completed this round.
_POLL_INTERVAL = 0.02


class BoundedPoolDriver:
    """Drive jobs through an async pool with a bounded in-flight window.

    Parameters
    ----------
    max_inflight:
        Upper bound on outstanding (dispatched, unabsorbed) jobs.
    backstop:
        Seconds a dispatched job may remain pending with no pool
        progress before its worker is declared lost. ``None`` disables
        the deadline (jobs wait forever, trusting in-worker watchdogs).
    poll_interval:
        Sleep between polls when no handle completed.
    """

    def __init__(
        self,
        *,
        max_inflight: int,
        backstop: float | None = None,
        poll_interval: float = _POLL_INTERVAL,
    ) -> None:
        self.max_inflight = max_inflight
        self.backstop = backstop
        self.poll_interval = poll_interval
        #: Number of workers declared lost (crash or backstop expiry).
        self.lost_workers = 0

    @property
    def any_lost(self) -> bool:
        return self.lost_workers > 0

    def drive(
        self,
        jobs: Iterable,
        submit: Callable[[object], tuple[object, object] | None],
        absorb: Callable[[object, object], None],
        on_lost: Callable[[object, str], None],
    ) -> None:
        """Pull ``jobs`` lazily, dispatch through ``submit``, collect.

        ``submit(job)`` either returns ``(job', handle)`` — possibly a
        transformed job plus its ``AsyncResult``-like handle — or
        ``None`` when the job was consumed without pool work (filtered,
        skipped, journaled inline). ``absorb(job', result)`` receives
        each completed job's result in completion order. ``on_lost(job',
        message)`` is called instead when the worker died or blew its
        backstop. Callbacks run in the caller's thread; exceptions they
        raise propagate (the caller owns pool shutdown).
        """
        job_iter: Iterator = iter(jobs)
        # [job, handle, absolute-deadline-or-None], mutated in place.
        pending: list[list] = []

        def _fill(now: float) -> None:
            while len(pending) < self.max_inflight:
                job = next(job_iter, None)
                if job is None:
                    return
                dispatched = submit(job)
                if dispatched is None:
                    continue
                sent, handle = dispatched
                pending.append([
                    sent, handle,
                    None if self.backstop is None else now + self.backstop,
                ])

        _fill(time.monotonic())
        while pending:
            progressed = False
            for item in list(pending):
                job, handle, _deadline = item
                if not handle.ready():
                    continue
                pending.remove(item)
                progressed = True
                try:
                    result = handle.get(0)
                except Exception as exc:  # worker died mid-job
                    self._lose(on_lost, job,
                               f"worker crashed: {type(exc).__name__}: "
                               f"{exc}")
                else:
                    absorb(job, result)
            now = time.monotonic()
            if self.backstop is not None and pending:
                if progressed:
                    # A completion proves the pool is alive; a pending
                    # job may only just have been picked up by a
                    # worker, so its backstop clock restarts now.
                    fresh = now + self.backstop
                    for item in pending:
                        item[2] = fresh
                else:
                    for item in list(pending):
                        if now < item[2]:
                            continue
                        pending.remove(item)
                        progressed = True
                        self._lose(
                            on_lost, item[0],
                            f"worker exceeded {self.backstop:g}s backstop")
            _fill(now)
            if not progressed and pending:
                time.sleep(self.poll_interval)

    def _lose(self, on_lost, job, message: str) -> None:
        self.lost_workers += 1
        obs.add("eval.workers_lost", 1)
        on_lost(job, message)


def shutdown_pool(pool, *, lost_worker: bool) -> None:
    """Close or terminate a pool after a clean drive.

    Clean completion lets in-flight worker code (e.g. a cache put or a
    trace flush) finish instead of killing it mid-write — unless a
    worker was declared lost, in which case ``join()`` could block on
    its wedged process forever.
    """
    if lost_worker:
        pool.terminate()
    else:
        pool.close()
    pool.join()
