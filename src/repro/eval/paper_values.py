"""The paper's reported numbers, for side-by-side comparison.

Transcribed from Kim et al., "How'd Security Benefit Reverse
Engineers?" (DSN 2022): Table I, Figure 3, Table II, and Table III.
Used by the table renderers and by the reproduction-shape assertions in
the benchmarks (we match *shape* — orderings and rough magnitudes — not
exact values, since the substrate is synthetic).
"""

from __future__ import annotations

# Table I: distribution of end-branch locations, % of all end-branches.
# (compiler, suite) -> (function entry, indirect return, exception)
TABLE1 = {
    ("gcc", "coreutils"): (99.98, 0.02, 0.00),
    ("gcc", "binutils"): (99.99, 0.01, 0.00),
    ("gcc", "spec"): (79.60, 0.02, 20.38),
    ("clang", "coreutils"): (99.98, 0.02, 0.00),
    ("clang", "binutils"): (99.99, 0.01, 0.00),
    ("clang", "spec"): (72.10, 0.02, 27.88),
}

# Figure 3: function-property Venn regions, % of all functions.
# Region key: (EndBrAtHead, DirCallTarget, DirJmpTarget) membership.
FIGURE3 = {
    frozenset(): 0.01,
    frozenset({"EndBrAtHead"}): 48.85,
    frozenset({"DirCallTarget"}): 10.01,
    frozenset({"DirJmpTarget"}): 0.44,
    frozenset({"EndBrAtHead", "DirCallTarget"}): 37.79,
    frozenset({"EndBrAtHead", "DirJmpTarget"}): 1.44,
    frozenset({"DirCallTarget", "DirJmpTarget"}): 0.23,
    frozenset({"EndBrAtHead", "DirCallTarget", "DirJmpTarget"}): 1.23,
}

# Table II: FunSeeker configurations ① - ④, (precision, recall) %.
# (compiler, suite) -> {config: (prec, rec)}
TABLE2 = {
    ("gcc", "binutils"): {
        1: (98.946, 99.515), 2: (98.954, 99.515),
        3: (26.928, 100.0), 4: (98.947, 99.784),
    },
    ("gcc", "coreutils"): {
        1: (99.377, 99.157), 2: (99.396, 99.157),
        3: (40.520, 99.997), 4: (99.380, 99.652),
    },
    ("gcc", "spec"): {
        1: (81.439, 99.783), 2: (99.665, 99.783),
        3: (27.184, 99.986), 4: (98.925, 99.889),
    },
    ("clang", "binutils"): {
        1: (99.992, 99.506), 2: (100.0, 99.506),
        3: (23.901, 99.931), 4: (100.0, 99.652),
    },
    ("clang", "coreutils"): {
        1: (99.979, 99.230), 2: (100.0, 99.230),
        3: (33.036, 100.0), 4: (100.0, 99.250),
    },
    ("clang", "spec"): {
        1: (71.059, 99.884), 2: (99.976, 99.866),
        3: (23.057, 99.999), 4: (99.975, 99.923),
    },
}

TABLE2_TOTAL = {
    1: (80.623, 99.734), 2: (99.745, 99.734),
    3: (26.295, 99.988), 4: (99.475, 99.828),
}

# Table III: (bits, suite) -> {tool: (prec, rec)}; times separately.
TABLE3 = {
    (32, "binutils"): {
        "funseeker": (99.482, 99.775), "ida": (91.099, 72.136),
        "ghidra": (91.213, 74.337), "fetch": (98.897, 49.997),
    },
    (32, "coreutils"): {
        "funseeker": (99.690, 99.268), "ida": (96.004, 60.091),
        "ghidra": (70.136, 73.512), "fetch": (99.285, 51.787),
    },
    (32, "spec"): {
        "funseeker": (99.358, 99.911), "ida": (89.188, 74.980),
        "ghidra": (96.372, 87.142), "fetch": (98.602, 84.193),
    },
    (64, "binutils"): {
        "funseeker": (99.462, 99.666), "ida": (95.364, 77.112),
        "ghidra": (98.970, 98.462), "fetch": (99.436, 99.895),
    },
    (64, "coreutils"): {
        "funseeker": (99.671, 99.237), "ida": (97.956, 64.409),
        "ghidra": (93.652, 98.705), "fetch": (99.633, 99.224),
    },
    (64, "spec"): {
        "funseeker": (99.379, 99.897), "ida": (93.885, 80.416),
        "ghidra": (97.967, 98.758), "fetch": (99.554, 99.970),
    },
}

TABLE3_TOTAL = {
    "funseeker": (99.407, 99.828), "ida": (92.292, 76.285),
    "ghidra": (95.754, 91.994), "fetch": (99.194, 89.143),
}

#: Average per-binary analysis time (seconds), Table III.
TABLE3_TIME = {"funseeker": 1.181, "fetch": 6.031}
TABLE3_SPEEDUP = 5.1  # FunSeeker vs FETCH

# §V-C error analysis.
FN_DEAD_FRACTION = 0.933
FN_TAIL_FRACTION = 0.067
FP_FRAGMENT_FRACTION = 1.0
# §IV-D: SELECTTAILCALL raises precision by 73.18 points over raw J.
TAILCALL_PRECISION_GAIN = 73.18
