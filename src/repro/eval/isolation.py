"""Per-cell fault isolation for evaluation sweeps.

One evaluation *cell* is a single (binary, tool) run. At corpus scale
(the paper's 8,136 binaries, or a production sweep over untrusted
inputs) a cell must be allowed to fail — crash, raise, or hang —
without taking the sweep down with it. This module provides the three
pieces the serial and parallel runners share:

- :class:`FailureRecord` — the structured account of one failed cell.
- :func:`deadline` — a wall-clock watchdog around one cell.
- :func:`run_cell` — bounded-retry execution of one cell body.

The watchdog uses ``SIGALRM``, which interrupts pure-Python loops (the
realistic hang mode for this code base). It only arms on the main
thread of a process; elsewhere it degrades to unenforced execution —
worker processes run cells on their main thread, so both the serial
runner and pool workers get real enforcement.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import CellTimeoutError, is_permanent_failure

#: Evaluation phases a cell can fail in.
PHASE_PARSE = "parse"
PHASE_DETECT = "detect"
PHASE_WORKER = "worker"


@dataclass(frozen=True)
class FailureRecord:
    """One failed (binary, tool) evaluation cell.

    Carries the same provenance fields as
    :class:`~repro.eval.runner.RunRecord` so ``EvalReport.filtered``
    treats successes and failures uniformly.
    """

    suite: str
    program: str
    compiler: str
    bits: int
    pie: bool
    opt: str
    tool: str
    phase: str               # PHASE_PARSE / PHASE_DETECT / PHASE_WORKER
    error_type: str
    message: str
    attempts: int = 1
    elapsed_seconds: float = 0.0
    #: Whether the requested wall-clock deadline was actually armed
    #: while this cell ran. ``False`` means the caller asked for a
    #: timeout from a context where ``SIGALRM`` cannot fire (off the
    #: main thread) — the cell ran unbounded.
    enforced: bool = True

    @property
    def is_timeout(self) -> bool:
        return self.error_type == CellTimeoutError.__name__


def watchdog_armable() -> bool:
    """Whether :func:`deadline` can arm ``SIGALRM`` *here*.

    True only on the main thread of a process on a platform with
    ``SIGALRM``. Callers that request timeouts from worker threads can
    check this to record ``enforced=False`` on their failure artifacts
    instead of silently running unbounded.
    """
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


_alarm_usable = watchdog_armable


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` if the body outlives ``seconds``.

    ``None`` (or a non-positive value) disables enforcement. Running
    off the main thread, where ``SIGALRM`` cannot be armed, also
    disables it — but *loudly*: the ``isolation.watchdog_unarmed``
    counter is bumped on every such call and a warn-once line names
    the problem, so an operator who configured ``--timeout`` learns it
    is not being enforced.

    Deadlines compose: arming a nested deadline suspends any outer
    ``ITIMER_REAL`` budget and, on exit, re-arms the outer timer with
    its *remaining* time (the inner body's elapsed wall clock is
    charged against it). An outer budget that expired while the inner
    one was armed fires immediately after the inner scope exits.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if not watchdog_armable():
        from repro.obs.log import warn_once

        warn_once(
            "isolation.watchdog_unarmed",
            f"a {seconds:g}s cell deadline was requested off the main "
            f"thread, where SIGALRM cannot be armed — the timeout is "
            f"NOT enforced (run analyses in a supervised worker "
            f"process to enforce it)")
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"evaluation cell exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    outer_delay, _outer_interval = signal.setitimer(
        signal.ITIMER_REAL, seconds)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_delay > 0.0:
            # Restore the outer watchdog's remainder; an already-blown
            # outer budget is re-armed with an epsilon so it fires as
            # soon as the outer handler is back in place.
            remaining = outer_delay - (time.monotonic() - started)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6))


#: Multiplicative jitter range applied to each retry backoff sleep.
_JITTER = 0.5


def run_cell(
    body: Callable[[], object],
    *,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.0,
) -> tuple[object | None, BaseException | None, int, float]:
    """Execute one cell body with watchdog and taxonomy-aware retry.

    Returns ``(result, error, attempts, elapsed_seconds)``. ``error``
    is ``None`` on success; otherwise it is the exception of the final
    attempt. Retry is gated by the :mod:`repro.errors` taxonomy:

    - **Timeouts** are never retried — a deterministic pipeline that
      blew its budget once will blow it again.
    - **Permanent** failures (:func:`~repro.errors.is_permanent_failure`:
      structural input corruption such as
      :class:`~repro.errors.MalformedELFError`, or an RSS-ceiling
      ``MemoryError``) fail fast on the first attempt instead of
      burning the retry budget on a deterministic rejection.
    - **Transient** failures (I/O errors, injected transient faults,
      and — conservatively — any undocumented exception) are retried
      up to ``retries`` extra times, sleeping
      ``backoff * 2**(attempt-1)`` seconds with multiplicative jitter
      between attempts (``backoff=0``, the default, disables the
      sleep).
    """
    started = time.perf_counter()
    error: BaseException | None = None
    attempts = 0
    budget = max(0, retries) + 1
    for _ in range(budget):
        attempts += 1
        try:
            with deadline(timeout):
                result = body()
            return result, None, attempts, time.perf_counter() - started
        except CellTimeoutError as exc:
            error = exc
            break
        except Exception as exc:
            error = exc
            if is_permanent_failure(exc):
                break
        if backoff > 0 and attempts < budget:
            delay = backoff * (2.0 ** (attempts - 1))
            time.sleep(delay * (1.0 + random.random() * _JITTER))
    return None, error, attempts, time.perf_counter() - started
