"""Per-cell fault isolation for evaluation sweeps.

One evaluation *cell* is a single (binary, tool) run. At corpus scale
(the paper's 8,136 binaries, or a production sweep over untrusted
inputs) a cell must be allowed to fail — crash, raise, or hang —
without taking the sweep down with it. This module provides the three
pieces the serial and parallel runners share:

- :class:`FailureRecord` — the structured account of one failed cell.
- :func:`deadline` — a wall-clock watchdog around one cell.
- :func:`run_cell` — bounded-retry execution of one cell body.

The watchdog uses ``SIGALRM``, which interrupts pure-Python loops (the
realistic hang mode for this code base). It only arms on the main
thread of a process; elsewhere it degrades to unenforced execution —
worker processes run cells on their main thread, so both the serial
runner and pool workers get real enforcement.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import CellTimeoutError

#: Evaluation phases a cell can fail in.
PHASE_PARSE = "parse"
PHASE_DETECT = "detect"
PHASE_WORKER = "worker"


@dataclass(frozen=True)
class FailureRecord:
    """One failed (binary, tool) evaluation cell.

    Carries the same provenance fields as
    :class:`~repro.eval.runner.RunRecord` so ``EvalReport.filtered``
    treats successes and failures uniformly.
    """

    suite: str
    program: str
    compiler: str
    bits: int
    pie: bool
    opt: str
    tool: str
    phase: str               # PHASE_PARSE / PHASE_DETECT / PHASE_WORKER
    error_type: str
    message: str
    attempts: int = 1
    elapsed_seconds: float = 0.0

    @property
    def is_timeout(self) -> bool:
        return self.error_type == CellTimeoutError.__name__


def _alarm_usable() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Raise :class:`CellTimeoutError` if the body outlives ``seconds``.

    ``None`` (or a non-positive value) disables enforcement, as does
    running off the main thread, where ``SIGALRM`` cannot be armed.
    """
    if not seconds or seconds <= 0 or not _alarm_usable():
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeoutError(
            f"evaluation cell exceeded {seconds:g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def run_cell(
    body: Callable[[], object],
    *,
    timeout: float | None = None,
    retries: int = 0,
) -> tuple[object | None, BaseException | None, int, float]:
    """Execute one cell body with watchdog and bounded retry.

    Returns ``(result, error, attempts, elapsed_seconds)``. ``error``
    is ``None`` on success; otherwise it is the exception of the final
    attempt. Timeouts are not retried — a deterministic pipeline that
    blew its budget once will blow it again.
    """
    started = time.perf_counter()
    error: BaseException | None = None
    attempts = 0
    for _ in range(max(0, retries) + 1):
        attempts += 1
        try:
            with deadline(timeout):
                result = body()
            return result, None, attempts, time.perf_counter() - started
        except CellTimeoutError as exc:
            error = exc
            break
        except Exception as exc:
            error = exc
    return None, error, attempts, time.perf_counter() - started
