"""Two-level analysis-artifact cache.

Level 1 — :mod:`repro.cache.context`: an in-memory
:class:`~repro.cache.context.AnalysisContext` attached to each parsed
:class:`~repro.elf.parser.ELFFile`, memoizing the artifacts every
detector otherwise recomputes (sweep results, exception metadata, PLT
map, CET features). Always on; shared wherever an ``ELFFile`` instance
is shared.

Level 2 — :mod:`repro.cache.disk`: an opt-in content-addressed on-disk
cache (``$REPRO_CACHE_DIR`` or the CLI's ``--cache-dir``) keyed by the
SHA-256 of the binary image and versioned by a schema tag, so repeated
benchmark and table regenerations skip re-analysis entirely.

Invariant: cached and uncached runs are bit-identical — enforced by the
no-new-diagnostics store guard and strict document codecs, and tested
over the fuzz mutation corpus.
"""

from repro.cache.context import AnalysisContext, get_context
from repro.cache.disk import (
    DiskCache,
    SCHEMA_TAG,
    default_cache,
    namespaced_cache,
    reset_default_cache,
    set_default_cache,
    valid_namespace,
)

__all__ = [
    "AnalysisContext",
    "DiskCache",
    "SCHEMA_TAG",
    "default_cache",
    "get_context",
    "namespaced_cache",
    "reset_default_cache",
    "set_default_cache",
    "valid_namespace",
]
