"""Content-addressed on-disk cache for analysis artifacts.

Layout::

    <root>/                      default .repro-cache/, or $REPRO_CACHE_DIR
      <schema-tag>/              one directory per document schema version
        <hash>.<artifact>.json   sha256 of the *binary image*, not the path

Keys are the SHA-256 of the analyzed file's bytes, so a rebuilt or
copied binary with identical content hits, and any edit misses — no
mtime heuristics. Invalidation is structural: a code change that alters
any cached document's shape bumps :data:`SCHEMA_TAG`, which moves every
new entry into a fresh subdirectory; stale schema directories are
reclaimed by ``repro cache clear`` (or by eviction, which walks the
whole root).

Writes are atomic (tmp file + ``os.replace``) so a crashed run never
leaves a half-written entry, and loads treat any unreadable or
malformed entry as a miss. The cache is an accelerator, never a point
of failure: every filesystem error degrades to "no cache".

Two policies keep cold (store-heavy) runs from costing more than the
work they cache:

- **Durability is relaxed by default.** Entries are written atomically
  but *not* fsynced per store — a power loss may drop recent entries,
  which only costs a recompute. Pass ``fsync=True`` to restore
  per-entry durability.
- **Eviction is amortized.** The entry count is estimated from one
  initial census plus per-store increments; the root is only re-walked
  (``evict_scans`` counts these) when the estimate overflows
  ``max_entries``. Per-binary callers additionally coalesce their
  stores with :meth:`DiskCache.batch`, which defers writes and runs a
  single eviction check at exit.

The process-wide default instance is **opt-in**: it exists only when
``REPRO_CACHE_DIR`` is set (or a CLI flag / test installed one via
:func:`set_default_cache`). The in-memory layer
(:mod:`repro.cache.context`) is always on.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs

#: Bump whenever any document produced by repro.cache.serialize (or the
#: meaning of an artifact name) changes shape.
SCHEMA_TAG = "v1"

#: Environment variable that opts a process into the disk cache.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default eviction bound (entries per cache root, across schemas).
DEFAULT_MAX_ENTRIES = 4096

#: Age (seconds) past which an orphaned write temp file — left behind
#: by a process killed mid-``put`` — is considered abandoned and
#: reclaimable. Younger temp files may belong to a live writer.
TMP_GRACE_SECONDS = 600.0


@dataclass
class CacheStats:
    """Session counters plus an on-disk census."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Lookups a caller deliberately skipped because the computation is
    #: cheaper than a cache round trip (see ``DISK_CACHE_MIN_COST_PER_MB``).
    bypasses: int = 0
    #: Full directory walks performed by the eviction machinery.
    evict_scans: int = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "evict_scans": self.evict_scans,
        }


@dataclass
class DiskCache:
    """One content-addressed cache root.

    ``max_entries`` bounds the number of entry files across all schema
    directories; the oldest (by mtime) are evicted when a store
    overflows the bound. The count is tracked incrementally — only the
    first store and an actual overflow walk the directory tree.
    """

    root: Path
    max_entries: int = DEFAULT_MAX_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    #: When true, every entry is fsynced before the atomic rename.
    #: Off by default: losing a cache entry to power failure only costs
    #: a recompute, and per-entry fsyncs dominated cold-run wall time.
    fsync: bool = False

    _pending: dict[tuple[str, str], dict] = field(
        default_factory=dict, init=False, repr=False
    )
    _batch_depth: int = field(default=0, init=False, repr=False)
    _entry_count: int | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- paths --------------------------------------------------------------

    def _schema_dir(self) -> Path:
        return self.root / SCHEMA_TAG

    def _entry_path(self, content_hash: str, artifact: str) -> Path:
        return self._schema_dir() / f"{content_hash}.{artifact}.json"

    # -- operations ---------------------------------------------------------

    def get(self, content_hash: str, artifact: str) -> dict | None:
        """Load one document, or ``None`` on any kind of miss.

        The ``cache.get`` fault point sits inside the guarded region:
        an injected I/O error takes the ordinary miss path, and an
        injected ``corrupt`` scribbles over the on-disk entry *before*
        the read so the real malformed-entry handling is what recovers.
        """
        staged = self._pending.get((content_hash, artifact))
        if staged is not None:
            self.stats.hits += 1
            obs.add("cache.hits", 1)
            return staged
        path = self._entry_path(content_hash, artifact)
        try:
            kind = faults.hit(faults.SITE_CACHE_GET)
            if kind == faults.KIND_CORRUPT and path.exists():
                path.write_bytes(b"\x00corrupted-cache-entry")
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError):
            self.stats.misses += 1
            obs.add("cache.misses", 1)
            return None
        if not isinstance(doc, dict):
            self.stats.misses += 1
            obs.add("cache.misses", 1)
            return None
        self.stats.hits += 1
        obs.add("cache.hits", 1)
        return doc

    def put(self, content_hash: str, artifact: str, doc: dict) -> bool:
        """Store one document atomically; best-effort, never raises.

        Inside a :meth:`batch` the document is only staged (lookups
        still see it) and written at batch exit, so a binary's worth of
        stores pays one eviction check instead of one per artifact.
        """
        if self._batch_depth > 0:
            self._pending[(content_hash, artifact)] = doc
            return True
        ok = self._write(content_hash, artifact, doc)
        if ok:
            self._maybe_evict()
        return ok

    def _write(self, content_hash: str, artifact: str, doc: dict) -> bool:
        directory = self._schema_dir()
        try:
            faults.hit(faults.SITE_CACHE_PUT)
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    # One buffer + one write: json.dump streams many
                    # tiny writes through the text wrapper, measurably
                    # slower across a cold run's thousands of stores.
                    f.write(json.dumps(
                        doc, sort_keys=True, separators=(",", ":")))
                    if self.fsync:
                        f.flush()
                        os.fsync(f.fileno())
                os.replace(tmp, self._entry_path(content_hash, artifact))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stats.stores += 1
        obs.add("cache.stores", 1)
        if self._entry_count is not None:
            # Overwrites inflate the estimate; harmless — an inflated
            # count only triggers an earlier real recount in _evict().
            self._entry_count += 1
        return True

    def note_bypass(self) -> None:
        """Record a deliberate skip of the disk layer (cheap detector)."""
        self.stats.bypasses += 1
        obs.add("cache.bypassed", 1)

    @contextmanager
    def batch(self) -> Iterator[DiskCache]:
        """Coalesce stores; re-entrant. Flushes at outermost exit."""
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self.flush()

    def flush(self) -> int:
        """Write staged documents; return how many landed on disk."""
        if not self._pending:
            return 0
        pending, self._pending = self._pending, {}
        written = 0
        for (content_hash, artifact), doc in pending.items():
            if self._write(content_hash, artifact, doc):
                written += 1
        if written:
            self._maybe_evict()
        return written

    def _entries(self) -> list[Path]:
        """Every entry file under the root, across schema directories."""
        if not self.root.is_dir():
            return []
        return [
            p
            for schema_dir in self.root.iterdir()
            if schema_dir.is_dir()
            for p in schema_dir.glob("*.json")
            if not p.name.startswith(".tmp-")
        ]

    def _stale_tmps(self, *, grace: float = TMP_GRACE_SECONDS) -> list[Path]:
        """Orphaned ``.tmp-*`` write files older than the grace period.

        ``_entries()`` deliberately hides temp files from hit/miss
        lookups, but a worker killed mid-``put`` (e.g. by
        ``pool.terminate()``) leaves them behind permanently — so
        eviction and ``clear()`` must see them or they leak forever.
        """
        if not self.root.is_dir():
            return []
        cutoff = time.time() - grace
        stale: list[Path] = []
        for schema_dir in self.root.iterdir():
            if not schema_dir.is_dir():
                continue
            for p in schema_dir.glob(".tmp-*"):
                try:
                    if p.stat().st_mtime <= cutoff:
                        stale.append(p)
                except OSError:
                    pass
        return stale

    def _sweep_stale_tmps(self, *, grace: float = TMP_GRACE_SECONDS) -> int:
        removed = 0
        for path in self._stale_tmps(grace=grace):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            obs.add("cache.tmp_reclaimed", removed)
        return removed

    def _maybe_evict(self) -> None:
        """Amortized eviction: walk the tree only when it might matter.

        The first call seeds an entry-count estimate with one census;
        stores increment it from then on, and only an estimate above
        ``max_entries`` pays for a real scan. This replaces the
        walk-everything-per-store behavior that made cold runs O(N²)
        in the number of stored entries.
        """
        if self._entry_count is None:
            # The seed scan doubles as the per-process orphan sweep:
            # temp files abandoned by killed writers are reclaimed here
            # (and again on real overflows) instead of on every store.
            self._sweep_stale_tmps()
            self._entry_count = len(self._entries())
            self.stats.evict_scans += 1
            obs.add("cache.evict_scans", 1)
        if self._entry_count <= self.max_entries:
            return
        self._evict()

    def _evict(self) -> None:
        self._sweep_stale_tmps()
        entries = self._entries()
        self.stats.evict_scans += 1
        obs.add("cache.evict_scans", 1)
        excess = len(entries) - self.max_entries
        if excess <= 0:
            self._entry_count = len(entries)
            return
        def _mtime(p: Path) -> float:
            try:
                return p.stat().st_mtime
            except OSError:
                return 0.0
        removed = 0
        for path in sorted(entries, key=_mtime)[:excess]:
            try:
                path.unlink()
                removed += 1
                self.stats.evictions += 1
                obs.add("cache.evictions", 1)
            except OSError:
                pass
        self._entry_count = len(entries) - removed

    def clear(self) -> int:
        """Delete every entry (all schema versions); return the count.

        Also reclaims abandoned write temp files past their grace
        period and prunes schema directories left empty — stale-schema
        directories otherwise linger forever in ``cache stats`` output.
        """
        self._pending.clear()
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        removed += self._sweep_stale_tmps()
        self._prune_empty_schema_dirs()
        self._entry_count = 0
        return removed

    def _prune_empty_schema_dirs(self) -> None:
        """Remove emptied schema directories other than the current one."""
        if not self.root.is_dir():
            return
        for schema_dir in self.root.iterdir():
            if not schema_dir.is_dir() or schema_dir.name == SCHEMA_TAG:
                continue
            try:
                schema_dir.rmdir()  # only succeeds when empty
            except OSError:
                pass

    def census(self) -> dict:
        """On-disk state merged with session counters."""
        entries = self._entries()
        size = 0
        for p in entries:
            try:
                size += p.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "schema": SCHEMA_TAG,
            "entries": len(entries),
            "total_bytes": size,
            "stale_tmp_files": len(self._stale_tmps()),
            **self.stats.to_dict(),
        }


# -- process-wide default ---------------------------------------------------

_UNSET = object()
_default_cache: DiskCache | None | object = _UNSET


def default_cache() -> DiskCache | None:
    """The process's disk cache, or ``None`` when not opted in.

    Resolved lazily from :data:`ENV_CACHE_DIR` on first use, so forked
    evaluation workers inherit the parent's opt-in through the
    environment without any explicit plumbing.
    """
    global _default_cache
    if _default_cache is _UNSET:
        path = os.environ.get(ENV_CACHE_DIR)
        _default_cache = DiskCache(Path(path)) if path else None
    return _default_cache  # type: ignore[return-value]


def set_default_cache(cache: DiskCache | None) -> None:
    """Install (or disable, with ``None``) the process disk cache."""
    global _default_cache
    _default_cache = cache


def reset_default_cache() -> None:
    """Forget the resolved default; next use re-reads the environment."""
    global _default_cache
    _default_cache = _UNSET


#: Tenant namespace grammar: path-safe, no traversal, bounded length.
_NAMESPACE_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")


def valid_namespace(namespace: str) -> bool:
    """Whether ``namespace`` is a legal cache-namespace component."""
    return bool(_NAMESPACE_RE.fullmatch(namespace))


def namespaced_cache(
    root: str | os.PathLike,
    namespace: str,
    **kwargs,
) -> DiskCache:
    """A :class:`DiskCache` rooted at ``root/namespace``.

    Namespaces isolate tenants of the analysis service: each tenant's
    artifacts live under their own cache root, so one tenant can never
    read (or evict) another's entries. The namespace must match
    ``[A-Za-z0-9][A-Za-z0-9._-]{0,63}`` — in particular no path
    separators and no leading dot, so a hostile tenant name cannot
    escape the cache root.
    """
    if not valid_namespace(namespace):
        raise ValueError(f"invalid cache namespace {namespace!r}")
    return DiskCache(Path(root) / namespace, **kwargs)
