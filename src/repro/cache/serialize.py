"""JSON-document codecs for cached analysis artifacts.

Every artifact the disk cache stores round-trips through a plain-JSON
document here. The codecs are deliberately explicit (no pickle): a
cache entry written by one version of the code must either load into an
identical object or fail loudly, never deserialize into something
subtly different. Structural changes to any of these documents require
bumping :data:`repro.cache.disk.SCHEMA_TAG`.

All integer sets are stored as sorted lists so documents are
deterministic for a given artifact — byte-identical cache files for
byte-identical inputs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.elf.gnuproperty import CetFeatures
from repro.elf.plt import PLTMap
from repro.x86.insn import InsnClass

if TYPE_CHECKING:
    # Imported lazily in sweep_from_doc: repro.core transitively
    # imports this package, so a module-level import would make the
    # cache unimportable except through repro.core.
    from repro.core.disassemble import SweepResult


class SerializationError(ValueError):
    """A cache document does not match the expected shape."""


def _int_set(value) -> set[int]:
    """A JSON list of ints as a set; anything else is malformed.

    Explicit because ``set()`` accepts any iterable — ``set("oops")``
    would quietly turn a corrupt document into a set of characters.
    """
    if not isinstance(value, list) \
            or not all(isinstance(v, int) for v in value):
        raise SerializationError(f"expected a list of ints, got {value!r}")
    return set(value)


# -- SweepResult ------------------------------------------------------------


def sweep_to_doc(sweep: SweepResult) -> dict:
    return {
        "endbr_addrs": sorted(sweep.endbr_addrs),
        "call_targets": sorted(sweep.call_targets),
        "jump_targets": sorted(sweep.jump_targets),
        "call_sites": [[s.addr, s.target] for s in sweep.call_sites],
        "jump_sites": [[s.addr, s.target] for s in sweep.jump_sites],
        "external_call_sites": [
            [s.addr, s.target] for s in sweep.external_call_sites
        ],
        "endbr_predecessor": {
            str(addr): [int(klass), target]
            for addr, (klass, target)
            in sorted(sweep.endbr_predecessor.items())
        },
        "text_start": sweep.text_start,
        "text_end": sweep.text_end,
        "insn_count": sweep.insn_count,
    }


def sweep_from_doc(doc: dict) -> SweepResult:
    from repro.core.disassemble import BranchSite, SweepResult

    try:
        return SweepResult(
            endbr_addrs=_int_set(doc["endbr_addrs"]),
            call_targets=_int_set(doc["call_targets"]),
            jump_targets=_int_set(doc["jump_targets"]),
            call_sites=[
                BranchSite(a, t, True) for a, t in doc["call_sites"]
            ],
            jump_sites=[
                BranchSite(a, t, False) for a, t in doc["jump_sites"]
            ],
            external_call_sites=[
                BranchSite(a, t, True)
                for a, t in doc["external_call_sites"]
            ],
            endbr_predecessor={
                int(addr): (InsnClass(klass), target)
                for addr, (klass, target)
                in doc["endbr_predecessor"].items()
            },
            text_start=doc["text_start"],
            text_end=doc["text_end"],
            insn_count=doc["insn_count"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad sweep document: {exc}") from exc


# -- FDE starts / ranges ----------------------------------------------------


def fde_to_doc(starts: set[int], ranges: list[tuple[int, int]]) -> dict:
    return {"starts": sorted(starts), "ranges": sorted(ranges)}


def fde_from_doc(doc: dict) -> tuple[set[int], list[tuple[int, int]]]:
    try:
        return (_int_set(doc["starts"]),
                [(lo, hi) for lo, hi in doc["ranges"]])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad fde document: {exc}") from exc


# -- address sets (landing pads, detector results) --------------------------


def addrs_to_doc(addrs: set[int]) -> dict:
    return {"addrs": sorted(addrs)}


def addrs_from_doc(doc: dict) -> set[int]:
    try:
        return _int_set(doc["addrs"])
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad address-set document: {exc}") from exc


# -- PLT map ----------------------------------------------------------------


def plt_to_doc(plt: PLTMap) -> dict:
    return {
        "stub_to_name": {
            str(addr): name
            for addr, name in sorted(plt.stub_to_name.items())
        },
        "plt_ranges": sorted(plt.plt_ranges),
    }


def plt_from_doc(doc: dict) -> PLTMap:
    try:
        return PLTMap(
            stub_to_name={
                int(addr): name
                for addr, name in doc["stub_to_name"].items()
            },
            plt_ranges=[(lo, hi) for lo, hi in doc["plt_ranges"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad plt document: {exc}") from exc


# -- CET features -----------------------------------------------------------


def cet_to_doc(features: CetFeatures) -> dict:
    return {"ibt": features.ibt, "shstk": features.shstk}


def cet_from_doc(doc: dict) -> CetFeatures:
    try:
        return CetFeatures(ibt=bool(doc["ibt"]), shstk=bool(doc["shstk"]))
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad cet document: {exc}") from exc
