"""Per-binary in-memory analysis context.

Every detector evaluated on a binary needs some subset of the same
artifacts: the linear-sweep collection pass, the parsed ``.eh_frame``,
LSDA landing pads, the PLT import map, the advertised CET features.
Before this module each tool recomputed its share from scratch, so a
five-tool Table III sweep decoded the same ``.text`` five times.

An :class:`AnalysisContext` rides on the :class:`~repro.elf.parser.ELFFile`
instance itself (created on first use by :func:`get_context`), so the
natural sharing points need no plumbing: the serial runner parses each
entry once and hands the same ``ELFFile`` to every detector, and the
parallel runner's workers do the same within each job — the context
crosses the fork boundary as a property of "one parse per job", not by
pickling anything.

Artifacts that serialize cleanly are additionally read through the
content-addressed disk cache (:mod:`repro.cache.disk`) when one is
configured. Two rules keep cached and uncached runs bit-identical:

- a computation that *records new diagnostics* is never stored — a disk
  hit skips the parse that would have recorded them, so only
  diagnostic-free artifacts are eligible;
- loads validate through the same strict codecs that wrote the entry,
  and any mismatch degrades to a recompute.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro import obs
from repro.cache import serialize as S
from repro.cache.disk import default_cache
from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.gnuproperty import CetFeatures, parse_cet_features
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.elf.plt import PLTMap, build_plt_map

if TYPE_CHECKING:
    # repro.core imports this module (FunSeeker reads its artifacts
    # through the context), so the runtime import must stay inside
    # sweep() to keep the package import-order agnostic.
    from repro.core.disassemble import SweepResult

_ATTR = "_analysis_context"
_MISS = object()


class AnalysisContext:
    """Memoized analysis artifacts for one parsed binary."""

    def __init__(self, elf: ELFFile) -> None:
        self.elf = elf
        self._memo: dict[str, Any] = {}
        self._hash: str | None = None

    # -- identity -----------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """SHA-256 of the raw file image (the disk-cache key)."""
        if self._hash is None:
            self._hash = hashlib.sha256(self.elf.data).hexdigest()
        return self._hash

    # -- memoization machinery ----------------------------------------------

    def _memoized(self, key: str, compute: Callable[[], Any]) -> Any:
        value = self._memo.get(key, _MISS)
        if value is _MISS:
            obs.add("ctx.memo_misses", 1)
            value = compute()
            self._memo[key] = value
        else:
            obs.add("ctx.memo_hits", 1)
        return value

    def _disk_backed(
        self,
        artifact: str,
        compute: Callable[[], Any],
        to_doc: Callable[[Any], dict],
        from_doc: Callable[[dict], Any],
    ) -> Any:
        """Run ``compute`` through the disk cache when one is configured.

        A computation that records new diagnostics on the file's shared
        collector is served but not stored: a later disk hit would skip
        the recording, making cached runs observably different.
        """
        cache = default_cache()
        if cache is not None:
            doc = cache.get(self.content_hash, artifact)
            if doc is not None:
                try:
                    return from_doc(doc)
                except S.SerializationError:
                    pass
        before = len(self.elf.diagnostics)
        value = compute()
        if cache is not None and len(self.elf.diagnostics) == before:
            cache.put(self.content_hash, artifact, to_doc(value))
        return value

    def _through_disk(
        self,
        artifact: str,
        compute: Callable[[], Any],
        to_doc: Callable[[Any], dict],
        from_doc: Callable[[dict], Any],
    ) -> Any:
        """:meth:`_disk_backed` plus in-memory memoization."""
        return self._memoized(
            artifact,
            lambda: self._disk_backed(artifact, compute, to_doc, from_doc),
        )

    # -- cached artifacts ---------------------------------------------------

    def _text(self):
        return self.elf.section(C.SECTION_TEXT)

    @property
    def bits(self) -> int:
        return 64 if self.elf.is64 else 32

    def sweep(self) -> SweepResult | None:
        """The linear-sweep collection pass over ``.text``."""
        from repro.core.disassemble import disassemble

        txt = self._text()
        if txt is None or not txt.data:
            return None
        return self._through_disk(
            "sweep",
            lambda: disassemble(txt.data, txt.sh_addr, self.bits),
            S.sweep_to_doc,
            S.sweep_from_doc,
        )

    def robust_sweep_result(self) -> SweepResult | None:
        """The superset-validated collection pass (memory only — the
        underlying decode index is rebuilt per process anyway)."""
        txt = self._text()
        if txt is None or not txt.data:
            return None

        def _compute() -> SweepResult:
            from repro.core.robust import disassemble_robust

            with obs.span("sweep.robust", bytes=len(txt.data)):
                return disassemble_robust(txt.data, txt.sh_addr, self.bits)

        return self._memoized("robust_sweep", _compute)

    def fde_starts(self) -> tuple[set[int], list[tuple[int, int]]]:
        """FDE ``pc_begin`` values and ranges, strict-parse semantics.

        Preserves the baselines' historical contract: a malformed
        ``.eh_frame`` yields *empty* results (no diagnostics), it does
        not degrade into a partial parse.
        """
        def _compute() -> tuple[set[int], list[tuple[int, int]]]:
            with obs.span("exceptions", artifact="fde"):
                sec = self.elf.section(C.SECTION_EH_FRAME)
                if sec is None or not sec.data:
                    return set(), []
                try:
                    eh = parse_eh_frame(sec.data, sec.sh_addr,
                                        self.elf.is64)
                except EhFrameError:
                    return set(), []
                starts = {fde.pc_begin for fde in eh.fdes}
                ranges = [(fde.pc_begin, fde.pc_end) for fde in eh.fdes]
                obs.add("exceptions.fdes", len(eh.fdes))
                return starts, ranges

        return self._through_disk(
            "fde",
            _compute,
            lambda v: S.fde_to_doc(*v),
            S.fde_from_doc,
        )

    def landing_pads(self) -> set[int]:
        """LSDA landing pads, degraded-parse semantics.

        Anomalies in ``.eh_frame`` or ``.gcc_except_table`` land on the
        file's diagnostics and drop only the entries they described —
        the FunSeeker pipeline's tolerance rules.
        """
        def _compute() -> set[int]:
            with obs.span("exceptions", artifact="landing_pads"):
                elf = self.elf
                except_sec = elf.section(C.SECTION_GCC_EXCEPT_TABLE)
                eh_sec = elf.section(C.SECTION_EH_FRAME)
                if except_sec is None or eh_sec is None:
                    return set()
                eh = parse_eh_frame(
                    eh_sec.data, eh_sec.sh_addr, elf.is64,
                    diagnostics=elf.diagnostics,
                )
                pads = landing_pads_from_exception_info(
                    eh, except_sec.data, except_sec.sh_addr, elf.is64,
                    diagnostics=elf.diagnostics,
                )
                obs.add("exceptions.landing_pads", len(pads))
                return pads

        return self._through_disk(
            "landing_pads", _compute, S.addrs_to_doc, S.addrs_from_doc,
        )

    def plt_map(self) -> PLTMap:
        """The PLT stub-to-import map, degraded-parse semantics."""
        def _compute() -> PLTMap:
            with obs.span("plt"):
                return build_plt_map(
                    self.elf, diagnostics=self.elf.diagnostics
                )

        return self._through_disk(
            "plt", _compute, S.plt_to_doc, S.plt_from_doc,
        )

    def cet_features(self) -> CetFeatures:
        """The advertised ``.note.gnu.property`` CET feature bits."""
        def _compute() -> CetFeatures:
            with obs.span("cet"):
                return parse_cet_features(
                    self.elf, diagnostics=self.elf.diagnostics
                )

        return self._through_disk(
            "cet", _compute, S.cet_to_doc, S.cet_from_doc,
        )

    def detector_result(
        self, tool: str, compute: Callable[[], set[int]],
        *, use_disk: bool = True,
    ) -> set[int]:
        """Whole-detector entry sets, keyed by tool name.

        This is the layer that makes warm table regenerations cheap:
        a repeated sweep pays one parse + one hash per binary instead
        of re-running every detector. The same no-new-diagnostics store
        guard applies, and tools whose output depends on state outside
        the binary image must not come through here (see
        ``FunctionDetector.cacheable``).

        Deliberately *not* memoized in memory: within a process each
        ``detect`` call really runs (Table III's timing comparison —
        FETCH's expensive internals in particular — must stay
        observable); only a configured disk cache short-circuits it.

        ``use_disk=False`` skips the disk layer entirely — detectors
        whose declared cost is below the cache's own round-trip cost
        (``DISK_CACHE_MIN_COST_PER_MB``) come through here, and the
        bypass is tallied on the cache's census counters.
        """
        if not use_disk:
            cache = default_cache()
            if cache is not None:
                cache.note_bypass()
            return compute()
        return self._disk_backed(
            f"tool.{tool}", compute, S.addrs_to_doc, S.addrs_from_doc,
        )


def get_context(elf: ELFFile) -> AnalysisContext:
    """The (singleton) analysis context of a parsed file."""
    ctx = getattr(elf, _ATTR, None)
    if ctx is None:
        ctx = AnalysisContext(elf)
        setattr(elf, _ATTR, ctx)
    return ctx
