"""Whole-corpus construction (paper §III-A).

The paper compiles Coreutils, Binutils, and SPEC CPU 2017 under 24
configurations per compiler (2 architectures x 2 PIE modes x 6
optimization levels) for GCC and Clang — 8,136 binaries. This module
builds the synthetic analogue: the same *programs* (fixed per-suite
seeds) rendered under every configuration of a chosen matrix.

Three scales are provided so tests stay fast while benchmarks can run
the full sweep:

- ``tiny``  — a handful of binaries; unit/integration tests.
- ``small`` — the default for benchmark tables (hundreds of binaries).
- ``full``  — the complete 48-configuration matrix.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass

from repro.elf.parser import strip_symbols
from repro.synth.generate import DEFAULT_SUITES, generate_program
from repro.synth.linker import SynthBinary, link_program
from repro.synth.profiles import (
    CompilerProfile,
    default_matrix,
    sampled_matrix,
)

SCALES = ("tiny", "small", "full")


@dataclass(frozen=True)
class CorpusScale:
    """Suite sizes and configuration matrix for one corpus scale."""

    programs: dict[str, int]       # suite -> number of programs
    profiles: list[CompilerProfile]
    min_functions: dict[str, int]
    max_functions: dict[str, int]


def _scale(name: str) -> CorpusScale:
    if name == "tiny":
        return CorpusScale(
            programs={"coreutils": 3, "binutils": 1, "spec": 2},
            profiles=[
                CompilerProfile("gcc", "O2", 64, True),
                CompilerProfile("gcc", "O0", 32, False),
                CompilerProfile("clang", "O2", 64, False),
                CompilerProfile("clang", "O2", 32, True),
            ],
            min_functions={"coreutils": 20, "binutils": 60, "spec": 40},
            max_functions={"coreutils": 40, "binutils": 90, "spec": 80},
        )
    if name == "small":
        return CorpusScale(
            programs={"coreutils": 8, "binutils": 3, "spec": 5},
            profiles=sampled_matrix(),
            min_functions={"coreutils": 25, "binutils": 90, "spec": 60},
            max_functions={"coreutils": 70, "binutils": 180, "spec": 160},
        )
    if name == "full":
        return CorpusScale(
            programs={s: p.programs for s, p in DEFAULT_SUITES.items()},
            profiles=default_matrix(),
            min_functions={s: p.min_functions
                           for s, p in DEFAULT_SUITES.items()},
            max_functions={s: p.max_functions
                           for s, p in DEFAULT_SUITES.items()},
        )
    raise ValueError(f"unknown corpus scale {name!r}; pick from {SCALES}")


@dataclass
class CorpusEntry:
    """One binary of the corpus, with its provenance and ground truth."""

    suite: str
    program: str
    binary: SynthBinary
    stripped: bytes

    @property
    def profile(self) -> CompilerProfile:
        return self.binary.profile

    @property
    def label(self) -> str:
        return f"{self.suite}/{self.program}/{self.profile.config_name}"


#: C++ share per suite (SPEC is the only C++-bearing suite, §III-B).
_CXX_FRACTION = {"coreutils": 0.0, "binutils": 0.0, "spec": 0.65}


def iter_corpus(
    scale: str = "small", seed: int = 2022
) -> Iterator[CorpusEntry]:
    """Yield corpus entries lazily (generation is the expensive part)."""
    sc = _scale(scale)
    for suite, count in sc.programs.items():
        for i in range(count):
            # Program structure is fixed per (seed, suite, index): the
            # same program is "compiled" under every configuration, as
            # in the paper.
            key = zlib.crc32(f"{seed}:{suite}:{i}".encode())
            program_rng = random.Random(key)
            program_seed = program_rng.randrange(1 << 30)
            cxx = program_rng.random() < _CXX_FRACTION[suite]
            n = program_rng.randrange(
                sc.min_functions[suite], sc.max_functions[suite] + 1
            )
            for profile in sc.profiles:
                spec = generate_program(
                    f"{suite}_{i:03d}", n, profile, seed=program_seed,
                    cxx=cxx,
                )
                binary = link_program(spec, profile)
                yield CorpusEntry(
                    suite=suite,
                    program=spec.name,
                    binary=binary,
                    stripped=strip_symbols(binary.data),
                )


def build_corpus(scale: str = "small", seed: int = 2022) -> list[CorpusEntry]:
    """Materialize the whole corpus as a list."""
    return list(iter_corpus(scale, seed))
