"""Random program generation calibrated to the paper's measurements.

Produces :class:`~repro.synth.ir.ProgramSpec` objects whose function
populations reproduce the distributions the paper reports:

- Figure 3: ~89.3% of functions carry an entry end-branch; ~10% are
  direct-call-only statics; ~2% involve direct jumps; ~0.01% are dead
  code with no references at all.
- Table I: indirect-return end-branches are rare everywhere (~0.02%),
  exception landing pads contribute 20-28% of end-branches in C++
  (SPEC-like) programs and none in C suites.
- §V-C: false-positive sources are ``.part`` fragments that are either
  direct-called or tail-jumped from multiple functions; false negatives
  are mostly dead functions plus a few single-referenced tail targets.

All randomness is seeded — the same (suite, program index, seed) always
yields the same program.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.synth.ir import (
    CXX_IMPORTS,
    LIBC_IMPORTS,
    FunctionSpec,
    ProgramSpec,
)
from repro.synth.profiles import CompilerProfile

SUITES = ("coreutils", "binutils", "spec")


@dataclass(frozen=True)
class SuiteParams:
    """Size and language mix of one benchmark suite."""

    name: str
    programs: int          # number of distinct programs
    min_functions: int
    max_functions: int
    cxx_fraction: float    # fraction of programs that are C++


#: Default (scaled-down) suite sizes; the paper's originals are 108 / 15
#: / 47 programs.
DEFAULT_SUITES = {
    "coreutils": SuiteParams("coreutils", 16, 30, 90, 0.0),
    "binutils": SuiteParams("binutils", 5, 120, 260, 0.0),
    "spec": SuiteParams("spec", 8, 80, 220, 0.65),
}


def generate_program(
    name: str,
    n_functions: int,
    profile: CompilerProfile,
    seed: int,
    *,
    cxx: bool = False,
    manual_endbr: bool = False,
    ibt_violations: int = 0,
) -> ProgramSpec:
    """Generate one program spec.

    ``n_functions`` counts user functions; runtime scaffolding
    (``_start``, ``_init``, ``main``, ...) is added on top.

    ``manual_endbr`` models ``-mmanual-endbr`` (paper §VI): the
    compiler stops marking every non-static entry and only
    address-taken functions — actual indirect-branch targets — keep
    their end-branch.

    ``ibt_violations`` strips the end-branch from that many
    address-taken functions, producing a binary that would fault under
    IBT enforcement — input for the IBT compliance auditor.
    """
    rng = random.Random(seed)
    funcs: list[FunctionSpec] = []

    def fseed() -> int:
        return rng.randrange(1 << 30)

    # ---- runtime scaffolding ------------------------------------------------
    start = FunctionSpec(
        name="_start", is_static=False, has_endbr=True,
        takes_address_of=["main"], filler=4, seed=fseed(),
    )
    start.plt_callees.append("__libc_start_main")
    funcs.append(start)
    funcs.append(FunctionSpec(name="_init", has_endbr=True, filler=2,
                              seed=fseed()))
    funcs.append(FunctionSpec(name="_fini", has_endbr=True, filler=2,
                              seed=fseed()))
    main = FunctionSpec(
        name="main", is_static=False, has_endbr=True, address_taken=True,
        filler=rng.randrange(12, 30), seed=fseed(),
    )
    funcs.append(main)

    thunk: FunctionSpec | None = None
    if profile.uses_get_pc_thunk:
        thunk = FunctionSpec(
            name="__x86.get_pc_thunk.bx", is_static=True, has_endbr=False,
            is_thunk=True, omit_symbol=rng.random() < 0.5, seed=fseed(),
        )
        funcs.append(thunk)

    # ---- user function population -------------------------------------------
    user: list[FunctionSpec] = []
    for i in range(n_functions):
        fn = _make_user_function(f"fn_{i:04d}", rng, fseed())
        user.append(fn)
    funcs.extend(user)

    # Reference structure.
    _wire_call_graph(rng, main, user)
    _wire_address_taking(rng, main, user)
    _wire_tail_calls(rng, user)
    if thunk is not None:
        for fn in rng.sample(user, min(4, len(user))):
            fn.callees.append(thunk.name)

    # Library usage.
    imports = {"__libc_start_main", *rng.sample(LIBC_IMPORTS,
                                                rng.randrange(5, 12))}
    pool = sorted(imports - {"__libc_start_main"})
    for fn in rng.sample(user, max(1, len(user) // 3)):
        fn.plt_callees.extend(rng.sample(pool, rng.randrange(1, 3)))
    main.plt_callees.extend(rng.sample(pool, min(2, len(pool))))

    # setjmp-family call sites (Table I: rare; ~1 site in a third of
    # programs).
    if rng.random() < 0.35:
        victim = rng.choice(user)
        sj = rng.choice(("setjmp", "sigsetjmp", "vfork"))
        victim.setjmp_sites.append(sj)
        imports.add(sj)

    # Jump tables (switch statements).
    for fn in rng.sample(user, max(1, len(user) // 12)):
        fn.jump_table_cases = rng.randrange(6, 15)

    # C++ exception landing pads: dense in C++ programs (Table I SPEC
    # rows), absent in C.
    if cxx:
        imports.update(CXX_IMPORTS)
        eligible = [f for f in user if not f.is_dead]
        for fn in rng.sample(eligible, max(1, int(len(eligible) * 0.3))):
            fn.landing_pads = rng.randrange(1, 3)
            if not fn.plt_callees:
                fn.plt_callees.append("__cxa_allocate_exception")

    # GCC out-of-line fragments (FP sources).
    if profile.emits_cold_fragments:
        for fn in rng.sample(user, max(1, len(user) // 12)):
            if not fn.is_dead:
                fn.cold_fragment = True
    if profile.emits_part_fragments:
        carriers = [f for f in user if not f.is_dead]
        chosen = rng.sample(carriers, max(1, len(carriers) // 70))
        for fn in chosen:
            fn.part_fragment = True
            frag = f"{fn.name}.part.0"
            others = [f for f in carriers if f is not fn]
            if rng.random() < 0.35 and others:
                # Direct-called from another function too (42.9% FP case).
                rng.choice(others).extra_fragment_calls.append(frag)
            elif rng.random() < 0.45 and len(others) >= 2:
                # Tail-jumped from two functions (57.1% FP case).
                for other in rng.sample(others, 2):
                    other.fragment_tail_jumps.append(frag)

    if manual_endbr:
        # -mmanual-endbr: developers drop the marker from functions
        # whose reachability is proven by direct references, but every
        # genuine indirect-branch target must keep it or the program
        # crashes (§VI). Never-referenced exported functions are
        # presumed external indirect targets and keep theirs too.
        directly_referenced: set[str] = set()
        for fn in funcs:
            directly_referenced.update(fn.callees)
            if fn.tail_call_target:
                directly_referenced.add(fn.tail_call_target)
        for fn in funcs:
            if (fn.has_endbr and not fn.address_taken
                    and fn.name in directly_referenced):
                fn.has_endbr = False

    if ibt_violations:
        taken = [f for f in funcs
                 if f.address_taken and f.has_endbr and not f.is_dead]
        for fn in taken[:ibt_violations]:
            fn.has_endbr = False

    spec = ProgramSpec(name=name, functions=funcs,
                       imports=sorted(imports))
    _ensure_fragment_call_sanity(spec)
    spec.validate()
    return spec


def _make_user_function(
    name: str, rng: random.Random, seed: int
) -> FunctionSpec:
    """Draw one function's role from the Figure-3-calibrated mix."""
    roll = rng.random()
    filler = rng.randrange(6, 36)
    if roll < 0.695:
        # Exported (non-static): always end-branched. Roughly half of
        # them are never direct-called inside the binary, which yields
        # Figure 3's large EndBrAtHead-only region.
        return FunctionSpec(name=name, is_static=False, has_endbr=True,
                            filler=filler, seed=seed)
    if roll < 0.835:
        # Address-taken static: end-branched.
        return FunctionSpec(name=name, is_static=True, has_endbr=True,
                            address_taken=True, filler=filler, seed=seed)
    if roll < 0.945:
        # Plain static: no end-branch, reached by direct calls (the
        # ~10% DirCallTarget-only region of Figure 3).
        return FunctionSpec(name=name, is_static=True, has_endbr=False,
                            filler=filler, seed=seed)
    if roll < 0.993:
        # Dead exported function: end-branch, no references (still
        # found through E).
        return FunctionSpec(name=name, is_static=False, has_endbr=True,
                            is_dead=True, filler=filler, seed=seed)
    # Dead static: no end-branch and no references — Figure 3's
    # no-property sliver, and the dominant false-negative class (§V-C).
    return FunctionSpec(name=name, is_static=True, has_endbr=False,
                        is_dead=True, filler=filler, seed=seed)


def _wire_call_graph(
    rng: random.Random, main: FunctionSpec, user: list[FunctionSpec]
) -> None:
    """Wire direct calls: every live static must be reachable; exported
    functions are direct-called with moderate probability (Fig. 3: about
    44% of end-branched functions are also direct-call targets)."""
    live = [f for f in user if not f.is_dead]
    statics = [f for f in live if f.is_static and not f.address_taken]
    exported = [f for f in live if not f.is_static]

    for fn in statics:
        callers = rng.sample(
            [f for f in live if f is not fn] or [main],
            k=min(rng.randrange(1, 3), len(live) - 1 or 1),
        )
        for caller in callers:
            caller.callees.append(fn.name)

    for fn in exported:
        if rng.random() < 0.44:
            candidates = [f for f in live if f is not fn]
            if candidates:
                rng.choice(candidates).callees.append(fn.name)

    # main calls a few entry-layer functions.
    entry_layer = rng.sample(live, min(len(live), rng.randrange(2, 6)))
    for fn in entry_layer:
        if fn is not main:
            main.callees.append(fn.name)


def _wire_address_taking(
    rng: random.Random, main: FunctionSpec, user: list[FunctionSpec]
) -> None:
    """Give address-taken functions a materializing code reference.

    A fraction stays *table-only*: their address appears solely in the
    linker-emitted function-pointer table (vtable-style), with no
    code-side materialization — the C++ virtual-function shape.
    """
    takers = [f for f in user if not f.is_dead] or [main]
    for fn in user:
        if fn.address_taken and not fn.is_dead:
            if rng.random() < 0.35:
                continue  # table-only reference
            taker = rng.choice([t for t in takers if t is not fn] or [main])
            taker.takes_address_of.append(fn.name)


def _wire_tail_calls(rng: random.Random, user: list[FunctionSpec]) -> None:
    """Create shared tail-call targets.

    Most tail targets are referenced by >= 2 functions (so
    SELECTTAILCALL accepts them); a few are single-referenced — the
    paper's residual false negatives (6.7% of FNs).
    """
    live = [f for f in user if not f.is_dead]
    if len(live) < 6:
        return
    n_shared = max(1, len(live) // 45)
    # Prefer endbr-less statics as tail targets (those are the functions
    # only SELECTTAILCALL can recover — config 4's recall gain over 2),
    # but let some exported functions be tail-called too, producing
    # Figure 3's EndBr+DirJmp overlap regions.
    plain = [f for f in live if not f.has_endbr]
    targets = []
    for _ in range(n_shared):
        pool = plain if plain and rng.random() < 0.6 else live
        pick = rng.choice(pool)
        if pick not in targets:
            targets.append(pick)
    for target in targets:
        sources = [f for f in live
                   if f is not target and f.tail_call_target is None]
        if len(sources) < 2:
            continue
        multi = rng.random() < 0.8
        chosen = rng.sample(sources, 2 if multi else 1)
        for src in chosen:
            src.tail_call_target = target.name
        strip_calls = not multi or rng.random() < 0.6
        if strip_calls:
            # Tail-jump-only target: without SELECTTAILCALL this is a
            # false negative (single-referenced ones stay FNs even with
            # it — the paper's residual 6.7% FN class).
            for f in live:
                if f is not target and target.name in f.callees:
                    f.callees.remove(target.name)
        elif multi:
            # A direct call from a third function cements property
            # overlap (DirJmpTarget ∩ DirCallTarget, Fig. 3).
            rest = [f for f in live if f is not target and f not in chosen]
            if rest and rng.random() < 0.5:
                rng.choice(rest).callees.append(target.name)


def _ensure_fragment_call_sanity(spec: ProgramSpec) -> None:
    """Fragment cross-references name fragments of functions that must
    actually emit them; drop any that don't."""
    emitting = {f"{f.name}.part.0" for f in spec.functions
                if f.part_fragment}
    for fn in spec.functions:
        fn.extra_fragment_calls = [s for s in fn.extra_fragment_calls
                                   if s in emitting]
        fn.fragment_tail_jumps = [s for s in fn.fragment_tail_jumps
                                  if s in emitting]


def generate_suite(
    suite: str,
    profile: CompilerProfile,
    *,
    seed: int = 2022,
    params: SuiteParams | None = None,
) -> list[ProgramSpec]:
    """Generate all programs of one suite for one build configuration."""
    p = params or DEFAULT_SUITES[suite]
    # zlib.crc32 keeps suite seeds stable across processes (tuple hashing
    # is randomized by PYTHONHASHSEED).
    key = f"{seed}:{suite}:{profile.config_name}".encode()
    rng = random.Random(zlib.crc32(key))
    out = []
    for i in range(p.programs):
        cxx = rng.random() < p.cxx_fraction
        n = rng.randrange(p.min_functions, p.max_functions + 1)
        out.append(generate_program(
            f"{suite}_{i:03d}", n, profile, seed=rng.randrange(1 << 30),
            cxx=cxx,
        ))
    return out
