"""Compiler / build-configuration profiles for the synthetic toolchain.

A profile captures the observable code-generation policies of one
(compiler, optimization level, architecture, PIE) combination that
matter for function identification — the properties the paper's study
(§III-A) varies across its 24 configurations per program.

The behavioural switches are calibrated against the paper's findings
and against real GCC-12 output compiled in this environment:

- Both compilers emit ``endbr`` at every non-static function entry and
  at address-taken static entries (§III-B1).
- GCC emits ``.part`` / ``.cold`` out-of-line fragments at ``-O2`` and
  above; these carry symbols but are not functions (§V-A1).
- Clang does not emit FDEs for plain-C functions on 32-bit x86 — the
  failure mode that breaks FETCH and Ghidra there (§V-C).
- 32-bit PIC code uses ``__x86.get_pc_thunk.*`` helper intrinsics.
"""

from __future__ import annotations

from dataclasses import dataclass

OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os", "Ofast")
COMPILERS = ("gcc", "clang")


@dataclass(frozen=True)
class CompilerProfile:
    """One build configuration of the synthetic toolchain."""

    compiler: str      # "gcc" or "clang"
    opt: str           # one of OPT_LEVELS
    bits: int          # 32 or 64
    pie: bool

    def __post_init__(self) -> None:
        if self.compiler not in COMPILERS:
            raise ValueError(f"unknown compiler {self.compiler!r}")
        if self.opt not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {self.opt!r}")
        if self.bits not in (32, 64):
            raise ValueError("bits must be 32 or 64")

    # -- derived code-generation policies ---------------------------------

    @property
    def optimizes(self) -> bool:
        return self.opt != "O0"

    @property
    def uses_frame_pointer(self) -> bool:
        """-O0 keeps the frame pointer; optimized builds omit it."""
        return not self.optimizes

    @property
    def emits_fde_for_c(self) -> bool:
        """Whether plain-C functions get ``.eh_frame`` FDE records.

        Clang does not emit FDEs for purely-C 32-bit x86 binaries
        (paper §V-C); GCC always does.
        """
        return not (self.compiler == "clang" and self.bits == 32)

    @property
    def emits_cold_fragments(self) -> bool:
        """GCC splits unlikely paths into ``.cold`` fragments at -O2+."""
        return self.compiler == "gcc" and self.opt in ("O2", "O3", "Ofast")

    @property
    def emits_part_fragments(self) -> bool:
        """GCC's partial inlining produces ``.part`` fragments at -O2+."""
        return self.compiler == "gcc" and self.opt in ("O2", "O3", "Os", "Ofast")

    @property
    def uses_get_pc_thunk(self) -> bool:
        """32-bit PIC needs PC-materialization thunks."""
        return self.bits == 32 and self.pie

    @property
    def function_alignment(self) -> int:
        """Function entry alignment (bytes)."""
        if self.opt == "Os":
            return 2
        return 16

    @property
    def plt_stub_has_endbr(self) -> bool:
        """CET-enabled PLTs start each stub with an end-branch."""
        return True

    @property
    def config_name(self) -> str:
        pie = "pie" if self.pie else "nopie"
        return f"{self.compiler}-x{self.bits}-{self.opt}-{pie}"


def default_matrix() -> list[CompilerProfile]:
    """The paper's full 24-configuration matrix per compiler (§III-A):
    2 architectures x 2 PIE modes x 6 optimization levels."""
    out = []
    for compiler in COMPILERS:
        for bits in (32, 64):
            for pie in (False, True):
                for opt in OPT_LEVELS:
                    out.append(CompilerProfile(compiler, opt, bits, pie))
    return out


def sampled_matrix() -> list[CompilerProfile]:
    """A reduced configuration grid for fast evaluation runs.

    Covers both compilers, both architectures, both PIE modes, and three
    representative optimization levels (unoptimized / aggressive /
    size), preserving every failure-mode axis the paper exercises.
    """
    out = []
    for compiler in COMPILERS:
        for bits in (32, 64):
            for pie in (False, True):
                for opt in ("O0", "O2", "Os"):
                    out.append(CompilerProfile(compiler, opt, bits, pie))
    return out
