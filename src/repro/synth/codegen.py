"""Function-body code generation for the synthetic CET toolchain.

Lowers each :class:`~repro.synth.ir.FunctionSpec` into a relocatable
machine-code chunk exhibiting the code shapes GCC/Clang emit for the
corresponding source constructs: CET end-branch placement, prologues
per optimization level, direct/PLT calls, setjmp return-site markers,
NOTRACK jump-table dispatch, C++ landing pads, and out-of-line
``.cold`` / ``.part`` fragments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.synth.encoder import Asm, Code, Fixup, FixupKind
from repro.synth.ir import FunctionSpec
from repro.synth.profiles import CompilerProfile


def plt_symbol(name: str) -> str:
    """Linker-namespace symbol for an import's PLT stub."""
    return f"plt:{name}"


def fragment_symbol(func: str, kind: str, index: int = 0) -> str:
    """Symbol for a ``.cold`` / ``.part`` fragment of ``func``.

    Matches GCC's naming (``foo.cold``, ``foo.part.0``) so ground-truth
    extraction can apply the paper's name-suffix policy.
    """
    suffix = "cold" if kind == "cold" else f"part.{index}"
    return f"{func}.{suffix}"


def table_symbol(func: str) -> str:
    return f"rodata:{func}.jt"


@dataclass
class RodataItem:
    """One read-only data object (jump table, format-string blob)."""

    symbol: str
    data: bytes
    fixups: list[Fixup] = field(default_factory=list)
    align: int = 8


@dataclass
class FunctionArtifact:
    """Codegen output for one function."""

    spec: FunctionSpec
    code: Code
    fragments: list[tuple[str, Code]] = field(default_factory=list)
    rodata: list[RodataItem] = field(default_factory=list)
    #: (region_start, region_len, pad_offset) chunk offsets for the LSDA.
    eh_callsites: list[tuple[int, int, int]] = field(default_factory=list)


def generate_function(
    spec: FunctionSpec, profile: CompilerProfile
) -> FunctionArtifact:
    """Lower one function spec to machine code."""
    rng = random.Random(spec.seed)
    if spec.is_thunk:
        return _generate_thunk(spec, profile)

    asm = Asm(profile.bits)
    artifact = FunctionArtifact(spec=spec, code=asm.code)

    if spec.has_endbr:
        asm.endbr()
    frame = _prologue(asm, profile, rng)

    asm.filler(rng, max(1, spec.filler // 3))

    # Address-taking: materialize callee addresses and call through a
    # register — what makes the targets address-taken (and endbr'd).
    for target in spec.takes_address_of:
        _materialize_address(asm, profile, target)
        asm.call_reg(0)
        asm.filler(rng, 2)

    # setjmp-family call sites: an end-branch lands right after the call
    # to protect the indirect return edge (paper Fig. 2a).
    for i, sj_name in enumerate(spec.setjmp_sites):
        _materialize_buffer_arg(asm, profile, rng)
        asm.call(plt_symbol(sj_name))
        asm.endbr()
        asm.test_eax_eax()
        asm.jcc_short("e", _local(asm, f".Lsj_done{i}", define=False))
        asm.filler(rng, 3)
        asm.label(f".Lsj_done{i}")

    # Direct calls.
    for callee in spec.callees:
        asm.filler(rng, rng.randrange(1, 4))
        asm.call(callee)

    # A function with a .part fragment calls it — partial inlining keeps
    # the outlined remainder reachable from the original body.
    if spec.part_fragment:
        asm.call(fragment_symbol(spec.name, "part"))

    # Cross-references into other functions' .part fragments (the
    # paper's false-positive sources, §V-C).
    for frag in spec.extra_fragment_calls:
        asm.call(frag)
    for i, frag in enumerate(spec.fragment_tail_jumps):
        # Guarded jump into the fragment followed by a resume point:
        # shaped like GCC's shrink-wrapped out-of-line path.
        asm.test_eax_eax()
        asm.jcc_short("e", f".Lfrag_skip{i}")
        asm.jmp(frag)
        asm.label(f".Lfrag_skip{i}")

    # Control-flow diamonds: if/else merges produce intra-function
    # unconditional jumps — the direct-jump targets that wreck config 3's
    # precision (Table II) until SELECTTAILCALL filters them.
    for i in range(_diamond_count(spec, rng)):
        asm.cmp_eax_imm8(rng.randrange(64))
        asm.jcc("ne", f".Ldia_else{i}")
        asm.filler(rng, rng.randrange(1, 4))
        asm.jmp(f".Ldia_merge{i}")
        asm.label(f".Ldia_else{i}")
        asm.filler(rng, rng.randrange(1, 4))
        asm.label(f".Ldia_merge{i}")

    # PLT calls, possibly inside a C++ try region with a landing pad.
    try_regions: list[tuple[int, int]] = []
    for imp in spec.plt_callees:
        asm.filler(rng, rng.randrange(1, 3))
        start = asm.here
        asm.call(plt_symbol(imp))
        try_regions.append((start, asm.here - start))

    if spec.jump_table_cases:
        _jump_table(asm, artifact, profile, rng, spec)

    if spec.inline_data:
        _inline_data_blob(asm, rng, spec.inline_data)

    asm.filler(rng, max(1, spec.filler // 3))

    # Conditional branch to a .cold fragment (out-of-line unlikely path).
    if spec.cold_fragment:
        asm.jcc("s", fragment_symbol(spec.name, "cold"))
        asm.label(".Lcold_ret")

    asm.filler(rng, max(1, spec.filler // 3))
    _epilogue(asm, profile, frame)

    if spec.tail_call_target:
        # Tail call replaces the final ret (but keep a guarded early ret
        # so both shapes appear).
        asm.jmp(spec.tail_call_target)
    else:
        asm.ret()

    # C++ landing pads: placed after the body's final ret, inside the
    # function's bounds, each starting with an end-branch (Fig. 2b).
    if spec.landing_pads:
        _landing_pads(asm, artifact, rng, spec, try_regions)

    asm.finish()

    if spec.cold_fragment:
        artifact.fragments.append(
            (fragment_symbol(spec.name, "cold"),
             _cold_fragment(spec, profile, rng))
        )
    if spec.part_fragment:
        artifact.fragments.append(
            (fragment_symbol(spec.name, "part"),
             _part_fragment(spec, profile, rng))
        )
    return artifact


# ---------------------------------------------------------------------------
# pieces
# ---------------------------------------------------------------------------


def _diamond_count(spec: FunctionSpec, rng: random.Random) -> int:
    """How many if/else merge diamonds to emit, scaled by body size."""
    return max(1, spec.filler // 9) + rng.randrange(2)


def _local(asm: Asm, name: str, *, define: bool) -> str:
    if define:
        asm.label(name)
    return name


def _prologue(asm: Asm, profile: CompilerProfile, rng: random.Random) -> tuple:
    """Emit a prologue; return a descriptor the epilogue mirrors."""
    if profile.uses_frame_pointer:
        asm.push_bp()
        asm.mov_bp_sp()
        asm.sub_sp(rng.choice((16, 32, 48, 64)))
        return ("frame",)
    choice = rng.randrange(3)
    if choice == 0:
        asm.push_rbx()
        return ("rbx",)
    if choice == 1:
        size = rng.choice((8, 24, 40))
        asm.sub_sp(size)
        return ("sub", size)
    asm.push_bp()
    asm.mov_bp_sp()
    return ("bp",)


def _epilogue(asm: Asm, profile: CompilerProfile, frame: tuple) -> None:
    kind = frame[0]
    if kind == "frame":
        asm.leave()
    elif kind == "rbx":
        asm.pop_rbx()
    elif kind == "sub":
        asm.add_sp(frame[1])
    else:
        asm.pop_bp()


def _materialize_address(asm: Asm, profile: CompilerProfile, target: str) -> None:
    if profile.bits == 64 and profile.pie:
        asm.lea_rip(0, target)
    elif profile.bits == 64:
        asm.mov_imm_sym(0, target)
    elif profile.pie:
        # 32-bit PIC: real code computes via get_pc_thunk + GOT; model the
        # observable part — an absolute slot load is closest without a
        # full GOT dance.
        asm.mov_imm_sym(0, target)
    else:
        asm.mov_imm_sym(0, target)


def _materialize_buffer_arg(
    asm: Asm, profile: CompilerProfile, rng: random.Random
) -> None:
    """First argument setup for a setjmp-style call (jmp_buf address)."""
    if profile.bits == 64 and profile.pie:
        asm.lea_rip(7, "data:jmpbuf")
    elif profile.bits == 64:
        asm.mov_imm_sym(7, "data:jmpbuf")
    else:
        asm.push_imm_sym("data:jmpbuf")


def _jump_table(
    asm: Asm,
    artifact: FunctionArtifact,
    profile: CompilerProfile,
    rng: random.Random,
    spec: FunctionSpec,
) -> None:
    """Emit switch dispatch through a NOTRACK indirect jump (Fig. 1b)."""
    cases = spec.jump_table_cases
    tsym = table_symbol(spec.name)
    asm.cmp_eax_imm8(cases - 1)
    asm.jcc("a", _local(asm, ".Ljt_default", define=False))

    pic_table = profile.bits == 64 and profile.pie
    if pic_table:
        # GCC PIC shape: lea rdx,[rip+table]; movsxd rax,[rdx+rax*4];
        # add rax,rdx; notrack jmp rax
        asm.lea_rip(2, tsym)
        asm.raw(b"\x48\x63\x04\x82")   # movsxd rax, dword [rdx+rax*4]
        asm.raw(b"\x48\x01\xd0")       # add rax, rdx
        asm.jmp_reg(0, notrack=True)
    else:
        asm.notrack_jmp_table(tsym, scale8=profile.bits == 64)

    case_labels = []
    for i in range(cases):
        label = f".Lcase{i}"
        asm.label(label)
        case_labels.append(label)
        asm.mov_reg_imm(0, rng.randrange(1 << 16))
        if i < cases - 1:
            asm.jmp_short(".Ljt_merge")
    asm.label(".Ljt_default")
    asm.xor_eax_eax()
    asm.label(".Ljt_merge")
    asm.filler(rng, 2)

    # Table data: entries are chunk-internal offsets; the linker rewrites
    # them into absolute addresses or table-relative deltas.
    entry_size = 4 if (pic_table or profile.bits == 32) else 8
    data = bytearray(entry_size * cases)
    fixups = []
    for i, label in enumerate(case_labels):
        offset_in_chunk = asm.code.labels[label]
        if pic_table:
            # Filled by linker: case_addr - table_addr (sdata4).
            fixups.append(Fixup(i * 4, FixupKind.REL32,
                                f"local:{spec.name}", offset_in_chunk))
        else:
            kind = FixupKind.ABS64 if entry_size == 8 else FixupKind.ABS32
            fixups.append(Fixup(i * entry_size, kind,
                                f"local:{spec.name}", offset_in_chunk))
    artifact.rodata.append(
        RodataItem(symbol=tsym, data=bytes(data), fixups=fixups,
                   align=entry_size)
    )


def _inline_data_blob(asm: Asm, rng: random.Random, size: int) -> None:
    """Embed a data blob inside the body, jumped over at run time.

    Models hand-written assembly with lookup tables in ``.text`` — the
    linear-sweep hazard of §VI. The blob is seeded with end-branch byte
    patterns surrounded by undefined opcodes: a byte-at-a-time resyncing
    sweep decodes the phantom markers, while superset validation sees
    the broken chains around them and skips the region.
    """
    label = f".Ldata_end{asm.here}"
    if size <= 120:
        asm.jmp_short(label)
    else:
        asm.jmp(label)
    blob = bytearray()
    endbr = b"\xf3\x0f\x1e\xfa" if asm.bits == 64 else b"\xf3\x0f\x1e\xfb"
    while len(blob) < size:
        blob += b"\xff\xff"          # FF /7 — undefined, breaks chains
        if rng.random() < 0.5 and len(blob) + 7 <= size:
            # A one-byte instruction followed by an end-branch pattern:
            # byte-at-a-time resync walks straight onto the phantom
            # marker. The trailing FF FF keeps the chain non-viable, so
            # superset validation rejects the whole run.
            blob += b"\xc3" + endbr
    asm.raw(bytes(blob[:size]))
    asm.label(label)


def _landing_pads(
    asm: Asm,
    artifact: FunctionArtifact,
    rng: random.Random,
    spec: FunctionSpec,
    try_regions: list[tuple[int, int]],
) -> None:
    pads = spec.landing_pads
    for i in range(pads):
        pad_offset = asm.here
        asm.endbr()
        asm.filler(rng, rng.randrange(2, 5))
        asm.call(plt_symbol("__cxa_begin_catch"))
        asm.filler(rng, 2)
        asm.call(plt_symbol("__cxa_end_catch"))
        asm.jmp(f".Lpad_resume{i}")
        if i < len(try_regions):
            start, length = try_regions[i]
        else:
            # Synthesize a nominal region covering early body bytes.
            start, length = 4 + 3 * i, 5
        artifact.eh_callsites.append((start, length, pad_offset))
    # Resume labels: land back on the terminating NOP sled before the
    # epilogue; keep them trivially near the end.
    for i in range(pads):
        asm.label(f".Lpad_resume{i}")
    asm.ret()


def _cold_fragment(
    spec: FunctionSpec, profile: CompilerProfile, rng: random.Random
) -> Code:
    """An out-of-line unlikely path: no endbr, jumps back to the parent."""
    asm = Asm(profile.bits)
    asm.filler(rng, rng.randrange(3, 8))
    if rng.random() < 0.5:
        asm.call(plt_symbol("abort"))
    asm.filler(rng, 2)
    # Jump back into the parent body (the label the parent defined).
    asm.jmp(f"localref:{spec.name}:.Lcold_ret")
    return asm.finish()


def _part_fragment(
    spec: FunctionSpec, profile: CompilerProfile, rng: random.Random
) -> Code:
    """A partial-inlining fragment: looks like a function (direct-called,
    own prologue) but is ground-truth-excluded (paper §V-A1)."""
    asm = Asm(profile.bits)
    frame = _prologue(asm, profile, rng)
    asm.filler(rng, rng.randrange(4, 10))
    _epilogue(asm, profile, frame)
    asm.ret()
    return asm.finish()


def _generate_thunk(
    spec: FunctionSpec, profile: CompilerProfile
) -> FunctionArtifact:
    """``__x86.get_pc_thunk.*``: mov (%esp), %ebx; ret — no end-branch."""
    asm = Asm(profile.bits)
    if profile.bits == 32:
        asm.raw(b"\x8b\x1c\x24")  # mov ebx, [esp]
    else:
        asm.raw(b"\x48\x8b\x04\x24")  # mov rax, [rsp]
    asm.ret()
    return FunctionArtifact(spec=spec, code=asm.finish())
