"""Program-level intermediate representation for the synthetic toolchain.

A :class:`ProgramSpec` describes one program to synthesize: its
functions, their linkage and reference structure, imported library
functions, and the phenomena each function exhibits (setjmp call sites,
exception landing pads, jump tables, cold fragments, ...). The
generator (:mod:`repro.synth.generate`) produces these specs; the
codegen/linker pipeline lowers them to ELF images with exact ground
truth attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The indirect-return ("returns twice") functions predefined by GCC's
#: ``special_function_p`` — the five-entry list FunSeeker's FILTERENDBR
#: matches against (paper §IV-C). Canonically defined in the core
#: package; re-exported here for the generator's convenience.
from repro.core.indirect_return import INDIRECT_RETURN_FUNCTIONS

#: Common C-library imports used to populate realistic PLTs.
LIBC_IMPORTS = (
    "malloc", "free", "memcpy", "memset", "strlen", "strcmp", "printf",
    "fprintf", "snprintf", "puts", "fopen", "fclose", "fread", "fwrite",
    "exit", "abort", "qsort", "getenv", "strtol", "realloc",
)

#: C++ runtime imports present in exception-throwing binaries.
CXX_IMPORTS = (
    "__cxa_begin_catch", "__cxa_end_catch", "__cxa_rethrow",
    "__cxa_allocate_exception", "__cxa_throw", "_Unwind_Resume",
    "__gxx_personality_v0",
)


@dataclass
class FunctionSpec:
    """One function to synthesize.

    The reference-structure fields (``callees``, ``tail_call_target``,
    ``address_taken`` ...) drive both code generation and the expected
    values of the paper's three syntactic properties (EndBrAtHead,
    DirCallTarget, DirJmpTarget — Figure 3).
    """

    name: str
    is_static: bool = False
    has_endbr: bool = True
    address_taken: bool = False
    is_dead: bool = False
    is_thunk: bool = False           # __x86.get_pc_thunk-style intrinsic
    filler: int = 12                 # body filler instruction count
    callees: list[str] = field(default_factory=list)
    plt_callees: list[str] = field(default_factory=list)
    tail_call_target: str | None = None
    setjmp_sites: list[str] = field(default_factory=list)  # names from the
    # indirect-return list, one call site each
    jump_table_cases: int = 0        # 0 = no switch dispatch
    landing_pads: int = 0            # C++ catch blocks
    cold_fragment: bool = False      # emit an out-of-line .cold block
    part_fragment: bool = False      # emit a .part block (direct-called)
    takes_address_of: list[str] = field(default_factory=list)
    # functions whose addresses this body materializes and calls through
    # a pointer (makes the targets address-taken)
    omit_symbol: bool = False        # models the missing get_pc_thunk
    # symbol the paper corrects for in its ground truth (§V-A1)
    inline_data: int = 0             # bytes of hand-written-assembly-style
    # data embedded in the body (jumped over at runtime) — the
    # linear-sweep hazard of §VI; decoys inside look like endbr
    extra_fragment_calls: list[str] = field(default_factory=list)
    # direct calls this body makes to other functions' .part fragments
    # (the paper's 42.9%-of-false-positives case, §V-C)
    fragment_tail_jumps: list[str] = field(default_factory=list)
    # unconditional jumps this body makes to other functions' fragments
    # (the misidentified-tail-call false positives, §V-C)
    seed: int = 0

    def __post_init__(self) -> None:
        bad = [s for s in self.setjmp_sites
               if s not in INDIRECT_RETURN_FUNCTIONS]
        if bad:
            raise ValueError(f"not indirect-return functions: {bad}")


@dataclass
class ProgramSpec:
    """One whole program to synthesize."""

    name: str
    functions: list[FunctionSpec]
    imports: list[str] = field(default_factory=list)
    entry_function: str = "main"

    def function(self, name: str) -> FunctionSpec:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)

    def validate(self) -> None:
        """Check internal consistency of the reference structure."""
        names = {f.name for f in self.functions}
        if len(names) != len(self.functions):
            raise ValueError("duplicate function names")
        if self.entry_function not in names:
            raise ValueError(f"entry {self.entry_function!r} not defined")
        imports = set(self.imports)
        for f in self.functions:
            for callee in f.callees:
                if callee not in names:
                    raise ValueError(f"{f.name} calls unknown {callee}")
            if f.tail_call_target and f.tail_call_target not in names:
                raise ValueError(
                    f"{f.name} tail-calls unknown {f.tail_call_target}"
                )
            for imp in f.plt_callees:
                if imp not in imports:
                    raise ValueError(f"{f.name} imports unknown {imp}")
            for sj in f.setjmp_sites:
                if sj not in imports:
                    raise ValueError(
                        f"{f.name} uses {sj} but it is not imported"
                    )


@dataclass(frozen=True)
class GroundTruthEntry:
    """Ground truth for one emitted code object."""

    name: str
    address: int
    size: int
    is_function: bool      # False for .cold / .part fragments
    is_static: bool = False
    has_endbr: bool = False
    is_dead: bool = False


@dataclass
class GroundTruth:
    """Exact ground truth attached to a synthesized binary.

    ``function_starts`` follows the paper's ground-truth policy
    (§V-A1): ``.cold`` / ``.part`` fragments are excluded even though
    they carry symbols; compiler intrinsics like ``__x86.get_pc_thunk``
    are included.
    """

    entries: list[GroundTruthEntry] = field(default_factory=list)

    @property
    def function_starts(self) -> set[int]:
        return {e.address for e in self.entries if e.is_function}

    @property
    def fragment_starts(self) -> set[int]:
        return {e.address for e in self.entries if not e.is_function}

    def entry_named(self, name: str) -> GroundTruthEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(name)
