"""x86 / x86-64 instruction encoder for the synthetic CET toolchain.

A small assembler covering the instruction shapes GCC and Clang emit in
function bodies: CET markers, prologues/epilogues, ALU filler, direct
and indirect branches, PLT calls, RIP-relative and absolute addressing,
jump-table dispatch, and multi-byte NOP padding.

Code is emitted into relocatable :class:`Code` chunks: label references
are recorded as fixups and patched by the synthetic linker once final
addresses are known.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field


class FixupKind(enum.Enum):
    REL32 = "rel32"     # signed displacement relative to end of field
    ABS32 = "abs32"     # absolute 32-bit address
    ABS64 = "abs64"     # absolute 64-bit address


@dataclass(frozen=True)
class Fixup:
    """A reference to a symbol that the linker must patch.

    ``offset`` addresses the start of the value field inside the chunk;
    for REL32 the displacement base is ``offset + 4`` (+ ``extra`` for
    instructions where the field is not last).
    """

    offset: int
    kind: FixupKind
    symbol: str
    addend: int = 0


@dataclass
class Code:
    """A relocatable chunk of machine code."""

    buf: bytearray = field(default_factory=bytearray)
    fixups: list[Fixup] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.buf)


class Asm:
    """Instruction emitter targeting 32- or 64-bit x86.

    Local labels (``.L*``) are resolved when :meth:`finish` is called;
    any other symbol becomes a linker fixup.
    """

    def __init__(self, bits: int) -> None:
        if bits not in (32, 64):
            raise ValueError("bits must be 32 or 64")
        self.bits = bits
        self.code = Code()
        self._pending_rel32: list[tuple[int, str]] = []
        self._pending_rel8: list[tuple[int, str]] = []

    # -- plumbing ---------------------------------------------------------

    @property
    def here(self) -> int:
        return len(self.code.buf)

    def raw(self, data: bytes) -> None:
        self.code.buf.extend(data)

    def label(self, name: str) -> None:
        """Define a label at the current offset."""
        if name in self.code.labels:
            raise ValueError(f"duplicate label {name}")
        self.code.labels[name] = self.here

    def finish(self) -> Code:
        """Resolve local labels; return the chunk."""
        for offset, name in self._pending_rel32:
            if name in self.code.labels:
                delta = self.code.labels[name] - (offset + 4)
                struct.pack_into("<i", self.code.buf, offset, delta)
            else:
                self.code.fixups.append(Fixup(offset, FixupKind.REL32, name))
        for offset, name in self._pending_rel8:
            if name not in self.code.labels:
                raise ValueError(f"rel8 to unresolved label {name}")
            delta = self.code.labels[name] - (offset + 1)
            if not -128 <= delta < 128:
                raise ValueError(f"rel8 out of range to {name}: {delta}")
            struct.pack_into("<b", self.code.buf, offset, delta)
        self._pending_rel32.clear()
        self._pending_rel8.clear()
        return self.code

    def _rel32(self, name: str) -> None:
        self._pending_rel32.append((self.here, name))
        self.raw(b"\x00\x00\x00\x00")

    def _rel8(self, name: str) -> None:
        self._pending_rel8.append((self.here, name))
        self.raw(b"\x00")

    def _abs(self, name: str, *, wide: bool = False) -> None:
        kind = FixupKind.ABS64 if wide else FixupKind.ABS32
        self.code.fixups.append(Fixup(self.here, kind, name))
        self.raw(b"\x00" * (8 if wide else 4))

    # -- CET markers ---------------------------------------------------------

    def endbr(self) -> None:
        self.raw(b"\xf3\x0f\x1e\xfa" if self.bits == 64 else b"\xf3\x0f\x1e\xfb")

    # -- prologue / epilogue ---------------------------------------------------

    def push_bp(self) -> None:
        self.raw(b"\x55")

    def mov_bp_sp(self) -> None:
        self.raw(b"\x48\x89\xe5" if self.bits == 64 else b"\x89\xe5")

    def sub_sp(self, imm: int) -> None:
        if self.bits == 64:
            self.raw(b"\x48\x83\xec" + bytes([imm]) if imm < 128
                     else b"\x48\x81\xec" + struct.pack("<I", imm))
        else:
            self.raw(b"\x83\xec" + bytes([imm]) if imm < 128
                     else b"\x81\xec" + struct.pack("<I", imm))

    def add_sp(self, imm: int) -> None:
        if self.bits == 64:
            self.raw(b"\x48\x83\xc4" + bytes([imm]) if imm < 128
                     else b"\x48\x81\xc4" + struct.pack("<I", imm))
        else:
            self.raw(b"\x83\xc4" + bytes([imm]) if imm < 128
                     else b"\x81\xc4" + struct.pack("<I", imm))

    def pop_bp(self) -> None:
        self.raw(b"\x5d")

    def leave(self) -> None:
        self.raw(b"\xc9")

    def push_rbx(self) -> None:
        self.raw(b"\x53")

    def pop_rbx(self) -> None:
        self.raw(b"\x5b")

    def ret(self) -> None:
        self.raw(b"\xc3")

    # -- direct control flow --------------------------------------------------

    def call(self, symbol: str) -> None:
        self.raw(b"\xe8")
        self._rel32(symbol)

    def jmp(self, symbol: str) -> None:
        self.raw(b"\xe9")
        self._rel32(symbol)

    def jmp_short(self, label: str) -> None:
        self.raw(b"\xeb")
        self._rel8(label)

    _CC = {
        "e": 0x4, "ne": 0x5, "l": 0xC, "le": 0xE, "g": 0xF, "ge": 0xD,
        "a": 0x7, "ae": 0x3, "b": 0x2, "be": 0x6, "s": 0x8, "ns": 0x9,
    }

    def jcc(self, cc: str, symbol: str) -> None:
        self.raw(bytes([0x0F, 0x80 | self._CC[cc]]))
        self._rel32(symbol)

    def jcc_short(self, cc: str, label: str) -> None:
        self.raw(bytes([0x70 | self._CC[cc]]))
        self._rel8(label)

    # -- indirect control flow ---------------------------------------------------

    def call_reg(self, reg: int = 0) -> None:
        """call *%reg (rax/eax by default)."""
        self.raw(bytes([0xFF, 0xD0 | (reg & 7)]))

    def jmp_reg(self, reg: int = 0, *, notrack: bool = False) -> None:
        """jmp *%reg; optionally NOTRACK-prefixed (jump tables)."""
        prefix = b"\x3e" if notrack else b""
        self.raw(prefix + bytes([0xFF, 0xE0 | (reg & 7)]))

    def call_mem_bp(self, disp8: int) -> None:
        """call *disp8(%rbp) — call through a spilled function pointer."""
        self.raw(bytes([0xFF, 0x55, disp8 & 0xFF]))

    def notrack_jmp_table(self, table_symbol: str, *, scale8: bool) -> None:
        """notrack jmp *table(,%rax,N) — 32-bit / non-PIE jump-table form."""
        sib = 0xC5 if scale8 else 0x85
        self.raw(b"\x3e\xff\x24" + bytes([sib]))
        self._abs(table_symbol)

    # -- data movement ----------------------------------------------------------

    def lea_rip(self, reg: int, symbol: str) -> None:
        """lea reg, [rip + symbol] (64-bit only)."""
        if self.bits != 64:
            raise ValueError("lea_rip requires 64-bit mode")
        rex = 0x48 | (0x4 if reg >= 8 else 0)
        modrm = 0x05 | ((reg & 7) << 3)
        self.raw(bytes([rex, 0x8D, modrm]))
        # RIP-relative: displacement base is end of instruction = field + 4.
        self._rel32(symbol)

    def mov_imm_sym(self, reg: int, symbol: str) -> None:
        """mov reg, $symbol — 32-bit absolute address materialization."""
        self.raw(bytes([0xB8 | (reg & 7)]))
        self._abs(symbol)

    def push_imm_sym(self, symbol: str) -> None:
        """push $symbol (32-bit address-taking idiom)."""
        self.raw(b"\x68")
        self._abs(symbol)

    def mov_reg_imm(self, reg: int, value: int) -> None:
        self.raw(bytes([0xB8 | (reg & 7)]) + struct.pack("<I", value & 0xFFFFFFFF))

    def mov_mem_bp_reg(self, disp8: int, reg: int = 0) -> None:
        """mov disp8(%rbp), reg — spill."""
        prefix = b"\x48" if self.bits == 64 else b""
        self.raw(prefix + bytes([0x89, 0x45 | ((reg & 7) << 3), disp8 & 0xFF]))

    def mov_reg_mem_bp(self, reg: int, disp8: int) -> None:
        """mov reg, disp8(%rbp) — reload."""
        prefix = b"\x48" if self.bits == 64 else b""
        self.raw(prefix + bytes([0x8B, 0x45 | ((reg & 7) << 3), disp8 & 0xFF]))

    # -- ALU filler --------------------------------------------------------------

    def test_eax_eax(self) -> None:
        self.raw(b"\x85\xc0")

    def cmp_eax_imm8(self, imm: int) -> None:
        self.raw(b"\x83\xf8" + bytes([imm & 0xFF]))

    def xor_eax_eax(self) -> None:
        self.raw(b"\x31\xc0")

    def add_eax_imm(self, imm: int) -> None:
        self.raw(b"\x05" + struct.pack("<I", imm & 0xFFFFFFFF))

    def imul_eax_imm8(self, imm: int) -> None:
        self.raw(b"\x6b\xc0" + bytes([imm & 0xFF]))

    def mov_edi_eax(self) -> None:
        self.raw(b"\x89\xc7")

    def mov_eax_edi(self) -> None:
        self.raw(b"\x89\xf8")

    #: Filler snippets: realistic ALU/memory sequences used to pad bodies.
    _FILLER64 = [
        b"\x89\xc2",                          # mov edx, eax
        b"\x01\xd0",                          # add eax, edx
        b"\x29\xd0",                          # sub eax, edx
        b"\x0f\xaf\xc2",                      # imul eax, edx
        b"\x83\xc0\x07",                      # add eax, 7
        b"\x48\x8b\x45\xf8",                  # mov rax, [rbp-8]
        b"\x48\x89\x45\xf0",                  # mov [rbp-16], rax
        b"\x8b\x55\xec",                      # mov edx, [rbp-20]
        b"\x0f\xb6\xc0",                      # movzx eax, al
        b"\x48\x98",                          # cdqe
        b"\xc1\xe0\x02",                      # shl eax, 2
        b"\x21\xd0",                          # and eax, edx
        b"\x09\xd0",                          # or eax, edx
        b"\x31\xd2",                          # xor edx, edx
        b"\xf7\xd8",                          # neg eax
        b"\x66\x0f\xef\xc0",                  # pxor xmm0, xmm0
        b"\xf2\x0f\x58\xc1",                  # addsd xmm0, xmm1
        b"\xf2\x0f\x59\xc1",                  # mulsd xmm0, xmm1
        b"\x0f\x28\xc8",                      # movaps xmm1, xmm0
    ]
    _FILLER32 = [
        b"\x89\xc2",                          # mov edx, eax
        b"\x01\xd0",                          # add eax, edx
        b"\x29\xd0",                          # sub eax, edx
        b"\x0f\xaf\xc2",                      # imul eax, edx
        b"\x83\xc0\x07",                      # add eax, 7
        b"\x8b\x45\xf8",                      # mov eax, [ebp-8]
        b"\x89\x45\xf0",                      # mov [ebp-16], eax
        b"\x8b\x55\xec",                      # mov edx, [ebp-20]
        b"\x0f\xb6\xc0",                      # movzx eax, al
        b"\xc1\xe0\x02",                      # shl eax, 2
        b"\x21\xd0",                          # and eax, edx
        b"\x09\xd0",                          # or eax, edx
        b"\x31\xd2",                          # xor edx, edx
        b"\xf7\xd8",                          # neg eax
    ]

    def filler(self, rng, count: int) -> None:
        """Emit ``count`` pseudo-random filler instructions."""
        pool = self._FILLER64 if self.bits == 64 else self._FILLER32
        for _ in range(count):
            self.raw(pool[rng.randrange(len(pool))])

    # -- padding ---------------------------------------------------------------

    # GCC/Clang multi-byte NOP ladder (1-9 bytes).
    _NOPS = [
        b"",
        b"\x90",
        b"\x66\x90",
        b"\x0f\x1f\x00",
        b"\x0f\x1f\x40\x00",
        b"\x0f\x1f\x44\x00\x00",
        b"\x66\x0f\x1f\x44\x00\x00",
        b"\x0f\x1f\x80\x00\x00\x00\x00",
        b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
        b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
    ]

    def nop_pad(self, count: int) -> None:
        """Emit ``count`` bytes of alignment padding using wide NOPs."""
        while count > 0:
            chunk = min(count, 9)
            self.raw(self._NOPS[chunk])
            count -= chunk

    def align(self, alignment: int) -> None:
        """Pad with NOPs to the next multiple of ``alignment``."""
        rem = (-self.here) % alignment
        if rem:
            self.nop_pad(rem)
