"""Corpus serialization: write/read the benchmark dataset to disk.

The paper publicizes its binary dataset (both original and stripped) to
support open science; this module does the same for the synthetic
corpus. A dataset directory holds, per binary, the original image, the
stripped image, and a JSON ground-truth sidecar, plus a corpus-level
manifest:

    dataset/
      manifest.json
      coreutils/coreutils_000/gcc-x64-O2-pie/
        binary.elf
        binary.stripped.elf
        ground_truth.json
      ...
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.synth.corpus import CorpusEntry, iter_corpus
from repro.synth.ir import GroundTruth, GroundTruthEntry
from repro.synth.linker import SynthBinary
from repro.synth.profiles import CompilerProfile

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def save_dataset(
    root: str | Path, *, scale: str = "small", seed: int = 2022
) -> dict:
    """Generate a corpus and persist it under ``root``.

    Returns the manifest dictionary (also written to disk).
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "format": FORMAT_VERSION,
        "scale": scale,
        "seed": seed,
        "binaries": [],
    }
    for entry in iter_corpus(scale, seed):
        rel = Path(entry.suite) / entry.program / entry.profile.config_name
        directory = root / rel
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "binary.elf").write_bytes(entry.binary.data)
        (directory / "binary.stripped.elf").write_bytes(entry.stripped)
        (directory / "ground_truth.json").write_text(
            json.dumps(_ground_truth_dict(entry), indent=1))
        manifest["binaries"].append({
            "suite": entry.suite,
            "program": entry.program,
            "config": entry.profile.config_name,
            "path": str(rel),
            "functions": len(entry.binary.ground_truth.function_starts),
            "size": len(entry.binary.data),
        })
    (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))
    return manifest


def load_dataset(root: str | Path) -> list[CorpusEntry]:
    """Reload a dataset saved by :func:`save_dataset`."""
    root = Path(root)
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format {manifest.get('format')!r}")
    entries: list[CorpusEntry] = []
    for record in manifest["binaries"]:
        directory = root / record["path"]
        gt_doc = json.loads((directory / "ground_truth.json").read_text())
        profile = _profile_from_config(record["config"])
        binary = SynthBinary(
            name=record["program"],
            profile=profile,
            data=(directory / "binary.elf").read_bytes(),
            ground_truth=_ground_truth_from_dict(gt_doc),
        )
        entries.append(CorpusEntry(
            suite=record["suite"],
            program=record["program"],
            binary=binary,
            stripped=(directory / "binary.stripped.elf").read_bytes(),
        ))
    return entries


def _ground_truth_dict(entry: CorpusEntry) -> dict:
    return {
        "suite": entry.suite,
        "program": entry.program,
        "config": entry.profile.config_name,
        "entries": [asdict(e) for e in entry.binary.ground_truth.entries],
    }


def _ground_truth_from_dict(doc: dict) -> GroundTruth:
    gt = GroundTruth()
    for record in doc["entries"]:
        gt.entries.append(GroundTruthEntry(**record))
    return gt


def _profile_from_config(config: str) -> CompilerProfile:
    """Invert ``CompilerProfile.config_name``.

    >>> _profile_from_config("gcc-x64-O2-pie").bits
    64
    """
    compiler, arch, opt, pie = config.split("-")
    return CompilerProfile(
        compiler=compiler,
        opt=opt,
        bits=64 if arch == "x64" else 32,
        pie=pie == "pie",
    )
