"""Synthetic CET toolchain: generate ELF binaries with exact ground truth.

Public entry points:

- :func:`~repro.synth.generate.generate_program` /
  :func:`~repro.synth.generate.generate_suite` — build program specs.
- :func:`~repro.synth.linker.link_program` — lower a spec to an ELF
  image (:class:`~repro.synth.linker.SynthBinary`).
- :class:`~repro.synth.profiles.CompilerProfile` — build configuration.
- :mod:`repro.synth.corpus` — whole-corpus construction.
"""

from repro.synth.generate import (
    DEFAULT_SUITES,
    SUITES,
    SuiteParams,
    generate_program,
    generate_suite,
)
from repro.synth.ir import (
    INDIRECT_RETURN_FUNCTIONS,
    FunctionSpec,
    GroundTruth,
    GroundTruthEntry,
    ProgramSpec,
)
from repro.synth.linker import LinkError, SynthBinary, link_program
from repro.synth.profiles import (
    COMPILERS,
    OPT_LEVELS,
    CompilerProfile,
    default_matrix,
    sampled_matrix,
)

__all__ = [
    "COMPILERS",
    "DEFAULT_SUITES",
    "INDIRECT_RETURN_FUNCTIONS",
    "OPT_LEVELS",
    "SUITES",
    "CompilerProfile",
    "FunctionSpec",
    "GroundTruth",
    "GroundTruthEntry",
    "LinkError",
    "ProgramSpec",
    "SuiteParams",
    "SynthBinary",
    "default_matrix",
    "generate_program",
    "generate_suite",
    "link_program",
    "sampled_matrix",
]
