"""The synthetic toolchain's linker.

Takes a :class:`~repro.synth.ir.ProgramSpec` plus a
:class:`~repro.synth.profiles.CompilerProfile`, lowers every function
through codegen, lays out sections the way GNU ld lays out CET-enabled
executables, resolves all fixups, emits exception metadata per the
profile's FDE policy, and produces a complete ELF image together with
exact ground truth.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.elf import constants as C
from repro.elf.writer import ElfWriter, SectionSpec, SymbolSpec
from repro.synth.codegen import (
    FunctionArtifact,
    generate_function,
    plt_symbol,
)
from repro.synth.ehwriter import (
    FdeRequest,
    build_eh_frame,
    build_gcc_except_table,
    patch_eh_frame,
)
from repro.synth.encoder import Fixup, FixupKind
from repro.synth.ir import GroundTruth, GroundTruthEntry, ProgramSpec
from repro.synth.profiles import CompilerProfile

_PAGE = 0x1000
_PLT_ENTRY = 16


@dataclass
class SynthBinary:
    """A synthesized ELF executable plus its exact ground truth."""

    name: str
    profile: CompilerProfile
    data: bytes
    ground_truth: GroundTruth

    @property
    def config_name(self) -> str:
        return self.profile.config_name


class LinkError(Exception):
    """Raised on unresolved symbols or layout inconsistencies."""


def link_program(
    spec: ProgramSpec, profile: CompilerProfile
) -> SynthBinary:
    """Produce an ELF image for ``spec`` under ``profile``."""
    spec.validate()
    artifacts = [generate_function(f, profile) for f in spec.functions]

    imports = _collect_imports(spec, artifacts)
    is64 = profile.bits == 64
    machine = C.EM_X86_64 if is64 else C.EM_386
    base = 0x1000 if profile.pie else (0x400000 if is64 else 0x8048000)

    # ------------------------------------------------------------------
    # Section contents that don't depend on layout.
    # ------------------------------------------------------------------
    dynstr, dynsym, sym_index = _build_dynsym(imports, is64)

    # ------------------------------------------------------------------
    # Text layout: functions in spec order, fragments afterwards.
    # ------------------------------------------------------------------
    align = profile.function_alignment
    placements: list[tuple[str, FunctionArtifact | None, int, int]] = []
    # (symbol, artifact-or-None-for-fragment, text_offset, size)
    text_size = 0
    chunk_of: dict[str, bytes] = {}
    fixups_of: dict[str, list[Fixup]] = {}
    labels_of: dict[str, dict[str, int]] = {}

    def place(symbol: str, code, artifact) -> None:
        nonlocal text_size
        text_size += (-text_size) % align
        placements.append((symbol, artifact, text_size, len(code.buf)))
        chunk_of[symbol] = code.buf
        fixups_of[symbol] = code.fixups
        labels_of[symbol] = code.labels
        text_size += len(code.buf)

    for art in artifacts:
        place(art.spec.name, art.code, art)
    for art in artifacts:
        for frag_sym, frag_code in art.fragments:
            place(frag_sym, frag_code, None)

    # ------------------------------------------------------------------
    # Exception metadata (content is layout-independent).
    # ------------------------------------------------------------------
    callsites: list[list[tuple[int, int, int]]] = []
    fde_requests: list[FdeRequest] = []
    placement_index = {p[0]: i for i, p in enumerate(placements)}

    for i, (symbol, artifact, _off, size) in enumerate(placements):
        has_pads = artifact is not None and bool(artifact.eh_callsites)
        if has_pads:
            lsda_index = len(callsites)
            callsites.append(artifact.eh_callsites)
            fde_requests.append(FdeRequest(i, size, lsda_offset=lsda_index))
        elif profile.emits_fde_for_c:
            # GCC emits FDEs for every function *and* for .part/.cold
            # fragments (the FDEs FETCH stumbles on, §VII); Clang x86
            # omits FDEs for plain-C functions.
            fde_requests.append(FdeRequest(i, size))

    except_table, lsda_offsets = build_gcc_except_table(callsites)
    # Rewrite symbolic LSDA indices into real blob offsets.
    for req in fde_requests:
        if req.lsda_offset is not None:
            req.lsda_offset = lsda_offsets[req.lsda_offset]

    # ------------------------------------------------------------------
    # Rodata / data layout.
    # ------------------------------------------------------------------
    rodata_items = [item for art in artifacts for item in art.rodata]
    rodata_size = 0
    rodata_offsets: dict[str, int] = {}
    for item in rodata_items:
        rodata_size += (-rodata_size) % item.align
        rodata_offsets[item.symbol] = rodata_size
        rodata_size += len(item.data)

    plt_size = _PLT_ENTRY * (1 + len(imports))  # PLT0 + one per import
    word = 8 if is64 else 4
    got_plt_size = word * (3 + len(imports))
    rela_entsize = (24 if is64 else 8)
    relaplt_size = rela_entsize * len(imports)
    data_size = 256  # jmp_buf + misc globals

    personality = plt_symbol("__gxx_personality_v0") if callsites else None
    eh_blob = build_eh_frame(
        fde_requests,
        personality_addr=0,  # patched below once the PLT address is known
    )

    # ------------------------------------------------------------------
    # Address assignment.
    # ------------------------------------------------------------------
    from repro.elf.gnuproperty import build_cet_note

    cet_note = build_cet_note(is64=is64)
    note_addr = base + 0x300  # past ELF header + program headers
    cursor = base + 0x400
    dynsym_addr = cursor
    cursor += len(dynsym)
    dynstr_addr = cursor
    cursor += len(dynstr)
    relaplt_addr = _align_up(cursor, 8)
    cursor = relaplt_addr + relaplt_size

    cursor = _align_up(cursor, _PAGE)
    plt_addr = cursor
    cursor += plt_size
    text_addr = _align_up(cursor, 16)
    cursor = text_addr + text_size

    cursor = _align_up(cursor, _PAGE)
    rodata_addr = cursor
    cursor += rodata_size
    # .eh_frame_hdr precedes .eh_frame, as GNU ld lays it out.
    hdr_size = 12 + 8 * len(fde_requests)
    eh_frame_hdr_addr = _align_up(cursor, 4)
    cursor = eh_frame_hdr_addr + hdr_size
    eh_frame_addr = _align_up(cursor, 8)
    cursor = eh_frame_addr + len(eh_blob.data)
    except_table_addr = _align_up(cursor, 4)
    cursor = except_table_addr + len(except_table)

    cursor = _align_up(cursor, _PAGE)
    got_plt_addr = cursor
    cursor += got_plt_size
    # Function-pointer table (vtable-style): one slot per address-taken
    # function. This is the data-side reference that justifies those
    # functions' end-branches (and what IBT audits check).
    taken = [f.name for f in spec.functions
             if f.address_taken and not f.is_dead]
    fptr_table_addr = _align_up(cursor, word)
    cursor = fptr_table_addr + word * len(taken)
    data_addr = _align_up(cursor, 8)
    cursor = data_addr + data_size

    # ------------------------------------------------------------------
    # Symbol resolution.
    # ------------------------------------------------------------------
    addr_of: dict[str, int] = {}
    for symbol, _art, off, _size in placements:
        addr_of[symbol] = text_addr + off
    for i, imp in enumerate(imports):
        addr_of[plt_symbol(imp)] = plt_addr + _PLT_ENTRY * (1 + i)
    for item in rodata_items:
        addr_of[item.symbol] = rodata_addr + rodata_offsets[item.symbol]
    addr_of["data:jmpbuf"] = data_addr

    if personality is not None:
        # Rebuild eh_frame with the real personality address.
        eh_blob = build_eh_frame(
            fde_requests, personality_addr=addr_of[personality]
        )

    # ------------------------------------------------------------------
    # Patch text fixups.
    # ------------------------------------------------------------------
    text = bytearray(text_size)
    for symbol, _art, off, _size in placements:
        buf = chunk_of[symbol]
        text[off : off + len(buf)] = buf
    # Alignment gaps: fill with multi-byte-NOP-style padding (0x90 runs
    # inside gaps keep linear sweep clean, matching compiler output).
    _fill_gaps(text, placements)

    for symbol, _art, off, _size in placements:
        chunk_addr = text_addr + off
        for fx in fixups_of[symbol]:
            target = _resolve(fx.symbol, addr_of, labels_of, text_addr,
                              placements, placement_index)
            field_pos = off + fx.offset
            if fx.kind == FixupKind.REL32:
                value = target - (chunk_addr + fx.offset + 4)
                struct.pack_into("<i", text, field_pos, value)
            elif fx.kind == FixupKind.ABS32:
                struct.pack_into("<I", text, field_pos,
                                 target & 0xFFFFFFFF)
            else:
                struct.pack_into("<Q", text, field_pos, target)

    # Rodata fixups (jump tables): ABS entries hold case addresses;
    # REL32 entries hold (case_addr - table_base) deltas.
    rodata = bytearray(rodata_size)
    for item in rodata_items:
        item_off = rodata_offsets[item.symbol]
        rodata[item_off : item_off + len(item.data)] = item.data
        table_addr = rodata_addr + item_off
        for fx in item.fixups:
            owner = fx.symbol.removeprefix("local:")
            case_addr = addr_of[owner] + fx.addend
            pos = item_off + fx.offset
            if fx.kind == FixupKind.REL32:
                struct.pack_into("<i", rodata, pos, case_addr - table_addr)
            elif fx.kind == FixupKind.ABS32:
                struct.pack_into("<I", rodata, pos, case_addr & 0xFFFFFFFF)
            else:
                struct.pack_into("<Q", rodata, pos, case_addr)

    func_addrs = [text_addr + off for _s, _a, off, _sz in placements]
    eh_frame = patch_eh_frame(
        eh_blob, eh_frame_addr, except_table_addr, func_addrs
    )
    from repro.elf.ehframehdr import build_eh_frame_hdr

    # Each pc patch's field sits 8 bytes into its FDE record.
    hdr_entries = [
        (func_addrs[func_index], eh_frame_addr + field_off - 8)
        for field_off, func_index in eh_blob.pc_patches
    ]
    eh_frame_hdr = build_eh_frame_hdr(
        eh_frame_hdr_addr, eh_frame_addr, hdr_entries)

    plt = _build_plt(profile, imports, plt_addr, got_plt_addr, word)
    relaplt = _build_relaplt(imports, sym_index, got_plt_addr, word, is64)

    # ------------------------------------------------------------------
    # Assemble the ELF.
    # ------------------------------------------------------------------
    writer = ElfWriter(is64=is64, machine=machine, pie=profile.pie,
                       base_addr=base)
    # The ELF entry point is _start when present (as produced by real
    # toolchains), falling back to the spec's logical entry function.
    writer.entry = addr_of.get(
        "_start", addr_of.get(spec.entry_function, text_addr)
    )

    def sec(name, sh_type, flags, data, addr, **kw):
        writer.add_section(SectionSpec(
            name=name, sh_type=sh_type, sh_flags=flags, data=data,
            sh_addr=addr, **kw,
        ))

    sec(".note.gnu.property", C.SHT_NOTE, C.SHF_ALLOC, cet_note,
        note_addr, sh_addralign=8 if is64 else 4)
    sec(".dynsym", C.SHT_DYNSYM, C.SHF_ALLOC, dynsym, dynsym_addr,
        sh_entsize=24 if is64 else 16, sh_info=1)
    sec(".dynstr", C.SHT_STRTAB, C.SHF_ALLOC, dynstr, dynstr_addr)
    relname = ".rela.plt" if is64 else ".rel.plt"
    sec(relname, C.SHT_RELA if is64 else C.SHT_REL, C.SHF_ALLOC,
        relaplt, relaplt_addr, sh_entsize=rela_entsize)
    sec(".plt", C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_EXECINSTR, plt,
        plt_addr, sh_addralign=16)
    sec(".text", C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_EXECINSTR,
        bytes(text), text_addr, sh_addralign=16)
    if rodata_size:
        sec(".rodata", C.SHT_PROGBITS, C.SHF_ALLOC, bytes(rodata),
            rodata_addr, sh_addralign=8)
    sec(".eh_frame_hdr", C.SHT_PROGBITS, C.SHF_ALLOC, eh_frame_hdr,
        eh_frame_hdr_addr, sh_addralign=4)
    sec(".eh_frame", C.SHT_PROGBITS, C.SHF_ALLOC, eh_frame,
        eh_frame_addr, sh_addralign=8)
    if except_table:
        sec(".gcc_except_table", C.SHT_PROGBITS, C.SHF_ALLOC,
            except_table, except_table_addr, sh_addralign=4)
    sec(".got.plt", C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_WRITE,
        bytes(got_plt_size), got_plt_addr, sh_addralign=word)
    if taken:
        fptr_blob = bytearray()
        for name in taken:
            fptr_blob += addr_of[name].to_bytes(word, "little")
        sec(".data.rel.ro", C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_WRITE,
            bytes(fptr_blob), fptr_table_addr, sh_addralign=word)
    sec(".data", C.SHT_PROGBITS, C.SHF_ALLOC | C.SHF_WRITE,
        bytes(data_size), data_addr, sh_addralign=8)

    ground_truth = _emit_symbols_and_ground_truth(
        writer, spec, placements, text_addr, placement_index
    )
    _emit_debug_info(writer, spec, placements, text_addr, is64)
    image = writer.build()
    return SynthBinary(
        name=spec.name, profile=profile, data=image,
        ground_truth=ground_truth,
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _align_up(value: int, align: int) -> int:
    return value + (-value) % align


def _collect_imports(
    spec: ProgramSpec, artifacts: list[FunctionArtifact]
) -> list[str]:
    """Declared imports plus any PLT symbol referenced by generated code."""
    seen = dict.fromkeys(spec.imports)
    for art in artifacts:
        codes = [art.code] + [c for _n, c in art.fragments]
        for code in codes:
            for fx in code.fixups:
                if fx.symbol.startswith("plt:"):
                    seen.setdefault(fx.symbol[4:], None)
    return list(seen)


def _build_dynsym(
    imports: list[str], is64: bool
) -> tuple[bytes, bytes, dict[str, int]]:
    dynstr = bytearray(b"\x00")
    entsize = 24 if is64 else 16
    dynsym = bytearray(entsize)  # null symbol
    index: dict[str, int] = {}
    for i, name in enumerate(imports):
        name_off = len(dynstr)
        dynstr += name.encode() + b"\x00"
        info = C.st_info(C.STB_GLOBAL, C.STT_FUNC)
        if is64:
            dynsym += struct.pack("<IBBHQQ", name_off, info, 0,
                                  C.SHN_UNDEF, 0, 0)
        else:
            dynsym += struct.pack("<IIIBBH", name_off, 0, 0, info, 0,
                                  C.SHN_UNDEF)
        index[name] = i + 1
    return bytes(dynstr), bytes(dynsym), index


def _build_plt(
    profile: CompilerProfile, imports: list[str],
    plt_addr: int, got_plt_addr: int, word: int,
) -> bytes:
    """CET-style PLT: every stub starts with an end-branch and dispatches
    through its GOT slot."""
    out = bytearray()
    endbr = b"\xf3\x0f\x1e\xfa" if profile.bits == 64 else b"\xf3\x0f\x1e\xfb"
    # PLT0: resolver header (never a call target by name).
    plt0 = bytearray(endbr)
    plt0 += b"\x90" * (_PLT_ENTRY - len(plt0))
    out += plt0
    for i, _name in enumerate(imports):
        entry_addr = plt_addr + _PLT_ENTRY * (1 + i)
        slot_addr = got_plt_addr + word * (3 + i)
        stub = bytearray()
        if profile.plt_stub_has_endbr:
            stub += endbr
        if profile.bits == 64:
            rel = slot_addr - (entry_addr + len(stub) + 6)
            stub += b"\xff\x25" + struct.pack("<i", rel)
        elif profile.pie:
            disp = slot_addr - got_plt_addr
            stub += b"\xff\xa3" + struct.pack("<i", disp)
        else:
            stub += b"\xff\x25" + struct.pack("<I", slot_addr)
        stub += b"\x90" * (_PLT_ENTRY - len(stub))
        out += stub
    return bytes(out)


def _build_relaplt(
    imports: list[str], sym_index: dict[str, int],
    got_plt_addr: int, word: int, is64: bool,
) -> bytes:
    out = bytearray()
    for i, name in enumerate(imports):
        slot = got_plt_addr + word * (3 + i)
        if is64:
            info = C.r_info(sym_index[name], C.R_X86_64_JUMP_SLOT, True)
            out += struct.pack("<QQq", slot, info, 0)
        else:
            info = C.r_info(sym_index[name], C.R_386_JMP_SLOT, False)
            out += struct.pack("<II", slot, info)
    return bytes(out)


def _fill_gaps(text: bytearray, placements) -> None:
    """Fill inter-function alignment gaps with NOP bytes."""
    prev_end = 0
    for _symbol, _art, off, size in placements:
        if off > prev_end:
            text[prev_end:off] = b"\x90" * (off - prev_end)
        prev_end = off + size
    if len(text) > prev_end:
        text[prev_end:] = b"\x90" * (len(text) - prev_end)


def _resolve(
    symbol: str, addr_of, labels_of, text_addr, placements, placement_index
) -> int:
    if symbol in addr_of:
        return addr_of[symbol]
    if symbol.startswith("localref:"):
        _tag, owner, label = symbol.split(":", 2)
        if owner not in placement_index:
            raise LinkError(f"unknown owner in {symbol}")
        labels = labels_of[owner]
        if label not in labels:
            raise LinkError(f"label {label} not defined in {owner}")
        return addr_of[owner] + labels[label]
    raise LinkError(f"unresolved symbol {symbol!r}")


def _emit_debug_info(
    writer: ElfWriter, spec: ProgramSpec, placements, text_addr, is64
) -> None:
    """Emit DWARF sections mirroring ``gcc -g`` output.

    Every placed object gets a subprogram DIE — including ``.cold`` /
    ``.part`` fragments (with their suffixed names), which is what
    forces ground-truth extraction to apply the paper's name-exclusion
    policy (§V-A1). The ``get_pc_thunk`` intrinsic is omitted when the
    compiler "forgot" its symbol, reproducing the corner case the paper
    corrects manually.
    """
    from repro.elf.dwarf.writer import FunctionDebugInfo, build_debug_info

    spec_of = {f.name: f for f in spec.functions}
    records = []
    for symbol, artifact, off, size in placements:
        fn = None if artifact is None else spec_of[symbol]
        if fn is not None and fn.omit_symbol:
            continue
        records.append(FunctionDebugInfo(
            name=symbol,
            low_pc=text_addr + off,
            size=size,
            external=fn is not None and not fn.is_static,
        ))
    info, abbrev, strtab = build_debug_info(
        spec.name, records, addr_size=8 if is64 else 4)
    for name, data in ((".debug_info", info), (".debug_abbrev", abbrev),
                       (".debug_str", strtab)):
        writer.add_section(SectionSpec(
            name=name, sh_type=C.SHT_PROGBITS, sh_flags=0, data=data,
        ))


def _emit_symbols_and_ground_truth(
    writer: ElfWriter, spec: ProgramSpec, placements, text_addr,
    placement_index,
) -> GroundTruth:
    spec_of = {f.name: f for f in spec.functions}
    gt = GroundTruth()
    for symbol, artifact, off, size in placements:
        addr = text_addr + off
        if artifact is None:  # .cold / .part fragment
            gt.entries.append(GroundTruthEntry(
                name=symbol, address=addr, size=size, is_function=False,
            ))
            writer.add_symbol(SymbolSpec(
                name=symbol, value=addr, size=size, bind=C.STB_LOCAL,
                typ=C.STT_FUNC, section=".text",
            ))
            continue
        fn = spec_of[symbol]
        gt.entries.append(GroundTruthEntry(
            name=symbol, address=addr, size=size, is_function=True,
            is_static=fn.is_static, has_endbr=fn.has_endbr,
            is_dead=fn.is_dead,
        ))
        if not fn.omit_symbol:
            bind = C.STB_LOCAL if fn.is_static else C.STB_GLOBAL
            writer.add_symbol(SymbolSpec(
                name=symbol, value=addr, size=size, bind=bind,
                typ=C.STT_FUNC, section=".text",
            ))
    return gt
