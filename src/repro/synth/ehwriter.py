"""Emission of ``.eh_frame`` and ``.gcc_except_table`` contents.

The synthetic toolchain mirrors GCC's encoding choices: FDE pointers use
``DW_EH_PE_pcrel | DW_EH_PE_sdata4``; LSDAs omit LPStart (landing pads
are relative to the function start) and use ULEB128 call-site tables.

Both sections are built in two phases: the byte layout is fixed before
final addresses are known (every pointer field has a deterministic
size), then :func:`patch_eh_frame` rewrites the PC-relative fields once
the linker has assigned section addresses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field


def _uleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


@dataclass
class FdeRequest:
    """One FDE to emit.

    ``func_index`` identifies the function for address patching;
    ``lsda_offset`` is the LSDA's offset inside ``.gcc_except_table``
    (``None`` when the function has no exception data).
    """

    func_index: int
    size: int
    lsda_offset: int | None = None


@dataclass
class EhFrameBlob:
    """Pre-layout ``.eh_frame`` contents plus its patch table."""

    data: bytearray = field(default_factory=bytearray)
    #: (blob_offset, func_index) — patch pc_begin = func_addr - field_addr
    pc_patches: list[tuple[int, int]] = field(default_factory=list)
    #: (blob_offset, lsda_offset) — patch = lsda_addr - field_addr
    lsda_patches: list[tuple[int, int]] = field(default_factory=list)


_ENC_PCREL_SDATA4 = 0x1B


def build_gcc_except_table(
    callsites_per_function: list[list[tuple[int, int, int]]],
) -> tuple[bytes, list[int]]:
    """Build ``.gcc_except_table`` for functions carrying landing pads.

    Parameters
    ----------
    callsites_per_function:
        For each function (in emission order): a list of
        ``(region_start, region_len, pad_offset)`` tuples, all relative
        to the function start.

    Returns the section bytes and the per-function LSDA offsets.
    """
    blob = bytearray()
    offsets: list[int] = []
    for callsites in callsites_per_function:
        # Align each LSDA to 4 bytes like GCC does.
        while len(blob) % 4:
            blob.append(0)
        offsets.append(len(blob))

        table = bytearray()
        for start, length, pad in callsites:
            table += _uleb(start)
            table += _uleb(length)
            table += _uleb(pad)
            table += _uleb(1)  # action: first action-table entry

        blob.append(0xFF)               # LPStart encoding: omit
        blob.append(0xFF)               # TType encoding: omit
        blob.append(0x01)               # call-site encoding: uleb128
        blob += _uleb(len(table))
        blob += table
        # A minimal action table entry (filter 1, no next).
        blob += b"\x01\x00"
    return bytes(blob), offsets


def build_eh_frame(
    fdes: list[FdeRequest], personality_addr: int
) -> EhFrameBlob:
    """Build ``.eh_frame`` with two CIEs (plain ``zR`` and ``zPLR``)."""
    blob = EhFrameBlob()
    plain_cie_offset = _emit_cie(blob.data, augmentation=b"zR",
                                 personality_addr=None)
    lsda_cie_offset = _emit_cie(blob.data, augmentation=b"zPLR",
                                personality_addr=personality_addr)
    for fde in fdes:
        cie_offset = (lsda_cie_offset if fde.lsda_offset is not None
                      else plain_cie_offset)
        _emit_fde(blob, fde, cie_offset)
    # Terminator record.
    blob.data += struct.pack("<I", 0)
    return blob


def _emit_cie(
    data: bytearray, augmentation: bytes, personality_addr: int | None
) -> int:
    offset = len(data)
    body = bytearray()
    body += struct.pack("<I", 0)        # CIE id
    body.append(1)                      # version
    body += augmentation + b"\x00"
    body += _uleb(1)                    # code alignment
    body.append(0x78)                   # data alignment: sleb(-8)
    body += _uleb(16)                   # return-address register (RA)
    aug = bytearray()
    for ch in augmentation.decode():
        if ch == "P":
            aug.append(0x03)            # DW_EH_PE_udata4
            aug += struct.pack("<I", (personality_addr or 0) & 0xFFFFFFFF)
        elif ch == "L":
            aug.append(_ENC_PCREL_SDATA4)
        elif ch == "R":
            aug.append(_ENC_PCREL_SDATA4)
    body += _uleb(len(aug))
    body += aug
    while (len(body) + 4) % 8:
        body.append(0)                  # DW_CFA_nop padding
    data += struct.pack("<I", len(body))
    data += body
    return offset


def _emit_fde(blob: EhFrameBlob, fde: FdeRequest, cie_offset: int) -> None:
    data = blob.data
    offset = len(data)
    body = bytearray()
    # CIE pointer: distance from this field back to the CIE.
    body += struct.pack("<I", offset + 4 - cie_offset)
    pc_field = offset + 4 + len(body)
    blob.pc_patches.append((pc_field, fde.func_index))
    body += struct.pack("<i", 0)        # pc_begin (patched)
    body += struct.pack("<I", fde.size)  # pc_range
    if fde.lsda_offset is not None:
        body += _uleb(4)
        lsda_field = offset + 4 + len(body)
        blob.lsda_patches.append((lsda_field, fde.lsda_offset))
        body += struct.pack("<i", 0)    # LSDA pointer (patched)
    else:
        body += _uleb(0)
    while (len(body) + 4) % 8:
        body.append(0)
    data += struct.pack("<I", len(body))
    data += body


def patch_eh_frame(
    blob: EhFrameBlob,
    eh_frame_addr: int,
    except_table_addr: int,
    func_addrs: list[int],
) -> bytes:
    """Resolve the PC-relative fields now that addresses are known."""
    data = bytearray(blob.data)
    for field_off, func_index in blob.pc_patches:
        value = func_addrs[func_index] - (eh_frame_addr + field_off)
        struct.pack_into("<i", data, field_off, value)
    for field_off, lsda_offset in blob.lsda_patches:
        value = (except_table_addr + lsda_offset) - (eh_frame_addr + field_off)
        struct.pack_into("<i", data, field_off, value)
    return bytes(data)
