"""The per-binary degradation ladder: partial results, never fleet loss.

An admitted real-world binary runs down a fixed ladder of rungs, each
guarded by the same watchdog/retry machinery the evaluation harness
uses (:func:`repro.eval.isolation.run_cell`):

1. **read** — load the image (the ``ingest.analyze`` fault point fires
   here, inside the watchdog, so an injected hang is caught by the
   cell deadline and an injected kill is caught by the parent's
   lost-worker backstop);
2. **parse** — degraded-mode :class:`~repro.elf.parser.ELFFile`: every
   tolerated anomaly lands on the shared diagnostics collector;
3. **cet** — the ``.note.gnu.property`` feature probe;
4. **detect** — each requested detector, independently guarded, with
   pairwise entry-set agreement computed over the tools that survived.

A rung that fails *downgrades* the outcome instead of failing the
binary: the result is a :class:`BinaryOutcome` whose ``status`` is
``ok``, ``degraded:<diagnostic>``, or ``quarantined``, with an
explicit ``confidence`` annotation — the fleet report's unit of
account. Only a failed **read** rung raises (as
:class:`LadderReadError`), because without bytes there is nothing to
degrade to; the pipeline journals that as a retryable failure so a
resume heals transient I/O.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults, obs
from repro.baselines import ALL_DETECTORS
from repro.elf.parser import ELFFile
from repro.errors import ReproError, Severity

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"        # rendered as "degraded:<diagnostic>"
STATUS_QUARANTINED = "quarantined"

CONFIDENCE_HIGH = "high"
CONFIDENCE_MEDIUM = "medium"
CONFIDENCE_LOW = "low"


class LadderReadError(ReproError):
    """The read rung failed: no bytes, nothing to degrade to."""


@dataclass
class ToolOutcome:
    """One detector's rung on one binary."""

    functions: int | None = None
    entries_sample: int = 0
    elapsed_seconds: float = 0.0
    error_type: str | None = None
    message: str | None = None

    @property
    def ok(self) -> bool:
        return self.error_type is None

    def to_dict(self) -> dict:
        doc: dict = {"elapsed_seconds": round(self.elapsed_seconds, 6)}
        if self.ok:
            doc["functions"] = self.functions
        else:
            doc["error_type"] = self.error_type
            doc["message"] = self.message
        return doc


@dataclass
class BinaryOutcome:
    """The ladder's account of one admitted binary."""

    path: str
    size: int
    sha256: str
    status: str                    # "ok" | "degraded:<diag>" | "quarantined"
    confidence: str                # high | medium | low
    cet: dict = field(default_factory=dict)
    tools: dict = field(default_factory=dict)      # name -> ToolOutcome
    agreement: dict = field(default_factory=dict)  # "a|b" -> jaccard
    diagnostics: int = 0
    worst_severity: str | None = None
    error_type: str | None = None  # primary failure, when degraded
    error_message: str | None = None
    elapsed_seconds: float = 0.0

    @property
    def status_class(self) -> str:
        """The coarse bucket: ``ok``/``degraded``/``quarantined``."""
        return self.status.split(":", 1)[0]

    def to_dict(self) -> dict:
        doc = {
            "path": self.path,
            "size": self.size,
            "sha256": self.sha256,
            "status": self.status,
            "confidence": self.confidence,
            "cet": self.cet,
            "tools": {name: t.to_dict() for name, t in self.tools.items()},
            "agreement": {k: round(v, 6)
                          for k, v in sorted(self.agreement.items())},
            "diagnostics": self.diagnostics,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if self.worst_severity:
            doc["worst_severity"] = self.worst_severity
        if self.error_type:
            doc["error_type"] = self.error_type
            doc["error_message"] = self.error_message
        return doc


def analyze_binary(
    path: str | Path,
    tool_names: list[str],
    *,
    timeout: float | None = None,
    max_size: int | None = None,
    data: bytes | None = None,
) -> BinaryOutcome:
    """Run one admitted binary down the ladder. Runs in a pool worker.

    Raises :class:`LadderReadError` only when the image cannot be read
    at all; every later rung degrades instead of raising.
    """
    from repro.eval.isolation import run_cell

    started = time.perf_counter()
    with obs.span("ingest.analyze", path=str(path)):
        if data is None:
            data, error, _attempts, _elapsed = run_cell(
                lambda: _read_image(path, max_size), timeout=timeout)
            if error is not None:
                raise LadderReadError(
                    f"{type(error).__name__}: {error}") from (
                        error if isinstance(error, Exception) else None)
        else:
            faults.hit(faults.SITE_INGEST_ANALYZE)
        outcome = BinaryOutcome(
            path=str(path),
            size=len(data),
            sha256=hashlib.sha256(data).hexdigest(),
            status=STATUS_QUARANTINED,
            confidence=CONFIDENCE_LOW,
        )

        # -- parse rung ---------------------------------------------------
        elf, error, _attempts, _elapsed = run_cell(
            lambda: ELFFile.degraded(data), timeout=timeout)
        if error is not None:
            # Degraded parse never raises by contract; reaching here
            # means a watchdog or memory ceiling fired — the binary is
            # hostile enough to quarantine.
            outcome.status = STATUS_QUARANTINED
            outcome.error_type = type(error).__name__
            outcome.error_message = str(error)
            outcome.elapsed_seconds = time.perf_counter() - started
            obs.add("ingest.analyze.quarantined", 1)
            return outcome

        # -- cet rung -----------------------------------------------------
        cet_error = None
        try:
            from repro.elf.gnuproperty import parse_cet_features

            features = parse_cet_features(elf)
            outcome.cet = {"ibt": features.ibt, "shstk": features.shstk}
        except Exception as exc:  # the probe must not sink the ladder
            cet_error = exc
            elf.diagnostics.record(
                "gnu_property", f"CET probe failed: {exc}",
                severity=Severity.WARNING, error=exc)

        # -- detect rung --------------------------------------------------
        entry_sets: dict[str, frozenset[int]] = {}
        for name in tool_names:
            tool = ToolOutcome()
            result, error, _attempts, elapsed = run_cell(
                lambda n=name: ALL_DETECTORS[n]().detect(elf),
                timeout=timeout)
            tool.elapsed_seconds = elapsed
            if error is not None:
                tool.error_type = type(error).__name__
                tool.message = str(error)
            else:
                tool.functions = len(result.functions)
                entry_sets[name] = frozenset(result.functions)
            outcome.tools[name] = tool
        outcome.agreement = pairwise_agreement(entry_sets)
        outcome.diagnostics = len(elf.diagnostics)
        outcome.worst_severity = _worst_severity(elf.diagnostics)
        _classify(outcome, cet_error)
        outcome.elapsed_seconds = time.perf_counter() - started
        obs.add(f"ingest.analyze.{outcome.status_class}", 1)
    return outcome


def _read_image(path: str | Path, max_size: int | None) -> bytes:
    faults.hit(faults.SITE_INGEST_ANALYZE)
    with open(path, "rb") as f:
        # +1 so a file that grew past the ceiling is still bounded.
        return f.read(max_size + 1 if max_size else None)


def pairwise_agreement(
    entry_sets: dict[str, frozenset[int]],
) -> dict[str, float]:
    """Jaccard agreement between every pair of successful tools.

    Keys are ``"a|b"`` with the names sorted, so the same pair maps to
    the same key run over run. Two empty entry sets agree perfectly
    (both found nothing, and said so).
    """
    out: dict[str, float] = {}
    for a, b in itertools.combinations(sorted(entry_sets), 2):
        union = entry_sets[a] | entry_sets[b]
        if not union:
            out[f"{a}|{b}"] = 1.0
        else:
            out[f"{a}|{b}"] = len(entry_sets[a] & entry_sets[b]) / len(union)
    return out


def _worst_severity(diagnostics) -> str | None:
    worst = None
    rank = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}
    for diag in diagnostics:
        if worst is None or rank[diag.severity] > rank[worst]:
            worst = diag.severity
    return worst.value if worst else None


def _classify(outcome: BinaryOutcome, cet_error) -> None:
    """Derive status/confidence from what the rungs reported."""
    failed = [n for n, t in outcome.tools.items() if not t.ok]
    succeeded = [n for n, t in outcome.tools.items() if t.ok]
    has_errors = outcome.worst_severity == Severity.ERROR.value
    if outcome.tools and not succeeded:
        # Every detector died on this input: nothing usable came out.
        first = outcome.tools[failed[0]]
        outcome.status = STATUS_QUARANTINED
        outcome.confidence = CONFIDENCE_LOW
        outcome.error_type = first.error_type
        outcome.error_message = first.message
        return
    if failed:
        outcome.status = f"{STATUS_DEGRADED}:detect-failures({len(failed)})"
        first = outcome.tools[failed[0]]
        outcome.error_type = first.error_type
        outcome.error_message = first.message
        outcome.confidence = (CONFIDENCE_MEDIUM
                              if len(succeeded) >= len(failed)
                              else CONFIDENCE_LOW)
        return
    if cet_error is not None:
        outcome.status = f"{STATUS_DEGRADED}:cet-probe-failed"
        outcome.confidence = CONFIDENCE_MEDIUM
        return
    if has_errors:
        outcome.status = f"{STATUS_DEGRADED}:parse-errors"
        outcome.confidence = CONFIDENCE_MEDIUM
        return
    if outcome.diagnostics:
        outcome.status = f"{STATUS_DEGRADED}:parse-anomalies"
        # Anomalies were tolerated without losing a stage: results are
        # partial but the entry evidence itself decoded.
        outcome.confidence = CONFIDENCE_MEDIUM
        return
    outcome.status = STATUS_OK
    outcome.confidence = CONFIDENCE_HIGH
