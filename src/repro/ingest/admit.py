"""Admission triage: classify every candidate before spending analysis.

Triage reads *at most 64 bytes* of each candidate and maps it onto one
of three decisions, with a recorded reason:

- ``analyze`` — a little-endian x86/x86-64 ELF executable or shared
  object within the size policy; worth a worker's time.
- ``reject`` — definitively not an analysis target (non-ELF magic,
  wrong architecture, relocatable/core object, too small to hold an
  ELF header). Rejections are final: re-scanning the same bytes makes
  the same call.
- ``skip`` — a plausible target deliberately not analyzed (over the
  size ceiling, or an I/O error while sampling it). I/O-shaped skips
  are flagged ``transient`` so the pipeline journals them as retryable
  failures instead of final triage calls.

Triage is **total**: it never raises, whatever the bytes or the
filesystem do — the property ``tests/ingest`` pins down with a fuzz
property test. It also never opens anything the discoverer has not
already stat'd as a regular file, so it cannot block on a FIFO.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro import faults, obs
from repro.elf import constants as C

DECISION_ANALYZE = "analyze"
DECISION_SKIP = "skip"
DECISION_REJECT = "reject"

ALL_DECISIONS = (DECISION_ANALYZE, DECISION_SKIP, DECISION_REJECT)

#: Smallest file that can hold a 32-bit ELF header.
_MIN_ELF_SIZE = 52

#: e_machine values the analysis ladder supports.
_SUPPORTED_MACHINES = (C.EM_386, C.EM_X86_64)

#: e_type values worth analyzing (executables and shared objects; the
#: paper's subject is linked output, not relocatables or core dumps).
_ANALYZABLE_TYPES = (C.ET_EXEC, C.ET_DYN)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Size bounds for admission (identity-relevant: journaled in the
    scan manifest, so a resume triages exactly like the original run)."""

    min_size: int = _MIN_ELF_SIZE
    max_size: int = 256 << 20  # 256 MiB: past this, skip by policy

    def to_dict(self) -> dict:
        return {"min_size": self.min_size, "max_size": self.max_size}

    @classmethod
    def from_dict(cls, doc: dict) -> "AdmissionPolicy":
        return cls(min_size=doc.get("min_size", _MIN_ELF_SIZE),
                   max_size=doc.get("max_size", 256 << 20))


@dataclass(frozen=True)
class Admission:
    """One triage decision with its recorded reason."""

    decision: str
    reason: str
    detail: str = ""
    #: An I/O-shaped failure: the pipeline records it as retryable
    #: (resume re-triages) instead of as a final triage call.
    transient: bool = False

    @property
    def analyze(self) -> bool:
        return self.decision == DECISION_ANALYZE


def triage(candidate, policy: AdmissionPolicy | None = None) -> Admission:
    """Classify one discovered candidate. Total: never raises.

    ``candidate`` needs only ``path`` and ``size`` attributes (a
    :class:`~repro.ingest.discover.Candidate`, or anything shaped like
    one).
    """
    policy = policy or AdmissionPolicy()
    try:
        admission = _triage_inner(candidate, policy)
    except OSError as exc:
        admission = Admission(DECISION_SKIP, "io-error",
                              f"{type(exc).__name__}: {exc}",
                              transient=True)
    except Exception as exc:  # totality backstop: triage never raises
        admission = Admission(DECISION_SKIP, "triage-error",
                              f"{type(exc).__name__}: {exc}",
                              transient=True)
    obs.add(f"ingest.admit.{admission.decision}", 1)
    return admission


def _triage_inner(candidate, policy: AdmissionPolicy) -> Admission:
    faults.hit(faults.SITE_INGEST_ADMIT)
    size = candidate.size
    if size < max(policy.min_size, _MIN_ELF_SIZE):
        return Admission(DECISION_REJECT, "too-small", f"{size} bytes")
    if size > policy.max_size:
        return Admission(DECISION_SKIP, "too-large",
                         f"{size} > {policy.max_size} bytes")
    with open(candidate.path, "rb") as f:
        head = f.read(64)
    if len(head) < _MIN_ELF_SIZE:
        # The file shrank between stat and read; treat like too-small.
        return Admission(DECISION_REJECT, "too-small",
                         f"{len(head)} readable bytes")
    if head[:4] != C.ELFMAG:
        return Admission(DECISION_REJECT, "not-elf",
                         f"magic {head[:4].hex()}")
    ei_class = head[C.EI_CLASS]
    ei_data = head[C.EI_DATA]
    if ei_class not in (C.ELFCLASS32, C.ELFCLASS64):
        return Admission(DECISION_REJECT, "bad-elf-class",
                         f"EI_CLASS {ei_class}")
    if ei_data != C.ELFDATA2LSB:
        return Admission(DECISION_REJECT, "big-endian",
                         f"EI_DATA {ei_data}")
    e_type, e_machine = struct.unpack_from("<HH", head, C.EI_NIDENT)
    if e_machine not in _SUPPORTED_MACHINES:
        return Admission(DECISION_REJECT, "wrong-arch",
                         f"e_machine {e_machine}")
    if e_type not in _ANALYZABLE_TYPES:
        return Admission(DECISION_REJECT, "not-executable",
                         f"e_type {e_type}")
    return Admission(DECISION_ANALYZE, "ok",
                     "x86-64" if ei_class == C.ELFCLASS64 else "x86")
