"""Fleet-scan ingestion: untrusted real-world binaries, resumably.

The evaluation stack (:mod:`repro.eval`) measures detectors against
*synthetic* binaries with exact ground truth. This package points the
same machinery at binaries we did not make and cannot trust — a
``/usr/bin``, a firmware dump, a corpus share — and is built around the
assumption that any individual file may be hostile, truncated, or
vanishing while we look at it:

- :mod:`~repro.ingest.discover` — bounded-memory streaming walk
  (symlink-loop safe, inode-deduplicated, permission-error tolerant);
- :mod:`~repro.ingest.admit` — 64-byte admission triage mapping every
  candidate to ``analyze`` / ``skip`` / ``reject`` with a recorded
  reason, never raising;
- :mod:`~repro.ingest.ladder` — the per-binary degradation ladder
  (parse → CET probe → detector sweep) that downgrades to partial
  results (``ok`` / ``degraded:<diag>`` / ``quarantined``) instead of
  failing;
- :mod:`~repro.ingest.pipeline` — backpressure-aware dispatch onto the
  shared bounded pool driver, journaling every decision crash-safely;
- :mod:`~repro.ingest.report` — the fleet report (CET adoption, triage
  and degradation histograms, per-tool agreement);
- :mod:`~repro.ingest.chaos` — fault-injected scan scenarios proving
  resume convergence;
- :mod:`~repro.ingest.fixtures` — reproducible hostile trees for tests.
"""

from repro.ingest.admit import (
    ALL_DECISIONS,
    Admission,
    AdmissionPolicy,
    triage,
)
from repro.ingest.discover import Candidate, WalkSkip, discover
from repro.ingest.journal import (
    ScanJournal,
    ScanState,
    build_scan_manifest,
    check_scan_manifest,
    read_scan_journal,
)
from repro.ingest.ladder import (
    BinaryOutcome,
    LadderReadError,
    ToolOutcome,
    analyze_binary,
    pairwise_agreement,
)
from repro.ingest.pipeline import (
    DEFAULT_SCAN_TOOLS,
    ScanResult,
    ScanStats,
    run_scan,
)
from repro.ingest.report import (
    build_fleet_report,
    normalize_fleet_report,
    render_fleet_table,
)

__all__ = [
    "ALL_DECISIONS",
    "Admission",
    "AdmissionPolicy",
    "BinaryOutcome",
    "Candidate",
    "DEFAULT_SCAN_TOOLS",
    "LadderReadError",
    "ScanJournal",
    "ScanResult",
    "ScanState",
    "ScanStats",
    "ToolOutcome",
    "WalkSkip",
    "analyze_binary",
    "build_fleet_report",
    "build_scan_manifest",
    "check_scan_manifest",
    "discover",
    "normalize_fleet_report",
    "pairwise_agreement",
    "read_scan_journal",
    "render_fleet_table",
    "run_scan",
    "triage",
]
