"""The fleet-scan pipeline: walk, triage, analyze, journal — resumably.

This is the orchestration layer of :mod:`repro.ingest`: it connects the
streaming discoverer, the admission triage, and the per-binary
degradation ladder into one crash-safe scan over directory trees of
untrusted binaries.

Division of labor:

- The **parent** walks and triages (cheap: a ``stat`` plus at most 64
  bytes per file) and is the journal's single writer. Every decision —
  a walk skip, a final triage call, a finished analysis, a retryable
  failure — is fsync'd to the scan journal the moment it is learned.
- **Pool workers** run the degradation ladder (parse, CET probe,
  detector sweep) under the shared watchdog/RSS machinery from
  :mod:`repro.eval`.
- The discover generator *is* the dispatch driver's job iterator, so
  the walk only advances as in-flight slots free up: backpressure for
  free, and parent memory bounded by the dispatch window instead of
  the fleet size.

A per-**directory** circuit breaker guards dispatch: a directory whose
binaries keep killing workers (a hostile corpus dump, an NFS mount
going bad) stops burning worker time after ``threshold`` consecutive
losses; its remaining candidates are journaled as retryable
``CircuitOpen`` failures, so a later ``--resume`` gives them a fresh
chance rather than losing them.

Resume semantics: paths with a journaled *final* record (triage call or
analysis) are never re-decided; journaled *failures* — lost workers,
transient I/O during triage, breaker skips — are retried. The walk is
deterministic (sorted), triage is a pure function of bytes and policy
(pinned by the manifest), and the fleet report is built from journal
state, so an interrupted scan plus a resume converges to a report
identical to an uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.eval import shm
from repro.eval.breaker import CIRCUIT_OPEN, CircuitBreaker
from repro.eval.dispatch import BoundedPoolDriver, shutdown_pool
from repro.eval.isolation import FailureRecord
from repro.eval.parallel import _BACKSTOP_GRACE, _INFLIGHT_FACTOR, _worker_init
from repro.ingest.admit import AdmissionPolicy, triage
from repro.ingest.discover import Candidate, discover
from repro.ingest.journal import (
    ScanJournal,
    ScanState,
    build_scan_manifest,
    check_scan_manifest,
    read_scan_journal,
)
from repro.ingest.ladder import LadderReadError, analyze_binary

#: Subdirectory of the run dir holding captured quarantined inputs.
QUARANTINE_DIR = "quarantine"

#: Default tool set for fleet scans (static detectors only — the
#: disassembler baselines assume well-formed inputs and are exactly the
#: tools a hostile binary would wedge).
DEFAULT_SCAN_TOOLS = ("funseeker", "naive-endbr")


@dataclass
class ScanStats:
    """Parent-side accounting for one ``run_scan`` invocation."""

    walked: int = 0            # discovery events seen this run
    walk_skips: int = 0        # WalkSkip events journaled this run
    triaged: int = 0           # fresh triage calls this run
    dispatched: int = 0        # candidates handed to the ladder
    resumed: int = 0           # paths skipped as already decided
    breaker_skips: int = 0     # candidates refused by an open circuit
    lost_workers: int = 0


@dataclass
class ScanResult:
    """What ``run_scan`` hands back: journal state plus run accounting."""

    run_dir: Path
    manifest: dict
    state: ScanState
    stats: ScanStats = field(default_factory=ScanStats)


def run_scan(
    run_dir: str | os.PathLike,
    *,
    roots: list[str] | None = None,
    tools: list[str] | None = None,
    resume: bool = False,
    include: tuple[str, ...] = (),
    exclude: tuple[str, ...] = (),
    policy: AdmissionPolicy | None = None,
    follow_symlinks: bool = True,
    workers: int | None = None,
    timeout: float | None = None,
    max_rss_mb: int | None = None,
    limit: int | None = None,
    breaker: CircuitBreaker | None = None,
    backstop_grace: float | None = None,
    quarantine: bool = True,
) -> ScanResult:
    """Scan ``roots`` for binaries and journal every decision.

    A fresh scan (``resume=False``) requires ``roots`` and creates
    ``run_dir``; a resume takes everything identity-relevant — roots,
    filters, tools, admission policy — from the journaled manifest (and
    refuses via :class:`~repro.errors.ManifestMismatchError` if
    explicit ``roots`` disagree with it). ``limit`` bounds the number
    of *admitted* binaries; because the walk is deterministic it counts
    previously-analyzed paths too, so a resumed limited scan converges
    to the same fleet. Scans never raise for anything a binary does —
    only for operator errors (bad run dir, manifest mismatch) and
    journal write failures.
    """
    run_dir = Path(run_dir)
    if resume:
        journal = ScanJournal.resume(run_dir)
        manifest = journal.manifest()
        check_scan_manifest(manifest, roots)
        roots = manifest.get("roots") or []
        tools = list(manifest.get("tools") or DEFAULT_SCAN_TOOLS)
        include = tuple(manifest.get("include") or ())
        exclude = tuple(manifest.get("exclude") or ())
        policy = AdmissionPolicy.from_dict(manifest.get("policy") or {})
        follow_symlinks = bool(manifest.get("follow_symlinks", True))
        if timeout is None:
            timeout = (manifest.get("config") or {}).get("timeout")
        prior = read_scan_journal(run_dir)
    else:
        if not roots:
            raise ValueError("a fresh scan needs at least one root")
        tools = list(tools or DEFAULT_SCAN_TOOLS)
        policy = policy or AdmissionPolicy()
        manifest = build_scan_manifest(
            list(roots), tools, include=include, exclude=exclude,
            policy=policy, follow_symlinks=follow_symlinks,
            timeout=timeout)
        journal = ScanJournal.create(run_dir, manifest)
        prior = ScanState()

    with journal:
        result = ScanResult(run_dir=run_dir, manifest=manifest, state=prior)
        with obs.span("ingest.scan", roots=",".join(map(str, roots))):
            _drive_scan(
                journal, result,
                roots=roots, tools=tools, include=include, exclude=exclude,
                policy=policy, follow_symlinks=follow_symlinks,
                workers=workers, timeout=timeout, max_rss_mb=max_rss_mb,
                limit=limit, breaker=breaker,
                backstop_grace=backstop_grace,
                quarantine=quarantine,
            )
    return result


def _drive_scan(
    journal: ScanJournal,
    result: ScanResult,
    *,
    roots, tools, include, exclude, policy, follow_symlinks,
    workers, timeout, max_rss_mb, limit, breaker, backstop_grace,
    quarantine,
) -> None:
    state = result.state
    stats = result.stats
    completed = state.completed  # snapshot: this run's appends don't count
    prior_admitted = {p for p in state.analyses if p in completed}
    if breaker is None:
        breaker = CircuitBreaker()
    store = None
    if quarantine:
        from repro.eval.quarantine import QuarantineStore

        store = QuarantineStore(result.run_dir / QUARANTINE_DIR)

    admitted = 0

    def _jobs():
        """Walk + triage, journaling inline; yields only ladder work.

        Runs lazily under the dispatch driver, so the walk advances
        only as in-flight slots free up.
        """
        nonlocal admitted
        for event in discover(roots, include=include, exclude=exclude,
                              follow_symlinks=follow_symlinks):
            stats.walked += 1
            path = str(event.path)
            if not isinstance(event, Candidate):
                if path in completed:
                    stats.resumed += 1
                    continue
                stats.walk_skips += 1
                doc = {"kind": "triage", "path": path, "decision": "skip",
                       "reason": event.reason, "detail": event.detail}
                journal.append_triage(path, "skip", event.reason,
                                      detail=event.detail)
                state.absorb(doc)
                continue
            if path in completed:
                stats.resumed += 1
                if path in prior_admitted:
                    admitted += 1
                    if limit is not None and admitted >= limit:
                        return
                continue
            admission = triage(event, policy)
            if admission.transient:
                # An I/O hiccup while sampling: journaled as retryable,
                # not as a final triage call, so a resume re-triages.
                stats.triaged += 1
                doc = {"kind": "failure", "path": path,
                       "error_type": "TriageTransient",
                       "message": f"{admission.reason}: {admission.detail}"}
                journal.append_failure(path, "TriageTransient",
                                       f"{admission.reason}: "
                                       f"{admission.detail}")
                state.absorb(doc)
                continue
            if not admission.analyze:
                stats.triaged += 1
                doc = {"kind": "triage", "path": path,
                       "decision": admission.decision,
                       "reason": admission.reason,
                       "detail": admission.detail, "size": event.size}
                journal.append_triage(path, admission.decision,
                                      admission.reason,
                                      detail=admission.detail,
                                      size=event.size)
                state.absorb(doc)
                continue
            admitted += 1
            yield event
            if limit is not None and admitted >= limit:
                return

    def _record_analysis(candidate: Candidate, doc: dict) -> None:
        journal.append_analysis(doc)
        state.absorb({"kind": "analysis", **doc})
        breaker.record_success(str(candidate.directory))
        if store is not None and doc.get("status") == "quarantined":
            _capture_quarantined(store, candidate, doc, policy)

    def _record_failure(candidate: Candidate, error_type: str,
                        message: str) -> None:
        path = str(candidate.path)
        journal.append_failure(path, error_type, message)
        state.absorb({"kind": "failure", "path": path,
                      "error_type": error_type, "message": message})
        breaker.record_failure(str(candidate.directory))

    if workers == 1:
        for candidate in _jobs():
            dispatched = _breaker_gate(candidate, breaker, stats,
                                       _record_failure)
            if dispatched is None:
                continue
            stats.dispatched += 1
            payload = _scan_job(str(candidate.path), tools, timeout,
                                policy.max_size)
            _absorb_payload(candidate, payload,
                            _record_analysis, _record_failure)
        stats.lost_workers = 0
        return

    if backstop_grace is None:
        backstop_grace = _BACKSTOP_GRACE
    backstop = None
    if timeout is not None:
        # read + parse + one cell per tool, then the parent's grace.
        backstop = timeout * (len(tools) + 2) + backstop_grace

    pool_size = workers or os.cpu_count() or 1
    driver = BoundedPoolDriver(
        max_inflight=_INFLIGHT_FACTOR * pool_size + 2, backstop=backstop)
    pool = multiprocessing.Pool(
        processes=workers,
        initializer=_worker_init,
        initargs=(None, max_rss_mb),
    )

    # Per-candidate shared-memory preload: the parent reads the image
    # once and ships a small ref, so the job queue never carries whole
    # binaries. A preload failure ships no ref and the worker reads the
    # path itself — the pre-shm behavior, byte for byte.
    segments: dict[str, shm.Arena] = {}

    def _preload(candidate: Candidate):
        if not shm.available():
            return None
        try:
            with open(candidate.path, "rb") as f:
                # Mirrors the ladder's own read bound (+1 so a file
                # that grew past the ceiling is still detected).
                data = f.read(policy.max_size + 1 if policy.max_size
                              else None)
        except OSError:
            return None
        arena, (ref,) = shm.share_images([data])
        segments[str(candidate.path)] = arena
        return ref

    def _release(candidate: Candidate) -> None:
        arena = segments.pop(str(candidate.path), None)
        if arena is not None:
            arena.destroy()

    def _submit(candidate: Candidate):
        gated = _breaker_gate(candidate, breaker, stats, _record_failure)
        if gated is None:
            return None
        stats.dispatched += 1
        return candidate, pool.apply_async(
            _scan_job,
            (str(candidate.path), tools, timeout, policy.max_size,
             _preload(candidate)))

    def _collect(candidate: Candidate, payload: dict) -> None:
        _release(candidate)
        _absorb_payload(candidate, payload,
                        _record_analysis, _record_failure)

    def _lost(candidate: Candidate, message: str) -> None:
        _release(candidate)
        _record_failure(candidate, "WorkerLost", message)

    try:
        try:
            driver.drive(_jobs(), _submit, _collect, _lost)
        except BaseException:
            pool.terminate()
            pool.join()
            raise
        shutdown_pool(pool, lost_worker=driver.any_lost)
    finally:
        for arena in segments.values():
            arena.destroy()
        segments.clear()
    stats.lost_workers = driver.lost_workers


def _breaker_gate(candidate: Candidate, breaker: CircuitBreaker,
                  stats: ScanStats, record_failure) -> Candidate | None:
    """Refuse a candidate whose directory circuit is open."""
    directory = str(candidate.directory)
    if breaker.allow(directory):
        return candidate
    stats.breaker_skips += 1
    record_failure(candidate, CIRCUIT_OPEN,
                   f"directory circuit open: {directory}")
    return None


def _absorb_payload(candidate: Candidate, payload: dict,
                    record_analysis, record_failure) -> None:
    failure = payload.get("failure")
    if failure is not None:
        record_failure(candidate, failure["error_type"],
                       failure["message"])
    else:
        record_analysis(candidate, payload["outcome"])


def _scan_job(path: str, tool_names: list[str],
              timeout: float | None = None,
              max_size: int | None = None,
              image_ref=None) -> dict:
    """Run one admitted binary down the ladder; never raises.

    Runs in a pool worker (or in-process for ``workers=1``); everything
    comes back as data, so nothing crosses the process boundary as an
    exception — except a worker killed outright, which the parent's
    backstop turns into a retryable ``WorkerLost`` record.

    ``image_ref`` (a :class:`repro.eval.shm.ImageRef`) carries the
    parent's preloaded image; when absent or unreadable, the worker
    falls back to reading ``path`` itself.
    """
    data = None
    if image_ref is not None:
        try:
            data = image_ref.fetch()
        except Exception:
            data = None
    try:
        outcome = analyze_binary(path, list(tool_names),
                                 timeout=timeout, max_size=max_size,
                                 data=data)
    except LadderReadError as exc:
        return {"failure": {"error_type": "LadderReadError",
                            "message": str(exc)}}
    except Exception as exc:  # pragma: no cover — ladder contract backstop
        return {"failure": {"error_type": type(exc).__name__,
                            "message": str(exc)}}
    return {"outcome": outcome.to_dict()}


def _capture_quarantined(store, candidate: Candidate, doc: dict,
                         policy: AdmissionPolicy) -> None:
    """Best-effort capture of a quarantined binary's bytes."""
    try:
        with open(candidate.path, "rb") as f:
            data = f.read(policy.max_size + 1)
    except OSError:
        return
    store.capture(data, FailureRecord(
        suite="scan",
        program=str(candidate.path),
        compiler="-",
        bits=0,
        pie=False,
        opt="-",
        tool="ladder",
        phase="analyze",
        error_type=doc.get("error_type") or "Quarantined",
        message=doc.get("error_message") or doc.get("status", ""),
    ))
