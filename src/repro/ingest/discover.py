"""Bounded-memory streaming discovery of candidate binaries.

The fleet-scan pipeline walks directory trees it did not create —
``/usr/bin`` on an arbitrary machine, a malware corpus share, a
container image dump. The walk must therefore survive whatever the
filesystem throws at it:

- **Symlink loops** never recurse: directories are remembered by
  ``(st_dev, st_ino)`` and a re-entered directory is reported once as a
  skip, not walked again.
- **Hard-link aliases** are analyzed once: files are deduplicated by
  inode, later sightings become ``duplicate-inode`` skips naming the
  first path.
- **Permission errors** (and any other ``OSError`` from the walk) cost
  exactly the entry that raised them, reported as a skip with the
  errno text — never the walk.
- **Non-regular files** (FIFOs, sockets, devices) are skipped *from
  stat alone*; the walk never opens anything, so a FIFO cannot block
  it.

The generator yields one event per filesystem decision — a
:class:`Candidate` for each admissible regular file, a :class:`WalkSkip`
for everything declined — and holds only the DFS stack plus the inode
sets, so memory is bounded by tree depth and file count, not by any
directory's width (``os.scandir`` streams entries; nothing is ever
materialized with ``listdir``-style truncation).

Entries are visited in sorted name order, so the event stream is
deterministic for a given tree — the property the scan journal's
resume semantics build on.
"""

from __future__ import annotations

import fnmatch
import os
import stat
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro import faults, obs


@dataclass(frozen=True)
class Candidate:
    """One regular file the walk surfaced for admission triage."""

    path: Path
    size: int
    #: ``(st_dev, st_ino)`` — the dedup identity.
    inode: tuple[int, int]

    @property
    def directory(self) -> Path:
        """The containing directory (the per-directory breaker key)."""
        return self.path.parent


@dataclass(frozen=True)
class WalkSkip:
    """One entry or subtree the walk declined, and why.

    ``reason`` is a short slug (``unreadable-dir``, ``symlink-loop``,
    ``duplicate-inode``, ``not-regular-file``, ``broken-symlink``,
    ``excluded``, ``unreadable-entry``, ``not-a-directory``); ``detail``
    carries the errno text or the first-sighting path.
    """

    path: Path
    reason: str
    detail: str = ""


def _matches(name: str, rel: str, patterns: tuple[str, ...]) -> bool:
    return any(fnmatch.fnmatch(name, p) or fnmatch.fnmatch(rel, p)
               for p in patterns)


def discover(
    roots: Iterable[str | os.PathLike],
    *,
    include: tuple[str, ...] = (),
    exclude: tuple[str, ...] = (),
    follow_symlinks: bool = True,
) -> Iterator[Candidate | WalkSkip]:
    """Stream discovery events for every entry under ``roots``.

    ``include``/``exclude`` are :mod:`fnmatch` globs matched against
    both the entry name and the root-relative path; ``exclude`` wins,
    an empty ``include`` admits everything, and an excluded directory
    prunes its whole subtree. With ``follow_symlinks=False``, symlinked
    directories and files are reported as ``symlink-not-followed``
    skips instead of being resolved.
    """
    seen_dirs: set[tuple[int, int]] = set()
    seen_files: dict[tuple[int, int], Path] = {}
    for root in roots:
        root = Path(root)
        try:
            st = os.stat(root)
        except OSError as exc:
            yield WalkSkip(root, "unreadable-root", _errtext(exc))
            continue
        if stat.S_ISREG(st.st_mode):
            # A file root bypasses include/exclude: the operator named
            # it explicitly.
            yield from _dedup(root, st, seen_files)
            continue
        if not stat.S_ISDIR(st.st_mode):
            yield WalkSkip(root, "not-a-directory")
            continue
        yield from _walk(root, st, seen_dirs, seen_files,
                         include, exclude, follow_symlinks)


def _walk(
    root: Path,
    root_st: os.stat_result,
    seen_dirs: set[tuple[int, int]],
    seen_files: dict[tuple[int, int], Path],
    include: tuple[str, ...],
    exclude: tuple[str, ...],
    follow_symlinks: bool,
) -> Iterator[Candidate | WalkSkip]:
    # DFS over (directory, its stat); sorted scandir keeps the event
    # stream deterministic for a given tree.
    stack: list[tuple[Path, os.stat_result]] = [(root, root_st)]
    while stack:
        directory, dir_st = stack.pop()
        key = (dir_st.st_dev, dir_st.st_ino)
        if key in seen_dirs:
            yield WalkSkip(directory, "symlink-loop")
            continue
        seen_dirs.add(key)
        obs.add("ingest.walk.dirs", 1)
        try:
            faults.hit(faults.SITE_INGEST_WALK)
            with os.scandir(directory) as scandir:
                entries = sorted(scandir, key=lambda e: e.name)
        except OSError as exc:
            yield WalkSkip(directory, "unreadable-dir", _errtext(exc))
            continue
        subdirs: list[tuple[Path, os.stat_result]] = []
        for entry in entries:
            path = Path(entry.path)
            rel = os.path.relpath(entry.path, root)
            try:
                is_symlink = entry.is_symlink()
                if entry.is_dir(follow_symlinks=follow_symlinks):
                    if _matches(entry.name, rel, exclude):
                        yield WalkSkip(path, "excluded")
                        continue
                    subdirs.append((path, entry.stat()))
                    continue
                if is_symlink and not follow_symlinks:
                    yield WalkSkip(path, "symlink-not-followed")
                    continue
                st = entry.stat()  # follows symlinks
            except OSError as exc:
                yield WalkSkip(
                    path,
                    "broken-symlink" if is_symlink else "unreadable-entry",
                    _errtext(exc))
                continue
            if not stat.S_ISREG(st.st_mode):
                yield WalkSkip(path, "not-regular-file",
                               stat.filemode(st.st_mode))
                continue
            if _matches(entry.name, rel, exclude):
                yield WalkSkip(path, "excluded")
                continue
            if include and not _matches(entry.name, rel, include):
                yield WalkSkip(path, "not-included")
                continue
            yield from _dedup(path, st, seen_files)
        # Reversed so the stack pops subdirectories in sorted order.
        stack.extend(reversed(subdirs))


def _dedup(
    path: Path,
    st: os.stat_result,
    seen_files: dict[tuple[int, int], Path],
) -> Iterator[Candidate | WalkSkip]:
    key = (st.st_dev, st.st_ino)
    first = seen_files.get(key)
    if first is not None:
        yield WalkSkip(path, "duplicate-inode", str(first))
        return
    seen_files[key] = path
    obs.add("ingest.walk.files", 1)
    yield Candidate(path=path, size=st.st_size, inode=key)


def _errtext(exc: OSError) -> str:
    return f"{type(exc).__name__}: {exc}"
