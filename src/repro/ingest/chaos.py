"""Ingest chaos: prove fleet-scan crash-safety against injected faults.

Mirrors :mod:`repro.faults.chaos` for the scan pipeline: each scenario
runs a full scan over a hostile fixture tree with a deterministic fault
plan installed (a worker SIGKILL mid-ladder, an I/O error during
admission triage), then resumes the same run directory fault-free. The
resumed fleet report must match the fault-free baseline exactly once
timing noise is normalized away, with **zero** unresolved failures —
i.e. every crash-shaped record healed on resume.

The two scenarios exercise the two ingest fault surfaces the walk
itself cannot reach: ``ingest.analyze`` (inside pool workers, under the
lost-worker backstop) and ``ingest.admit`` (in the parent, on the
transient-triage path).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.errors import ReproError
from repro.faults.chaos import CHAOS_BACKSTOP_GRACE
from repro.ingest.fixtures import build_fixture_tree
from repro.ingest.pipeline import run_scan
from repro.ingest.report import build_fleet_report, normalize_fleet_report


@dataclass(frozen=True)
class IngestScenario:
    """One named fault plan plus the scan shape that exercises it."""

    name: str
    plan: str
    workers: int = 1
    timeout: float | None = 5.0


def default_ingest_scenarios(seed: int = 2022) -> list[IngestScenario]:
    import random

    rng = random.Random(f"ingest-chaos:{seed}")
    early = rng.randrange(2, 4)
    return [
        IngestScenario(
            name="ingest-analyze-kill",
            plan=f"kill@ingest.analyze#{early}",
            workers=2,
            timeout=1.0,
        ),
        IngestScenario(
            name="ingest-admit-io",
            plan=f"io@ingest.admit#{early}",
            workers=1,
        ),
    ]


@dataclass
class IngestScenarioResult:
    name: str
    plan: str
    ok: bool
    detail: str
    faulted_run_error: str | None = None
    journaled_paths: int = 0
    unresolved_failures: int = 0


@dataclass
class IngestChaosReport:
    baseline_paths: int = 0
    results: list[IngestScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"ingest chaos: {len(self.results)} scenarios over "
            f"{self.baseline_paths} baseline paths"
        ]
        for r in self.results:
            status = "ok  " if r.ok else "FAIL"
            crash = (f" crash={r.faulted_run_error}"
                     if r.faulted_run_error else "")
            lines.append(
                f"  [{status}] {r.name:<20s} plan={r.plan} "
                f"journaled={r.journaled_paths}"
                f" unresolved={r.unresolved_failures}{crash}")
            if not r.ok:
                lines.append(f"         {r.detail}")
        lines.append("all scenarios recovered to the fault-free fleet report"
                     if self.ok else "UNRECOVERED scan divergence — see above")
        return "\n".join(lines)


def run_ingest_chaos(
    work_dir: str | Path,
    *,
    seed: int = 2022,
    tools: list[str] | None = None,
    scenarios: list[IngestScenario] | None = None,
) -> IngestChaosReport:
    """Run every ingest scenario against one hostile fixture tree."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    tree = work_dir / "tree"
    build_fixture_tree(tree, seed=seed)
    report = IngestChaosReport()

    faults.clear()
    baseline = run_scan(work_dir / "baseline", roots=[str(tree)],
                        tools=tools, workers=1)
    baseline_doc = normalize_fleet_report(
        build_fleet_report(baseline.state))
    report.baseline_paths = len(baseline.state.completed)

    for scenario in (scenarios if scenarios is not None
                     else default_ingest_scenarios(seed)):
        report.results.append(_run_scenario(
            scenario, tree, tools, baseline_doc, work_dir / scenario.name))
    return report


def _run_scenario(
    scenario: IngestScenario,
    tree: Path,
    tools: list[str] | None,
    baseline_doc: dict,
    run_dir: Path,
) -> IngestScenarioResult:
    result = IngestScenarioResult(name=scenario.name, plan=scenario.plan,
                                  ok=False, detail="")

    # -- faulted run --------------------------------------------------------
    faults.install(scenario.plan)
    try:
        run_scan(run_dir, roots=[str(tree)], tools=tools,
                 workers=scenario.workers, timeout=scenario.timeout,
                 backstop_grace=CHAOS_BACKSTOP_GRACE)
    except (ReproError, OSError) as exc:
        result.faulted_run_error = f"{type(exc).__name__}: {exc}"
    finally:
        faults.clear()

    # -- resume run ---------------------------------------------------------
    try:
        resumed = run_scan(run_dir, resume=True, workers=1,
                           timeout=scenario.timeout,
                           backstop_grace=CHAOS_BACKSTOP_GRACE)
    except (ReproError, OSError) as exc:
        result.detail = f"resume itself failed: {type(exc).__name__}: {exc}"
        return result
    result.journaled_paths = len(resumed.state.completed)
    result.unresolved_failures = len(resumed.state.failures)

    if resumed.state.failures:
        first = next(iter(resumed.state.failures.values()))
        result.detail = (
            f"{len(resumed.state.failures)} unrecovered failures, first: "
            f"{first.get('path')}: {first.get('error_type')}: "
            f"{first.get('message')}")
        return result
    final_doc = normalize_fleet_report(build_fleet_report(resumed.state))
    if final_doc != baseline_doc:
        result.detail = _first_divergence(baseline_doc, final_doc)
        return result
    result.ok = True
    result.detail = "recovered fleet report identical to baseline"
    return result


def _first_divergence(expected: dict, got: dict) -> str:
    for key in sorted(set(expected) | set(got)):
        a, b = expected.get(key), got.get(key)
        if a != b:
            return (f"section {key!r} diverged: baseline "
                    f"{json.dumps(a, sort_keys=True)[:200]} != recovered "
                    f"{json.dumps(b, sort_keys=True)[:200]}")
    return "reports diverged in an unknown section"
