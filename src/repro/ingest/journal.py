"""The fleet-scan journal: every candidate decided exactly once.

Reuses the evaluation journal's byte substrate
(:class:`repro.eval.journal.JournalFile`: checksummed JSONL, fsync per
line, torn-tail tolerant loading, the ``journal.append`` fault point)
with scan-shaped records keyed by **path** instead of corpus cell:

- ``triage`` — a final admission call (``skip``/``reject``) or a walk
  skip; never re-decided on resume.
- ``analysis`` — a finished ladder outcome (``ok`` /
  ``degraded:<diag>`` / ``quarantined``); never re-run on resume.
- ``failure`` — a *retryable* loss: a crashed or backstopped worker, a
  transient admission error, a directory-breaker skip. Resume
  re-discovers the path and decides it again, so a crash-induced
  failure heals and the recovered fleet report matches an
  uninterrupted run.

Layout (``scan-journal/v1``)::

    RUN_DIR/
      manifest.json       # scan-manifest/v1: roots + filters + tools
      journal.jsonl       # one checksummed line per decided path
      quarantine/         # captured hostile inputs (QuarantineStore)

The manifest pins everything identity-relevant — roots, include and
exclude filters, tool list, admission policy — so ``--resume`` both
refuses a mismatched scan and needs no re-typed flags: the run
directory is the single source of truth.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    JournalError,
    ManifestCorruptError,
    ManifestMismatchError,
)
from repro.eval.journal import (
    JOURNAL_NAME,
    MANIFEST_NAME,
    JournalFile,
    _write_atomic,
    read_journal_lines,
)
from repro.ingest.admit import AdmissionPolicy

SCAN_JOURNAL_SCHEMA = "scan-journal/v1"
SCAN_MANIFEST_SCHEMA = "scan-manifest/v1"

KIND_TRIAGE = "triage"
KIND_ANALYSIS = "analysis"
KIND_FAILURE = "failure"


def build_scan_manifest(
    roots: list[str],
    tools: list[str],
    *,
    include: tuple[str, ...] = (),
    exclude: tuple[str, ...] = (),
    policy: AdmissionPolicy | None = None,
    follow_symlinks: bool = True,
    timeout: float | None = None,
) -> dict:
    return {
        "schema": SCAN_MANIFEST_SCHEMA,
        "journal_schema": SCAN_JOURNAL_SCHEMA,
        "roots": [str(Path(r).absolute()) for r in roots],
        "tools": list(tools),
        "include": list(include),
        "exclude": list(exclude),
        "policy": (policy or AdmissionPolicy()).to_dict(),
        "follow_symlinks": follow_symlinks,
        "config": {"timeout": timeout},
        "created": time.time(),
    }


def check_scan_manifest(manifest: dict, roots: list[str] | None) -> None:
    """Refuse to resume a journal recorded for a *different* scan."""
    if manifest.get("schema") != SCAN_MANIFEST_SCHEMA:
        raise ManifestMismatchError(
            f"unsupported manifest schema {manifest.get('schema')!r} "
            f"(expected {SCAN_MANIFEST_SCHEMA})")
    if roots:
        recorded = manifest.get("roots") or []
        given = [str(Path(r).absolute()) for r in roots]
        if recorded != given:
            raise ManifestMismatchError(
                f"scan roots changed since the journal was created: "
                f"recorded {recorded}, resuming with {given}")


class ScanJournal:
    """Single-writer append handle on a scan run directory."""

    def __init__(self, run_dir: str | os.PathLike) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self._journal = JournalFile(self.path)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, run_dir: str | os.PathLike,
               manifest: dict) -> "ScanJournal":
        journal = cls(run_dir)
        journal.run_dir.mkdir(parents=True, exist_ok=True)
        if (journal.run_dir / MANIFEST_NAME).exists():
            raise JournalError(
                f"run directory {journal.run_dir} already holds a "
                "manifest; use resume() or pick a fresh directory")
        _write_atomic(journal.run_dir / MANIFEST_NAME,
                      json.dumps(manifest, indent=1, sort_keys=True))
        journal.path.touch()
        return journal

    @classmethod
    def resume(cls, run_dir: str | os.PathLike) -> "ScanJournal":
        journal = cls(run_dir)
        if not (journal.run_dir / MANIFEST_NAME).is_file():
            raise JournalError(
                f"{journal.run_dir} is not a run directory "
                f"(no {MANIFEST_NAME})")
        return journal

    def manifest(self) -> dict:
        try:
            with open(self.run_dir / MANIFEST_NAME, encoding="utf-8") as f:
                return json.load(f)
        except (OSError, ValueError) as exc:
            raise ManifestCorruptError(
                f"manifest in {self.run_dir} is unreadable or corrupt: "
                f"{exc}") from exc

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "ScanJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appends ------------------------------------------------------------

    def append_triage(
        self, path: str | os.PathLike, decision: str, reason: str,
        detail: str = "", size: int | None = None,
    ) -> None:
        doc = {"kind": KIND_TRIAGE, "path": str(path),
               "decision": decision, "reason": reason}
        if detail:
            doc["detail"] = detail
        if size is not None:
            doc["size"] = size
        self._journal.append(doc)

    def append_analysis(self, outcome_doc: dict) -> None:
        self._journal.append({"kind": KIND_ANALYSIS, **outcome_doc})

    def append_failure(
        self, path: str | os.PathLike, error_type: str, message: str,
    ) -> None:
        self._journal.append({
            "kind": KIND_FAILURE, "path": str(path),
            "error_type": error_type, "message": message,
        })


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


@dataclass
class ScanState:
    """Everything a resume (or a fleet report) needs from a journal.

    Later lines win per path, and a final record (triage or analysis)
    for a path supersedes any journaled retryable failure for it.
    """

    triage: dict[str, dict] = field(default_factory=dict)
    analyses: dict[str, dict] = field(default_factory=dict)
    failures: dict[str, dict] = field(default_factory=dict)
    corrupt_lines: int = 0
    torn_tail: bool = False

    @property
    def completed(self) -> set[str]:
        """Paths needing no re-decision: final triage or analysis."""
        return set(self.triage) | set(self.analyses)

    @property
    def decided(self) -> int:
        return len(self.triage) + len(self.analyses) + len(self.failures)

    def absorb(self, doc: dict) -> None:
        """Apply one journal payload (also used live, record by record)."""
        path = doc.get("path")
        if not isinstance(path, str):
            raise KeyError("path")
        kind = doc.get("kind")
        if kind == KIND_TRIAGE:
            if doc.get("decision") not in ("skip", "reject"):
                raise KeyError("decision")
            self.triage[path] = doc
            self.failures.pop(path, None)
        elif kind == KIND_ANALYSIS:
            if not isinstance(doc.get("status"), str):
                raise KeyError("status")
            self.analyses[path] = doc
            self.failures.pop(path, None)
        elif kind == KIND_FAILURE:
            self.failures[path] = doc
        else:
            raise KeyError("kind")


def read_scan_journal(run_dir: str | os.PathLike) -> ScanState:
    """Load a scan journal, tolerating torn tails and corrupt lines."""
    state = ScanState()
    payloads, state.corrupt_lines, state.torn_tail = read_journal_lines(
        Path(run_dir) / JOURNAL_NAME)
    for doc in payloads:
        try:
            state.absorb(doc)
        except (KeyError, TypeError):
            state.corrupt_lines += 1
    return state
