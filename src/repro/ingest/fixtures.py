"""Hostile filesystem fixtures for exercising the ingest pipeline.

Real fleets are adversarial by accident: `/usr/bin` holds truncated
downloads, foreign-arch chroots, FIFOs, symlink tangles, and the odd
actively-malformed binary. The scan pipeline's tests (and the ingest
chaos scenarios) need a *reproducible* miniature of that mess, built
from the synthetic CET toolchain plus deliberate corruption:

- :func:`synth_binary` — a real little-endian x86-64 ELF with CET
  ``.note.gnu.property`` metadata and exact ground truth.
- :func:`hostile_variants` — deterministic corruptions of a donor
  image (truncation, an ``sh_size`` that overflows the file, foreign
  architecture, big-endian claim, relocatable type).
- :func:`build_fixture_tree` — a directory tree combining healthy
  binaries, hostile variants, non-ELF noise, a symlink loop, a broken
  symlink, a hard-link alias, and (where the OS allows) a FIFO.

Everything is seeded and name-stable so two builds of the same tree
are byte-identical — the property the resume-convergence tests lean
on.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.elf import constants as C
from repro.synth import CompilerProfile, generate_program, link_program

#: e_machine value used for the foreign-architecture variant (AArch64).
_EM_AARCH64 = 183


def synth_binary(name: str, *, seed: int = 2022, functions: int = 12,
                 opt: str = "O2", cxx: bool = False) -> bytes:
    """One small, healthy synthesized CET binary image."""
    profile = CompilerProfile("gcc", opt, 64, True)
    spec = generate_program(name, functions, profile, seed=seed, cxx=cxx)
    return link_program(spec, profile).data


def truncated_elf(donor: bytes, keep: int = 100) -> bytes:
    """A download that died mid-transfer: valid header, missing body."""
    return donor[:keep]


def oversized_shdr_elf(donor: bytes) -> bytes:
    """A section header whose ``sh_size`` overflows the file.

    The degraded parser must record a diagnostic (and the strict one
    must raise) instead of allocating ``sh_size`` bytes — the satellite
    hardening this module exists to exercise.
    """
    data = bytearray(donor)
    e_shoff = struct.unpack_from("<Q", data, 0x28)[0]
    e_shentsize = struct.unpack_from("<H", data, 0x3A)[0]
    e_shnum = struct.unpack_from("<H", data, 0x3C)[0]
    if not e_shoff or e_shnum < 2:
        raise ValueError("donor image has no section headers to corrupt")
    # Corrupt the *last* section's size: its sh_offset is large, so the
    # claimed extent sails far past EOF.
    entry = e_shoff + (e_shnum - 1) * e_shentsize
    struct.pack_into("<Q", data, entry + 0x20, 1 << 62)  # sh_size
    return bytes(data)


def foreign_arch_elf(donor: bytes) -> bytes:
    """The same bytes claiming to be AArch64: triage must reject."""
    data = bytearray(donor)
    struct.pack_into("<H", data, C.EI_NIDENT + 2, _EM_AARCH64)
    return bytes(data)


def big_endian_elf(donor: bytes) -> bytes:
    data = bytearray(donor)
    data[C.EI_DATA] = 2  # ELFDATA2MSB
    return bytes(data)


def relocatable_elf(donor: bytes) -> bytes:
    data = bytearray(donor)
    struct.pack_into("<H", data, C.EI_NIDENT, 1)  # ET_REL
    return bytes(data)


def hostile_variants(donor: bytes) -> dict[str, bytes]:
    """Every deterministic corruption, keyed by fixture filename."""
    return {
        "truncated.elf": truncated_elf(donor),
        "oversized-shdr.elf": oversized_shdr_elf(donor),
        "foreign-arch.elf": foreign_arch_elf(donor),
        "big-endian.elf": big_endian_elf(donor),
        "relocatable.elf": relocatable_elf(donor),
        "garbage.bin": b"MZ\x90\x00" + bytes(range(256)) * 2,
        "empty.bin": b"",
        "tiny.bin": b"\x7fELF",
    }


def build_fixture_tree(root: str | os.PathLike, *, seed: int = 2022,
                       binaries: int = 3) -> dict[str, list[Path]]:
    """Materialize the hostile scan tree under ``root``.

    Returns the fixture inventory by category: ``healthy`` (real CET
    binaries the ladder should analyze), ``hostile`` (files triage or
    the ladder must survive), and ``traps`` (filesystem-level hazards:
    loops, dangling links, aliases, FIFOs).
    """
    root = Path(root)
    inventory: dict[str, list[Path]] = {
        "healthy": [], "hostile": [], "traps": [],
    }

    bin_dir = root / "bin"
    bin_dir.mkdir(parents=True, exist_ok=True)
    donor = b""
    for index in range(binaries):
        image = synth_binary(f"fleet{index}", seed=seed + index,
                             functions=10 + 2 * index,
                             opt="O2" if index % 2 else "O1",
                             cxx=bool(index % 3 == 2))
        path = bin_dir / f"fleet{index}"
        path.write_bytes(image)
        inventory["healthy"].append(path)
        donor = donor or image

    hostile_dir = root / "hostile"
    hostile_dir.mkdir(parents=True, exist_ok=True)
    for name, data in hostile_variants(donor).items():
        path = hostile_dir / name
        path.write_bytes(data)
        inventory["hostile"].append(path)

    nested = root / "nested" / "deeper"
    nested.mkdir(parents=True, exist_ok=True)
    deep_bin = nested / "buried"
    deep_bin.write_bytes(donor)
    # Same inode as bin/fleet0? No — distinct copy; also add a true
    # hard-link alias of fleet0 that discovery must dedup by inode.
    inventory["healthy"].append(deep_bin)
    alias = root / "nested" / "alias"
    os.link(inventory["healthy"][0], alias)
    inventory["traps"].append(alias)

    loop_dir = root / "loop"
    loop_dir.mkdir(exist_ok=True)
    back = loop_dir / "back"
    if not back.is_symlink():
        back.symlink_to(root)
    inventory["traps"].append(back)

    dangling = root / "dangling"
    if not dangling.is_symlink():
        dangling.symlink_to(root / "no-such-target")
    inventory["traps"].append(dangling)

    if hasattr(os, "mkfifo"):
        fifo = root / "pipe.fifo"
        if not fifo.exists():
            os.mkfifo(fifo)
        inventory["traps"].append(fifo)

    return inventory
