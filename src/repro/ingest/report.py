"""Fleet report: what a scan learned, aggregated for humans and diffs.

The report is a pure function of journal state (``fleet-report/v1``),
so an interrupted scan resumed to completion produces — by
construction — the same report as an uninterrupted run: the property
the ingest chaos scenarios pin down. Timing fields are the only
nondeterminism, and :func:`normalize_fleet_report` strips them for
comparisons.

Contents mirror the paper's framing: CET adoption across the fleet
(IBT / SHSTK marked in ``.note.gnu.property``), how far each binary got
down the degradation ladder (status and confidence histograms, triage
reason histograms), per-tool health, and pairwise agreement between the
tools' entry sets — the measurable implication of CET metadata for
function identification on real, untrusted binaries.
"""

from __future__ import annotations

from repro.ingest.journal import ScanState

FLEET_REPORT_SCHEMA = "fleet-report/v1"


def build_fleet_report(state: ScanState, manifest: dict | None = None) -> dict:
    """Aggregate journal state into one JSON-ready fleet report."""
    analyses = [state.analyses[p] for p in sorted(state.analyses)]
    triage = [state.triage[p] for p in sorted(state.triage)]
    failures = [state.failures[p] for p in sorted(state.failures)]

    report: dict = {
        "schema": FLEET_REPORT_SCHEMA,
        "totals": {
            "recorded": len(analyses) + len(triage) + len(failures),
            "analyzed": len(analyses),
            "triaged_out": len(triage),
            "unresolved_failures": len(failures),
            "corrupt_journal_lines": state.corrupt_lines,
            "torn_tail": state.torn_tail,
        },
        "triage": _triage_section(triage),
        "ladder": _ladder_section(analyses),
        "cet": _cet_section(analyses),
        "tools": _tools_section(analyses),
        "agreement": _agreement_section(analyses),
        "failures": [
            {"path": f.get("path"), "error_type": f.get("error_type"),
             "message": f.get("message")}
            for f in failures
        ],
    }
    if manifest is not None:
        report["scan"] = {
            "roots": manifest.get("roots"),
            "tools": manifest.get("tools"),
            "include": manifest.get("include"),
            "exclude": manifest.get("exclude"),
        }
    return report


def _triage_section(triage: list[dict]) -> dict:
    decisions: dict[str, int] = {}
    reasons: dict[str, dict[str, int]] = {}
    for doc in triage:
        decision = doc.get("decision", "?")
        decisions[decision] = decisions.get(decision, 0) + 1
        bucket = reasons.setdefault(decision, {})
        reason = doc.get("reason", "?")
        bucket[reason] = bucket.get(reason, 0) + 1
    return {
        "decisions": dict(sorted(decisions.items())),
        "reasons": {d: dict(sorted(r.items()))
                    for d, r in sorted(reasons.items())},
    }


def _ladder_section(analyses: list[dict]) -> dict:
    statuses: dict[str, int] = {}
    degradations: dict[str, int] = {}
    confidence: dict[str, int] = {}
    for doc in analyses:
        status = doc.get("status", "?")
        coarse = status.split(":", 1)[0]
        statuses[coarse] = statuses.get(coarse, 0) + 1
        if coarse == "degraded":
            diag = status.split(":", 1)[1] if ":" in status else "?"
            degradations[diag] = degradations.get(diag, 0) + 1
        conf = doc.get("confidence", "?")
        confidence[conf] = confidence.get(conf, 0) + 1
    return {
        "status": dict(sorted(statuses.items())),
        "degradations": dict(sorted(degradations.items())),
        "confidence": dict(sorted(confidence.items())),
    }


def _cet_section(analyses: list[dict]) -> dict:
    probed = ibt = shstk = full = any_cet = 0
    for doc in analyses:
        cet = doc.get("cet")
        if not isinstance(cet, dict) or "ibt" not in cet:
            continue
        probed += 1
        has_ibt = bool(cet.get("ibt"))
        has_shstk = bool(cet.get("shstk"))
        ibt += has_ibt
        shstk += has_shstk
        full += has_ibt and has_shstk
        any_cet += has_ibt or has_shstk
    return {
        "probed": probed,
        "ibt": ibt,
        "shstk": shstk,
        "full": full,
        "any": any_cet,
        "adoption_rate": round(any_cet / probed, 6) if probed else None,
    }


def _tools_section(analyses: list[dict]) -> dict:
    tools: dict[str, dict] = {}
    for doc in analyses:
        for name, tdoc in (doc.get("tools") or {}).items():
            agg = tools.setdefault(
                name, {"ok": 0, "failed": 0, "functions": 0})
            if "functions" in tdoc:
                agg["ok"] += 1
                agg["functions"] += tdoc.get("functions") or 0
            else:
                agg["failed"] += 1
    out = {}
    for name in sorted(tools):
        agg = tools[name]
        out[name] = {
            "ok": agg["ok"],
            "failed": agg["failed"],
            "mean_functions": (round(agg["functions"] / agg["ok"], 3)
                               if agg["ok"] else None),
        }
    return out


def _agreement_section(analyses: list[dict]) -> dict:
    pairs: dict[str, list[float]] = {}
    for doc in analyses:
        for pair, value in (doc.get("agreement") or {}).items():
            pairs.setdefault(pair, []).append(float(value))
    return {
        pair: {"binaries": len(values),
               "mean_jaccard": round(sum(values) / len(values), 6)}
        for pair, values in sorted(pairs.items())
    }


def normalize_fleet_report(report: dict) -> dict:
    """Strip run-specific noise so reports can be compared exactly.

    Removes the failure *messages* (they embed PIDs and backstop
    timings) but keeps failure paths and types — a converged resume
    must have none left anyway.
    """
    import copy

    doc = copy.deepcopy(report)
    doc["failures"] = [
        {"path": f.get("path"), "error_type": f.get("error_type")}
        for f in doc.get("failures", [])
    ]
    totals = doc.get("totals") or {}
    totals.pop("corrupt_journal_lines", None)
    totals.pop("torn_tail", None)
    return doc


def render_fleet_table(report: dict) -> str:
    """Human-readable summary of one fleet report."""
    lines = []
    totals = report.get("totals", {})
    lines.append("fleet scan summary")
    lines.append(f"  recorded paths      {totals.get('recorded', 0)}")
    lines.append(f"  analyzed            {totals.get('analyzed', 0)}")
    lines.append(f"  triaged out         {totals.get('triaged_out', 0)}")
    lines.append(
        f"  unresolved failures {totals.get('unresolved_failures', 0)}")

    ladder = report.get("ladder", {})
    status = ladder.get("status", {})
    if status:
        lines.append("ladder status")
        for name, count in status.items():
            lines.append(f"  {name:<19} {count}")
        for diag, count in ladder.get("degradations", {}).items():
            lines.append(f"    degraded:{diag:<17} {count}")

    triage = report.get("triage", {})
    reasons = triage.get("reasons", {})
    if reasons:
        lines.append("triage reasons")
        for decision, bucket in reasons.items():
            for reason, count in bucket.items():
                lines.append(f"  {decision}:{reason:<22} {count}")

    cet = report.get("cet", {})
    if cet.get("probed"):
        rate = cet.get("adoption_rate")
        lines.append("cet adoption")
        lines.append(f"  probed              {cet['probed']}")
        lines.append(f"  ibt                 {cet.get('ibt', 0)}")
        lines.append(f"  shstk               {cet.get('shstk', 0)}")
        lines.append(f"  full (ibt+shstk)    {cet.get('full', 0)}")
        lines.append(f"  any                 {cet.get('any', 0)}"
                     + (f"  ({rate:.1%})" if rate is not None else ""))

    tools = report.get("tools", {})
    if tools:
        lines.append(f"{'tool':<14} {'ok':>5} {'failed':>7} {'mean fns':>9}")
        for name, agg in tools.items():
            mean = agg.get("mean_functions")
            lines.append(
                f"{name:<14} {agg.get('ok', 0):>5} {agg.get('failed', 0):>7} "
                f"{mean if mean is not None else '-':>9}")

    agreement = report.get("agreement", {})
    if agreement:
        lines.append("entry agreement (mean jaccard)")
        for pair, agg in agreement.items():
            lines.append(
                f"  {pair:<22} {agg['mean_jaccard']:.3f} "
                f"over {agg['binaries']}")
    return "\n".join(lines)
