"""Per-tenant token-bucket rate limiting for the analysis service.

One bucket per tenant, created lazily on first sight: tokens refill
continuously at ``rate`` per second up to a ``burst`` ceiling, and each
admitted request (or batch item) spends one. A denied acquire reports
how long until the bucket can cover the request, which the HTTP layer
hands back verbatim as ``Retry-After`` — clients that honor it never
see a second 429 for the same wait.

The implementation is single-threaded by design: the service calls it
only from the event loop, so there is no locking and the refill math is
exact (monotonic clock, fractional tokens).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field


@dataclass
class TokenBucket:
    """Continuous-refill token bucket (monotonic clock injectable)."""

    rate: float
    burst: float
    clock: callable = time.monotonic
    _tokens: float = field(init=False)
    _stamp: float = field(init=False)

    def __post_init__(self) -> None:
        self._tokens = self.burst
        self._stamp = self.clock()

    def _refill(self) -> None:
        now = self.clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def acquire(self, cost: float = 1.0) -> tuple[bool, float]:
        """Try to spend ``cost`` tokens.

        Returns ``(True, 0.0)`` on success, or ``(False, retry_after)``
        with the seconds until the bucket holds ``cost`` tokens again.
        A cost above the burst ceiling can never succeed; such requests
        get the time-to-full as their hint (the caller should reject
        them as oversized instead of retrying forever).
        """
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        deficit = min(cost, self.burst) - self._tokens
        return False, max(deficit / self.rate, 0.0)


class TenantRateLimiter:
    """Lazily-created per-tenant buckets sharing one rate/burst config.

    ``rate <= 0`` disables limiting entirely (every acquire succeeds) —
    the test and chaos harnesses run unthrottled.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock=time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else max(rate, 1.0)
        self.clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def acquire(self, tenant: str, cost: float = 1.0) -> tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
            self._buckets[tenant] = bucket
        allowed, retry_after = bucket.acquire(cost)
        if not allowed:
            # Whole seconds for the Retry-After header, never zero.
            retry_after = max(1.0, math.ceil(retry_after))
        return allowed, retry_after
