"""Analysis-as-a-service: an asyncio job API over the cache + journal.

The batch pipelines answer "reproduce Table III"; this package answers
"serve millions of lookups": ``POST`` a binary, poll the job, fetch the
per-tool entry report with a provenance receipt. Submissions are
deduplicated by content hash before any analysis runs, warm results
come straight from the content-addressed disk cache, tenants are
isolated by cache namespace and token-bucket rate limits, and every
accepted job is journaled so a killed server resumes exactly where it
died (``funseeker serve``, ``funseeker chaos --service``).

Layering:

- :mod:`repro.service.app` — the stdlib HTTP/1.1 front end.
- :mod:`repro.service.jobs` — dedup, bounded queue, executor dispatch,
  poison-job quarantine, health state machine, journal-backed restart
  recovery.
- :mod:`repro.service.supervisor` — the process-isolated executor:
  supervised worker subprocesses with armed deadlines and RSS caps.
- :mod:`repro.service.receipts` — ``job-receipt/v1`` provenance.
- :mod:`repro.service.ratelimit` — per-tenant token buckets.
- :mod:`repro.service.metrics` — ``/v1/healthz`` + ``/v1/metrics``.
- :mod:`repro.service.chaos` — kill/hang/poison/disk-full acceptance
  scenarios.
"""

from repro.service.app import AnalysisService, DEFAULT_MAX_BODY
from repro.service.jobs import (
    DEFAULT_TENANT,
    HEALTH_DEGRADED,
    HEALTH_DRAINING,
    HEALTH_HEALTHY,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Batch,
    Job,
    JobManager,
    execute_payload,
    job_identity,
)
from repro.service.ratelimit import TenantRateLimiter, TokenBucket
from repro.service.receipts import RECEIPT_SCHEMA, build_receipt
from repro.service.supervisor import SupervisedExecutor, WorkerLostError

__all__ = [
    "AnalysisService",
    "Batch",
    "DEFAULT_MAX_BODY",
    "DEFAULT_TENANT",
    "HEALTH_DEGRADED",
    "HEALTH_DRAINING",
    "HEALTH_HEALTHY",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobManager",
    "RECEIPT_SCHEMA",
    "SupervisedExecutor",
    "TenantRateLimiter",
    "TokenBucket",
    "WorkerLostError",
    "build_receipt",
    "execute_payload",
    "job_identity",
]
