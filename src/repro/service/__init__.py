"""Analysis-as-a-service: an asyncio job API over the cache + journal.

The batch pipelines answer "reproduce Table III"; this package answers
"serve millions of lookups": ``POST`` a binary, poll the job, fetch the
per-tool entry report with a provenance receipt. Submissions are
deduplicated by content hash before any analysis runs, warm results
come straight from the content-addressed disk cache, tenants are
isolated by cache namespace and token-bucket rate limits, and every
accepted job is journaled so a killed server resumes exactly where it
died (``funseeker serve``, ``funseeker chaos --service``).

Layering:

- :mod:`repro.service.app` — the stdlib HTTP/1.1 front end.
- :mod:`repro.service.jobs` — dedup, bounded queue, executor dispatch,
  journal-backed restart recovery.
- :mod:`repro.service.receipts` — ``job-receipt/v1`` provenance.
- :mod:`repro.service.ratelimit` — per-tenant token buckets.
- :mod:`repro.service.metrics` — ``/v1/healthz`` + ``/v1/metrics``.
- :mod:`repro.service.chaos` — the kill-mid-job acceptance scenario.
"""

from repro.service.app import AnalysisService, DEFAULT_MAX_BODY
from repro.service.jobs import (
    DEFAULT_TENANT,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Batch,
    Job,
    JobManager,
    job_identity,
)
from repro.service.ratelimit import TenantRateLimiter, TokenBucket
from repro.service.receipts import RECEIPT_SCHEMA, build_receipt

__all__ = [
    "AnalysisService",
    "Batch",
    "DEFAULT_MAX_BODY",
    "DEFAULT_TENANT",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobManager",
    "RECEIPT_SCHEMA",
    "TenantRateLimiter",
    "TokenBucket",
    "build_receipt",
    "job_identity",
]
